// Classic pcap file format (LINKTYPE_ETHERNET, microsecond timestamps).
// The paper's ICMP verdicts come from inspecting packet traces; ours come
// from the same kind of trace, written by taps on simulated links. Files
// are also readable by Wireshark/tcpdump for debugging.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "sim/time.hpp"

namespace gatekit::pcap {

struct Record {
    sim::TimePoint timestamp{};
    std::vector<std::uint8_t> frame;
};

/// Serialize records to a pcap byte stream / file.
class Writer {
public:
    /// Write the 24-byte global header.
    static void write_header(std::ostream& out);
    /// Append one record.
    static void write_record(std::ostream& out, const Record& rec);
    /// Convenience: whole capture to a file. Throws std::runtime_error on
    /// I/O failure.
    static void write_file(const std::string& path,
                           std::span<const Record> records);
};

/// Parse a pcap byte stream; throws net::ParseError on malformed input.
class Reader {
public:
    static std::vector<Record> read(std::span<const std::uint8_t> data);
    static std::vector<Record> read_file(const std::string& path);
};

} // namespace gatekit::pcap
