#include "pcap/capture_tap.hpp"

namespace gatekit::pcap {

void CaptureTap::attach(sim::Link& link) {
    link.set_tap([this](sim::Link::Side from, sim::TimePoint at,
                        std::span<const std::uint8_t> frame) {
        if (filter_ == Filter::AToB && from != sim::Link::Side::A) return;
        if (filter_ == Filter::BToA && from != sim::Link::Side::B) return;
        records_.push_back(
            Record{at, std::vector<std::uint8_t>(frame.begin(), frame.end())});
    });
}

} // namespace gatekit::pcap
