#include "pcap/pcap.hpp"

#include <fstream>
#include <sstream>

#include "net/buffer.hpp"
#include "util/assert.hpp"

namespace gatekit::pcap {

namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4; // microsecond timestamps
constexpr std::uint32_t kLinkTypeEthernet = 1;

void put_u32le(std::ostream& out, std::uint32_t v) {
    char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
    out.write(b, 4);
}

void put_u16le(std::ostream& out, std::uint16_t v) {
    char b[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
    out.write(b, 2);
}

std::uint32_t get_u32le(std::span<const std::uint8_t> d, std::size_t off) {
    return static_cast<std::uint32_t>(d[off]) |
           (static_cast<std::uint32_t>(d[off + 1]) << 8) |
           (static_cast<std::uint32_t>(d[off + 2]) << 16) |
           (static_cast<std::uint32_t>(d[off + 3]) << 24);
}

} // namespace

void Writer::write_header(std::ostream& out) {
    put_u32le(out, kMagic);
    put_u16le(out, 2); // version major
    put_u16le(out, 4); // version minor
    put_u32le(out, 0); // thiszone
    put_u32le(out, 0); // sigfigs
    put_u32le(out, 65535); // snaplen
    put_u32le(out, kLinkTypeEthernet);
}

void Writer::write_record(std::ostream& out, const Record& rec) {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        rec.timestamp)
                        .count();
    put_u32le(out, static_cast<std::uint32_t>(us / 1'000'000));
    put_u32le(out, static_cast<std::uint32_t>(us % 1'000'000));
    put_u32le(out, static_cast<std::uint32_t>(rec.frame.size()));
    put_u32le(out, static_cast<std::uint32_t>(rec.frame.size()));
    out.write(reinterpret_cast<const char*>(rec.frame.data()),
              static_cast<std::streamsize>(rec.frame.size()));
}

void Writer::write_file(const std::string& path,
                        std::span<const Record> records) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot open " + path);
    write_header(out);
    for (const auto& rec : records) write_record(out, rec);
    if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<Record> Reader::read(std::span<const std::uint8_t> data) {
    if (data.size() < 24) throw net::ParseError("pcap too short");
    if (get_u32le(data, 0) != kMagic)
        throw net::ParseError("bad pcap magic (only usec little-endian "
                              "captures supported)");
    if (get_u32le(data, 20) != kLinkTypeEthernet)
        throw net::ParseError("unsupported pcap link type");
    std::vector<Record> records;
    std::size_t off = 24;
    while (off + 16 <= data.size()) {
        const std::uint32_t sec = get_u32le(data, off);
        const std::uint32_t usec = get_u32le(data, off + 4);
        const std::uint32_t caplen = get_u32le(data, off + 8);
        off += 16;
        if (off + caplen > data.size())
            throw net::ParseError("truncated pcap record");
        Record rec;
        rec.timestamp = std::chrono::seconds(sec) +
                        std::chrono::microseconds(usec);
        rec.frame.assign(data.begin() + static_cast<long>(off),
                         data.begin() + static_cast<long>(off + caplen));
        records.push_back(std::move(rec));
        off += caplen;
    }
    if (off != data.size()) throw net::ParseError("trailing pcap bytes");
    return records;
}

std::vector<Record> Reader::read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string s = ss.str();
    return read({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

} // namespace gatekit::pcap
