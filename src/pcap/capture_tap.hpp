// In-memory packet capture attached to a simulated link, mirroring how
// the paper attached libpcap to the testbed segments.
#pragma once

#include <vector>

#include "pcap/pcap.hpp"
#include "sim/link.hpp"

namespace gatekit::pcap {

/// Records every frame crossing a Link, in either or one direction.
/// Install with `tap.attach(link)`; the tap must outlive the link's use.
class CaptureTap {
public:
    enum class Filter { Both, AToB, BToA };

    explicit CaptureTap(Filter filter = Filter::Both) : filter_(filter) {}

    /// Install on a link (replaces any previous tap on that link).
    void attach(sim::Link& link);

    const std::vector<Record>& records() const { return records_; }
    void clear() { records_.clear(); }

    /// Dump the capture to a pcap file.
    void save(const std::string& path) const {
        Writer::write_file(path, records_);
    }

private:
    Filter filter_;
    std::vector<Record> records_;
};

} // namespace gatekit::pcap
