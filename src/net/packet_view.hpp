// Zero-copy packet view: one parse at ingress yields the header offsets
// the whole forwarding path needs, and NAT rewrites happen in place with
// RFC 1624 incremental checksum updates instead of a parse/serialize
// round trip per stage. The view never owns bytes — it aliases a frame
// buffer and is invalidated by anything that reallocates or frees it
// (see DESIGN.md §13 for the discipline).
//
// In-place updates are byte-identical to the legacy re-serialization for
// any packet whose wire checksums were correct on arrival: the serializer
// emits the unique representative of the checksum's residue class in
// [0, 0xfffe] (IPv4/TCP) or [1, 0xffff] (UDP, where 0 means "disabled"),
// and the incremental form is closed over exactly those ranges. Packets
// with incorrect checksums (corrupt impairments) keep their badness in
// place where re-serialization would have silently repaired it; the fast
// path is only used where that distinction cannot matter.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/addr.hpp"
#include "net/ipv4.hpp"

namespace gatekit::net {

class PacketView {
public:
    /// Parse the IPv4 header (and the UDP/TCP port/checksum geometry of
    /// first fragments) out of `datagram` without copying anything.
    /// Returns nullopt on structural damage — same acceptance rules as
    /// Ipv4Packet::parse. The view aliases `datagram`; the caller keeps
    /// the buffer alive and unmoved for the view's lifetime.
    static std::optional<PacketView> parse(std::span<std::uint8_t> datagram);

    // --- geometry ------------------------------------------------------
    std::uint8_t* data() const { return data_; }
    /// IPv4 total length: the datagram's meaningful byte count. Trailing
    /// bytes beyond this (link padding) are not part of the packet.
    std::uint16_t total_len() const { return total_; }
    std::uint8_t header_len() const { return ihl_; }
    std::uint8_t protocol() const { return proto_; }
    std::uint8_t ttl() const { return data_[8]; }
    bool has_options() const { return ihl_ > 20; }
    bool is_fragment() const { return fragment_; }

    Ipv4Addr src() const { return src_; }
    Ipv4Addr dst() const { return dst_; }

    /// True when UDP/TCP ports were parsed (first fragment, transport
    /// header complete, UDP length field consistent with the IP total).
    bool has_l4() const { return has_l4_; }
    std::uint16_t src_port() const { return sport_; }
    std::uint16_t dst_port() const { return dport_; }

    /// Wire UDP checksum was zero ("no checksum"); in-place updates are
    /// impossible because re-serialization would compute a fresh one.
    bool l4_checksum_disabled() const { return l4_ck_disabled_; }

    /// TCP flag bits (byte 13 of the TCP header); 0 for non-TCP.
    std::uint8_t tcp_flags() const {
        return proto_ == proto::kTcp && has_l4_ ? data_[ihl_ + 13] : 0;
    }

    // --- in-place mutation (incremental checksum fixup) ----------------
    void set_src(Ipv4Addr a);
    void set_dst(Ipv4Addr a);
    void set_src_port(std::uint16_t p);
    void set_dst_port(std::uint16_t p);
    void decrement_ttl();

private:
    void ip_fixup16(std::size_t off, std::uint16_t old_w, std::uint16_t new_w);
    void ip_fixup32(std::size_t off, std::uint32_t old_w, std::uint32_t new_w);
    /// Update the L4 checksum for a changed word that is part of the
    /// TCP/UDP checksum coverage (pseudo-header addresses or ports).
    void l4_fixup16(std::uint16_t old_w, std::uint16_t new_w);
    void l4_fixup32(std::uint32_t old_w, std::uint32_t new_w);

    std::uint16_t read16(std::size_t off) const {
        return static_cast<std::uint16_t>((data_[off] << 8) | data_[off + 1]);
    }
    void write16(std::size_t off, std::uint16_t v) {
        data_[off] = static_cast<std::uint8_t>(v >> 8);
        data_[off + 1] = static_cast<std::uint8_t>(v);
    }

    std::uint8_t* data_ = nullptr;
    std::uint16_t total_ = 0;
    std::uint8_t ihl_ = 0;
    std::uint8_t proto_ = 0;
    bool fragment_ = false;
    bool has_l4_ = false;
    bool l4_ck_disabled_ = false;
    std::uint16_t l4_ck_off_ = 0; ///< absolute offset; 0 = no L4 checksum
    Ipv4Addr src_;
    Ipv4Addr dst_;
    std::uint16_t sport_ = 0;
    std::uint16_t dport_ = 0;
};

} // namespace gatekit::net
