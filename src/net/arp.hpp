// ARP for IPv4-over-Ethernet (RFC 826), the only flavor the testbed needs.
#pragma once

#include "net/addr.hpp"
#include "net/buffer.hpp"

namespace gatekit::net {

struct ArpMessage {
    enum class Op : std::uint16_t { Request = 1, Reply = 2 };

    Op op = Op::Request;
    MacAddr sender_mac;
    Ipv4Addr sender_ip;
    MacAddr target_mac; ///< zero in requests
    Ipv4Addr target_ip;

    Bytes serialize() const;
    static ArpMessage parse(std::span<const std::uint8_t> data);
};

} // namespace gatekit::net
