// Ethernet II framing with optional 802.1Q VLAN tag. The testbed (paper
// Figure 1) runs each gateway's LAN and WAN side on its own VLAN; the test
// hosts use tagged subinterfaces on a trunk, which is why the tag matters.
#pragma once

#include <cstdint>
#include <optional>

#include "net/addr.hpp"
#include "net/buffer.hpp"

namespace gatekit::net {

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;

/// A full Ethernet frame (header + payload). No FCS: the simulator never
/// corrupts frames, so a trailer would be dead weight.
struct EthernetFrame {
    MacAddr dst;
    MacAddr src;
    std::optional<std::uint16_t> vlan_id; ///< 802.1Q VID when tagged
    std::uint16_t ethertype = 0;
    Bytes payload;

    Bytes serialize() const;
    /// serialize() into `reuse`'s storage (cleared first), so a pooled
    /// buffer's capacity is recycled instead of reallocated. Output bytes
    /// are identical to serialize().
    Bytes serialize_into(Bytes reuse) const;
    static EthernetFrame parse(std::span<const std::uint8_t> data);
};

} // namespace gatekit::net
