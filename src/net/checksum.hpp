// Internet checksum (RFC 1071), incremental update (RFC 1624) and CRC32c
// (RFC 3309, used by SCTP). The NAT engine uses the incremental form the
// way real devices do; tests cross-check it against full recomputation.
#pragma once

#include <cstdint>
#include <span>

#include "net/addr.hpp"

namespace gatekit::net {

/// One's-complement sum accumulator. Feed byte ranges and 16-bit words,
/// then finalize() to the complemented checksum value.
class ChecksumAccumulator {
public:
    void add_bytes(std::span<const std::uint8_t> data);
    void add_u16(std::uint16_t v) { sum_ += v; }
    void add_u32(std::uint32_t v) {
        add_u16(static_cast<std::uint16_t>(v >> 16));
        add_u16(static_cast<std::uint16_t>(v));
    }

    /// Folded, complemented checksum ready for the wire.
    std::uint16_t finalize() const;

private:
    std::uint64_t sum_ = 0;
};

/// RFC 1071 checksum over a byte range (odd lengths padded with zero).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Incremental checksum update per RFC 1624 (eqn. 3): returns the new
/// checksum after a 16-bit word changes from `old_word` to `new_word`.
std::uint16_t checksum_update16(std::uint16_t old_checksum,
                                std::uint16_t old_word,
                                std::uint16_t new_word);

/// Incremental update for a 32-bit field (e.g. an IPv4 address).
std::uint16_t checksum_update32(std::uint16_t old_checksum,
                                std::uint32_t old_word,
                                std::uint32_t new_word);

/// IPv4 pseudo-header contribution for TCP/UDP/DCCP checksums.
void add_pseudo_header(ChecksumAccumulator& acc, Ipv4Addr src, Ipv4Addr dst,
                       std::uint8_t protocol, std::uint16_t length);

/// CRC32c (Castagnoli) over a byte range, as SCTP uses; returned in the
/// natural (host-order) form. SCTP serialization stores it little-endian
/// per RFC 4960 appendix B.
std::uint32_t crc32c(std::span<const std::uint8_t> data);

} // namespace gatekit::net
