// Address vocabulary types: Ethernet MAC and IPv4 addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace gatekit::net {

/// 48-bit Ethernet MAC address.
class MacAddr {
public:
    constexpr MacAddr() = default;
    constexpr explicit MacAddr(std::array<std::uint8_t, 6> octets)
        : octets_(octets) {}

    /// Parse "aa:bb:cc:dd:ee:ff"; throws ParseError on bad input.
    static MacAddr parse(std::string_view text);

    /// Deterministic locally-administered unicast address from an index,
    /// used to assign distinct MACs to simulated interfaces.
    static constexpr MacAddr from_index(std::uint32_t idx) {
        return MacAddr({0x02, 0x00,
                        static_cast<std::uint8_t>(idx >> 24),
                        static_cast<std::uint8_t>(idx >> 16),
                        static_cast<std::uint8_t>(idx >> 8),
                        static_cast<std::uint8_t>(idx)});
    }

    static constexpr MacAddr broadcast() {
        return MacAddr({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
    }

    constexpr bool is_broadcast() const {
        for (auto b : octets_)
            if (b != 0xff) return false;
        return true;
    }
    constexpr bool is_multicast() const { return (octets_[0] & 0x01) != 0; }

    constexpr const std::array<std::uint8_t, 6>& octets() const {
        return octets_;
    }
    std::string to_string() const;

    friend constexpr auto operator<=>(const MacAddr&, const MacAddr&) = default;

private:
    std::array<std::uint8_t, 6> octets_{};
};

/// IPv4 address, stored in host order for arithmetic convenience;
/// serialization code converts at the wire boundary.
class Ipv4Addr {
public:
    constexpr Ipv4Addr() = default;
    constexpr explicit Ipv4Addr(std::uint32_t host_order) : v_(host_order) {}
    constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                       std::uint8_t d)
        : v_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
             (std::uint32_t{c} << 8) | d) {}

    /// Parse dotted quad; throws ParseError on bad input.
    static Ipv4Addr parse(std::string_view text);

    static constexpr Ipv4Addr any() { return Ipv4Addr{0u}; }
    static constexpr Ipv4Addr broadcast() { return Ipv4Addr{0xffffffffu}; }

    constexpr std::uint32_t value() const { return v_; }
    constexpr bool is_unspecified() const { return v_ == 0; }
    constexpr bool is_broadcast() const { return v_ == 0xffffffffu; }

    /// RFC 1918 private-space test (10/8, 172.16/12, 192.168/16).
    constexpr bool is_private() const {
        return (v_ >> 24) == 10 || (v_ >> 20) == 0xac1 ||
               (v_ >> 16) == 0xc0a8;
    }

    /// True when `other` is in the same subnet under `prefix_len` bits.
    constexpr bool same_subnet(Ipv4Addr other, int prefix_len) const {
        if (prefix_len <= 0) return true;
        const std::uint32_t mask =
            prefix_len >= 32 ? 0xffffffffu : ~((1u << (32 - prefix_len)) - 1);
        return (v_ & mask) == (other.v_ & mask);
    }

    std::string to_string() const;

    friend constexpr auto operator<=>(const Ipv4Addr&, const Ipv4Addr&) =
        default;

private:
    std::uint32_t v_ = 0;
};

/// Transport endpoint (address, port) — the unit NAT bindings map between.
struct Endpoint {
    Ipv4Addr addr;
    std::uint16_t port = 0;

    friend constexpr auto operator<=>(const Endpoint&, const Endpoint&) =
        default;
};

std::string to_string(const Endpoint& ep);

} // namespace gatekit::net
