#include "net/dns.hpp"

#include "util/assert.hpp"

namespace gatekit::net {

namespace {

void write_name(BufferWriter& w, const std::string& name) {
    std::size_t start = 0;
    while (start < name.size()) {
        auto dot = name.find('.', start);
        if (dot == std::string::npos) dot = name.size();
        const std::size_t len = dot - start;
        if (len == 0 || len > 63) throw ParseError("bad DNS label length");
        w.u8(static_cast<std::uint8_t>(len));
        w.bytes({reinterpret_cast<const std::uint8_t*>(name.data() + start),
                 len});
        start = dot + 1;
    }
    w.u8(0);
}

std::string read_name(BufferReader& r) {
    std::string out;
    int hops = 0;
    std::size_t follow_pos = static_cast<std::size_t>(-1); // npos: not yet jumped
    std::size_t pos = r.position();
    const auto whole = r.whole();
    while (true) {
        if (pos >= whole.size()) throw ParseError("DNS name runs off packet");
        const std::uint8_t len = whole[pos];
        if ((len & 0xc0) == 0xc0) {
            if (pos + 1 >= whole.size())
                throw ParseError("truncated DNS compression pointer");
            if (++hops > 16) throw ParseError("DNS pointer loop");
            if (follow_pos == static_cast<std::size_t>(-1))
                follow_pos = pos + 2;
            pos = static_cast<std::size_t>((len & 0x3f) << 8) |
                  whole[pos + 1];
            continue;
        }
        if (len > 63) throw ParseError("bad DNS label");
        if (len == 0) {
            ++pos;
            break;
        }
        if (pos + 1 + len > whole.size())
            throw ParseError("DNS label runs off packet");
        if (!out.empty()) out.push_back('.');
        out.append(reinterpret_cast<const char*>(whole.data() + pos + 1),
                   len);
        pos += 1u + len;
    }
    const std::size_t end =
        follow_pos == static_cast<std::size_t>(-1) ? pos : follow_pos;
    r.skip(end - r.position());
    return out;
}

} // namespace

DnsRecord DnsRecord::a_record(std::string name, Ipv4Addr addr,
                              std::uint32_t ttl) {
    DnsRecord rec;
    rec.name = std::move(name);
    rec.ttl = ttl;
    const std::uint32_t v = addr.value();
    rec.rdata = {static_cast<std::uint8_t>(v >> 24),
                 static_cast<std::uint8_t>(v >> 16),
                 static_cast<std::uint8_t>(v >> 8),
                 static_cast<std::uint8_t>(v)};
    return rec;
}

Ipv4Addr DnsRecord::a_addr() const {
    if (rtype != kDnsTypeA || rdata.size() != 4)
        throw ParseError("not an A record");
    return Ipv4Addr{rdata[0], rdata[1], rdata[2], rdata[3]};
}

Bytes DnsMessage::serialize() const {
    BufferWriter w(64);
    w.u16(id);
    std::uint16_t flags = 0;
    if (is_response) flags |= 0x8000;
    flags |= static_cast<std::uint16_t>((opcode & 0xf) << 11);
    if (authoritative) flags |= 0x0400;
    if (truncated) flags |= 0x0200;
    if (recursion_desired) flags |= 0x0100;
    if (recursion_available) flags |= 0x0080;
    flags |= rcode & 0xf;
    w.u16(flags);
    w.u16(static_cast<std::uint16_t>(questions.size()));
    w.u16(static_cast<std::uint16_t>(answers.size()));
    w.u16(0); // authority
    w.u16(edns_udp_size ? 1 : 0); // additional: the OPT pseudo-RR
    for (const auto& q : questions) {
        write_name(w, q.name);
        w.u16(q.qtype);
        w.u16(q.qclass);
    }
    for (const auto& a : answers) {
        write_name(w, a.name);
        w.u16(a.rtype);
        w.u16(a.rclass);
        w.u32(a.ttl);
        GK_EXPECTS(a.rdata.size() <= 0xffff);
        w.u16(static_cast<std::uint16_t>(a.rdata.size()));
        w.bytes(a.rdata);
    }
    if (edns_udp_size) {
        // OPT pseudo-RR (RFC 6891): root name, type 41, "class" carries
        // the advertised UDP payload size.
        w.u8(0); // root
        w.u16(kDnsTypeOpt);
        w.u16(*edns_udp_size);
        w.u32(0); // extended rcode + flags
        w.u16(0); // no options
    }
    return w.take();
}

DnsMessage DnsMessage::parse(std::span<const std::uint8_t> data) {
    BufferReader r(data);
    DnsMessage m;
    m.id = r.u16();
    const std::uint16_t flags = r.u16();
    m.is_response = (flags & 0x8000) != 0;
    m.opcode = static_cast<std::uint8_t>((flags >> 11) & 0xf);
    m.authoritative = (flags & 0x0400) != 0;
    m.truncated = (flags & 0x0200) != 0;
    m.recursion_desired = (flags & 0x0100) != 0;
    m.recursion_available = (flags & 0x0080) != 0;
    m.rcode = static_cast<std::uint8_t>(flags & 0xf);
    const std::uint16_t qd = r.u16();
    const std::uint16_t an = r.u16();
    r.skip(2); // authority count (ignored)
    const std::uint16_t ar = r.u16();
    for (std::uint16_t i = 0; i < qd; ++i) {
        DnsQuestion q;
        q.name = read_name(r);
        q.qtype = r.u16();
        q.qclass = r.u16();
        m.questions.push_back(std::move(q));
    }
    for (std::uint16_t i = 0; i < an; ++i) {
        DnsRecord rec;
        rec.name = read_name(r);
        rec.rtype = r.u16();
        rec.rclass = r.u16();
        rec.ttl = r.u32();
        const std::uint16_t rdlen = r.u16();
        const auto rd = r.bytes(rdlen);
        rec.rdata.assign(rd.begin(), rd.end());
        m.answers.push_back(std::move(rec));
    }
    for (std::uint16_t i = 0; i < ar && !r.empty(); ++i) {
        const std::string name = read_name(r);
        const std::uint16_t rtype = r.u16();
        const std::uint16_t rclass_or_size = r.u16();
        r.skip(4); // ttl / extended flags
        const std::uint16_t rdlen = r.u16();
        r.skip(std::min<std::size_t>(rdlen, r.remaining()));
        if (rtype == kDnsTypeOpt && name.empty())
            m.edns_udp_size = rclass_or_size;
    }
    return m;
}

DnsRecord DnsMessage::make_txt_filler(std::string name, std::size_t size) {
    DnsRecord rec;
    rec.name = std::move(name);
    rec.rtype = kDnsTypeTxt;
    // TXT RDATA: length-prefixed strings of up to 255 bytes each.
    while (rec.rdata.size() < size) {
        const auto chunk = static_cast<std::uint8_t>(
            std::min<std::size_t>(255, size - rec.rdata.size()));
        rec.rdata.push_back(chunk);
        rec.rdata.insert(rec.rdata.end(), chunk, 'x');
    }
    return rec;
}

DnsMessage DnsMessage::make_query(std::uint16_t id, std::string name,
                                  std::uint16_t qtype) {
    DnsMessage m;
    m.id = id;
    m.questions.push_back(DnsQuestion{std::move(name), qtype, kDnsClassIn});
    return m;
}

DnsMessage DnsMessage::make_a_response(const DnsMessage& query,
                                       Ipv4Addr addr) {
    GK_EXPECTS(!query.questions.empty());
    DnsMessage m;
    m.id = query.id;
    m.is_response = true;
    m.recursion_desired = query.recursion_desired;
    m.recursion_available = true;
    m.questions = query.questions;
    m.answers.push_back(DnsRecord::a_record(query.questions.front().name,
                                            addr));
    return m;
}

} // namespace gatekit::net
