#include "net/buffer.hpp"

#include "util/assert.hpp"

namespace gatekit::net {

void BufferWriter::u16(std::uint16_t v) {
    data_.push_back(static_cast<std::uint8_t>(v >> 8));
    data_.push_back(static_cast<std::uint8_t>(v));
}

void BufferWriter::u32(std::uint32_t v) {
    data_.push_back(static_cast<std::uint8_t>(v >> 24));
    data_.push_back(static_cast<std::uint8_t>(v >> 16));
    data_.push_back(static_cast<std::uint8_t>(v >> 8));
    data_.push_back(static_cast<std::uint8_t>(v));
}

void BufferWriter::u48(std::uint64_t v) {
    GK_EXPECTS(v < (1ULL << 48));
    for (int shift = 40; shift >= 0; shift -= 8)
        data_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void BufferWriter::bytes(std::span<const std::uint8_t> b) {
    data_.insert(data_.end(), b.begin(), b.end());
}

void BufferWriter::zeros(std::size_t n) { data_.insert(data_.end(), n, 0); }

void BufferWriter::patch_u16(std::size_t offset, std::uint16_t v) {
    GK_EXPECTS(offset + 2 <= data_.size());
    data_[offset] = static_cast<std::uint8_t>(v >> 8);
    data_[offset + 1] = static_cast<std::uint8_t>(v);
}

void BufferWriter::patch_u32(std::size_t offset, std::uint32_t v) {
    GK_EXPECTS(offset + 4 <= data_.size());
    data_[offset] = static_cast<std::uint8_t>(v >> 24);
    data_[offset + 1] = static_cast<std::uint8_t>(v >> 16);
    data_[offset + 2] = static_cast<std::uint8_t>(v >> 8);
    data_[offset + 3] = static_cast<std::uint8_t>(v);
}

void BufferReader::need(std::size_t n) const {
    if (remaining() < n)
        throw ParseError("packet truncated: need " + std::to_string(n) +
                         " bytes, have " + std::to_string(remaining()));
}

std::uint8_t BufferReader::u8() {
    need(1);
    return data_[pos_++];
}

std::uint16_t BufferReader::u16() {
    need(2);
    const auto v = static_cast<std::uint16_t>((data_[pos_] << 8) |
                                              data_[pos_ + 1]);
    pos_ += 2;
    return v;
}

std::uint32_t BufferReader::u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
}

std::uint64_t BufferReader::u48() {
    need(6);
    std::uint64_t v = 0;
    for (int i = 0; i < 6; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 6;
    return v;
}

std::span<const std::uint8_t> BufferReader::bytes(std::size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
}

void BufferReader::skip(std::size_t n) {
    need(n);
    pos_ += n;
}

std::string hexdump(std::span<const std::uint8_t> b) {
    static constexpr char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(b.size() * 3);
    for (std::size_t i = 0; i < b.size(); ++i) {
        if (i != 0) out.push_back(' ');
        out.push_back(digits[b[i] >> 4]);
        out.push_back(digits[b[i] & 0xf]);
    }
    return out;
}

} // namespace gatekit::net
