#include "net/sctp.hpp"

#include "net/checksum.hpp"
#include "util/assert.hpp"

namespace gatekit::net {

Bytes SctpPacket::serialize() const {
    BufferWriter w(12 + chunks.size() * 8);
    w.u16(src_port);
    w.u16(dst_port);
    w.u32(verification_tag);
    w.u32(0); // checksum placeholder
    for (const auto& c : chunks) {
        const std::size_t len = 4 + c.value.size();
        GK_EXPECTS(len <= 0xffff);
        w.u8(static_cast<std::uint8_t>(c.type));
        w.u8(c.flags);
        w.u16(static_cast<std::uint16_t>(len));
        w.bytes(c.value);
        // Chunks are padded to 4-byte boundaries; padding is not counted
        // in the chunk length.
        w.zeros((4 - len % 4) % 4);
    }
    // RFC 4960 appendix B: CRC32c computed with the checksum field zeroed,
    // then stored in little-endian byte order.
    const std::uint32_t crc = crc32c(w.view());
    auto bytes = w.mutable_view();
    bytes[8] = static_cast<std::uint8_t>(crc);
    bytes[9] = static_cast<std::uint8_t>(crc >> 8);
    bytes[10] = static_cast<std::uint8_t>(crc >> 16);
    bytes[11] = static_cast<std::uint8_t>(crc >> 24);
    return w.take();
}

SctpPacket SctpPacket::parse(std::span<const std::uint8_t> data) {
    if (data.size() < 12) throw ParseError("SCTP packet too short");
    BufferReader r(data);
    SctpPacket p;
    p.src_port = r.u16();
    p.dst_port = r.u16();
    p.verification_tag = r.u32();
    // Little-endian stored CRC.
    const auto c0 = r.u8(), c1 = r.u8(), c2 = r.u8(), c3 = r.u8();
    p.stored_crc = static_cast<std::uint32_t>(c0) |
                   (static_cast<std::uint32_t>(c1) << 8) |
                   (static_cast<std::uint32_t>(c2) << 16) |
                   (static_cast<std::uint32_t>(c3) << 24);
    Bytes zeroed(data.begin(), data.end());
    zeroed[8] = zeroed[9] = zeroed[10] = zeroed[11] = 0;
    p.crc_ok = crc32c(zeroed) == p.stored_crc;

    while (r.remaining() >= 4) {
        SctpChunk c;
        c.type = static_cast<SctpChunkType>(r.u8());
        c.flags = r.u8();
        const std::uint16_t len = r.u16();
        if (len < 4 || static_cast<std::size_t>(len) - 4 > r.remaining())
            throw ParseError("bad SCTP chunk length");
        const auto body = r.bytes(len - 4u);
        c.value.assign(body.begin(), body.end());
        r.skip(std::min<std::size_t>((4 - len % 4) % 4, r.remaining()));
        p.chunks.push_back(std::move(c));
    }
    return p;
}

const SctpChunk* SctpPacket::find(SctpChunkType t) const {
    for (const auto& c : chunks)
        if (c.type == t) return &c;
    return nullptr;
}

} // namespace gatekit::net
