// DNS message wire format (RFC 1035): enough for A queries/responses over
// UDP and TCP, which is what the study's DNS proxy tests exercise.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/addr.hpp"
#include "net/buffer.hpp"

namespace gatekit::net {

inline constexpr std::uint16_t kDnsTypeA = 1;
inline constexpr std::uint16_t kDnsTypeTxt = 16;
inline constexpr std::uint16_t kDnsTypeOpt = 41; ///< EDNS0 pseudo-RR
inline constexpr std::uint16_t kDnsClassIn = 1;
inline constexpr std::uint16_t kDnsPort = 53;
/// Classic DNS-over-UDP limit without EDNS0 (RFC 1035).
inline constexpr std::size_t kDnsClassicUdpLimit = 512;

struct DnsQuestion {
    std::string name; ///< presentation form, e.g. "server.hiit.fi"
    std::uint16_t qtype = kDnsTypeA;
    std::uint16_t qclass = kDnsClassIn;

    friend bool operator==(const DnsQuestion&, const DnsQuestion&) = default;
};

struct DnsRecord {
    std::string name;
    std::uint16_t rtype = kDnsTypeA;
    std::uint16_t rclass = kDnsClassIn;
    std::uint32_t ttl = 60;
    Bytes rdata;

    /// Convenience for A records.
    static DnsRecord a_record(std::string name, Ipv4Addr addr,
                              std::uint32_t ttl = 60);
    Ipv4Addr a_addr() const;

    friend bool operator==(const DnsRecord&, const DnsRecord&) = default;
};

struct DnsMessage {
    std::uint16_t id = 0;
    bool is_response = false;
    std::uint8_t opcode = 0;
    bool authoritative = false;
    bool truncated = false;
    bool recursion_desired = true;
    bool recursion_available = false;
    std::uint8_t rcode = 0;
    std::vector<DnsQuestion> questions;
    std::vector<DnsRecord> answers;
    /// EDNS0 (RFC 6891): advertised UDP payload size; nullopt = no OPT
    /// record. Serialized as an OPT pseudo-RR in the additional section.
    std::optional<std::uint16_t> edns_udp_size;

    Bytes serialize() const;
    static DnsMessage parse(std::span<const std::uint8_t> data);

    static DnsMessage make_query(std::uint16_t id, std::string name,
                                 std::uint16_t qtype = kDnsTypeA);
    /// Build a TXT record padded to roughly `size` bytes of RDATA (for
    /// large-response tests standing in for DNSSEC-sized answers).
    static DnsRecord make_txt_filler(std::string name, std::size_t size);
    /// Build a response answering `query` with a single A record.
    static DnsMessage make_a_response(const DnsMessage& query, Ipv4Addr addr);
};

} // namespace gatekit::net
