// Network-byte-order serialization primitives. All wire formats in
// gatekit are produced by BufferWriter and consumed by BufferReader, so
// byte-order handling lives in exactly one place.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace gatekit::net {

/// Thrown when parsing runs off the end of a packet or meets an
/// impossible length field. Malformed input is data, not a logic error.
class ParseError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

using Bytes = std::vector<std::uint8_t>;

/// Appends big-endian integers and raw bytes; supports back-patching for
/// length and checksum fields whose value is known only after the payload.
class BufferWriter {
public:
    BufferWriter() = default;
    explicit BufferWriter(std::size_t reserve) { data_.reserve(reserve); }
    /// Adopt an existing buffer (cleared), reusing its capacity. Pairs
    /// with net::PacketPool so serialization on the hot path appends into
    /// recycled storage instead of growing a fresh vector.
    explicit BufferWriter(Bytes&& reuse) : data_(std::move(reuse)) {
        data_.clear();
    }

    void u8(std::uint8_t v) { data_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u48(std::uint64_t v); ///< 48-bit field (DCCP long sequence numbers)
    void bytes(std::span<const std::uint8_t> b);
    void zeros(std::size_t n);

    /// Overwrite a 16-bit big-endian field at `offset` (must be in range).
    void patch_u16(std::size_t offset, std::uint16_t v);
    /// Overwrite a 32-bit big-endian field at `offset` (must be in range).
    void patch_u32(std::size_t offset, std::uint32_t v);

    std::size_t size() const { return data_.size(); }
    std::span<const std::uint8_t> view() const { return data_; }
    std::span<std::uint8_t> mutable_view() { return data_; }

    /// Move the accumulated bytes out; the writer is empty afterwards.
    Bytes take() { return std::move(data_); }

private:
    Bytes data_;
};

/// Reads big-endian integers and raw byte runs; throws ParseError on
/// underrun so callers never index out of bounds.
class BufferReader {
public:
    explicit BufferReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u48();
    std::span<const std::uint8_t> bytes(std::size_t n);
    void skip(std::size_t n);

    std::size_t position() const { return pos_; }
    std::size_t remaining() const { return data_.size() - pos_; }
    bool empty() const { return remaining() == 0; }

    /// All bytes not yet consumed, without consuming them.
    std::span<const std::uint8_t> rest() const { return data_.subspan(pos_); }

    /// Random access to the underlying data (for offset-based fields).
    std::span<const std::uint8_t> whole() const { return data_; }

private:
    void need(std::size_t n) const;

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

/// Hex dump ("0a 1b ..") used by error messages and pcap tooling.
std::string hexdump(std::span<const std::uint8_t> b);

} // namespace gatekit::net
