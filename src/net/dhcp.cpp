#include "net/dhcp.hpp"

#include "util/assert.hpp"

namespace gatekit::net {

namespace {
constexpr std::uint32_t kMagicCookie = 0x63825363;
}

Bytes DhcpMessage::serialize() const {
    BufferWriter w(300);
    w.u8(op);
    w.u8(1); // htype: Ethernet
    w.u8(6); // hlen
    w.u8(0); // hops
    w.u32(xid);
    w.u16(0);      // secs
    w.u16(0x8000); // flags: broadcast
    w.u32(ciaddr.value());
    w.u32(yiaddr.value());
    w.u32(siaddr.value());
    w.u32(giaddr.value());
    w.bytes(chaddr.octets());
    w.zeros(10);  // chaddr padding
    w.zeros(64);  // sname
    w.zeros(128); // file
    w.u32(kMagicCookie);
    for (const auto& [code, value] : options) {
        GK_EXPECTS(value.size() <= 255);
        w.u8(code);
        w.u8(static_cast<std::uint8_t>(value.size()));
        w.bytes(value);
    }
    w.u8(dhcp_opt::kEnd);
    return w.take();
}

DhcpMessage DhcpMessage::parse(std::span<const std::uint8_t> data) {
    BufferReader r(data);
    DhcpMessage m;
    m.op = r.u8();
    if (r.u8() != 1 || r.u8() != 6) throw ParseError("bad DHCP htype/hlen");
    r.skip(1); // hops
    m.xid = r.u32();
    r.skip(4); // secs + flags
    m.ciaddr = Ipv4Addr{r.u32()};
    m.yiaddr = Ipv4Addr{r.u32()};
    m.siaddr = Ipv4Addr{r.u32()};
    m.giaddr = Ipv4Addr{r.u32()};
    std::array<std::uint8_t, 6> mac{};
    auto b = r.bytes(6);
    std::copy(b.begin(), b.end(), mac.begin());
    m.chaddr = MacAddr{mac};
    r.skip(10 + 64 + 128);
    if (r.u32() != kMagicCookie) throw ParseError("bad DHCP magic cookie");
    while (!r.empty()) {
        const std::uint8_t code = r.u8();
        if (code == dhcp_opt::kEnd) break;
        if (code == 0) continue; // pad
        const std::uint8_t len = r.u8();
        const auto val = r.bytes(len);
        m.options[code] = Bytes(val.begin(), val.end());
    }
    return m;
}

void DhcpMessage::set_type(DhcpMessageType t) {
    options[dhcp_opt::kMessageType] = {static_cast<std::uint8_t>(t)};
}

std::optional<DhcpMessageType> DhcpMessage::type() const {
    auto it = options.find(dhcp_opt::kMessageType);
    if (it == options.end() || it->second.size() != 1) return std::nullopt;
    return static_cast<DhcpMessageType>(it->second[0]);
}

void DhcpMessage::set_addr_option(std::uint8_t opt, Ipv4Addr a) {
    set_u32_option(opt, a.value());
}

std::optional<Ipv4Addr> DhcpMessage::addr_option(std::uint8_t opt) const {
    auto v = u32_option(opt);
    if (!v) return std::nullopt;
    return Ipv4Addr{*v};
}

void DhcpMessage::set_u32_option(std::uint8_t opt, std::uint32_t v) {
    options[opt] = {static_cast<std::uint8_t>(v >> 24),
                    static_cast<std::uint8_t>(v >> 16),
                    static_cast<std::uint8_t>(v >> 8),
                    static_cast<std::uint8_t>(v)};
}

std::optional<std::uint32_t> DhcpMessage::u32_option(std::uint8_t opt) const {
    auto it = options.find(opt);
    if (it == options.end() || it->second.size() != 4) return std::nullopt;
    std::uint32_t v = 0;
    for (auto byte : it->second) v = (v << 8) | byte;
    return v;
}

} // namespace gatekit::net
