// DCCP wire format (RFC 4340), long (48-bit) sequence numbers only.
// Unlike SCTP, the DCCP checksum covers an IPv4 pseudo-header, so an
// "IP-only" NAT fallback corrupts it — the paper's explanation for why
// no gateway passed DCCP while 18 passed SCTP.
#pragma once

#include <cstdint>
#include <optional>

#include "net/addr.hpp"
#include "net/buffer.hpp"

namespace gatekit::net {

enum class DccpType : std::uint8_t {
    Request = 0,
    Response = 1,
    Data = 2,
    Ack = 3,
    DataAck = 4,
    CloseReq = 5,
    Close = 6,
    Reset = 7,
};

struct DccpPacket {
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint8_t ccval = 0;
    DccpType type = DccpType::Request;
    std::uint64_t seq = 0;                ///< 48-bit
    std::optional<std::uint64_t> ack_seq; ///< present on Response/Ack/DataAck/Reset
    std::uint32_t service_code = 0;       ///< Request/Response
    std::uint8_t reset_code = 0;          ///< Reset
    Bytes payload;                        ///< Data/DataAck application data

    std::uint16_t stored_checksum = 0; ///< parse only
    bool checksum_ok = true;           ///< parse only

    Bytes serialize(Ipv4Addr src, Ipv4Addr dst) const;
    static DccpPacket parse(std::span<const std::uint8_t> data, Ipv4Addr src,
                            Ipv4Addr dst);

    bool has_ack_area() const {
        return type == DccpType::Response || type == DccpType::Ack ||
               type == DccpType::DataAck || type == DccpType::Reset ||
               type == DccpType::CloseReq || type == DccpType::Close;
    }
};

} // namespace gatekit::net
