#include "net/route_table.hpp"

#include "util/assert.hpp"

namespace gatekit::net {

RouteTable::RouteTable() {
    nodes_.emplace_back(); // root = node 0, the /0 key
}

std::uint32_t RouteTable::masked(Ipv4Addr prefix, int prefix_len) {
    if (prefix_len <= 0) return 0;
    const std::uint32_t mask =
        prefix_len >= 32 ? 0xffffffffu : ~((1u << (32 - prefix_len)) - 1);
    return prefix.value() & mask;
}

std::int32_t RouteTable::alloc_node() {
    if (!free_.empty()) {
        const std::int32_t idx = free_.back();
        free_.pop_back();
        nodes_[static_cast<std::size_t>(idx)] = Node{};
        return idx;
    }
    nodes_.emplace_back();
    return static_cast<std::int32_t>(nodes_.size() - 1);
}

bool RouteTable::insert(Ipv4Addr prefix, int prefix_len, std::int32_t value) {
    GK_EXPECTS(prefix_len >= 0 && prefix_len <= 32);
    GK_EXPECTS(value >= 0);
    const std::uint32_t key = masked(prefix, prefix_len);
    std::int32_t node = 0;
    for (int depth = 0; depth < prefix_len; ++depth) {
        const int bit = (key >> (31 - depth)) & 1;
        std::int32_t next = nodes_[static_cast<std::size_t>(node)].child[bit];
        if (next == kNone) {
            // alloc_node may reallocate nodes_, so re-index afterwards.
            next = alloc_node();
            nodes_[static_cast<std::size_t>(node)].child[bit] = next;
        }
        node = next;
    }
    Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.value != kNoValue) return false; // first insert wins
    n.value = value;
    ++size_;
    return true;
}

std::int32_t RouteTable::lookup(Ipv4Addr dst) const {
    const std::uint32_t key = dst.value();
    std::int32_t best = nodes_[0].value; // default route, if any
    std::int32_t node = 0;
    for (int depth = 0; depth < 32; ++depth) {
        const int bit = (key >> (31 - depth)) & 1;
        node = nodes_[static_cast<std::size_t>(node)].child[bit];
        if (node == kNone) break;
        const std::int32_t v = nodes_[static_cast<std::size_t>(node)].value;
        if (v != kNoValue) best = v; // deeper = longer prefix = better
    }
    return best;
}

std::int32_t RouteTable::find(Ipv4Addr prefix, int prefix_len) const {
    GK_EXPECTS(prefix_len >= 0 && prefix_len <= 32);
    const std::uint32_t key = masked(prefix, prefix_len);
    std::int32_t node = 0;
    for (int depth = 0; depth < prefix_len; ++depth) {
        const int bit = (key >> (31 - depth)) & 1;
        node = nodes_[static_cast<std::size_t>(node)].child[bit];
        if (node == kNone) return kNoValue;
    }
    return nodes_[static_cast<std::size_t>(node)].value;
}

std::int32_t RouteTable::remove(Ipv4Addr prefix, int prefix_len) {
    GK_EXPECTS(prefix_len >= 0 && prefix_len <= 32);
    const std::uint32_t key = masked(prefix, prefix_len);
    // Record the descent so empty nodes can be pruned bottom-up.
    std::int32_t path[33];
    path[0] = 0;
    std::int32_t node = 0;
    for (int depth = 0; depth < prefix_len; ++depth) {
        const int bit = (key >> (31 - depth)) & 1;
        node = nodes_[static_cast<std::size_t>(node)].child[bit];
        if (node == kNone) return kNoValue;
        path[depth + 1] = node;
    }
    Node& target = nodes_[static_cast<std::size_t>(node)];
    const std::int32_t removed = target.value;
    if (removed == kNoValue) return kNoValue;
    target.value = kNoValue;
    --size_;
    // Prune trailing nodes that now hold neither a value nor children.
    for (int depth = prefix_len; depth > 0; --depth) {
        Node& n = nodes_[static_cast<std::size_t>(path[depth])];
        if (n.value != kNoValue || n.child[0] != kNone || n.child[1] != kNone)
            break;
        const int bit = (key >> (32 - depth)) & 1;
        nodes_[static_cast<std::size_t>(path[depth - 1])].child[bit] = kNone;
        free_.push_back(path[depth]);
    }
    return removed;
}

void RouteTable::clear() {
    nodes_.clear();
    free_.clear();
    nodes_.emplace_back();
    size_ = 0;
}

} // namespace gatekit::net
