#include "net/arp.hpp"

namespace gatekit::net {

Bytes ArpMessage::serialize() const {
    BufferWriter w(28);
    w.u16(1);      // htype: Ethernet
    w.u16(0x0800); // ptype: IPv4
    w.u8(6);       // hlen
    w.u8(4);       // plen
    w.u16(static_cast<std::uint16_t>(op));
    w.bytes(sender_mac.octets());
    w.u32(sender_ip.value());
    w.bytes(target_mac.octets());
    w.u32(target_ip.value());
    return w.take();
}

ArpMessage ArpMessage::parse(std::span<const std::uint8_t> data) {
    BufferReader r(data);
    if (r.u16() != 1 || r.u16() != 0x0800 || r.u8() != 6 || r.u8() != 4)
        throw ParseError("unsupported ARP hardware/protocol type");
    ArpMessage m;
    const auto op = r.u16();
    if (op != 1 && op != 2) throw ParseError("bad ARP opcode");
    m.op = static_cast<Op>(op);
    std::array<std::uint8_t, 6> mac{};
    auto b = r.bytes(6);
    std::copy(b.begin(), b.end(), mac.begin());
    m.sender_mac = MacAddr{mac};
    m.sender_ip = Ipv4Addr{r.u32()};
    b = r.bytes(6);
    std::copy(b.begin(), b.end(), mac.begin());
    m.target_mac = MacAddr{mac};
    m.target_ip = Ipv4Addr{r.u32()};
    return m;
}

} // namespace gatekit::net
