#include "net/ethernet.hpp"

#include "util/assert.hpp"

namespace gatekit::net {

Bytes EthernetFrame::serialize() const {
    return serialize_into(Bytes{});
}

Bytes EthernetFrame::serialize_into(Bytes reuse) const {
    reuse.reserve(payload.size() + 18);
    BufferWriter w(std::move(reuse));
    w.bytes(dst.octets());
    w.bytes(src.octets());
    if (vlan_id) {
        GK_EXPECTS(*vlan_id < 4096);
        w.u16(kEtherTypeVlan);
        w.u16(*vlan_id); // PCP/DEI zero
    }
    w.u16(ethertype);
    w.bytes(payload);
    return w.take();
}

EthernetFrame EthernetFrame::parse(std::span<const std::uint8_t> data) {
    BufferReader r(data);
    EthernetFrame f;
    std::array<std::uint8_t, 6> mac{};
    auto read_mac = [&r, &mac] {
        auto b = r.bytes(6);
        std::copy(b.begin(), b.end(), mac.begin());
        return MacAddr{mac};
    };
    f.dst = read_mac();
    f.src = read_mac();
    std::uint16_t type = r.u16();
    if (type == kEtherTypeVlan) {
        f.vlan_id = r.u16() & 0x0fff;
        type = r.u16();
    }
    f.ethertype = type;
    const auto rest = r.rest();
    f.payload.assign(rest.begin(), rest.end());
    return f;
}

} // namespace gatekit::net
