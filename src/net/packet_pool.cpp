#include "net/packet_pool.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GATEKIT_POOL_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define GATEKIT_POOL_ASAN 1
#endif

#if defined(GATEKIT_POOL_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace gatekit::net {

namespace {

// Poison a parked buffer's storage so any alias into a recycled frame
// (a stale PacketView, a span captured past its lifetime) faults loudly
// under ASan instead of reading whatever packet lands there next.
void poison(const Bytes& buf) {
#if defined(GATEKIT_POOL_ASAN)
    if (buf.capacity() != 0)
        __asan_poison_memory_region(buf.data(), buf.capacity());
#else
    (void)buf;
#endif
}

void unpoison(const Bytes& buf) {
#if defined(GATEKIT_POOL_ASAN)
    if (buf.capacity() != 0)
        __asan_unpoison_memory_region(buf.data(), buf.capacity());
#else
    (void)buf;
#endif
}

} // namespace

PacketPool::PacketPool(std::size_t max_free, std::size_t reserve_bytes)
    : max_free_(max_free), reserve_bytes_(reserve_bytes) {}

PacketPool::~PacketPool() {
    for (Bytes& buf : free_) unpoison(buf);
}

Bytes PacketPool::acquire() {
    ++stats_.acquires;
    if (!free_.empty()) {
        ++stats_.hits;
        Bytes buf = std::move(free_.back());
        free_.pop_back();
        unpoison(buf);
        buf.clear();
        return buf;
    }
    ++stats_.fallbacks;
    Bytes buf;
    buf.reserve(reserve_bytes_);
    return buf;
}

void PacketPool::release(Bytes buf) {
    ++stats_.releases;
    if (buf.capacity() == 0) return; // nothing worth parking
    if (free_.size() >= max_free_) {
        ++stats_.dropped;
        return; // freed on scope exit
    }
    buf.clear();
    poison(buf);
    free_.push_back(std::move(buf));
}

} // namespace gatekit::net
