#include "net/addr.hpp"

#include <charconv>

#include "net/buffer.hpp"

namespace gatekit::net {

namespace {

// Parse an integer component in [0, max]; advances `text`.
unsigned parse_component(std::string_view& text, unsigned max, int base,
                         char separator, bool expect_sep) {
    unsigned value = 0;
    const auto* begin = text.data();
    const auto* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, value, base);
    if (ec != std::errc{} || value > max || ptr == begin)
        throw ParseError("bad address component in '" + std::string(text) +
                         "'");
    text.remove_prefix(static_cast<std::size_t>(ptr - begin));
    if (expect_sep) {
        if (text.empty() || text.front() != separator)
            throw ParseError("expected separator in address");
        text.remove_prefix(1);
    }
    return value;
}

} // namespace

MacAddr MacAddr::parse(std::string_view text) {
    std::array<std::uint8_t, 6> octets{};
    for (int i = 0; i < 6; ++i)
        octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
            parse_component(text, 0xff, 16, ':', i != 5));
    if (!text.empty()) throw ParseError("trailing characters in MAC address");
    return MacAddr{octets};
}

std::string MacAddr::to_string() const {
    static constexpr char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(17);
    for (std::size_t i = 0; i < 6; ++i) {
        if (i != 0) out.push_back(':');
        out.push_back(digits[octets_[i] >> 4]);
        out.push_back(digits[octets_[i] & 0xf]);
    }
    return out;
}

Ipv4Addr Ipv4Addr::parse(std::string_view text) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v = (v << 8) | parse_component(text, 255, 10, '.', i != 3);
    if (!text.empty())
        throw ParseError("trailing characters in IPv4 address");
    return Ipv4Addr{v};
}

std::string Ipv4Addr::to_string() const {
    std::string out;
    out.reserve(15);
    for (int shift = 24; shift >= 0; shift -= 8) {
        if (shift != 24) out.push_back('.');
        out += std::to_string((v_ >> shift) & 0xff);
    }
    return out;
}

std::string to_string(const Endpoint& ep) {
    return ep.addr.to_string() + ":" + std::to_string(ep.port);
}

} // namespace gatekit::net
