#include "net/ipv4.hpp"

#include "net/checksum.hpp"
#include "util/assert.hpp"

namespace gatekit::net {

Bytes Ipv4Packet::serialize() const {
    const std::size_t hlen = h.header_len();
    GK_EXPECTS(hlen >= 20 && hlen <= 60);
    const std::size_t total = hlen + payload.size();
    GK_EXPECTS(total <= 0xffff);

    BufferWriter w(total);
    w.u8(static_cast<std::uint8_t>(0x40 | (hlen / 4))); // version 4 + IHL
    w.u8(h.tos);
    w.u16(static_cast<std::uint16_t>(total));
    w.u16(h.id);
    std::uint16_t flags_frag = h.frag_offset & 0x1fff;
    if (h.dont_fragment) flags_frag |= 0x4000;
    if (h.more_fragments) flags_frag |= 0x2000;
    w.u16(flags_frag);
    w.u8(h.ttl);
    w.u8(h.protocol);
    w.u16(0); // checksum placeholder
    w.u32(h.src.value());
    w.u32(h.dst.value());
    w.bytes(h.options);
    // Pad options to a 4-byte boundary with End-of-Options octets.
    w.zeros(hlen - 20 - h.options.size());
    const auto ck = internet_checksum(w.view().subspan(0, hlen));
    w.patch_u16(10, ck);
    w.bytes(payload);
    return w.take();
}

namespace {

/// Shared header parser; `truncated_ok` relaxes the total-length check for
/// datagram prefixes quoted inside ICMP errors.
Ipv4Packet parse_impl(std::span<const std::uint8_t> data, bool truncated_ok) {
    BufferReader r(data);
    const std::uint8_t ver_ihl = r.u8();
    if ((ver_ihl >> 4) != 4) throw ParseError("not IPv4");
    const std::size_t hlen = static_cast<std::size_t>(ver_ihl & 0xf) * 4;
    if (hlen < 20 || hlen > data.size())
        throw ParseError("bad IPv4 header length");

    Ipv4Packet p;
    p.h.tos = r.u8();
    const std::uint16_t total = r.u16();
    if (total < hlen || (!truncated_ok && total > data.size()))
        throw ParseError("bad IPv4 total length");
    p.h.id = r.u16();
    const std::uint16_t flags_frag = r.u16();
    p.h.dont_fragment = (flags_frag & 0x4000) != 0;
    p.h.more_fragments = (flags_frag & 0x2000) != 0;
    p.h.frag_offset = flags_frag & 0x1fff;
    p.h.ttl = r.u8();
    p.h.protocol = r.u8();
    p.h.stored_checksum = r.u16();
    p.h.src = Ipv4Addr{r.u32()};
    p.h.dst = Ipv4Addr{r.u32()};
    if (hlen > 20) {
        // Keep option bytes verbatim (padding included): option bodies
        // such as Record Route legitimately contain zero bytes.
        auto opts = r.bytes(hlen - 20);
        p.h.options.assign(opts.begin(), opts.end());
    }
    p.h.checksum_ok = internet_checksum(data.subspan(0, hlen)) == 0;
    const std::size_t body_len =
        std::min<std::size_t>(total - hlen, data.size() - hlen);
    const auto body = data.subspan(hlen, body_len);
    p.payload.assign(body.begin(), body.end());
    return p;
}

} // namespace

Ipv4Packet Ipv4Packet::parse(std::span<const std::uint8_t> data) {
    return parse_impl(data, /*truncated_ok=*/false);
}

Ipv4Addr ipv4_dst(std::span<const std::uint8_t> data) {
    if (data.size() < 20) throw ParseError("short IPv4 datagram");
    return Ipv4Addr{(std::uint32_t{data[16]} << 24) |
                    (std::uint32_t{data[17]} << 16) |
                    (std::uint32_t{data[18]} << 8) | data[19]};
}

Ipv4Packet Ipv4Packet::parse_prefix(std::span<const std::uint8_t> data) {
    return parse_impl(data, /*truncated_ok=*/true);
}

Bytes Ipv4Packet::make_record_route_option(int slots) {
    GK_EXPECTS(slots >= 1 && slots <= 9);
    Bytes opt;
    opt.push_back(ipopt::kRecordRoute);
    opt.push_back(static_cast<std::uint8_t>(3 + 4 * slots)); // length
    opt.push_back(4);                                        // pointer
    opt.insert(opt.end(), static_cast<std::size_t>(4 * slots), 0);
    return opt;
}

namespace {

/// Locate the Record Route option inside raw option bytes; returns the
/// offset of its type octet or npos.
std::size_t find_record_route(const Bytes& options) {
    std::size_t i = 0;
    while (i < options.size()) {
        const std::uint8_t type = options[i];
        if (type == ipopt::kEnd) break;
        if (type == ipopt::kNop) {
            ++i;
            continue;
        }
        if (i + 1 >= options.size()) break;
        const std::uint8_t len = options[i + 1];
        if (len < 2 || i + len > options.size()) break;
        if (type == ipopt::kRecordRoute) return i;
        i += len;
    }
    return static_cast<std::size_t>(-1);
}

} // namespace

std::vector<Ipv4Addr> Ipv4Packet::recorded_route() const {
    std::vector<Ipv4Addr> out;
    const auto at = find_record_route(h.options);
    if (at == static_cast<std::size_t>(-1)) return out;
    const std::uint8_t len = h.options[at + 1];
    const std::uint8_t ptr = h.options[at + 2];
    // Entries occupy [4, ptr) relative to the option start.
    for (std::size_t off = 3; off + 4 <= std::min<std::size_t>(ptr - 1, len);
         off += 4) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v = (v << 8) | h.options[at + off + i];
        out.emplace_back(v);
    }
    return out;
}

void Ipv4Packet::record_route(Ipv4Addr router) {
    const auto at = find_record_route(h.options);
    if (at == static_cast<std::size_t>(-1)) return;
    const std::uint8_t len = h.options[at + 1];
    const std::uint8_t ptr = h.options[at + 2];
    if (ptr + 3 > len + 1) return; // full
    const std::size_t slot = at + ptr - 1;
    if (slot + 4 > at + len) return;
    const std::uint32_t v = router.value();
    for (int i = 0; i < 4; ++i)
        h.options[slot + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (24 - 8 * i));
    h.options[at + 2] = static_cast<std::uint8_t>(ptr + 4);
}

} // namespace gatekit::net
