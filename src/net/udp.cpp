#include "net/udp.hpp"

#include "net/checksum.hpp"
#include "net/ipv4.hpp"
#include "util/assert.hpp"

namespace gatekit::net {

Bytes UdpDatagram::serialize(Ipv4Addr src, Ipv4Addr dst) const {
    const std::size_t total = 8 + payload.size();
    GK_EXPECTS(total <= 0xffff);
    BufferWriter w(total);
    w.u16(src_port);
    w.u16(dst_port);
    w.u16(static_cast<std::uint16_t>(total));
    w.u16(0); // checksum placeholder
    w.bytes(payload);

    ChecksumAccumulator acc;
    add_pseudo_header(acc, src, dst, proto::kUdp,
                      static_cast<std::uint16_t>(total));
    acc.add_bytes(w.view());
    std::uint16_t ck = acc.finalize();
    if (ck == 0) ck = 0xffff; // RFC 768: 0 means "no checksum"
    w.patch_u16(6, ck);
    return w.take();
}

UdpDatagram UdpDatagram::parse(std::span<const std::uint8_t> data,
                               Ipv4Addr src, Ipv4Addr dst) {
    BufferReader r(data);
    UdpDatagram d;
    d.src_port = r.u16();
    d.dst_port = r.u16();
    const std::uint16_t len = r.u16();
    if (len < 8 || len > data.size()) throw ParseError("bad UDP length");
    d.stored_checksum = r.u16();
    const auto body = data.subspan(8, len - 8);
    d.payload.assign(body.begin(), body.end());
    if (d.stored_checksum == 0) {
        d.checksum_ok = true; // checksum disabled by sender
    } else {
        ChecksumAccumulator acc;
        add_pseudo_header(acc, src, dst, proto::kUdp, len);
        acc.add_bytes(data.subspan(0, len));
        d.checksum_ok = acc.finalize() == 0;
    }
    return d;
}

} // namespace gatekit::net
