// IPv4 header + datagram (RFC 791), including option handling (the paper
// notes some gateways ignore Record Route, so options are first-class).
#pragma once

#include <cstdint>

#include "net/addr.hpp"
#include "net/buffer.hpp"

namespace gatekit::net {

/// IP protocol numbers used in this study.
namespace proto {
inline constexpr std::uint8_t kIcmp = 1;
inline constexpr std::uint8_t kTcp = 6;
inline constexpr std::uint8_t kUdp = 17;
inline constexpr std::uint8_t kDccp = 33;
inline constexpr std::uint8_t kSctp = 132;
} // namespace proto

/// IPv4 option type octets.
namespace ipopt {
inline constexpr std::uint8_t kEnd = 0;
inline constexpr std::uint8_t kNop = 1;
inline constexpr std::uint8_t kRecordRoute = 7;
} // namespace ipopt

struct Ipv4Header {
    std::uint8_t tos = 0;
    std::uint16_t id = 0;
    bool dont_fragment = false;
    bool more_fragments = false;
    std::uint16_t frag_offset = 0; ///< in 8-byte units
    std::uint8_t ttl = 64;
    std::uint8_t protocol = 0;
    Ipv4Addr src;
    Ipv4Addr dst;
    Bytes options; ///< raw option bytes; serializer pads to 4-byte multiple

    /// Set by parse(): the checksum value found on the wire and whether it
    /// verified. The NAT bug tests depend on being able to see bad sums.
    std::uint16_t stored_checksum = 0;
    bool checksum_ok = true;

    std::size_t header_len() const {
        return 20 + ((options.size() + 3) / 4) * 4;
    }
};

struct Ipv4Packet {
    Ipv4Header h;
    Bytes payload;

    /// Serialize with freshly computed header checksum and total length.
    Bytes serialize() const;

    /// Parse a datagram. Never throws on a bad checksum (that's data, and
    /// the study inspects it); throws ParseError on structural damage.
    static Ipv4Packet parse(std::span<const std::uint8_t> data);

    /// Parse a possibly truncated datagram prefix, as quoted inside ICMP
    /// error payloads (IP header + first 8 transport bytes). The payload
    /// holds however many bytes follow the header, regardless of the
    /// total-length field.
    static Ipv4Packet parse_prefix(std::span<const std::uint8_t> data);

    /// Build a Record Route option body with `slots` empty entries.
    static Bytes make_record_route_option(int slots);

    /// Extract the addresses recorded in a Record Route option, if present.
    std::vector<Ipv4Addr> recorded_route() const;

    /// Append this router's address into the Record Route option (if one
    /// exists and has space), as a cooperating router would.
    void record_route(Ipv4Addr router);
};

/// Read the destination address straight out of a serialized datagram —
/// the routing fast path only needs these four bytes, not a full parse.
/// Throws ParseError when the buffer is shorter than an IPv4 header.
Ipv4Addr ipv4_dst(std::span<const std::uint8_t> data);

} // namespace gatekit::net
