#include "net/icmp.hpp"

#include "net/checksum.hpp"
#include "net/ipv4.hpp"
#include "util/assert.hpp"

namespace gatekit::net {

Bytes IcmpMessage::serialize() const {
    BufferWriter w(8 + payload.size());
    w.u8(static_cast<std::uint8_t>(type));
    w.u8(code);
    w.u16(0); // checksum placeholder
    w.u32(rest);
    w.bytes(payload);
    w.patch_u16(2, internet_checksum(w.view()));
    return w.take();
}

IcmpMessage IcmpMessage::parse(std::span<const std::uint8_t> data) {
    BufferReader r(data);
    IcmpMessage m;
    m.type = static_cast<IcmpType>(r.u8());
    m.code = r.u8();
    m.stored_checksum = r.u16();
    m.rest = r.u32();
    const auto body = r.rest();
    m.payload.assign(body.begin(), body.end());
    m.checksum_ok = internet_checksum(data) == 0;
    return m;
}

IcmpMessage IcmpMessage::make_echo(bool reply, std::uint16_t id,
                                   std::uint16_t seq, Bytes data) {
    IcmpMessage m;
    m.type = reply ? IcmpType::EchoReply : IcmpType::Echo;
    m.rest = (static_cast<std::uint32_t>(id) << 16) | seq;
    m.payload = std::move(data);
    return m;
}

IcmpMessage IcmpMessage::make_error(
    IcmpType type, std::uint8_t code, std::uint32_t rest,
    std::span<const std::uint8_t> original_datagram) {
    GK_EXPECTS(type != IcmpType::Echo && type != IcmpType::EchoReply);
    IcmpMessage m;
    m.type = type;
    m.code = code;
    m.rest = rest;
    // Quote the original IP header plus the first 8 payload bytes.
    std::size_t quote = original_datagram.size();
    if (quote >= 20) {
        const std::size_t ihl =
            static_cast<std::size_t>(original_datagram[0] & 0xf) * 4;
        quote = std::min(quote, ihl + 8);
    }
    m.payload.assign(original_datagram.begin(),
                     original_datagram.begin() + static_cast<long>(quote));
    return m;
}

} // namespace gatekit::net
