// SCTP wire format (RFC 4960): common header + chunk list, CRC32c
// checksum. Crucially for the paper's Table 2 analysis, the CRC covers
// only the SCTP packet itself — no IPv4 pseudo-header — which is why an
// "IP-only" NAT fallback still yields working SCTP connections.
#pragma once

#include <cstdint>
#include <vector>

#include "net/addr.hpp"
#include "net/buffer.hpp"

namespace gatekit::net {

enum class SctpChunkType : std::uint8_t {
    Data = 0,
    Init = 1,
    InitAck = 2,
    Sack = 3,
    Heartbeat = 4,
    HeartbeatAck = 5,
    Abort = 6,
    Shutdown = 7,
    ShutdownAck = 8,
    CookieEcho = 10,
    CookieAck = 11,
};

struct SctpChunk {
    SctpChunkType type = SctpChunkType::Data;
    std::uint8_t flags = 0;
    Bytes value; ///< chunk body after the 4-byte chunk header

    friend bool operator==(const SctpChunk&, const SctpChunk&) = default;
};

struct SctpPacket {
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint32_t verification_tag = 0;
    std::vector<SctpChunk> chunks;

    std::uint32_t stored_crc = 0; ///< parse only
    bool crc_ok = true;           ///< parse only

    Bytes serialize() const;
    static SctpPacket parse(std::span<const std::uint8_t> data);

    const SctpChunk* find(SctpChunkType t) const;
};

} // namespace gatekit::net
