#include "net/checksum.hpp"

#include <array>

namespace gatekit::net {

void ChecksumAccumulator::add_bytes(std::span<const std::uint8_t> data) {
    std::size_t i = 0;
    for (; i + 1 < data.size(); i += 2)
        sum_ += static_cast<std::uint16_t>((data[i] << 8) | data[i + 1]);
    if (i < data.size()) sum_ += static_cast<std::uint16_t>(data[i] << 8);
}

std::uint16_t ChecksumAccumulator::finalize() const {
    std::uint64_t s = sum_;
    while (s >> 16) s = (s & 0xffff) + (s >> 16);
    return static_cast<std::uint16_t>(~s & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
    ChecksumAccumulator acc;
    acc.add_bytes(data);
    return acc.finalize();
}

std::uint16_t checksum_update16(std::uint16_t old_checksum,
                                std::uint16_t old_word,
                                std::uint16_t new_word) {
    // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
    std::uint32_t sum = static_cast<std::uint16_t>(~old_checksum);
    sum += static_cast<std::uint16_t>(~old_word);
    sum += new_word;
    while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t checksum_update32(std::uint16_t old_checksum,
                                std::uint32_t old_word,
                                std::uint32_t new_word) {
    std::uint16_t c = checksum_update16(
        old_checksum, static_cast<std::uint16_t>(old_word >> 16),
        static_cast<std::uint16_t>(new_word >> 16));
    return checksum_update16(c, static_cast<std::uint16_t>(old_word),
                             static_cast<std::uint16_t>(new_word));
}

void add_pseudo_header(ChecksumAccumulator& acc, Ipv4Addr src, Ipv4Addr dst,
                       std::uint8_t protocol, std::uint16_t length) {
    acc.add_u32(src.value());
    acc.add_u32(dst.value());
    acc.add_u16(protocol);
    acc.add_u16(length);
}

namespace {

std::array<std::uint32_t, 256> make_crc32c_table() {
    std::array<std::uint32_t, 256> table{};
    constexpr std::uint32_t poly = 0x82f63b78u; // reflected 0x1EDC6F41
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc & 1) ? (crc >> 1) ^ poly : crc >> 1;
        table[i] = crc;
    }
    return table;
}

} // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data) {
    static const auto table = make_crc32c_table();
    std::uint32_t crc = 0xffffffffu;
    for (auto b : data) crc = table[(crc ^ b) & 0xff] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

} // namespace gatekit::net
