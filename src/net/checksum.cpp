#include "net/checksum.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace gatekit::net {

namespace {

std::uint64_t load_be64(const std::uint8_t* p) {
    std::uint64_t x;
    std::memcpy(&x, p, sizeof(x));
    if constexpr (std::endian::native == std::endian::little) {
#if defined(__GNUC__) || defined(__clang__)
        x = __builtin_bswap64(x);
#else
        x = ((x & 0x00000000000000ffULL) << 56) |
            ((x & 0x000000000000ff00ULL) << 40) |
            ((x & 0x0000000000ff0000ULL) << 24) |
            ((x & 0x00000000ff000000ULL) << 8) |
            ((x & 0x000000ff00000000ULL) >> 8) |
            ((x & 0x0000ff0000000000ULL) >> 24) |
            ((x & 0x00ff000000000000ULL) >> 40) |
            ((x & 0xff00000000000000ULL) >> 56);
#endif
    }
    return x;
}

} // namespace

void ChecksumAccumulator::add_bytes(std::span<const std::uint8_t> data) {
    const std::uint8_t* p = data.data();
    std::size_t n = data.size();
    // Word-at-a-time RFC 1071: the one's-complement sum is associative
    // and 2^16 == 1 (mod 0xffff), so four big-endian 16-bit words can
    // ride one 64-bit addition with an end-around carry. Folding the
    // 64-bit accumulator back into 16-bit lanes preserves the sum modulo
    // 0xffff, which is all finalize() observes — results are bit-
    // identical to the byte loop.
    std::uint64_t wide = 0;
    while (n >= 32) {
        std::uint64_t x0 = load_be64(p);
        std::uint64_t x1 = load_be64(p + 8);
        std::uint64_t x2 = load_be64(p + 16);
        std::uint64_t x3 = load_be64(p + 24);
        wide += x0;
        if (wide < x0) ++wide;
        wide += x1;
        if (wide < x1) ++wide;
        wide += x2;
        if (wide < x2) ++wide;
        wide += x3;
        if (wide < x3) ++wide;
        p += 32;
        n -= 32;
    }
    while (n >= 8) {
        const std::uint64_t x = load_be64(p);
        wide += x;
        if (wide < x) ++wide;
        p += 8;
        n -= 8;
    }
    sum_ += (wide >> 48) + ((wide >> 32) & 0xffff) +
            ((wide >> 16) & 0xffff) + (wide & 0xffff);
    for (; n >= 2; n -= 2, p += 2)
        sum_ += static_cast<std::uint16_t>((p[0] << 8) | p[1]);
    if (n != 0) sum_ += static_cast<std::uint16_t>(p[0] << 8);
}

std::uint16_t ChecksumAccumulator::finalize() const {
    std::uint64_t s = sum_;
    while (s >> 16) s = (s & 0xffff) + (s >> 16);
    return static_cast<std::uint16_t>(~s & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
    ChecksumAccumulator acc;
    acc.add_bytes(data);
    return acc.finalize();
}

std::uint16_t checksum_update16(std::uint16_t old_checksum,
                                std::uint16_t old_word,
                                std::uint16_t new_word) {
    // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
    std::uint32_t sum = static_cast<std::uint16_t>(~old_checksum);
    sum += static_cast<std::uint16_t>(~old_word);
    sum += new_word;
    while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t checksum_update32(std::uint16_t old_checksum,
                                std::uint32_t old_word,
                                std::uint32_t new_word) {
    std::uint16_t c = checksum_update16(
        old_checksum, static_cast<std::uint16_t>(old_word >> 16),
        static_cast<std::uint16_t>(new_word >> 16));
    return checksum_update16(c, static_cast<std::uint16_t>(old_word),
                             static_cast<std::uint16_t>(new_word));
}

void add_pseudo_header(ChecksumAccumulator& acc, Ipv4Addr src, Ipv4Addr dst,
                       std::uint8_t protocol, std::uint16_t length) {
    acc.add_u32(src.value());
    acc.add_u32(dst.value());
    acc.add_u16(protocol);
    acc.add_u16(length);
}

namespace {

// Slicing-by-8: tables[j][b] is the CRC contribution of byte b positioned
// j bytes ahead in the stream, letting the loop consume 8 bytes per step
// with independent table lookups instead of a serial byte chain.
std::array<std::array<std::uint32_t, 256>, 8> make_crc32c_tables() {
    std::array<std::array<std::uint32_t, 256>, 8> tables{};
    constexpr std::uint32_t poly = 0x82f63b78u; // reflected 0x1EDC6F41
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc & 1) ? (crc >> 1) ^ poly : crc >> 1;
        tables[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
        for (int j = 1; j < 8; ++j)
            tables[j][i] =
                (tables[j - 1][i] >> 8) ^ tables[0][tables[j - 1][i] & 0xff];
    return tables;
}

} // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data) {
    static const auto tables = make_crc32c_tables();
    const std::uint8_t* p = data.data();
    std::size_t n = data.size();
    std::uint32_t crc = 0xffffffffu;
    if constexpr (std::endian::native == std::endian::little) {
        while (n >= 8) {
            std::uint64_t x;
            std::memcpy(&x, p, sizeof(x));
            x ^= crc;
            crc = tables[7][x & 0xff] ^ tables[6][(x >> 8) & 0xff] ^
                  tables[5][(x >> 16) & 0xff] ^ tables[4][(x >> 24) & 0xff] ^
                  tables[3][(x >> 32) & 0xff] ^ tables[2][(x >> 40) & 0xff] ^
                  tables[1][(x >> 48) & 0xff] ^ tables[0][x >> 56];
            p += 8;
            n -= 8;
        }
    }
    for (; n != 0; --n, ++p) crc = tables[0][(crc ^ *p) & 0xff] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

} // namespace gatekit::net
