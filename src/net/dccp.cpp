#include "net/dccp.hpp"

#include "net/checksum.hpp"
#include "net/ipv4.hpp"
#include "util/assert.hpp"

namespace gatekit::net {

namespace {

std::size_t header_words(const DccpPacket& p) {
    // Generic header (16 bytes with X=1) + ack area (8) + service/reset (4).
    std::size_t bytes = 16;
    if (p.has_ack_area()) bytes += 8;
    if (p.type == DccpType::Request || p.type == DccpType::Response ||
        p.type == DccpType::Reset)
        bytes += 4;
    return bytes / 4;
}

} // namespace

Bytes DccpPacket::serialize(Ipv4Addr src, Ipv4Addr dst) const {
    const std::size_t offset_words = header_words(*this);
    BufferWriter w(offset_words * 4 + payload.size());
    w.u16(src_port);
    w.u16(dst_port);
    w.u8(static_cast<std::uint8_t>(offset_words));
    w.u8(static_cast<std::uint8_t>(ccval << 4)); // CsCov = 0: full coverage
    w.u16(0);                                    // checksum placeholder
    // res(3) | type(4) | X(1)=1
    w.u8(static_cast<std::uint8_t>((static_cast<std::uint8_t>(type) << 1) |
                                   0x01));
    w.u8(0); // reserved (high 8 bits of 56-bit field unused with 48-bit seq)
    w.u48(seq);
    if (has_ack_area()) {
        GK_EXPECTS(ack_seq.has_value());
        w.u16(0); // reserved
        w.u48(*ack_seq);
    }
    if (type == DccpType::Request || type == DccpType::Response)
        w.u32(service_code);
    if (type == DccpType::Reset)
        w.u32(static_cast<std::uint32_t>(reset_code) << 24);
    w.bytes(payload);

    ChecksumAccumulator acc;
    add_pseudo_header(acc, src, dst, proto::kDccp,
                      static_cast<std::uint16_t>(w.size()));
    acc.add_bytes(w.view());
    w.patch_u16(6, acc.finalize());
    return w.take();
}

DccpPacket DccpPacket::parse(std::span<const std::uint8_t> data,
                             Ipv4Addr src, Ipv4Addr dst) {
    BufferReader r(data);
    DccpPacket p;
    p.src_port = r.u16();
    p.dst_port = r.u16();
    const std::uint8_t offset_words = r.u8();
    if (static_cast<std::size_t>(offset_words) * 4 > data.size() ||
        offset_words < 4)
        throw ParseError("bad DCCP data offset");
    p.ccval = static_cast<std::uint8_t>(r.u8() >> 4);
    p.stored_checksum = r.u16();
    const std::uint8_t type_x = r.u8();
    if ((type_x & 0x01) == 0)
        throw ParseError("short DCCP sequence numbers unsupported");
    p.type = static_cast<DccpType>((type_x >> 1) & 0x0f);
    r.skip(1); // reserved
    p.seq = r.u48();
    if (p.has_ack_area()) {
        r.skip(2);
        p.ack_seq = r.u48();
    }
    if (p.type == DccpType::Request || p.type == DccpType::Response)
        p.service_code = r.u32();
    if (p.type == DccpType::Reset)
        p.reset_code = static_cast<std::uint8_t>(r.u32() >> 24);
    r.skip(static_cast<std::size_t>(offset_words) * 4 - r.position());
    const auto body = r.rest();
    p.payload.assign(body.begin(), body.end());

    ChecksumAccumulator acc;
    add_pseudo_header(acc, src, dst, proto::kDccp,
                      static_cast<std::uint16_t>(data.size()));
    acc.add_bytes(data);
    p.checksum_ok = acc.finalize() == 0;
    return p;
}

} // namespace gatekit::net
