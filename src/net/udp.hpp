// UDP datagram (RFC 768). Checksums include the IPv4 pseudo-header, which
// is why NATs must fix them up when translating — and why the study can
// detect devices that do not.
#pragma once

#include "net/addr.hpp"
#include "net/buffer.hpp"

namespace gatekit::net {

struct UdpDatagram {
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    Bytes payload;

    /// Checksum observed on the wire (parse only) and whether it verified
    /// against the given pseudo-header addresses.
    std::uint16_t stored_checksum = 0;
    bool checksum_ok = true;

    /// Serialize with a computed checksum over the given pseudo-header.
    Bytes serialize(Ipv4Addr src, Ipv4Addr dst) const;

    /// Parse and verify. Bad checksums are recorded, not thrown.
    static UdpDatagram parse(std::span<const std::uint8_t> data,
                             Ipv4Addr src, Ipv4Addr dst);
};

} // namespace gatekit::net
