// Binary-trie longest-prefix-match table for IPv4 routes. One bit per
// level, walked MSB-first; a lookup descends as far as the destination's
// bits allow and returns the value of the deepest node that holds one.
// Replaces the O(routes) linear scan in stack::Host — a NAT444 testbed
// carries a route per subscriber subnet plus per-CGN aggregates, and the
// forwarding fast path looks a route up per packet.
//
// The table stores opaque non-negative int32 values (the owner's slab
// index). Duplicate (prefix, len) inserts keep the FIRST value — the
// same earliest-wins tie-break the linear scan had — so an owner that
// allows duplicate routes sees identical selection behavior.
#pragma once

#include <cstdint>
#include <vector>

#include "net/addr.hpp"

namespace gatekit::net {

class RouteTable {
public:
    /// Returned by lookup/find/remove when no entry matches.
    static constexpr std::int32_t kNoValue = -1;

    RouteTable();

    /// Insert (prefix, prefix_len) -> value (value must be >= 0). The
    /// prefix is masked to its length, so 10.0.5.12/24 and 10.0.5.0/24
    /// are the same key. Returns false when that exact key already holds
    /// a value (the existing value is kept — first insert wins).
    bool insert(Ipv4Addr prefix, int prefix_len, std::int32_t value);

    /// Remove the exact (prefix, prefix_len) entry. Returns the removed
    /// value, or kNoValue if the key held none. Frees nodes left empty
    /// by the removal (interior nodes on the path are pruned bottom-up
    /// and recycled through a free list).
    std::int32_t remove(Ipv4Addr prefix, int prefix_len);

    /// Longest-prefix match for `dst`; kNoValue when nothing matches
    /// (a default route — prefix_len 0 — matches everything).
    std::int32_t lookup(Ipv4Addr dst) const;

    /// Exact-match probe; kNoValue when the key holds no value.
    std::int32_t find(Ipv4Addr prefix, int prefix_len) const;

    void clear();

    /// Number of stored (prefix, len) -> value entries.
    std::size_t size() const { return size_; }

    /// Allocated node count (root included) minus free-listed nodes;
    /// exposed so tests can assert deletes actually prune.
    std::size_t node_count() const { return nodes_.size() - free_.size(); }

private:
    struct Node {
        std::int32_t child[2] = {kNone, kNone};
        std::int32_t value = kNoValue;
    };
    static constexpr std::int32_t kNone = -1;

    std::int32_t alloc_node();
    static std::uint32_t masked(Ipv4Addr prefix, int prefix_len);

    // Slab + free list: node links are indexes, so growth never
    // invalidates them and recycled nodes keep the slab compact.
    std::vector<Node> nodes_;
    std::vector<std::int32_t> free_;
    std::size_t size_ = 0;
};

} // namespace gatekit::net
