// ICMP (RFC 792). Error messages embed the offending IP header + first 8
// payload bytes; translating those embedded bytes (addresses, ports, and
// both checksums) correctly is exactly what Table 2 of the paper tests.
#pragma once

#include <cstdint>

#include "net/addr.hpp"
#include "net/buffer.hpp"

namespace gatekit::net {

enum class IcmpType : std::uint8_t {
    EchoReply = 0,
    DestUnreachable = 3,
    SourceQuench = 4,
    Echo = 8,
    TimeExceeded = 11,
    ParamProblem = 12,
};

/// Codes for DestUnreachable.
namespace icmp_code {
inline constexpr std::uint8_t kNetUnreachable = 0;
inline constexpr std::uint8_t kHostUnreachable = 1;
inline constexpr std::uint8_t kProtoUnreachable = 2;
inline constexpr std::uint8_t kPortUnreachable = 3;
inline constexpr std::uint8_t kFragNeeded = 4;
inline constexpr std::uint8_t kSourceRouteFailed = 5;
// Codes for TimeExceeded:
inline constexpr std::uint8_t kTtlExceeded = 0;
inline constexpr std::uint8_t kReassemblyTimeExceeded = 1;
} // namespace icmp_code

struct IcmpMessage {
    IcmpType type = IcmpType::Echo;
    std::uint8_t code = 0;
    /// Second header word. Echo/EchoReply: id<<16 | seq. FragNeeded:
    /// next-hop MTU in the low 16 bits. ParamProblem: pointer<<24.
    std::uint32_t rest = 0;
    /// Echo data, or the embedded IP datagram prefix for error messages.
    Bytes payload;

    std::uint16_t stored_checksum = 0; ///< parse only
    bool checksum_ok = true;           ///< parse only

    Bytes serialize() const;
    static IcmpMessage parse(std::span<const std::uint8_t> data);

    bool is_error() const {
        return type == IcmpType::DestUnreachable ||
               type == IcmpType::SourceQuench ||
               type == IcmpType::TimeExceeded ||
               type == IcmpType::ParamProblem;
    }

    // Echo helpers.
    std::uint16_t echo_id() const {
        return static_cast<std::uint16_t>(rest >> 16);
    }
    std::uint16_t echo_seq() const {
        return static_cast<std::uint16_t>(rest);
    }
    static IcmpMessage make_echo(bool reply, std::uint16_t id,
                                 std::uint16_t seq, Bytes data = {});

    /// Build an error of the given type/code quoting the given original
    /// datagram (truncated to IP header + 8 bytes per RFC 792).
    static IcmpMessage make_error(IcmpType type, std::uint8_t code,
                                  std::uint32_t rest,
                                  std::span<const std::uint8_t> original_datagram);
};

} // namespace gatekit::net
