// Per-stack packet arena: a free list of recycled byte buffers that the
// hot forwarding path draws frames from instead of malloc'ing per packet.
// Pools are strictly per-stack state (each shard's testbed owns its own),
// so there is no cross-thread sharing to synchronize. Exhaustion degrades
// gracefully to a plain heap allocation; parked buffers are poisoned
// under AddressSanitizer so a stale PacketView into a recycled frame
// traps instead of silently reading the next packet's bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/buffer.hpp"

namespace gatekit::net {

class PacketPool {
public:
    /// `max_free` bounds the parked-buffer list (beyond it, released
    /// buffers are simply freed); `reserve_bytes` is the capacity fresh
    /// buffers are created with (a full Ethernet frame plus headroom).
    explicit PacketPool(std::size_t max_free = 64,
                        std::size_t reserve_bytes = 2048);
    ~PacketPool();

    PacketPool(const PacketPool&) = delete;
    PacketPool& operator=(const PacketPool&) = delete;

    /// An empty buffer with at least `reserve_bytes` capacity, recycled
    /// when possible. Falls back to a fresh allocation when the free
    /// list is empty.
    Bytes acquire();

    /// Return a buffer for reuse. Contents are discarded; capacity is
    /// kept. Buffers beyond `max_free` are freed.
    void release(Bytes buf);

    struct Stats {
        std::uint64_t acquires = 0;  ///< total acquire() calls
        std::uint64_t hits = 0;      ///< served from the free list
        std::uint64_t fallbacks = 0; ///< fresh heap allocations
        std::uint64_t releases = 0;  ///< total release() calls
        std::uint64_t dropped = 0;   ///< released while the list was full
    };
    const Stats& stats() const { return stats_; }
    std::size_t free_count() const { return free_.size(); }
    std::size_t max_free() const { return max_free_; }

private:
    std::size_t max_free_;
    std::size_t reserve_bytes_;
    std::vector<Bytes> free_;
    Stats stats_;
};

} // namespace gatekit::net
