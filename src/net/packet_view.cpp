#include "net/packet_view.hpp"

#include "net/checksum.hpp"

namespace gatekit::net {

std::optional<PacketView> PacketView::parse(
    std::span<std::uint8_t> datagram) {
    if (datagram.size() < 20) return std::nullopt;
    std::uint8_t* d = datagram.data();
    if ((d[0] >> 4) != 4) return std::nullopt;
    const std::size_t ihl = static_cast<std::size_t>(d[0] & 0xf) * 4;
    if (ihl < 20 || ihl > datagram.size()) return std::nullopt;
    const std::uint16_t total =
        static_cast<std::uint16_t>((d[2] << 8) | d[3]);
    if (total < ihl || total > datagram.size()) return std::nullopt;

    PacketView v;
    v.data_ = d;
    v.total_ = total;
    v.ihl_ = static_cast<std::uint8_t>(ihl);
    v.proto_ = d[9];
    const std::uint16_t flags_frag =
        static_cast<std::uint16_t>((d[6] << 8) | d[7]);
    v.fragment_ = (flags_frag & 0x3fff) != 0; // frag offset or MF set
    v.src_ = Ipv4Addr{(std::uint32_t{d[12]} << 24) |
                      (std::uint32_t{d[13]} << 16) |
                      (std::uint32_t{d[14]} << 8) | d[15]};
    v.dst_ = Ipv4Addr{(std::uint32_t{d[16]} << 24) |
                      (std::uint32_t{d[17]} << 16) |
                      (std::uint32_t{d[18]} << 8) | d[19]};

    const std::size_t l4_len = total - ihl;
    if (!v.fragment_ && v.proto_ == proto::kUdp && l4_len >= 8) {
        // The UDP length field must span the IP payload exactly: the
        // legacy path trims trailing bytes to the UDP length on
        // re-serialization, which in-place forwarding cannot mimic.
        const std::uint16_t udp_len =
            static_cast<std::uint16_t>((d[ihl + 4] << 8) | d[ihl + 5]);
        if (udp_len == l4_len) {
            v.has_l4_ = true;
            v.sport_ =
                static_cast<std::uint16_t>((d[ihl] << 8) | d[ihl + 1]);
            v.dport_ =
                static_cast<std::uint16_t>((d[ihl + 2] << 8) | d[ihl + 3]);
            const std::uint16_t ck =
                static_cast<std::uint16_t>((d[ihl + 6] << 8) | d[ihl + 7]);
            if (ck == 0)
                v.l4_ck_disabled_ = true;
            else
                v.l4_ck_off_ = static_cast<std::uint16_t>(ihl + 6);
        }
    } else if (!v.fragment_ && v.proto_ == proto::kTcp && l4_len >= 20) {
        const std::size_t doff =
            static_cast<std::size_t>(d[ihl + 12] >> 4) * 4;
        if (doff >= 20 && doff <= l4_len) {
            v.has_l4_ = true;
            v.sport_ =
                static_cast<std::uint16_t>((d[ihl] << 8) | d[ihl + 1]);
            v.dport_ =
                static_cast<std::uint16_t>((d[ihl + 2] << 8) | d[ihl + 3]);
            v.l4_ck_off_ = static_cast<std::uint16_t>(ihl + 16);
        }
    }
    return v;
}

void PacketView::ip_fixup16(std::size_t off, std::uint16_t old_w,
                            std::uint16_t new_w) {
    write16(off, new_w);
    write16(10, checksum_update16(read16(10), old_w, new_w));
}

void PacketView::ip_fixup32(std::size_t off, std::uint32_t old_w,
                            std::uint32_t new_w) {
    write16(off, static_cast<std::uint16_t>(new_w >> 16));
    write16(off + 2, static_cast<std::uint16_t>(new_w));
    write16(10, checksum_update32(read16(10), old_w, new_w));
}

void PacketView::l4_fixup16(std::uint16_t old_w, std::uint16_t new_w) {
    if (l4_ck_off_ == 0) return;
    std::uint16_t ck = checksum_update16(read16(l4_ck_off_), old_w, new_w);
    // UDP transmits a computed zero as 0xffff (zero means "disabled");
    // the incremental form must land on the same representative.
    if (ck == 0 && proto_ == proto::kUdp) ck = 0xffff;
    write16(l4_ck_off_, ck);
}

void PacketView::l4_fixup32(std::uint32_t old_w, std::uint32_t new_w) {
    if (l4_ck_off_ == 0) return;
    std::uint16_t ck = checksum_update32(read16(l4_ck_off_), old_w, new_w);
    if (ck == 0 && proto_ == proto::kUdp) ck = 0xffff;
    write16(l4_ck_off_, ck);
}

void PacketView::set_src(Ipv4Addr a) {
    const std::uint32_t old_w = src_.value();
    ip_fixup32(12, old_w, a.value());
    l4_fixup32(old_w, a.value()); // pseudo-header coverage
    src_ = a;
}

void PacketView::set_dst(Ipv4Addr a) {
    const std::uint32_t old_w = dst_.value();
    ip_fixup32(16, old_w, a.value());
    l4_fixup32(old_w, a.value());
    dst_ = a;
}

void PacketView::set_src_port(std::uint16_t p) {
    write16(ihl_, p);
    l4_fixup16(sport_, p);
    sport_ = p;
}

void PacketView::set_dst_port(std::uint16_t p) {
    write16(ihl_ + 2u, p);
    l4_fixup16(dport_, p);
    dport_ = p;
}

void PacketView::decrement_ttl() {
    const std::uint16_t old_w = read16(8);
    data_[8] = static_cast<std::uint8_t>(data_[8] - 1);
    write16(10, checksum_update16(read16(10), old_w, read16(8)));
}

} // namespace gatekit::net
