// TCP segment wire format (RFC 793). The stack's connection machinery
// lives in stack/tcp_socket; this file is only bytes <-> struct.
#pragma once

#include <optional>
#include <string>

#include "net/addr.hpp"
#include "net/buffer.hpp"

namespace gatekit::net {

struct TcpFlags {
    bool syn = false;
    bool ack = false;
    bool fin = false;
    bool rst = false;
    bool psh = false;
    bool urg = false;

    friend constexpr bool operator==(const TcpFlags&, const TcpFlags&) =
        default;
};

struct TcpSegment {
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    TcpFlags flags;
    std::uint16_t window = 65535;
    std::uint16_t urgent = 0;
    Bytes options; ///< raw option bytes, padded to 4-byte multiple on wire
    Bytes payload;

    std::uint16_t stored_checksum = 0; ///< parse only
    bool checksum_ok = true;           ///< parse only

    std::size_t header_len() const {
        return 20 + ((options.size() + 3) / 4) * 4;
    }

    Bytes serialize(Ipv4Addr src, Ipv4Addr dst) const;
    static TcpSegment parse(std::span<const std::uint8_t> data, Ipv4Addr src,
                            Ipv4Addr dst);

    /// Append an MSS option (kind 2).
    void add_mss_option(std::uint16_t mss);
    /// Read the MSS option if present.
    std::optional<std::uint16_t> mss_option() const;

    /// Append a window-scale option (kind 3, RFC 7323).
    void add_wscale_option(std::uint8_t shift);
    /// Read the window-scale option if present.
    std::optional<std::uint8_t> wscale_option() const;

    /// Human-readable flag string, e.g. "SYN|ACK" (diagnostics).
    std::string flag_string() const;
};

} // namespace gatekit::net
