// DHCP (RFC 2131/2132). The testbed uses DHCP on both sides of every
// gateway: the test server leases WAN addresses to gateways, and each
// gateway's own DHCP server configures the test client's VLAN interface.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/addr.hpp"
#include "net/buffer.hpp"

namespace gatekit::net {

inline constexpr std::uint16_t kDhcpServerPort = 67;
inline constexpr std::uint16_t kDhcpClientPort = 68;

enum class DhcpMessageType : std::uint8_t {
    Discover = 1,
    Offer = 2,
    Request = 3,
    Decline = 4,
    Ack = 5,
    Nak = 6,
    Release = 7,
};

namespace dhcp_opt {
inline constexpr std::uint8_t kSubnetMask = 1;
inline constexpr std::uint8_t kRouter = 3;
inline constexpr std::uint8_t kDnsServer = 6;
inline constexpr std::uint8_t kRequestedIp = 50;
inline constexpr std::uint8_t kLeaseTime = 51;
inline constexpr std::uint8_t kMessageType = 53;
inline constexpr std::uint8_t kServerId = 54;
inline constexpr std::uint8_t kEnd = 255;
} // namespace dhcp_opt

struct DhcpMessage {
    std::uint8_t op = 1; ///< 1 = BOOTREQUEST, 2 = BOOTREPLY
    std::uint32_t xid = 0;
    Ipv4Addr ciaddr; ///< client's current address (renewals)
    Ipv4Addr yiaddr; ///< "your" address (offers/acks)
    Ipv4Addr siaddr;
    Ipv4Addr giaddr;
    MacAddr chaddr;
    std::map<std::uint8_t, Bytes> options;

    Bytes serialize() const;
    static DhcpMessage parse(std::span<const std::uint8_t> data);

    // Typed option helpers.
    void set_type(DhcpMessageType t);
    std::optional<DhcpMessageType> type() const;
    void set_addr_option(std::uint8_t opt, Ipv4Addr a);
    std::optional<Ipv4Addr> addr_option(std::uint8_t opt) const;
    void set_u32_option(std::uint8_t opt, std::uint32_t v);
    std::optional<std::uint32_t> u32_option(std::uint8_t opt) const;
};

} // namespace gatekit::net
