#include "net/tcp_header.hpp"

#include "net/checksum.hpp"
#include "net/ipv4.hpp"
#include "util/assert.hpp"

namespace gatekit::net {

Bytes TcpSegment::serialize(Ipv4Addr src, Ipv4Addr dst) const {
    const std::size_t hlen = header_len();
    GK_EXPECTS(hlen <= 60);
    const std::size_t total = hlen + payload.size();
    GK_EXPECTS(total <= 0xffff);

    BufferWriter w(total);
    w.u16(src_port);
    w.u16(dst_port);
    w.u32(seq);
    w.u32(ack);
    std::uint16_t off_flags =
        static_cast<std::uint16_t>((hlen / 4) << 12);
    if (flags.urg) off_flags |= 0x20;
    if (flags.ack) off_flags |= 0x10;
    if (flags.psh) off_flags |= 0x08;
    if (flags.rst) off_flags |= 0x04;
    if (flags.syn) off_flags |= 0x02;
    if (flags.fin) off_flags |= 0x01;
    w.u16(off_flags);
    w.u16(window);
    w.u16(0); // checksum placeholder
    w.u16(urgent);
    w.bytes(options);
    w.zeros(hlen - 20 - options.size());
    w.bytes(payload);

    ChecksumAccumulator acc;
    add_pseudo_header(acc, src, dst, proto::kTcp,
                      static_cast<std::uint16_t>(total));
    acc.add_bytes(w.view());
    w.patch_u16(16, acc.finalize());
    return w.take();
}

TcpSegment TcpSegment::parse(std::span<const std::uint8_t> data,
                             Ipv4Addr src, Ipv4Addr dst) {
    BufferReader r(data);
    TcpSegment s;
    s.src_port = r.u16();
    s.dst_port = r.u16();
    s.seq = r.u32();
    s.ack = r.u32();
    const std::uint16_t off_flags = r.u16();
    const std::size_t hlen = static_cast<std::size_t>(off_flags >> 12) * 4;
    if (hlen < 20 || hlen > data.size())
        throw ParseError("bad TCP data offset");
    s.flags.urg = (off_flags & 0x20) != 0;
    s.flags.ack = (off_flags & 0x10) != 0;
    s.flags.psh = (off_flags & 0x08) != 0;
    s.flags.rst = (off_flags & 0x04) != 0;
    s.flags.syn = (off_flags & 0x02) != 0;
    s.flags.fin = (off_flags & 0x01) != 0;
    s.window = r.u16();
    s.stored_checksum = r.u16();
    s.urgent = r.u16();
    if (hlen > 20) {
        // Keep option bytes verbatim; option values may end in zero.
        auto opts = r.bytes(hlen - 20);
        s.options.assign(opts.begin(), opts.end());
    }
    const auto body = data.subspan(hlen);
    s.payload.assign(body.begin(), body.end());

    ChecksumAccumulator acc;
    add_pseudo_header(acc, src, dst, proto::kTcp,
                      static_cast<std::uint16_t>(data.size()));
    acc.add_bytes(data);
    s.checksum_ok = acc.finalize() == 0;
    return s;
}

void TcpSegment::add_mss_option(std::uint16_t mss) {
    options.push_back(2); // kind
    options.push_back(4); // length
    options.push_back(static_cast<std::uint8_t>(mss >> 8));
    options.push_back(static_cast<std::uint8_t>(mss));
}

void TcpSegment::add_wscale_option(std::uint8_t shift) {
    options.push_back(3); // kind
    options.push_back(3); // length
    options.push_back(shift);
}

namespace {

/// Walk the option TLVs for `kind`; returns a view of its value bytes.
std::optional<std::span<const std::uint8_t>>
find_option(const Bytes& options, std::uint8_t want, std::uint8_t want_len) {
    std::size_t i = 0;
    while (i < options.size()) {
        const std::uint8_t kind = options[i];
        if (kind == 0) break; // end of options
        if (kind == 1) {      // NOP
            ++i;
            continue;
        }
        if (i + 1 >= options.size()) break;
        const std::uint8_t len = options[i + 1];
        if (len < 2 || i + len > options.size()) break;
        if (kind == want && len == want_len)
            return std::span<const std::uint8_t>(options).subspan(i + 2,
                                                                  len - 2u);
        i += len;
    }
    return std::nullopt;
}

} // namespace

std::optional<std::uint16_t> TcpSegment::mss_option() const {
    if (auto v = find_option(options, 2, 4))
        return static_cast<std::uint16_t>(((*v)[0] << 8) | (*v)[1]);
    return std::nullopt;
}

std::optional<std::uint8_t> TcpSegment::wscale_option() const {
    if (auto v = find_option(options, 3, 3)) return (*v)[0];
    return std::nullopt;
}

std::string TcpSegment::flag_string() const {
    std::string out;
    auto add = [&out](bool on, const char* name) {
        if (!on) return;
        if (!out.empty()) out += '|';
        out += name;
    };
    add(flags.syn, "SYN");
    add(flags.ack, "ACK");
    add(flags.fin, "FIN");
    add(flags.rst, "RST");
    add(flags.psh, "PSH");
    add(flags.urg, "URG");
    if (out.empty()) out = "-";
    return out;
}

} // namespace gatekit::net
