#include "devices/population.hpp"

#include <algorithm>
#include <cmath>

#include "devices/profiles.hpp"
#include "util/assert.hpp"

namespace gatekit::devices {

using gateway::DeviceProfile;

namespace {

using std::chrono::seconds;

/// splitmix64 step — the same finalizer the harness uses for impairment
/// seed derivation, kept self-contained so the sampler has no
/// dependency on any std:: distribution's implementation-defined
/// mapping: the sampled population is a pure function of the bits below.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Per-gateway deterministic draw stream (splitmix64 sequence).
class Stream {
public:
    explicit Stream(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t x = (state_ += 0x9e3779b97f4a7c15ULL);
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    /// Uniform in [0, 1) with 53-bit resolution.
    double unit() { return static_cast<double>(next() >> 11) * 0x1p-53; }

    /// Uniform integer in [0, n).
    std::uint64_t below(std::uint64_t n) { return next() % n; }

    /// Log-uniform multiplicative jitter in [1/r, r].
    double jitter(double r) { return std::pow(r, unit() * 2.0 - 1.0); }

    /// Bernoulli with probability p.
    bool chance(double p) { return unit() < p; }

private:
    std::uint64_t state_;
};

/// Envelope of one integer knob over the 34 calibrated profiles.
struct Env {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    std::int64_t clamp(std::int64_t v) const {
        return std::clamp(v, lo, hi);
    }
};

template <typename Get>
Env envelope_of(const std::vector<DeviceProfile>& all, Get get) {
    Env e{get(all.front()), get(all.front())};
    for (const auto& p : all) {
        e.lo = std::min(e.lo, get(p));
        e.hi = std::max(e.hi, get(p));
    }
    return e;
}

std::int64_t secs(sim::Duration d) {
    return std::chrono::duration_cast<seconds>(d).count();
}

/// Jitter an archetype's integer-second timeout and clamp it to the
/// calibrated envelope. r = 1.4 keeps a sampled device within ±40% of
/// its archetype, wide enough that 10k samples fill the envelope and
/// narrow enough that the marginal stays shaped like the 34.
std::int64_t jit_secs(Stream& s, sim::Duration v, const Env& env,
                      double r = 1.4) {
    const double x = static_cast<double>(secs(v)) * s.jitter(r);
    return env.clamp(static_cast<std::int64_t>(std::llround(x)));
}

/// Multiplicative jitter + envelope clamp for a double-valued knob.
double jit_real(Stream& s, double v, double lo, double hi,
                double r = 1.3) {
    return std::clamp(v * s.jitter(r), lo, hi);
}

/// One sampling attempt; may return a profile that fails validate()
/// (the port pool endpoints are drawn independently).
DeviceProfile draw(Stream& s, int index, const std::string& tag_prefix) {
    const auto& all = all_profiles();
    const auto pick = [&]() -> const DeviceProfile& {
        return all[s.below(all.size())];
    };

    // Archetype: cross-knob correlations (a slow software NAT tends to
    // come with coarse timers and a short binding table) enter through
    // this copy; jitter and donor swaps diversify around it.
    DeviceProfile p = pick();
    p.tag = tag_prefix + std::to_string(index);
    p.vendor = "Synthetic";
    p.model = p.model + " (pop)";
    p.firmware = "sampled";

    // --- UDP timers (paper UDP-1/2/3): jittered, envelope-clamped, and
    // ordered like every calibrated device (outbound refresh never below
    // inbound refresh).
    static const Env env_u1 = envelope_of(
        all, [](const DeviceProfile& q) { return secs(q.udp.initial); });
    static const Env env_u2 = envelope_of(all, [](const DeviceProfile& q) {
        return secs(q.udp.inbound_refresh);
    });
    static const Env env_u3 = envelope_of(all, [](const DeviceProfile& q) {
        return secs(q.udp.outbound_refresh);
    });
    p.udp.initial = seconds(jit_secs(s, p.udp.initial, env_u1));
    p.udp.inbound_refresh =
        seconds(jit_secs(s, p.udp.inbound_refresh, env_u2));
    p.udp.outbound_refresh = seconds(
        std::max(secs(p.udp.inbound_refresh),
                 jit_secs(s, p.udp.outbound_refresh, env_u3)));
    // Timer granularity is a firmware trait, not a continuous dial:
    // swap the donor's in occasionally, never invent new values.
    if (s.chance(0.15)) p.udp.granularity = pick().udp.granularity;
    if (s.chance(0.15)) p.udp.per_service = pick().udp.per_service;

    // --- TCP binding behavior (TCP-1/TCP-4).
    static const Env env_t1 = envelope_of(all, [](const DeviceProfile& q) {
        return secs(q.tcp_established_timeout);
    });
    static const Env env_bind = envelope_of(
        all,
        [](const DeviceProfile& q) {
            return static_cast<std::int64_t>(q.max_tcp_bindings);
        });
    p.tcp_established_timeout =
        seconds(jit_secs(s, p.tcp_established_timeout, env_t1));
    p.max_tcp_bindings = static_cast<int>(env_bind.clamp(
        std::llround(p.max_tcp_bindings * s.jitter(1.4))));

    // --- Port allocation (UDP-4): allocation policy and quarantine are
    // one coherent pair; the pool endpoints are sampled independently in
    // the calibrated 20000..29999 decade. Roughly half the draws come
    // out inverted (pool_end < pool_begin) — validate() rejects those
    // and sample_gateway deterministically redraws.
    if (s.chance(0.2)) {
        const DeviceProfile& donor = pick();
        p.port_allocation = donor.port_allocation;
        p.port_quarantine = donor.port_quarantine;
    }
    p.pool_begin = static_cast<std::uint16_t>(20000 + s.below(10000));
    p.pool_end = static_cast<std::uint16_t>(20000 + s.below(10000));

    // --- Coherent categorical groups: donor-swapped whole, so sampled
    // combinations always exist somewhere in the calibrated table.
    if (s.chance(0.2)) {
        const DeviceProfile& donor = pick();
        p.icmp_tcp = donor.icmp_tcp;
        p.icmp_udp = donor.icmp_udp;
        p.icmp_query_errors_translated = donor.icmp_query_errors_translated;
        p.fix_embedded_transport = donor.fix_embedded_transport;
        p.fix_embedded_ip_checksum = donor.fix_embedded_ip_checksum;
        p.tcp_icmp_becomes_rst = donor.tcp_icmp_becomes_rst;
    }
    if (s.chance(0.2)) {
        const DeviceProfile& donor = pick();
        p.unknown_proto = donor.unknown_proto;
        p.unknown_proto_inbound_allowed = donor.unknown_proto_inbound_allowed;
        p.unknown_proto_timeout = donor.unknown_proto_timeout;
    }
    if (s.chance(0.2)) {
        const DeviceProfile& donor = pick();
        p.dns_udp_proxy = donor.dns_udp_proxy;
        p.dns_tcp = donor.dns_tcp;
        p.dns_proxy_strips_edns = donor.dns_proxy_strips_edns;
        p.dns_proxy_max_udp = donor.dns_proxy_max_udp;
    }
    if (s.chance(0.2)) {
        const DeviceProfile& donor = pick();
        p.hairpin = donor.hairpin;
        p.decrement_ttl = donor.decrement_ttl;
        p.honor_record_route = donor.honor_record_route;
        p.same_mac_both_sides = donor.same_mac_both_sides;
    }

    // --- Forwarding model (TCP-2/TCP-3): rates jitter within the
    // calibrated [min, 94] Mb/s band (94 = the line-rate cap every
    // calibrated profile respects); the aggregate CPU budget keeps its
    // calibrated invariant agg <= down + up; buffers jitter together
    // (calibration sizes both directions equally).
    static const Env env_buf = envelope_of(all, [](const DeviceProfile& q) {
        return static_cast<std::int64_t>(q.fwd.buffer_down_bytes);
    });
    double rate_lo = all.front().fwd.down_mbps, rate_hi = rate_lo;
    double agg_lo = all.front().fwd.aggregate_mbps, agg_hi = agg_lo;
    for (const auto& q : all) {
        rate_lo = std::min({rate_lo, q.fwd.down_mbps, q.fwd.up_mbps});
        rate_hi = std::max({rate_hi, q.fwd.down_mbps, q.fwd.up_mbps});
        agg_lo = std::min(agg_lo, q.fwd.aggregate_mbps);
        agg_hi = std::max(agg_hi, q.fwd.aggregate_mbps);
    }
    p.fwd.down_mbps = jit_real(s, p.fwd.down_mbps, rate_lo, rate_hi);
    p.fwd.up_mbps = std::min(jit_real(s, p.fwd.up_mbps, rate_lo, rate_hi),
                             p.fwd.down_mbps);
    p.fwd.aggregate_mbps =
        std::min(jit_real(s, p.fwd.aggregate_mbps, agg_lo, agg_hi),
                 p.fwd.down_mbps + p.fwd.up_mbps);
    const auto buf = static_cast<std::size_t>(env_buf.clamp(std::llround(
        static_cast<double>(p.fwd.buffer_down_bytes) * s.jitter(1.4))));
    p.fwd.buffer_down_bytes = buf;
    p.fwd.buffer_up_bytes = buf;
    return p;
}

/// Deterministic per-gateway firewall chain: `n` rules whose matchers
/// all sit inside TEST-NET-2 (198.51.100.0/24, RFC 5737) — an address
/// block no testbed host, gateway, or probe server ever occupies, so
/// the sequential walk (or compiled classifier) runs on every forwarded
/// packet and falls through to the accept default without changing a
/// single verdict. Drawn from a salted stream independent of the
/// profile draws: turning the knob on never shifts a behavioral sample.
void install_firewall(DeviceProfile& p, std::uint64_t seed, int index,
                      int n) {
    constexpr std::uint64_t kFirewallSalt = 0x6669'7265'7761'6c6cULL;
    Stream s(mix64(gateway_stream_seed(seed, index) ^ kFirewallSalt));
    constexpr std::uint32_t kTestNet2 = 0xC6336400u; // 198.51.100.0
    p.firewall_rules.clear();
    p.firewall_rules.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        gateway::Rule r;
        const std::uint64_t proto_pick = s.below(3);
        r.proto = proto_pick == 0 ? 17 : proto_pick == 1 ? 6 : 0;
        // Destination prefix stays >= /24, i.e. wholly inside TEST-NET-2.
        r.dst_prefix_len = 24 + static_cast<int>(s.below(9));
        const std::uint32_t host = static_cast<std::uint32_t>(s.below(256));
        const std::uint32_t mask =
            ~std::uint32_t{0} << (32 - r.dst_prefix_len);
        r.dst_net = net::Ipv4Addr((kTestNet2 | host) & mask);
        if (s.chance(0.5)) {
            const auto lo = static_cast<std::uint16_t>(s.below(65536));
            const auto hi = static_cast<std::uint16_t>(s.below(65536));
            r.dport = {std::min(lo, hi), std::max(lo, hi)};
        }
        r.verdict = s.chance(0.5) ? gateway::RuleVerdict::kDrop
                                  : gateway::RuleVerdict::kAccept;
        p.firewall_rules.push_back(r);
    }
    p.firewall_compiled = s.chance(0.5);
}

/// Deterministic hardened posture: the four off-path-attack knobs drawn
/// from a salted stream independent of the behavioral draws (the same
/// discipline as install_firewall), so turning hardening on never shifts
/// a behavioral sample. Ranges model firmware that actually ships such
/// mitigations: a per-second error budget well under an attack sweep, a
/// per-host share of the binding table, and a non-forwarding WAN SYN
/// policy split between silent drop and tarpit.
void install_hardening(DeviceProfile& p, std::uint64_t seed, int index) {
    constexpr std::uint64_t kHardeningSalt = 0x6861'7264'656e'2121ULL;
    Stream s(mix64(gateway_stream_seed(seed, index) ^ kHardeningSalt));
    p.icmp_error_rate_limit = 16 + static_cast<int>(s.below(32));
    p.validate_embedded_binding = true;
    p.wan_syn_policy = s.chance(0.5) ? gateway::WanSynPolicy::Drop
                                     : gateway::WanSynPolicy::Tarpit;
    p.per_host_binding_budget = 32 + static_cast<int>(s.below(33));
}

} // namespace

std::uint64_t gateway_stream_seed(std::uint64_t seed, int index) {
    return mix64(seed ^ (0x9e3779b97f4a7c15ULL *
                         (static_cast<std::uint64_t>(index) + 1)));
}

DeviceProfile sample_gateway(std::uint64_t seed, int index,
                             const std::string& tag_prefix) {
    GK_EXPECTS(index >= 0);
    Stream s(gateway_stream_seed(seed, index));
    for (int attempt = 0; attempt < 64; ++attempt) {
        DeviceProfile p = draw(s, index, tag_prefix);
        if (p.validate().empty()) return p;
    }
    // ~50% rejection per draw makes 64 consecutive rejects a 2^-64
    // event; reaching here means the sampler or validate() regressed.
    GK_ASSERT(false);
    return {};
}

std::vector<DeviceProfile> sample_roster(const PopulationSpec& spec) {
    GK_EXPECTS(spec.count >= 0);
    GK_EXPECTS(spec.firewall_rules >= 0);
    std::vector<DeviceProfile> roster;
    roster.reserve(static_cast<std::size_t>(spec.count));
    for (int i = 0; i < spec.count; ++i) {
        roster.push_back(sample_gateway(spec.seed, i, spec.tag_prefix));
        if (spec.firewall_rules > 0)
            install_firewall(roster.back(), spec.seed, i,
                             spec.firewall_rules);
        if (spec.hardening)
            install_hardening(roster.back(), spec.seed, i);
    }
    return roster;
}

} // namespace gatekit::devices
