#include "devices/profiles.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace gatekit::devices {

using gateway::DeviceProfile;
using gateway::DnsTcpMode;
using gateway::IcmpKind;
using gateway::IcmpTranslationSet;
using gateway::PortAllocation;
using gateway::UnknownProtocolPolicy;

namespace {

using std::chrono::minutes;
using std::chrono::seconds;

// ---------------------------------------------------------------------------
// ICMP translation tiers (Table 2). Exact per-cell dots are not fully
// recoverable from the paper's scan; tiers reproduce each device's dot
// count and every aggregate statement in section 4.3:
//   * nw1 translates no transport-related ICMP at all;
//   * everyone else does at least Port-Unreachable and TTL-Exceeded;
//   * the low-tier devices (5- and 9-dot rows) translate only the
//     unreachable/expired basics.
// ---------------------------------------------------------------------------

IcmpTranslationSet tier_full() { return IcmpTranslationSet::all(); }

/// be1 / be2 / ng5: Port+TTL+Host+Net unreachable only.
IcmpTranslationSet tier_basic4() {
    IcmpTranslationSet s;
    s.set(IcmpKind::PortUnreachable)
        .set(IcmpKind::TtlExceeded)
        .set(IcmpKind::HostUnreachable)
        .set(IcmpKind::NetUnreachable);
    return s;
}

/// smc / dl4 / dl9 / dl10: the bare minimum the paper observed everywhere.
IcmpTranslationSet tier_basic2() {
    IcmpTranslationSet s;
    s.set(IcmpKind::PortUnreachable).set(IcmpKind::TtlExceeded);
    return s;
}

/// ls1: six kinds per transport (13-dot row).
IcmpTranslationSet tier_six() {
    IcmpTranslationSet s = tier_basic4();
    s.set(IcmpKind::ProtoUnreachable).set(IcmpKind::SourceQuench);
    return s;
}

enum class IcmpTier { Full, Basic4, Basic2, Six, None };

IcmpTranslationSet tier_set(IcmpTier t) {
    switch (t) {
    case IcmpTier::Full:
        return tier_full();
    case IcmpTier::Basic4:
        return tier_basic4();
    case IcmpTier::Basic2:
        return tier_basic2();
    case IcmpTier::Six:
        return tier_six();
    case IcmpTier::None:
        return IcmpTranslationSet::none();
    }
    return IcmpTranslationSet::none();
}

// ---------------------------------------------------------------------------
// One row of the calibration table. Numbers the paper states are used
// verbatim (marked "paper"); the rest respect every figure's ordering and
// the population medians/means (DESIGN.md section 3).
// ---------------------------------------------------------------------------

struct Row {
    const char* tag;
    const char* vendor;
    const char* model;
    const char* firmware;
    // UDP timeouts [sec]: initial (UDP-1), inbound refresh (UDP-2),
    // outbound refresh (UDP-3); coarse confirmed-timer granularity.
    int udp1;
    int udp2;
    int udp3;
    int gran;
    // TCP-1 established-binding timeout [minutes]; 0 = beyond the paper's
    // 24 h cutoff.
    int tcp1_min;
    // TCP-4 max concurrent bindings.
    int max_bind;
    // UDP-4 port allocation: 'P' preserve+reuse, 'Q' preserve+quarantine,
    // 'S' sequential.
    char alloc;
    // Table 2 behavior.
    IcmpTier icmp;
    bool fix_transport; ///< embedded transport header rewritten
    bool fix_ip_ck;     ///< embedded IP checksum fixed
    bool icmp_rst;      ///< ls2: TCP errors become bogus RSTs
    // Unknown protocols: 'D' drop, 'U' untranslated, 'I' ip-only;
    // inbound_ok = false models the ip-only devices whose firewall still
    // blocks the return path (why only 18/20 pass SCTP).
    char unknown;
    bool unknown_inbound_ok;
    DnsTcpMode dns_tcp;
    // IP-level quirks.
    bool dec_ttl;
    bool record_route;
    bool same_mac;
    // Forwarding model: TCP-2 rates [Mb/s] and the TCP-3 unidirectional
    // download delay target [msec].
    double down;
    double up;
    double agg;
    double delay_ms;
};

constexpr DnsTcpMode kNo = DnsTcpMode::NoListen;
constexpr DnsTcpMode kAcc = DnsTcpMode::AcceptOnly;
constexpr DnsTcpMode kTcp = DnsTcpMode::ProxyTcp;
constexpr DnsTcpMode kUdp = DnsTcpMode::ProxyViaUdp;

// clang-format off
const Row kRows[] = {
//  tag    vendor     model                 firmware                  u1   u2   u3  gr tcp1 bind al icmp             fixT  fixCk rst  un  in  dnstcp dec    rr     mac    down  up    agg  delay
  {"al",  "A-Link",  "WNAP",               "e2.0.9A",                 30, 210, 240, 40,  10,  700,'P',IcmpTier::Full,  true, true, false,'I',true, kTcp, true, false,false, 100, 100, 175,  3.2},
  {"ap",  "Apple",   "Airport Express",    "7.4.2",                   60,  54, 130,  0,2000, 1024,'S',IcmpTier::Full,  true, true, false,'I',true, kUdp, true, false,false,  18,  16,  24, 55.0},
  {"as1", "Asus",    "RT-N15",             "2.0.1.1",                 85, 170, 170,  0,  40,  450,'P',IcmpTier::Full,  true, true, false,'I',true, kAcc, true, false,false, 100, 100, 115,  4.5},
  {"be1", "Belkin",  "Wireless N Router",  "F5D8236-4_WW_3.00.02",   150, 120, 220,  0,   4,  110,'Q',IcmpTier::Basic4,false,true, false,'D',true, kNo,  true, false,false, 100, 100, 130,  3.5},
  {"be2", "Belkin",  "Enhanced N150",      "F6D4230-4_WW_1.00.03",   450, 202, 450,  0,   7,  128,'S',IcmpTier::Basic4,false,true, false,'D',true, kNo,  true, false,false, 100, 100, 125,  3.8},
  {"bu1", "Buffalo", "WZR-AGL300NH",       "R1.06/B1.05",             90, 175, 175,  0,2000,  600,'P',IcmpTier::Full,  true, true, false,'I',true, kTcp, true, false,false, 100, 100, 195,  5.0},
  {"dl1", "D-Link",  "DIR-300",            "1.03",                    75, 180, 181,  0,  60,  150,'P',IcmpTier::Full,  false,true, false,'I',true, kNo,  true, false,false,  75,  74,  90,  8.0},
  {"dl2", "D-Link",  "DIR-300",            "1.04",                    75, 180, 181,  0,  60,  135,'P',IcmpTier::Full,  true, true, false,'I',true, kTcp, true, false,false,  70,  69,  85,  7.0},
  {"dl3", "D-Link",  "DI-524up",           "v1.06",                  120, 120, 120,  0,  60,  380,'P',IcmpTier::Full,  false,true, false,'I',false,kNo,  true, false,false, 100, 100, 185,  2.8},
  {"dl4", "D-Link",  "DI-524",             "v2.0.4",                 180, 240, 240,  0,  60,   40,'P',IcmpTier::Basic2,false,true, false,'U',true, kNo,  true, false,false, 100, 100, 200,  4.0},
  {"dl5", "D-Link",  "DIR-100",            "v1.12",                  120, 120, 120,  0,  60,  520,'P',IcmpTier::Full,  false,true, false,'I',true, kNo,  true, false,true,  100, 100, 160,  2.2},
  {"dl6", "D-Link",  "DIR-600",            "v2.01",                   75, 180, 181,  0,  90,  136,'P',IcmpTier::Full,  true, true, false,'I',true, kNo,  true, false,false, 100, 100, 190,  4.2},
  {"dl7", "D-Link",  "DIR-615",            "v4.00",                   75, 180, 181,  0,  60,  420,'P',IcmpTier::Full,  true, true, false,'I',true, kTcp, true, false,false, 100, 100, 120,  2.5},
  {"dl8", "D-Link",  "DIR-635",            "v2.33EU",                180, 240, 240,  0, 120,  160,'P',IcmpTier::Full,  true, true, false,'I',true, kNo,  true, false,false, 100, 100, 170, 48.0},
  {"dl9", "D-Link",  "DI-604",             "v3.09",                  230, 250, 250,  0,  60,   16,'P',IcmpTier::Basic2,false,true, false,'U',true, kNo,  false,false,false,  33,  30,  45, 14.0},
  {"dl10","D-Link",  "DI-713P",            "2.60 build 6a",          160, 130, 240,  0,  60,   30,'Q',IcmpTier::Basic2,false,true, false,'U',true, kNo,  false,false,false,   6,   6,   9, 74.0},
  {"ed",  "Edimax",  "6104WG",             "2.63",                    30, 180, 181,  0,2000,  260,'P',IcmpTier::Full,  true, true, false,'I',true, kTcp, true, false,false,  35,  34,  48, 34.0},
  {"je",  "Jensen",  "Air:Link 59300",     "1.15",                    30,  90,  90, 15,  55,  340,'P',IcmpTier::Full,  false,true, false,'I',true, kTcp, true, false,false,  65,  64,  78,  6.0},
  {"ls1", "Linksys", "BEFSR41c2",          "1.45.11",                691, 392, 691,  0,  30,   32,'P',IcmpTier::Six,   false,false,false,'U',true, kNo,  true, false,false,   8,   6,  10, 95.0},
  {"ls2", "Linksys", "WR54G",              "v7.00.1",                 90, 100, 100,  0,  15,  120,'S',IcmpTier::Full,  false,true, true, 'D',true, kNo,  true, false,false,  58,  57,  72, 16.0},
  {"ls3", "Linksys", "WRT54GL v1.1",       "v4.30.7",                 60, 180, 181,  0,2000,   90,'P',IcmpTier::Full,  true, true, false,'I',true, kAcc, true, false,false,  55,  54,  68, 20.0},
  {"ls5", "Linksys", "WRT54GL-EU",         "v4.30.7",                 60, 180, 181,  0,2000,   60,'P',IcmpTier::Full,  true, true, false,'I',true, kAcc, true, false,false,  56,  55,  70, 22.0},
  {"owrt","Linksys", "WRT54G",             "OpenWRT RC5",             30, 180, 181,  0, 900,  170,'P',IcmpTier::Full,  true, true, false,'I',true, kTcp, true, true, false,  25,  24,  34, 38.0},
  {"to",  "Linksys", "WRT54GL v1.1",       "tomato 1.27",             30, 180, 181,  0, 600,   80,'P',IcmpTier::Full,  true, true, false,'I',true, kTcp, true, true, false,  57,  56,  71, 10.0},
  {"ng1", "Netgear", "RP614 v4",           "V1.0.2_06.29",           240, 260, 260,  0,2000, 1024,'P',IcmpTier::Full,  false,true, false,'D',true, kNo,  true, false,true,  100, 100, 165,  2.0},
  {"ng2", "Netgear", "WGR614 v7",          "(1.0.13_1.0.13)",         60,  60,  60,  0,  50,   48,'P',IcmpTier::Full,  false,true, false,'D',true, kNo,  true, false,false,  60,  59,  74, 18.0},
  {"ng3", "Netgear", "WGR614 v9",          "V1.2.6_18.0.17",         310, 140, 310,  0,  56,   64,'Q',IcmpTier::Full,  true, true, false,'D',true, kNo,  true, false,false,  48,  47,  66, 25.0},
  {"ng4", "Netgear", "WNR2000-100PES",     "v.1.0.0.34_29.0.45",     330, 150, 330,  0,  58,  200,'Q',IcmpTier::Full,  true, true, false,'D',true, kNo,  true, false,false,  42,  40,  58, 62.0},
  {"ng5", "Netgear", "WGR614 v4",          "V5.0_07",                600, 160, 600, 20,   5,   96,'S',IcmpTier::Basic4,false,true, false,'D',true, kNo,  true, false,false,  45,  44,  62, 28.0},
  {"nw1", "Netwjork","54M",                "Ver 1.2.6",               90, 110, 110,  0,  45,  100,'S',IcmpTier::None,  true, true, false,'D',true, kNo,  true, false,false,  52,  50,  70,  9.0},
  {"smc", "SMC",     "Barricade SMC7004VBR","R1.07",                 200, 270, 270,  0,  60,   16,'S',IcmpTier::Basic2,false,true, false,'D',true, kNo,  false,false,false,  27,  41,  50, 12.0},
  {"te",  "Telewell","TW-3G",              "V7.04b3",                 30, 180, 181,  0,2000,  130,'P',IcmpTier::Full,  true, true, false,'I',true, kAcc, true, false,false,  22,  20,  30, 42.0},
  {"we",  "Webee",   "Wireless N Router",  "e2.0.9D",                 40,  75,  75, 45,  20,  800,'P',IcmpTier::Full,  true, true, false,'I',true, kTcp, true, false,false, 100, 100, 110,  3.0},
  {"zy1", "ZyXel",   "P-335U",             "V3.60(AMB.2)C0",         380, 300, 380,  0, 400,  180,'S',IcmpTier::Full,  false,false,false,'I',false,kNo,  true, false,false,  38,  37,  52, 31.0},
};
// clang-format on

/// TCP-3 calibration: pick a drop-tail buffer and forwarding tick whose
/// combination yields roughly the target unidirectional download delay.
/// The queue contributes ~0.75 x buffer / rate once TCP fills it (Reno
/// saws between half and full); any remainder comes from timer-batched
/// forwarding. Receive-window bounds (no window scaling, faithful to the
/// paper's configuration) cap the queue share at ~62 KB of occupancy.
void calibrate_delay(DeviceProfile& p, double target_ms) {
    // Reno saws the standing queue between roughly half-full and full,
    // so the median occupancy is ~3/4 of the buffer. Size the drop-tail
    // buffer to make that median match the target delay; the measurement
    // hosts use window scaling (see DESIGN.md), so the occupancy is not
    // window-bound.
    // The 0.6 divisor reflects that transfers sample mostly the early
    // part of a (long) Reno cycle: occupancy sits nearer half-full than
    // the 3/4 steady-state average.
    double queue_bytes = target_ms * p.fwd.down_mbps * 125.0 / 0.6;
    queue_bytes = std::max(queue_bytes, 16.0 * 1024);
    p.fwd.buffer_down_bytes = static_cast<std::size_t>(queue_bytes);
    p.fwd.buffer_up_bytes = static_cast<std::size_t>(queue_bytes);
    p.fwd.forwarding_tick = sim::Duration::zero();
}

DeviceProfile from_row(const Row& r) {
    DeviceProfile p;
    p.tag = r.tag;
    p.vendor = r.vendor;
    p.model = r.model;
    p.firmware = r.firmware;

    p.udp.initial = seconds(r.udp1);
    p.udp.inbound_refresh = seconds(r.udp2);
    p.udp.outbound_refresh = seconds(r.udp3);
    p.udp.granularity = seconds(r.gran);
    if (p.tag == "dl8") p.udp.per_service[53] = seconds(60); // DNS quirk

    if (p.tag == "be1") {
        p.tcp_established_timeout = seconds(239); // paper: exactly 239 s
    } else {
        p.tcp_established_timeout = minutes(r.tcp1_min);
    }
    p.max_tcp_bindings = r.max_bind;

    switch (r.alloc) {
    case 'P':
        p.port_allocation = PortAllocation::PreserveSourcePort;
        p.port_quarantine = seconds(0);
        break;
    case 'Q':
        p.port_allocation = PortAllocation::PreserveSourcePort;
        p.port_quarantine = minutes(5);
        break;
    case 'S':
        p.port_allocation = PortAllocation::Sequential;
        break;
    default:
        GK_ASSERT(false);
    }

    p.icmp_tcp = tier_set(r.icmp);
    p.icmp_udp = tier_set(r.icmp);
    p.icmp_query_errors_translated = r.icmp != IcmpTier::None;
    p.fix_embedded_transport = r.fix_transport;
    p.fix_embedded_ip_checksum = r.fix_ip_ck;
    p.tcp_icmp_becomes_rst = r.icmp_rst;

    switch (r.unknown) {
    case 'D':
        p.unknown_proto = UnknownProtocolPolicy::Drop;
        break;
    case 'U':
        p.unknown_proto = UnknownProtocolPolicy::Untranslated;
        break;
    case 'I':
        p.unknown_proto = UnknownProtocolPolicy::TranslateIpOnly;
        break;
    default:
        GK_ASSERT(false);
    }
    p.unknown_proto_inbound_allowed = r.unknown_inbound_ok;

    p.dns_tcp = r.dns_tcp;
    // Hairpinning assignments are synthetic (the paper tested hairpin
    // only in its related-work discussion): the Linux-based and
    // better-engineered devices support it.
    for (const char* tag : {"owrt", "to", "ap", "bu1", "we", "al"})
        if (p.tag == tag) p.hairpin = true;
    // DNSSEC-readiness breakage (synthetic, sized to the router studies
    // the paper cites [1,5,9]): six proxies strip EDNS0 from queries,
    // eight drop UDP responses larger than 512 bytes.
    for (const char* tag : {"be1", "be2", "ng5", "ng2", "ls2", "zy1"})
        if (p.tag == tag) p.dns_proxy_strips_edns = true;
    for (const char* tag :
         {"dl3", "dl4", "dl5", "dl9", "dl10", "smc", "nw1", "ls1"})
        if (p.tag == tag) p.dns_proxy_max_udp = 512;
    p.decrement_ttl = r.dec_ttl;
    p.honor_record_route = r.record_route;
    p.same_mac_both_sides = r.same_mac;

    // Cap forwarding at 97 Mb/s: a device rated "100 Mb/s" still has to
    // be the bottleneck (slightly below the Ethernet line rate), or the
    // standing queue would form on the wire instead of in its buffer.
    // Real 100 Mb/s devices measure ~94 Mb/s of TCP goodput either way (and the gap must be wide enough that standing queues form in the device, not upstream).
    constexpr double kLineCap = 94.0;
    p.fwd.down_mbps = std::min(r.down, kLineCap);
    p.fwd.up_mbps = std::min(r.up, kLineCap);
    p.fwd.aggregate_mbps =
        std::min(r.agg, p.fwd.down_mbps + p.fwd.up_mbps);
    calibrate_delay(p, r.delay_ms);
    return p;
}

std::vector<DeviceProfile> build_all() {
    std::vector<DeviceProfile> out;
    out.reserve(std::size(kRows));
    for (const Row& r : kRows) out.push_back(from_row(r));
    return out;
}

} // namespace

const std::vector<DeviceProfile>& all_profiles() {
    static const std::vector<DeviceProfile> profiles = build_all();
    return profiles;
}

std::optional<DeviceProfile> find_profile(const std::string& tag) {
    for (const auto& p : all_profiles())
        if (p.tag == tag) return p;
    return std::nullopt;
}

std::vector<std::string> all_tags() {
    std::vector<std::string> tags;
    for (const auto& p : all_profiles()) tags.push_back(p.tag);
    return tags;
}

} // namespace gatekit::devices
