// Generative gateway population: parameterized distributions fitted over
// the 34 calibrated profiles' behavioral knobs, sampled per gateway from
// a splitmix64-derived stream so the pair (population seed, gateway
// index) always yields the same device — at any worker count, in any
// sampling order, and across a campaign kill/resume.
//
// The model is archetype + jitter (DESIGN.md section 14): each sampled
// gateway starts from one of the 34 calibrated profiles drawn uniformly,
// multiplicatively jitters the continuous knobs (timeouts, binding caps,
// forwarding rates/buffers) with clamping to the calibrated envelope,
// and occasionally swaps each coherent categorical knob group (port
// allocation, ICMP translation tier, unknown-protocol policy, DNS proxy
// behavior, IP quirks) for a random donor profile's — preserving the
// cross-knob correlations of real firmware while keeping every marginal
// inside what the paper actually observed. Port pools are sampled
// endpoint-wise in the calibrated 20000..29999 decade, which makes
// pool_end < pool_begin a real (≈50%) outcome: the sampler rejects via
// DeviceProfile::validate() and deterministically resamples from the
// same per-gateway stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gateway/profile.hpp"

namespace gatekit::devices {

/// Default population seed ("populat!").
inline constexpr std::uint64_t kPopulationSeed = 0x706f'7075'6c61'7421ULL;

/// A sampled-population request: `count` gateways from `seed`, tagged
/// "<tag_prefix><index>" (tags carry no behavioral information; the
/// campaign fingerprint hashes full profile identities instead).
struct PopulationSpec {
    std::uint64_t seed = kPopulationSeed;
    int count = 0;
    std::string tag_prefix = "p";
    /// Firewall rules per sampled gateway (netfilter FORWARD-chain
    /// shape; 0 = no chain, matching the calibrated devices). Rules are
    /// drawn from an independent per-gateway stream and every matcher is
    /// confined to TEST-NET-2 (198.51.100.0/24), an address block no
    /// testbed traffic ever uses: the chain walk runs and its
    /// default-verdict counters advance on every forwarded packet, but
    /// verdicts — and therefore campaign measurement bytes — are
    /// identical to a chain-less run.
    int firewall_rules = 0;
    /// Apply a hardened posture — the four off-path-attack knobs
    /// (icmp_error_rate_limit, validate_embedded_binding, wan_syn_policy,
    /// per_host_binding_budget) — to every sampled gateway, drawn from an
    /// independent salted stream so the behavioral sample is unchanged.
    /// Off by default: the default population stays byte-identical to
    /// earlier releases (all hardening knobs at their inert defaults).
    bool hardening = false;
};

/// Per-gateway stream seed: splitmix64-mixed from (seed, index). Every
/// gateway owns an independent draw stream, so rejection resampling for
/// one gateway never shifts another's draws.
std::uint64_t gateway_stream_seed(std::uint64_t seed, int index);

/// Sample gateway `index` of population `seed`. Deterministic pure
/// function; always returns a profile for which validate() is "".
gateway::DeviceProfile sample_gateway(std::uint64_t seed, int index,
                                      const std::string& tag_prefix = "p");

/// Sample the full roster for `spec` (= sample_gateway for each index).
std::vector<gateway::DeviceProfile> sample_roster(const PopulationSpec& spec);

} // namespace gatekit::devices
