// The 34 home gateway models of the study (paper Table 1), each expressed
// as a DeviceProfile calibrated to the paper's published figures and
// aggregates. Values the paper names explicitly are used verbatim; the
// rest are interpolations consistent with every printed ordering, median
// and mean (see DESIGN.md section 3 for the calibration targets).
#pragma once

#include <optional>
#include <vector>

#include "gateway/profile.hpp"

namespace gatekit::devices {

/// All 34 profiles in the paper's Table 1 order (al, ap, as1, ..., zy1).
const std::vector<gateway::DeviceProfile>& all_profiles();

/// Look up one profile by its paper tag (e.g. "owrt"); nullopt if unknown.
std::optional<gateway::DeviceProfile> find_profile(const std::string& tag);

/// The tags in Table 1 order.
std::vector<std::string> all_tags();

} // namespace gatekit::devices
