// Harness self-profiler: wall-clock phase spans per (device, unit) and
// per-worker utilization for sharded campaigns, emitted as a JSONL
// sidecar (schema "gatekit.profile.v1"). This is the one artifact that
// deliberately records WALL time — it profiles the harness, not the
// simulation — so it is explicitly NOT byte-gated: two runs of the same
// campaign produce equal sim-time fields but different wall_ns.
// Profiling never alters sim behavior: the collector only stamps the
// host clock around work the runner was doing anyway.
//
// Stream layout (one JSON object per line):
//   {"schema":"gatekit.profile.v1","workers":W,"devices":N}     header
//   {"type":"span","shard":k,"device":"...","unit":"...",
//    "status":"ok","attempts":1,"sim_start_ns":...,
//    "sim_end_ns":...,"wall_ns":...}                one per (device,unit)
//   {"type":"shard","shard":k,"device":"...","worker":w,
//    "units":n,"wall_ns":...}                       one per shard
//   {"type":"summary","elapsed_wall_ns":...,
//    "worker_busy_ns":[...],"utilization":...,
//    "shard_wall_max_ns":...,"shard_wall_mean_ns":...,
//    "skew":...,"slowest_device":"..."}             once, at the end
// Span and shard lines appear in canonical device order (the scheduler
// writes them as its completion frontier advances), whatever the worker
// count.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace gatekit::obs {

struct ProfileSpan {
    std::string device;
    std::string unit;
    std::string status; ///< "ok", "degraded", "gave_up", "quarantined"
    int attempts = 0;
    std::int64_t sim_start_ns = 0;
    std::int64_t sim_end_ns = 0;
    std::int64_t wall_ns = 0;
};

/// Per-runner span recorder. The campaign runner brackets each unit
/// with begin_unit()/end_unit(); everything between the two stamps —
/// event processing, probe logic, journal writes — is attributed to
/// that unit. Units replayed from a journal during resume are not
/// recorded (they cost no measurement work).
class ProfileCollector {
public:
    void begin_unit() { wall_start_ = std::chrono::steady_clock::now(); }

    void end_unit(std::string device, std::string unit, std::string status,
                  int attempts, std::int64_t sim_start_ns,
                  std::int64_t sim_end_ns) {
        const auto wall = std::chrono::steady_clock::now() - wall_start_;
        spans_.push_back(ProfileSpan{
            std::move(device), std::move(unit), std::move(status), attempts,
            sim_start_ns, sim_end_ns,
            std::chrono::duration_cast<std::chrono::nanoseconds>(wall)
                .count()});
    }

    const std::vector<ProfileSpan>& spans() const { return spans_; }
    std::vector<ProfileSpan> take_spans() { return std::move(spans_); }

private:
    std::chrono::steady_clock::time_point wall_start_{};
    std::vector<ProfileSpan> spans_;
};

/// Streaming writer for the profile sidecar. The scheduler writes one
/// shard's spans as the completion frontier passes it (so memory stays
/// O(workers), not O(roster)) and the summary after the pool joins.
class ProfileWriter {
public:
    /// Writes the header line immediately.
    ProfileWriter(std::ostream& out, int workers, int devices);

    void write_shard(int shard, const std::string& device, int worker,
                     std::int64_t shard_wall_ns,
                     const std::vector<ProfileSpan>& spans);

    void write_summary(std::int64_t elapsed_wall_ns,
                       const std::vector<std::int64_t>& worker_busy_ns);

private:
    std::ostream& out_;
    std::int64_t shard_wall_max_ns_ = 0;
    std::int64_t shard_wall_total_ns_ = 0;
    int shards_written_ = 0;
    std::string slowest_device_;
};

/// Structural check for a profile sidecar: header first with the right
/// schema tag, every line valid JSON, span/shard/summary lines carry
/// their required fields. Used by the telemetry_smoke ctest.
bool validate_profile_jsonl(std::string_view text,
                            std::string* error = nullptr);

/// Same check, streaming from a file one line at a time — memory stays
/// O(longest line) however large the sidecar.
bool validate_profile_file(const std::string& path,
                           std::string* error = nullptr);

} // namespace gatekit::obs
