#include "obs/trace.hpp"

#include "report/json.hpp"

#include <sstream>

namespace gatekit::obs {

std::string TraceEvent::to_jsonl() const {
    std::ostringstream out;
    report::JsonWriter w(out);
    w.begin_object();
    w.key("t_ns").value(static_cast<std::int64_t>(t.count()));
    w.key("device").value(device);
    w.key("cat").value(category);
    w.key("event").value(name);
    if (frame >= 0) w.key("frame").value(frame);
    for (const auto& f : fields) {
        w.key(f.key);
        if (f.is_text)
            w.value(f.text);
        else
            w.value(f.num);
    }
    w.end_object();
    return out.str();
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity ? capacity : 1) {}

void FlightRecorder::on_event(const TraceEvent& ev) {
    ring_[head_] = ev;
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size()) ++size_;
}

std::vector<TraceEvent> FlightRecorder::snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

void FlightRecorder::set_dump_path(std::string base, std::uint64_t max_dumps) {
    dump_base_ = std::move(base);
    max_dumps_ = max_dumps;
}

std::size_t FlightRecorder::dump(std::ostream& out,
                                 std::string_view reason) const {
    {
        std::ostringstream hdr;
        report::JsonWriter w(hdr);
        w.begin_object();
        w.key("flight_dump").value(reason);
        w.key("events").value(static_cast<std::uint64_t>(size_));
        w.end_object();
        out << hdr.str() << '\n';
    }
    for (const TraceEvent& ev : snapshot()) out << ev.to_jsonl() << '\n';
    return size_;
}

void FlightRecorder::on_trigger(std::string_view reason) {
    if (dump_base_.empty() || dumps_written_ >= max_dumps_) return;
    std::string path =
        dump_base_ + "." + std::to_string(dumps_written_) + ".jsonl";
    std::ofstream out(path, std::ios::trunc);
    if (!out) return;
    dump(out, reason);
    ++dumps_written_;
}

JsonlSink::JsonlSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)) {
    if (*owned_) out_ = owned_.get();
}

void JsonlSink::on_event(const TraceEvent& ev) {
    if (out_) *out_ << ev.to_jsonl() << '\n';
}

void JsonlSink::on_trigger(std::string_view reason) {
    if (!out_) return;
    std::ostringstream line;
    report::JsonWriter w(line);
    w.begin_object();
    w.key("trigger").value(reason);
    w.end_object();
    *out_ << line.str() << '\n';
    out_->flush();
}

void Tracer::trigger(std::string_view device, std::string_view reason) {
    if (!enabled()) return;
    TraceEvent ev = event(device, "obs", "trigger");
    ev.with("reason", reason);
    emit(ev);
    for (TraceSink* s : sinks_) s->on_trigger(reason);
}

} // namespace gatekit::obs
