// Umbrella for the observability layer: one Observability object bundles
// the metrics registry and the tracer so components can be wired with a
// single bind call. Ownership lives with whoever runs the campaign (the
// bench harness or a test); components only ever hold non-owning pointers
// and default to fully-disabled (nullptr) instrumentation.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"

namespace gatekit::obs {

class Observability {
public:
    explicit Observability(sim::EventLoop& loop) : tracer_(loop) {}

    MetricsRegistry& metrics() { return metrics_; }
    const MetricsRegistry& metrics() const { return metrics_; }
    Tracer& tracer() { return tracer_; }
    const Tracer& tracer() const { return tracer_; }

private:
    MetricsRegistry metrics_;
    Tracer tracer_;
};

} // namespace gatekit::obs
