#include "obs/metrics.hpp"

#include "report/csv.hpp"
#include "report/json.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gatekit::obs {

std::size_t LogHistogram::bucket_index(double v) {
    if (!(v >= 1.0)) return 0; // also catches NaN
    if (v >= std::ldexp(1.0, kMaxOctave)) return kBucketCount - 1;
    int exp = 0;
    // frexp: v == frac * 2^exp with frac in [0.5, 1), so the octave is
    // exp - 1 and 2*frac in [1, 2) locates the linear sub-bucket.
    const double frac = std::frexp(v, &exp);
    const int octave = exp - 1;
    int sub = static_cast<int>((2.0 * frac - 1.0) * kSubBuckets);
    if (sub >= kSubBuckets) sub = kSubBuckets - 1;
    return 1 + static_cast<std::size_t>(octave) * kSubBuckets +
           static_cast<std::size_t>(sub);
}

double LogHistogram::bucket_upper(std::size_t index) {
    if (index == 0) return 1.0;
    const std::size_t i = index - 1;
    const auto octave = static_cast<int>(i / kSubBuckets);
    const auto sub = static_cast<int>(i % kSubBuckets);
    return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets,
                      octave);
}

void LogHistogram::merge(const LogHistogram& other) {
    if (other.total == 0) return;
    if (other.counts.size() > counts.size())
        counts.resize(other.counts.size(), 0);
    for (std::size_t i = 0; i < other.counts.size(); ++i)
        counts[i] += other.counts[i];
    if (total == 0 || other.min < min) min = other.min;
    if (total == 0 || other.max > max) max = other.max;
    total += other.total;
    sum += other.sum;
}

double LogHistogram::percentile(double q) const {
    if (total == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        cum += counts[i];
        if (cum >= rank && cum > 0)
            return std::clamp(bucket_upper(i), min, max);
    }
    return max;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               Labels labels, Kind kind,
                                               std::vector<double> bounds) {
    Key key{std::string(name), labels};
    if (auto it = index_.find(key); it != index_.end()) return *it->second;
    auto e = std::make_unique<Entry>();
    e->name = std::string(name);
    e->labels = std::move(labels);
    e->kind = kind;
    switch (kind) {
    case Kind::kCounter: e->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: e->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
        e->histogram = std::make_unique<Histogram>(std::move(bounds));
        break;
    case Kind::kLogHistogram:
        e->log_histogram = std::make_unique<LogHistogram>();
        break;
    }
    Entry* raw = e.get();
    entries_.push_back(std::move(e));
    index_.emplace(std::move(key), raw);
    return *raw;
}

Counter* MetricsRegistry::counter(std::string_view name, Labels labels) {
    return entry(name, std::move(labels), Kind::kCounter).counter.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name, Labels labels) {
    return entry(name, std::move(labels), Kind::kGauge).gauge.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      Labels labels) {
    return entry(name, std::move(labels), Kind::kHistogram, std::move(bounds))
        .histogram.get();
}

LogHistogram* MetricsRegistry::log_histogram(std::string_view name,
                                             Labels labels) {
    return entry(name, std::move(labels), Kind::kLogHistogram)
        .log_histogram.get();
}

const MetricsRegistry::Entry*
MetricsRegistry::find(std::string_view name, const Labels& labels,
                      Kind kind) const {
    auto it = index_.find(Key{std::string(name), labels});
    if (it == index_.end() || it->second->kind != kind) return nullptr;
    return it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name,
                                             const Labels& labels) const {
    const Entry* e = find(name, labels, Kind::kCounter);
    return e ? e->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name,
                                         const Labels& labels) const {
    const Entry* e = find(name, labels, Kind::kGauge);
    return e ? e->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name,
                                                 const Labels& labels) const {
    const Entry* e = find(name, labels, Kind::kHistogram);
    return e ? e->histogram.get() : nullptr;
}

const LogHistogram*
MetricsRegistry::find_log_histogram(std::string_view name,
                                    const Labels& labels) const {
    const Entry* e = find(name, labels, Kind::kLogHistogram);
    return e ? e->log_histogram.get() : nullptr;
}

void MetricsRegistry::visit_scalars(
    const std::function<void(const ScalarRef&)>& fn) const {
    for (const auto& e : entries_) {
        if (e->kind == Kind::kCounter)
            fn(ScalarRef{e->name, e->labels, e->counter.get(), nullptr});
        else if (e->kind == Kind::kGauge)
            fn(ScalarRef{e->name, e->labels, nullptr, e->gauge.get()});
    }
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name,
                                             const Labels& labels) const {
    const Counter* c = find_counter(name, labels);
    return c ? c->value : 0;
}

std::uint64_t MetricsRegistry::counter_total(std::string_view name) const {
    std::uint64_t total = 0;
    for (const auto& e : entries_)
        if (e->kind == Kind::kCounter && e->name == name)
            total += e->counter->value;
    return total;
}

void MetricsRegistry::merge_from(
    const MetricsRegistry& other,
    const std::function<bool(std::string_view name, const Labels&)>& keep) {
    for (const auto& e : other.entries_) {
        if (keep && !keep(e->name, e->labels)) continue;
        switch (e->kind) {
        case Kind::kCounter:
            counter(e->name, e->labels)->value += e->counter->value;
            break;
        case Kind::kGauge:
            gauge(e->name, e->labels)->value = e->gauge->value;
            break;
        case Kind::kHistogram: {
            const Histogram& src = *e->histogram;
            Histogram* dst = histogram(e->name, src.bounds, e->labels);
            if (dst->bounds != src.bounds)
                throw std::runtime_error(
                    "metrics merge: histogram '" + e->name +
                    "' bucket bounds differ between registries");
            for (std::size_t i = 0; i < src.counts.size(); ++i)
                dst->counts[i] += src.counts[i];
            dst->total += src.total;
            dst->sum += src.sum;
            break;
        }
        case Kind::kLogHistogram:
            log_histogram(e->name, e->labels)->merge(*e->log_histogram);
            break;
        }
    }
}

std::string MetricsRegistry::to_json() const {
    std::ostringstream out;
    report::JsonWriter w(out);
    w.begin_object();
    w.key("schema").value("gatekit.metrics.v1");
    w.key("metrics").begin_array();
    for (const auto& e : entries_) {
        w.begin_object();
        w.key("name").value(e->name);
        w.key("labels").begin_object();
        for (const auto& [k, v] : e->labels) w.key(k).value(v);
        w.end_object();
        switch (e->kind) {
        case Kind::kCounter:
            w.key("kind").value("counter");
            w.key("value").value(e->counter->value);
            break;
        case Kind::kGauge:
            w.key("kind").value("gauge");
            w.key("value").value(e->gauge->value);
            break;
        case Kind::kHistogram: {
            const Histogram& h = *e->histogram;
            w.key("kind").value("histogram");
            w.key("count").value(h.total);
            w.key("sum").value(h.sum);
            w.key("buckets").begin_array();
            for (std::size_t i = 0; i < h.counts.size(); ++i) {
                w.begin_object();
                if (i < h.bounds.size())
                    w.key("le").value(h.bounds[i]);
                else
                    w.key("le").value("inf");
                w.key("count").value(h.counts[i]);
                w.end_object();
            }
            w.end_array();
            break;
        }
        case Kind::kLogHistogram: {
            const LogHistogram& h = *e->log_histogram;
            w.key("kind").value("log_histogram");
            w.key("count").value(h.total);
            w.key("sum").value(h.sum);
            w.key("min").value(h.total ? h.min : 0.0);
            w.key("max").value(h.total ? h.max : 0.0);
            w.key("p50").value(h.percentile(0.50));
            w.key("p90").value(h.percentile(0.90));
            w.key("p99").value(h.percentile(0.99));
            w.key("p999").value(h.percentile(0.999));
            // Sparse [index, count] pairs: a latency sketch touches a
            // handful of octaves out of the 513 possible buckets.
            w.key("buckets").begin_array();
            for (std::size_t i = 0; i < h.counts.size(); ++i) {
                if (h.counts[i] == 0) continue;
                w.begin_array();
                w.value(static_cast<std::uint64_t>(i));
                w.value(h.counts[i]);
                w.end_array();
            }
            w.end_array();
            break;
        }
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return out.str();
}

std::string format_label_cell(const Labels& labels) {
    std::string out;
    auto append = [&out](const std::string& s) {
        for (char c : s) {
            if (c == '\\' || c == '=' || c == ';') out += '\\';
            out += c;
        }
    };
    for (const auto& [k, v] : labels) {
        if (!out.empty()) out += ';';
        append(k);
        out += '=';
        append(v);
    }
    return out;
}

bool parse_label_cell(std::string_view cell, Labels& out) {
    out.clear();
    if (cell.empty()) return true;
    std::string key, val;
    std::string* cur = &key;
    bool have_key = false; // saw the pair's unescaped '='
    for (std::size_t i = 0; i < cell.size(); ++i) {
        const char c = cell[i];
        if (c == '\\') {
            if (++i >= cell.size()) return false;
            *cur += cell[i];
        } else if (c == '=' && !have_key) {
            cur = &val;
            have_key = true;
        } else if (c == ';') {
            if (!have_key) return false;
            out.emplace_back(std::move(key), std::move(val));
            key.clear();
            val.clear();
            cur = &key;
            have_key = false;
        } else {
            *cur += c;
        }
    }
    if (!have_key) return false;
    out.emplace_back(std::move(key), std::move(val));
    return true;
}

namespace {

/// Quantile from a fixed-bucket histogram: the upper bound of the
/// bucket holding the ceil(q * total)-th observation. Observations in
/// the +inf overflow bucket report the last finite bound (clipped —
/// fixed bounds cannot say more; the log histogram exists for that).
double fixed_percentile(const Histogram& h, double q) {
    if (h.total == 0) return 0.0;
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(std::clamp(q, 0.0, 1.0) * static_cast<double>(h.total)));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
        cum += h.counts[i];
        if (cum >= rank && cum > 0)
            return i < h.bounds.size() ? h.bounds[i] : h.bounds.back();
    }
    return h.bounds.empty() ? 0.0 : h.bounds.back();
}

} // namespace

std::string MetricsRegistry::to_csv() const {
    report::CsvWriter csv({"name", "kind", "labels", "value", "sum", "count",
                           "p50", "p90", "p99", "p999"});
    const auto pcts = [](auto&& p) -> std::array<std::string, 4> {
        return {report::json_double(p(0.50)), report::json_double(p(0.90)),
                report::json_double(p(0.99)), report::json_double(p(0.999))};
    };
    for (const auto& e : entries_) {
        const std::string labels = format_label_cell(e->labels);
        switch (e->kind) {
        case Kind::kCounter:
            csv.add_row({e->name, "counter", labels,
                         std::to_string(e->counter->value), "", "", "", "",
                         "", ""});
            break;
        case Kind::kGauge:
            csv.add_row({e->name, "gauge", labels,
                         report::json_double(e->gauge->value), "", "", "",
                         "", "", ""});
            break;
        case Kind::kHistogram: {
            const Histogram& h = *e->histogram;
            const auto p =
                pcts([&](double q) { return fixed_percentile(h, q); });
            csv.add_row({e->name, "histogram", labels, "",
                         report::json_double(h.sum),
                         std::to_string(h.total), p[0], p[1], p[2], p[3]});
            break;
        }
        case Kind::kLogHistogram: {
            const LogHistogram& h = *e->log_histogram;
            const auto p = pcts([&](double q) { return h.percentile(q); });
            csv.add_row({e->name, "log_histogram", labels, "",
                         report::json_double(h.sum),
                         std::to_string(h.total), p[0], p[1], p[2], p[3]});
            break;
        }
        }
    }
    return csv.to_string();
}

bool MetricsRegistry::save_json(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    out << to_json() << '\n';
    return static_cast<bool>(out);
}

bool validate_metrics_json(std::string_view text, std::string* error) {
    if (!report::json_valid(text, error)) return false;
    auto fail = [&](const char* what) {
        if (error) *error = what;
        return false;
    };
    if (text.find("\"schema\":\"gatekit.metrics.v1\"") == std::string_view::npos)
        return fail("missing or wrong schema tag");
    if (text.find("\"metrics\":[") == std::string_view::npos)
        return fail("missing metrics array");
    // Every metric entry must carry a recognized kind and a name. The
    // emitter is ours, so field order is fixed; this is a smoke-level
    // schema check, not a general parser.
    std::size_t kinds = 0, pos = 0;
    while ((pos = text.find("\"kind\":\"", pos)) != std::string_view::npos) {
        pos += 8;
        std::string_view rest = text.substr(pos);
        if (rest.rfind("counter\"", 0) != 0 && rest.rfind("gauge\"", 0) != 0 &&
            rest.rfind("histogram\"", 0) != 0 &&
            rest.rfind("log_histogram\"", 0) != 0)
            return fail("unknown metric kind");
        ++kinds;
    }
    std::size_t names = 0;
    pos = 0;
    while ((pos = text.find("\"name\":\"", pos)) != std::string_view::npos) {
        pos += 8;
        ++names;
    }
    if (names != kinds) return fail("metric entries missing name or kind");
    return true;
}

} // namespace gatekit::obs
