// Sim-time event tracing: a Tracer fans events out to TraceSinks. Two
// sinks ship with the testbed — a bounded ring-buffer FlightRecorder that
// dumps the last N events when something goes wrong (probe retry/giveup,
// injected gateway fault), and a streaming JSONL sink for full traces.
//
// Events are pure observations: emitting one never schedules work on the
// event loop, draws randomness, or otherwise perturbs virtual time, so a
// traced run produces byte-identical figure output to an untraced one.
#pragma once

#include "sim/event_loop.hpp"
#include "sim/time.hpp"

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace gatekit::obs {

/// One traced occurrence. `frame` cross-references the pcap capture: the
/// index of the most recent frame recorded by the device's CaptureTap at
/// the moment the event fired, or -1 when no capture is attached.
struct TraceEvent {
    struct Field {
        std::string key;
        bool is_text = false;
        std::int64_t num = 0;
        std::string text;
    };

    sim::TimePoint t{};
    std::string device;
    std::string category;
    std::string name;
    std::int64_t frame = -1;
    std::vector<Field> fields;

    TraceEvent& with(std::string_view key, std::int64_t v) {
        fields.push_back({std::string(key), false, v, {}});
        return *this;
    }
    TraceEvent& with(std::string_view key, std::string_view v) {
        fields.push_back({std::string(key), true, 0, std::string(v)});
        return *this;
    }

    /// One JSONL line (no trailing newline).
    std::string to_jsonl() const;
};

class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual void on_event(const TraceEvent& ev) = 0;
    /// A trigger fired (probe retry/giveup, gateway fault): flush or dump
    /// whatever context the sink has been holding.
    virtual void on_trigger(std::string_view reason) { (void)reason; }
};

/// Bounded ring buffer over the last `capacity` events; on_trigger dumps
/// the buffered window. Dumps go to `dump_path_base.<n>.jsonl` when a
/// dump path is set (capped at max_dumps files per run), and can also be
/// written to any ostream explicitly.
class FlightRecorder : public TraceSink {
public:
    explicit FlightRecorder(std::size_t capacity = 256);

    void on_event(const TraceEvent& ev) override;
    void on_trigger(std::string_view reason) override;

    /// Buffered events, oldest first.
    std::vector<TraceEvent> snapshot() const;
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return ring_.size(); }
    std::uint64_t dumps_written() const { return dumps_written_; }

    /// Enable automatic dumps: trigger n writes `<base>.<n>.jsonl`.
    void set_dump_path(std::string base, std::uint64_t max_dumps = 16);

    /// Write the buffered window as JSONL, preceded by a trigger header
    /// line. Returns the number of event lines written.
    std::size_t dump(std::ostream& out, std::string_view reason) const;

private:
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0; ///< next write slot
    std::size_t size_ = 0;
    std::string dump_base_;
    std::uint64_t max_dumps_ = 0;
    std::uint64_t dumps_written_ = 0;
};

/// Streams every event as one JSONL line. Construct over an external
/// ostream or let it own a file.
class JsonlSink : public TraceSink {
public:
    explicit JsonlSink(std::ostream& out) : out_(&out) {}
    explicit JsonlSink(const std::string& path);

    bool ok() const { return out_ != nullptr && static_cast<bool>(*out_); }

    void on_event(const TraceEvent& ev) override;
    void on_trigger(std::string_view reason) override;

private:
    std::unique_ptr<std::ofstream> owned_;
    std::ostream* out_ = nullptr;
};

/// Front door for instrumented components: stamps events with the loop's
/// current virtual time and fans them out to the attached sinks. A Tracer
/// with no sinks is "disabled" — callers check enabled() first so the
/// disabled path never constructs an event.
class Tracer {
public:
    explicit Tracer(sim::EventLoop& loop) : loop_(loop) {}

    void add_sink(TraceSink* sink) {
        if (sink) sinks_.push_back(sink);
    }
    bool enabled() const { return !sinks_.empty(); }

    /// New event stamped with now(); fill fields, then emit().
    TraceEvent event(std::string_view device, std::string_view category,
                     std::string_view name) const {
        TraceEvent ev;
        ev.t = loop_.now();
        ev.device = device;
        ev.category = category;
        ev.name = name;
        return ev;
    }

    void emit(const TraceEvent& ev) {
        for (TraceSink* s : sinks_) s->on_event(ev);
    }

    /// Record a trigger event, then fire every sink's on_trigger (the
    /// flight recorder dumps its window at this point).
    void trigger(std::string_view device, std::string_view reason);

private:
    sim::EventLoop& loop_;
    std::vector<TraceSink*> sinks_;
};

// Null-safe helper mirroring the metrics ones: true when tracing is live,
// so call sites read `if (trace_on(t)) { auto ev = t->event(...); ... }`.
inline bool trace_on(const Tracer* t) { return t && t->enabled(); }

} // namespace gatekit::obs
