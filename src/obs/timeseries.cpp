#include "obs/timeseries.hpp"

#include "report/json.hpp"
#include "util/assert.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <vector>

namespace gatekit::obs {

TimeseriesSampler::TimeseriesSampler(const MetricsRegistry& reg,
                                     std::ostream& out, Options opts)
    : reg_(reg), out_(out), opts_(std::move(opts)) {
    GK_EXPECTS(opts_.interval > sim::Duration::zero());
    report::JsonWriter w(out_);
    w.begin_object();
    w.key("schema").value("gatekit.timeseries.v1");
    w.key("interval_ms")
        .value(static_cast<std::int64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                opts_.interval)
                .count()));
    w.key("device").value(opts_.device);
    w.key("shard").value(static_cast<std::int64_t>(opts_.shard));
    w.end_object();
    out_ << '\n';
    ++lines_;
}

sim::TimePoint TimeseriesSampler::on_advance(sim::TimePoint t) {
    // Stamp the last interval boundary at or below t: every handler
    // strictly before t has run, none at t has, so the sample is the
    // state "entering" this stretch of virtual time. Long idle jumps
    // cross many boundaries but emit at most one line — intermediate
    // boundaries saw no state change by construction (nothing ran).
    const std::int64_t iv = opts_.interval.count();
    const std::int64_t k = t.count() / iv;
    sample(sim::TimePoint(sim::Duration(k * iv)));
    return sim::TimePoint(sim::Duration((k + 1) * iv));
}

void TimeseriesSampler::finish(sim::TimePoint end) {
    // Events AT the last sampled boundary run after that boundary's
    // sample, so the final flush must not be deduplicated away — a
    // trailing line may share its predecessor's timestamp (validators
    // accept equal stamps, only regressions fail).
    sample(end, /*force=*/true);
}

void TimeseriesSampler::sample(sim::TimePoint stamp, bool force) {
    if (!force && stamp.count() <= last_stamp_ns_) return;

    struct Changed {
        std::size_t id;
        double value;
        bool integral;
    };
    std::vector<Changed> changed;
    std::size_t id = 0;
    reg_.visit_scalars([&](const MetricsRegistry::ScalarRef& s) {
        if (id >= prev_.size()) {
            prev_.resize(id + 1, 0.0);
            declared_.resize(id + 1, 0);
        }
        const bool integral = s.counter != nullptr;
        const double v = integral
                             ? static_cast<double>(s.counter->value)
                             : s.gauge->value;
        if (v != prev_[id]) {
            changed.push_back({id, v, integral});
            prev_[id] = v;
            if (declared_[id] == 0) {
                declared_[id] = 1;
                report::JsonWriter w(out_);
                w.begin_object();
                w.key("series").value(static_cast<std::uint64_t>(id));
                w.key("name").value(s.name);
                w.key("labels").begin_object();
                for (const auto& [lk, lv] : s.labels) w.key(lk).value(lv);
                w.end_object();
                w.key("kind").value(integral ? "counter" : "gauge");
                w.end_object();
                out_ << '\n';
                ++lines_;
            }
        }
        ++id;
    });
    if (changed.empty()) return;
    last_stamp_ns_ = std::max(last_stamp_ns_, stamp.count());
    report::JsonWriter w(out_);
    w.begin_object();
    w.key("t_ns").value(static_cast<std::int64_t>(stamp.count()));
    w.key("v").begin_array();
    for (const Changed& c : changed) {
        w.begin_array();
        w.value(static_cast<std::uint64_t>(c.id));
        if (c.integral)
            w.value(static_cast<std::uint64_t>(c.value));
        else
            w.value(c.value);
        w.end_array();
    }
    w.end_array();
    w.end_object();
    out_ << '\n';
    ++lines_;
}

namespace {

/// Per-line validation state machine shared by the in-memory and
/// streaming-file validators. One instance per stream; feed lines in
/// order, then call finish().
struct TimeseriesValidator {
    bool in_segment = false;
    std::int64_t last_t = -1;
    std::vector<char> declared; ///< series id declared this segment
    std::size_t line_no = 0;

    bool fail(std::string* error, const std::string& what) {
        if (error) *error = what;
        return false;
    }

    bool line(std::string_view l, std::string* error) {
        ++line_no;
        if (l.empty()) return true;
        const auto doc = report::json_parse(l, error);
        if (!doc)
            return fail(error, "line " + std::to_string(line_no) +
                                   ": invalid JSON");
        if (const auto* schema = doc->find("schema")) {
            if (schema->as_string() != "gatekit.timeseries.v1")
                return fail(error, "line " + std::to_string(line_no) +
                                       ": wrong schema tag");
            if (doc->find("interval_ms") == nullptr)
                return fail(error, "header missing interval_ms");
            in_segment = true;
            last_t = -1;
            declared.assign(declared.size(), 0);
            return true;
        }
        if (!in_segment)
            return fail(error, "line " + std::to_string(line_no) +
                                   ": data before segment header");
        if (const auto* series = doc->find("series")) {
            if (doc->find("name") == nullptr ||
                doc->find("kind") == nullptr)
                return fail(error, "line " + std::to_string(line_no) +
                                       ": declaration missing name/kind");
            const auto id = static_cast<std::size_t>(series->as_int());
            if (id >= declared.size()) declared.resize(id + 1, 0);
            declared[id] = 1;
            return true;
        }
        const auto* t = doc->find("t_ns");
        const auto* v = doc->find("v");
        if (t == nullptr || v == nullptr ||
            v->type != report::JsonValue::Type::Array)
            return fail(error, "line " + std::to_string(line_no) +
                                   ": expected header, declaration, or "
                                   "sample");
        if (t->as_int() < last_t)
            return fail(error, "line " + std::to_string(line_no) +
                                   ": timestamps regress within a segment");
        last_t = t->as_int();
        for (const auto& pair : v->array) {
            if (pair.type != report::JsonValue::Type::Array ||
                pair.array.size() != 2)
                return fail(error, "line " + std::to_string(line_no) +
                                       ": sample pair is not [id, value]");
            const auto id =
                static_cast<std::size_t>(pair.array[0].as_int());
            if (id >= declared.size() || declared[id] == 0)
                return fail(error,
                            "line " + std::to_string(line_no) +
                                ": sample references undeclared series " +
                                std::to_string(id));
        }
        return true;
    }

    bool finish(std::string* error) {
        if (!in_segment) return fail(error, "no segment header found");
        return true;
    }
};

} // namespace

bool validate_timeseries_jsonl(std::string_view text, std::string* error) {
    TimeseriesValidator v;
    while (!text.empty()) {
        const std::size_t nl = text.find('\n');
        const std::string_view line =
            nl == std::string_view::npos ? text : text.substr(0, nl);
        text = nl == std::string_view::npos ? std::string_view{}
                                            : text.substr(nl + 1);
        if (!v.line(line, error)) return false;
    }
    return v.finish(error);
}

bool validate_timeseries_file(const std::string& path, std::string* error) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error) *error = "cannot open '" + path + "'";
        return false;
    }
    // One line in memory at a time: a multi-gigabyte campaign sidecar
    // validates in O(longest line), not O(file).
    TimeseriesValidator v;
    for (std::string l; std::getline(in, l);)
        if (!v.line(l, error)) return false;
    return v.finish(error);
}

} // namespace gatekit::obs
