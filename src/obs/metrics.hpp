// Metrics registry for the testbed: counters, gauges, and fixed-bucket
// histograms registered by name + label pairs, snapshot-able to JSON and
// CSV. Lock-free by construction — everything runs on the single-threaded
// event loop, so instruments are plain structs with no atomics.
//
// Instrumented components hold raw pointers to instruments, defaulting to
// nullptr. The free helpers below (`inc`, `add`, `set`, `observe`) branch
// on null, so with no registry attached the cost of an instrumentation
// site is one predictable untaken branch.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gatekit::obs {

struct Counter {
    std::uint64_t value = 0;
};

struct Gauge {
    double value = 0.0;
};

/// Fixed upper-bound buckets; counts has bounds.size() + 1 entries, the
/// last being the overflow (+inf) bucket.
struct Histogram {
    explicit Histogram(std::vector<double> upper_bounds)
        : bounds(std::move(upper_bounds)), counts(bounds.size() + 1, 0) {}

    void observe(double v) {
        std::size_t i = 0;
        while (i < bounds.size() && v > bounds[i]) ++i;
        ++counts[i];
        ++total;
        sum += v;
    }

    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    double sum = 0.0;
};

/// Log2-bucketed histogram with linear sub-buckets (HDR style): no
/// pre-chosen bounds, bounded relative error, and exact cross-registry
/// merge. Values below 1 (and NaN) land in bucket 0; otherwise octave
/// e = floor(log2(v)) and a linear sub-bucket within the octave give
/// index 1 + e*kSubBuckets + sub, so every bucket's width is at most
/// 1/kSubBuckets of its lower edge (12.5% relative error at 8
/// sub-buckets). Observe in the series' natural fine unit (nanoseconds
/// for latencies, bytes for sizes) so bucket 0 stays a degenerate
/// "underflow" bin. Storage grows on demand to the highest octave seen;
/// merge is element-wise addition, hence associative and commutative.
struct LogHistogram {
    static constexpr int kSubBuckets = 8;
    static constexpr int kMaxOctave = 64; ///< values >= 2^64 clip here
    static constexpr std::size_t kBucketCount =
        1 + static_cast<std::size_t>(kMaxOctave) * kSubBuckets;

    /// Bucket index for a value; pure, total (NaN/negative -> 0).
    static std::size_t bucket_index(double v);
    /// Upper edge of a bucket — the deterministic representative value
    /// percentile extraction reports. bucket_upper(0) == 1.
    static double bucket_upper(std::size_t index);

    void observe(double v) {
        const std::size_t i = bucket_index(v);
        if (i >= counts.size()) counts.resize(i + 1, 0);
        ++counts[i];
        ++total;
        sum += v;
        if (total == 1 || v < min) min = v;
        if (total == 1 || v > max) max = v;
    }

    /// Element-wise fold of `other` into this histogram (exact).
    void merge(const LogHistogram& other);

    /// Value at quantile q in [0, 1]: the upper edge of the bucket
    /// holding the ceil(q * total)-th observation, clamped to the
    /// observed [min, max]. 0 when empty. Deterministic — depends only
    /// on the merged bucket counts, never on observation order.
    double percentile(double q) const;

    std::vector<std::uint64_t> counts; ///< grows to highest bucket seen
    std::uint64_t total = 0;
    double sum = 0.0;
    double min = 0.0; ///< meaningful only when total > 0
    double max = 0.0; ///< meaningful only when total > 0
};

// Null-safe instrumentation helpers: the disabled path is branch-on-null.
inline void inc(Counter* c) {
    if (c) ++c->value;
}
inline void add(Counter* c, std::uint64_t n) {
    if (c) c->value += n;
}
inline void set(Gauge* g, double v) {
    if (g) g->value = v;
}
inline void observe(Histogram* h, double v) {
    if (h) h->observe(v);
}
inline void observe(LogHistogram* h, double v) {
    if (h) h->observe(v);
}

using Labels = std::vector<std::pair<std::string, std::string>>;

/// Render labels as the single "k=v;k=v" CSV cell to_csv uses. '\\',
/// '=', and ';' inside keys or values are backslash-escaped — without
/// that, a label value containing '=' or ';' (say a service string
/// "port=53;proto=udp") reads back as extra bogus pairs. The CSV layer
/// itself (commas, quotes, newlines) is handled by CsvWriter.
std::string format_label_cell(const Labels& labels);

/// Exact inverse of format_label_cell. False on a malformed cell (bare
/// pair with no '=', or a trailing backslash). An empty cell is the
/// empty label set.
bool parse_label_cell(std::string_view cell, Labels& out);

/// Registry of named instruments. Registration dedups on (name, labels):
/// asking twice for the same instrument returns the same pointer.
/// Pointers are stable for the registry's lifetime (deque storage).
class MetricsRegistry {
public:
    Counter* counter(std::string_view name, Labels labels = {});
    Gauge* gauge(std::string_view name, Labels labels = {});
    Histogram* histogram(std::string_view name, std::vector<double> bounds,
                         Labels labels = {});
    LogHistogram* log_histogram(std::string_view name, Labels labels = {});

    /// Lookup without creating; nullptr when absent. Used by tests.
    const Counter* find_counter(std::string_view name,
                                const Labels& labels = {}) const;
    const Gauge* find_gauge(std::string_view name,
                            const Labels& labels = {}) const;
    const Histogram* find_histogram(std::string_view name,
                                    const Labels& labels = {}) const;
    const LogHistogram* find_log_histogram(std::string_view name,
                                           const Labels& labels = {}) const;

    /// Counter value by name+labels, 0 when the counter was never
    /// registered — convenient for test assertions.
    std::uint64_t counter_value(std::string_view name,
                                const Labels& labels = {}) const;

    /// Sum of all counters whose name matches, across label sets.
    std::uint64_t counter_total(std::string_view name) const;

    std::size_t size() const { return entries_.size(); }

    /// One counter-or-gauge entry, as seen by visit_scalars. Exactly one
    /// of counter/gauge is non-null.
    struct ScalarRef {
        const std::string& name;
        const Labels& labels;
        const Counter* counter;
        const Gauge* gauge;
    };

    /// Walk every counter and gauge in registration order (histograms
    /// are skipped). Registration order is append-only and preserved by
    /// merge_from, so a visitor may key per-entry state by visitation
    /// index — the time-series sampler's change-detection relies on
    /// exactly that.
    void visit_scalars(const std::function<void(const ScalarRef&)>& fn) const;

    /// Fold another registry into this one: counters add, gauges take
    /// the other's value (last writer wins), histograms add bucket
    /// counts and sums (mismatched bucket bounds throw). Series unseen
    /// here are appended in `other`'s registration order, so merging
    /// shard registries in canonical device order yields one
    /// deterministic, worker-count-independent snapshot. `keep` (when
    /// set) selects which of `other`'s series participate.
    void merge_from(
        const MetricsRegistry& other,
        const std::function<bool(std::string_view name, const Labels&)>&
            keep = {});

    /// Snapshot as one JSON document (schema "gatekit.metrics.v1").
    std::string to_json() const;
    /// Snapshot as CSV rows:
    /// name,kind,labels,value,sum,count,p50,p90,p99,p999 — the
    /// percentile columns are filled for histogram kinds only.
    std::string to_csv() const;
    /// Write to_json() to `path`; false on I/O failure.
    bool save_json(const std::string& path) const;

private:
    enum class Kind { kCounter, kGauge, kHistogram, kLogHistogram };

    struct Entry {
        std::string name;
        Labels labels;
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::unique_ptr<LogHistogram> log_histogram;
    };

    using Key = std::pair<std::string, Labels>;

    Entry& entry(std::string_view name, Labels labels, Kind kind,
                 std::vector<double> bounds = {});
    const Entry* find(std::string_view name, const Labels& labels,
                      Kind kind) const;

    std::vector<std::unique_ptr<Entry>> entries_; ///< registration order
    std::map<Key, Entry*> index_;
};

/// Structural + schema check for a metrics sidecar produced by to_json():
/// valid JSON, correct schema tag, every metric carries name/kind and the
/// kind-appropriate value fields. Used by the metrics_smoke ctest.
bool validate_metrics_json(std::string_view text, std::string* error = nullptr);

} // namespace gatekit::obs
