// Streaming time-series sink: samples every counter and gauge in a
// MetricsRegistry on a sim-time cadence and appends JSONL (schema
// "gatekit.timeseries.v1") to an output stream. Implemented as a
// sim::AdvanceHook — it observes the clock the loop was advancing
// anyway and never schedules events, so a campaign's virtual-time
// behavior (and every byte-gated artifact) is identical with the
// sampler on or off.
//
// Memory and output are bounded: the sampler keeps one double per
// registered scalar (change detection), emits at most one line per
// crossed interval boundary, and emits nothing at all for boundaries
// where no sampled value changed — a 24-hour idle binding-timeout gap
// costs zero lines, not 86,400.
//
// Stream layout (one JSON object per line):
//   {"schema":"gatekit.timeseries.v1","interval_ms":...,
//    "device":"...","shard":k}                         header, once
//   {"series":i,"name":"...","labels":{...},
//    "kind":"counter"|"gauge"}                         declaration,
//                                                      first use of i
//   {"t_ns":...,"v":[[i,value],...]}                   sample (changed
//                                                      series only)
// Series ids are indices into the registry's registration order and
// are scoped to the stream segment that declared them: a merged
// multi-shard file is a concatenation of self-contained segments, each
// re-starting with its own header line. Timestamps are sim-time only —
// the stream is byte-identical across runs and worker counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"

namespace gatekit::obs {

class TimeseriesSampler final : public sim::AdvanceHook {
public:
    struct Options {
        sim::Duration interval{std::chrono::seconds(1)};
        std::string device; ///< header metadata: the shard's device label
        int shard = -1;     ///< header metadata; -1 = unsharded run
    };

    /// Writes the header line immediately. The registry and stream must
    /// outlive the sampler; install with loop.set_advance_hook(&s) and
    /// clear the hook before destroying the sampler.
    TimeseriesSampler(const MetricsRegistry& reg, std::ostream& out,
                      Options opts);

    TimeseriesSampler(const TimeseriesSampler&) = delete;
    TimeseriesSampler& operator=(const TimeseriesSampler&) = delete;

    sim::TimePoint on_advance(sim::TimePoint t) override;

    /// Final flush at end-of-run: emits any still-unreported changes
    /// stamped at `end` (the loop's final sim time — deterministic).
    /// Call after the loop drains, before closing the stream.
    void finish(sim::TimePoint end);

    std::uint64_t lines_emitted() const { return lines_; }

private:
    void sample(sim::TimePoint stamp, bool force = false);

    const MetricsRegistry& reg_;
    std::ostream& out_;
    Options opts_;
    std::vector<double> prev_;     ///< last emitted value per series id
    std::vector<char> declared_;   ///< series id has a declaration line
    std::uint64_t lines_ = 0;
    std::int64_t last_stamp_ns_ = -1;
};

/// Structural check for a (possibly multi-segment) timeseries stream:
/// every line is valid JSON, the first line of each segment carries the
/// schema tag, declarations precede use, and sample timestamps are
/// non-decreasing within a segment. Used by the telemetry_smoke ctest.
bool validate_timeseries_jsonl(std::string_view text,
                               std::string* error = nullptr);

/// Same check, streaming from a file one line at a time — memory stays
/// O(longest line) however large the sidecar (population-scale streams
/// reach tens of MB; slurping them would dominate the campaign's RSS).
bool validate_timeseries_file(const std::string& path,
                              std::string* error = nullptr);

} // namespace gatekit::obs
