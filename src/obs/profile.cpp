#include "obs/profile.hpp"

#include "report/json.hpp"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <ostream>

namespace gatekit::obs {

ProfileWriter::ProfileWriter(std::ostream& out, int workers, int devices)
    : out_(out) {
    report::JsonWriter w(out_);
    w.begin_object();
    w.key("schema").value("gatekit.profile.v1");
    w.key("workers").value(static_cast<std::int64_t>(workers));
    w.key("devices").value(static_cast<std::int64_t>(devices));
    w.end_object();
    out_ << '\n';
}

void ProfileWriter::write_shard(int shard, const std::string& device,
                                int worker, std::int64_t shard_wall_ns,
                                const std::vector<ProfileSpan>& spans) {
    for (const ProfileSpan& s : spans) {
        report::JsonWriter w(out_);
        w.begin_object();
        w.key("type").value("span");
        w.key("shard").value(static_cast<std::int64_t>(shard));
        w.key("device").value(s.device);
        w.key("unit").value(s.unit);
        w.key("status").value(s.status);
        w.key("attempts").value(static_cast<std::int64_t>(s.attempts));
        w.key("sim_start_ns").value(s.sim_start_ns);
        w.key("sim_end_ns").value(s.sim_end_ns);
        w.key("wall_ns").value(s.wall_ns);
        w.end_object();
        out_ << '\n';
    }
    report::JsonWriter w(out_);
    w.begin_object();
    w.key("type").value("shard");
    w.key("shard").value(static_cast<std::int64_t>(shard));
    w.key("device").value(device);
    w.key("worker").value(static_cast<std::int64_t>(worker));
    w.key("units").value(static_cast<std::uint64_t>(spans.size()));
    w.key("wall_ns").value(shard_wall_ns);
    w.end_object();
    out_ << '\n';
    ++shards_written_;
    shard_wall_total_ns_ += shard_wall_ns;
    if (slowest_device_.empty() || shard_wall_ns > shard_wall_max_ns_) {
        shard_wall_max_ns_ = shard_wall_ns;
        slowest_device_ = device;
    }
}

void ProfileWriter::write_summary(
    std::int64_t elapsed_wall_ns,
    const std::vector<std::int64_t>& worker_busy_ns) {
    const std::int64_t busy = std::accumulate(
        worker_busy_ns.begin(), worker_busy_ns.end(), std::int64_t{0});
    const double capacity =
        static_cast<double>(elapsed_wall_ns) *
        static_cast<double>(std::max<std::size_t>(worker_busy_ns.size(), 1));
    const double mean =
        shards_written_ > 0 ? static_cast<double>(shard_wall_total_ns_) /
                                  shards_written_
                            : 0.0;
    report::JsonWriter w(out_);
    w.begin_object();
    w.key("type").value("summary");
    w.key("elapsed_wall_ns").value(elapsed_wall_ns);
    w.key("worker_busy_ns").begin_array();
    for (const std::int64_t b : worker_busy_ns) w.value(b);
    w.end_array();
    w.key("utilization")
        .value(capacity > 0.0 ? static_cast<double>(busy) / capacity : 0.0);
    w.key("shard_wall_max_ns").value(shard_wall_max_ns_);
    w.key("shard_wall_mean_ns").value(mean);
    // Skew: slowest shard vs the mean. 1.0 = perfectly even; large
    // values mean one device dominates the campaign's critical path.
    w.key("skew").value(mean > 0.0
                            ? static_cast<double>(shard_wall_max_ns_) / mean
                            : 0.0);
    w.key("slowest_device").value(slowest_device_);
    w.end_object();
    out_ << '\n';
}

namespace {

/// Per-line validation state machine shared by the in-memory and
/// streaming-file validators.
struct ProfileValidator {
    bool have_header = false;
    std::size_t line_no = 0;

    bool fail(std::string* error, const std::string& what) {
        if (error) *error = what;
        return false;
    }

    bool line(std::string_view l, std::string* error) {
        ++line_no;
        if (l.empty()) return true;
        const auto doc = report::json_parse(l, error);
        if (!doc)
            return fail(error, "line " + std::to_string(line_no) +
                                   ": invalid JSON");
        if (!have_header) {
            const auto* schema = doc->find("schema");
            if (schema == nullptr ||
                schema->as_string() != "gatekit.profile.v1")
                return fail(error, "first line is not a gatekit.profile.v1 "
                                   "header");
            if (doc->find("workers") == nullptr ||
                doc->find("devices") == nullptr)
                return fail(error, "header missing workers/devices");
            have_header = true;
            return true;
        }
        const auto* type = doc->find("type");
        if (type == nullptr)
            return fail(error, "line " + std::to_string(line_no) +
                                   ": missing type");
        const std::string& t = type->as_string();
        auto need = [&](std::initializer_list<const char*> keys) {
            for (const char* k : keys)
                if (doc->find(k) == nullptr) return false;
            return true;
        };
        if (t == "span") {
            if (!need({"shard", "device", "unit", "status", "attempts",
                       "sim_start_ns", "sim_end_ns", "wall_ns"}))
                return fail(error, "line " + std::to_string(line_no) +
                                       ": span missing fields");
        } else if (t == "shard") {
            if (!need({"shard", "device", "worker", "units", "wall_ns"}))
                return fail(error, "line " + std::to_string(line_no) +
                                       ": shard missing fields");
        } else if (t == "summary") {
            if (!need({"elapsed_wall_ns", "worker_busy_ns", "utilization",
                       "shard_wall_max_ns", "skew"}))
                return fail(error, "line " + std::to_string(line_no) +
                                       ": summary missing fields");
        } else {
            return fail(error, "line " + std::to_string(line_no) +
                                   ": unknown type '" + t + "'");
        }
        return true;
    }

    bool finish(std::string* error) {
        if (!have_header) return fail(error, "no profile header found");
        return true;
    }
};

} // namespace

bool validate_profile_jsonl(std::string_view text, std::string* error) {
    ProfileValidator v;
    while (!text.empty()) {
        const std::size_t nl = text.find('\n');
        const std::string_view line =
            nl == std::string_view::npos ? text : text.substr(0, nl);
        text = nl == std::string_view::npos ? std::string_view{}
                                            : text.substr(nl + 1);
        if (!v.line(line, error)) return false;
    }
    return v.finish(error);
}

bool validate_profile_file(const std::string& path, std::string* error) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error) *error = "cannot open '" + path + "'";
        return false;
    }
    ProfileValidator v;
    for (std::string l; std::getline(in, l);)
        if (!v.line(l, error)) return false;
    return v.finish(error);
}

} // namespace gatekit::obs
