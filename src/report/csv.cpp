#include "report/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace gatekit::report {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    GK_EXPECTS(!headers_.empty());
}

void CsvWriter::add_row(std::vector<std::string> cells) {
    GK_EXPECTS(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string CsvWriter::to_string() const {
    std::ostringstream ss;
    auto emit = [&ss](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i) ss << ',';
            ss << escape(cells[i]);
        }
        ss << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
    return ss.str();
}

void CsvWriter::save(const std::string& path) const {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    out << to_string();
    if (!out) throw std::runtime_error("write failed: " + path);
}

} // namespace gatekit::report
