// Minimal JSON output support for the report sidecars (metrics snapshots,
// trace JSONL lines). A streaming writer with automatic comma placement —
// no DOM, no allocation beyond the output stream — plus a structural
// validator used by the metrics_smoke schema check.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace gatekit::report {

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// added). Control characters become \u00XX.
std::string json_escape(std::string_view s);

/// Shortest round-trip decimal for a double. Non-finite values (which
/// JSON cannot represent) are clamped to null-like "0".
std::string json_double(double v);

/// Streaming JSON writer: explicit begin/end calls, commas inserted
/// automatically. The caller is responsible for well-formed nesting
/// (every begin_* matched by the corresponding end_*, key() before each
/// object member value).
class JsonWriter {
public:
    explicit JsonWriter(std::ostream& out) : out_(out) {}

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();
    JsonWriter& key(std::string_view k);
    JsonWriter& value(std::string_view s);
    JsonWriter& value(const char* s) { return value(std::string_view(s)); }
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(double v);
    JsonWriter& value(bool v);

private:
    void pre_value();

    std::ostream& out_;
    std::vector<bool> has_item_; ///< per nesting level: wrote an item yet?
    bool after_key_ = false;
};

/// Structural validation: true when `text` is exactly one well-formed
/// JSON value (plus surrounding whitespace). On failure `error` (when
/// non-null) receives a short description with a byte offset. This is a
/// validator, not a parser — nothing is materialized.
bool json_valid(std::string_view text, std::string* error = nullptr);

} // namespace gatekit::report
