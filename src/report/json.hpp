// Minimal JSON output support for the report sidecars (metrics snapshots,
// trace JSONL lines). A streaming writer with automatic comma placement —
// no DOM, no allocation beyond the output stream — plus a structural
// validator used by the metrics_smoke schema check.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gatekit::report {

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// added). Control characters become \u00XX.
std::string json_escape(std::string_view s);

/// Shortest round-trip decimal for a double. Non-finite values (which
/// JSON cannot represent) are clamped to null-like "0".
std::string json_double(double v);

/// Streaming JSON writer: explicit begin/end calls, commas inserted
/// automatically. The caller is responsible for well-formed nesting
/// (every begin_* matched by the corresponding end_*, key() before each
/// object member value).
class JsonWriter {
public:
    explicit JsonWriter(std::ostream& out) : out_(out) {}

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();
    JsonWriter& key(std::string_view k);
    JsonWriter& value(std::string_view s);
    JsonWriter& value(const char* s) { return value(std::string_view(s)); }
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(double v);
    JsonWriter& value(bool v);
    /// Splice pre-rendered JSON verbatim as one value (comma placement
    /// still automatic). The caller guarantees `json` is well-formed.
    JsonWriter& raw(std::string_view json);

private:
    void pre_value();

    std::ostream& out_;
    std::vector<bool> has_item_; ///< per nesting level: wrote an item yet?
    bool after_key_ = false;
};

/// Structural validation: true when `text` is exactly one well-formed
/// JSON value (plus surrounding whitespace). On failure `error` (when
/// non-null) receives a short description with a byte offset. This is a
/// validator, not a parser — nothing is materialized.
bool json_valid(std::string_view text, std::string* error = nullptr);

/// Parsed JSON value (DOM). Object member order is preserved, so a
/// document written by JsonWriter, parsed, and re-written member-by-
/// member round-trips byte-identically — the property the campaign
/// journal's replay path depends on. Numbers remember whether their
/// source token was integral: `value(int64)` output re-serializes via
/// the integer path, `value(double)` output via json_double (shortest
/// round-trip, so parse + re-format is exact).
class JsonValue {
public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::int64_t integer = 0;
    bool is_integer = false; ///< source token had no '.', 'e', or 'E'
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> members;

    /// Object member lookup; nullptr when absent or not an object.
    const JsonValue* find(std::string_view key) const;

    // Typed accessors with defaults (wrong-type reads yield the default).
    bool as_bool(bool def = false) const;
    double as_double(double def = 0.0) const;
    std::int64_t as_int(std::int64_t def = 0) const;
    const std::string& as_string() const; ///< empty string when not a String
};

/// Full parse of exactly one JSON document (plus surrounding whitespace).
/// Returns nullopt on malformed input, with a byte-offset description in
/// `error` when non-null.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

/// Re-serialize a parsed value member-by-member through JsonWriter.
/// Because the DOM preserves member order and integer-ness, a document
/// produced by JsonWriter round-trips byte-identically — what lets the
/// shard scheduler carve journal segments out of a merged journal
/// without touching payload bytes.
std::string json_serialize(const JsonValue& v);

} // namespace gatekit::report
