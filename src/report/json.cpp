#include "report/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace gatekit::report {

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string json_double(double v) {
    if (!std::isfinite(v)) return "0";
    std::array<char, 32> buf{};
    auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
    if (ec != std::errc{}) return "0";
    std::string out(buf.data(), ptr);
    // Bare integers are valid JSON numbers, but keep them recognizably
    // floating-point so downstream readers don't flip types run-to-run.
    if (out.find_first_of(".eE") == std::string::npos) out += ".0";
    return out;
}

void JsonWriter::pre_value() {
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (!has_item_.empty()) {
        if (has_item_.back()) out_ << ',';
        has_item_.back() = true;
    }
}

JsonWriter& JsonWriter::begin_object() {
    pre_value();
    out_ << '{';
    has_item_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    has_item_.pop_back();
    out_ << '}';
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    pre_value();
    out_ << '[';
    has_item_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    has_item_.pop_back();
    out_ << ']';
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
    if (!has_item_.empty()) {
        if (has_item_.back()) out_ << ',';
        has_item_.back() = true;
    }
    out_ << '"' << json_escape(k) << "\":";
    after_key_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
    pre_value();
    out_ << '"' << json_escape(s) << '"';
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    pre_value();
    out_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
    pre_value();
    out_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(double v) {
    pre_value();
    out_ << json_double(v);
    return *this;
}

JsonWriter& JsonWriter::value(bool v) {
    pre_value();
    out_ << (v ? "true" : "false");
    return *this;
}

namespace {

// Recursive-descent structural check. `pos` always points at the next
// unconsumed byte.
class Validator {
public:
    Validator(std::string_view text, std::string* error)
        : text_(text), error_(error) {}

    bool run() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        if (pos_ != text_.size()) return fail("trailing data");
        return true;
    }

private:
    bool fail(const char* what) {
        if (error_) {
            *error_ = what;
            *error_ += " at byte ";
            *error_ += std::to_string(pos_);
        }
        return false;
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool string() {
        // Caller saw the opening quote.
        ++pos_;
        while (!eof()) {
            unsigned char c = static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (eof()) return fail("unterminated escape");
                char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i])))
                            return fail("bad \\u escape");
                    }
                    pos_ += 5;
                    continue;
                }
                if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                    e != 'f' && e != 'n' && e != 'r' && e != 't')
                    return fail("bad escape");
                ++pos_;
                continue;
            }
            if (c < 0x20) return fail("control char in string");
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool number() {
        if (peek() == '-') ++pos_;
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
            return fail("bad number");
        if (peek() == '0') {
            ++pos_;
        } else {
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!eof() && peek() == '.') {
            ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad fraction");
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad exponent");
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return true;
    }

    bool object() {
        ++pos_; // '{'
        if (++depth_ > kMaxDepth) return fail("nesting too deep");
        skip_ws();
        if (!eof() && peek() == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skip_ws();
            if (eof() || peek() != '"') return fail("expected object key");
            if (!string()) return false;
            skip_ws();
            if (eof() || peek() != ':') return fail("expected ':'");
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (eof()) return fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool array() {
        ++pos_; // '['
        if (++depth_ > kMaxDepth) return fail("nesting too deep");
        skip_ws();
        if (!eof() && peek() == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (eof()) return fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool value() {
        if (eof()) return fail("expected value");
        switch (peek()) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    static constexpr int kMaxDepth = 64;

    std::string_view text_;
    std::string* error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool json_valid(std::string_view text, std::string* error) {
    return Validator(text, error).run();
}

} // namespace gatekit::report
