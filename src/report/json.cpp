#include "report/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace gatekit::report {

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string json_double(double v) {
    if (!std::isfinite(v)) return "0";
    std::array<char, 32> buf{};
    auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
    if (ec != std::errc{}) return "0";
    std::string out(buf.data(), ptr);
    // Bare integers are valid JSON numbers, but keep them recognizably
    // floating-point so downstream readers don't flip types run-to-run.
    if (out.find_first_of(".eE") == std::string::npos) out += ".0";
    return out;
}

void JsonWriter::pre_value() {
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (!has_item_.empty()) {
        if (has_item_.back()) out_ << ',';
        has_item_.back() = true;
    }
}

JsonWriter& JsonWriter::begin_object() {
    pre_value();
    out_ << '{';
    has_item_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    has_item_.pop_back();
    out_ << '}';
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    pre_value();
    out_ << '[';
    has_item_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    has_item_.pop_back();
    out_ << ']';
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
    if (!has_item_.empty()) {
        if (has_item_.back()) out_ << ',';
        has_item_.back() = true;
    }
    out_ << '"' << json_escape(k) << "\":";
    after_key_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
    pre_value();
    out_ << '"' << json_escape(s) << '"';
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    pre_value();
    out_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
    pre_value();
    out_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(double v) {
    pre_value();
    out_ << json_double(v);
    return *this;
}

JsonWriter& JsonWriter::value(bool v) {
    pre_value();
    out_ << (v ? "true" : "false");
    return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
    pre_value();
    out_ << json;
    return *this;
}

namespace {

// Recursive-descent structural check. `pos` always points at the next
// unconsumed byte.
class Validator {
public:
    Validator(std::string_view text, std::string* error)
        : text_(text), error_(error) {}

    bool run() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        if (pos_ != text_.size()) return fail("trailing data");
        return true;
    }

private:
    bool fail(const char* what) {
        if (error_) {
            *error_ = what;
            *error_ += " at byte ";
            *error_ += std::to_string(pos_);
        }
        return false;
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool string() {
        // Caller saw the opening quote.
        ++pos_;
        while (!eof()) {
            unsigned char c = static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (eof()) return fail("unterminated escape");
                char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i])))
                            return fail("bad \\u escape");
                    }
                    pos_ += 5;
                    continue;
                }
                if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                    e != 'f' && e != 'n' && e != 'r' && e != 't')
                    return fail("bad escape");
                ++pos_;
                continue;
            }
            if (c < 0x20) return fail("control char in string");
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool number() {
        if (peek() == '-') ++pos_;
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
            return fail("bad number");
        if (peek() == '0') {
            ++pos_;
        } else {
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!eof() && peek() == '.') {
            ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad fraction");
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad exponent");
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return true;
    }

    bool object() {
        ++pos_; // '{'
        if (++depth_ > kMaxDepth) return fail("nesting too deep");
        skip_ws();
        if (!eof() && peek() == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skip_ws();
            if (eof() || peek() != '"') return fail("expected object key");
            if (!string()) return false;
            skip_ws();
            if (eof() || peek() != ':') return fail("expected ':'");
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (eof()) return fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool array() {
        ++pos_; // '['
        if (++depth_ > kMaxDepth) return fail("nesting too deep");
        skip_ws();
        if (!eof() && peek() == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (eof()) return fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool value() {
        if (eof()) return fail("expected value");
        switch (peek()) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    static constexpr int kMaxDepth = 64;

    std::string_view text_;
    std::string* error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool json_valid(std::string_view text, std::string* error) {
    return Validator(text, error).run();
}

const JsonValue* JsonValue::find(std::string_view key) const {
    if (type != Type::Object) return nullptr;
    for (const auto& [k, v] : members)
        if (k == key) return &v;
    return nullptr;
}

bool JsonValue::as_bool(bool def) const {
    return type == Type::Bool ? boolean : def;
}

double JsonValue::as_double(double def) const {
    if (type != Type::Number) return def;
    return is_integer ? static_cast<double>(integer) : number;
}

std::int64_t JsonValue::as_int(std::int64_t def) const {
    if (type != Type::Number) return def;
    return is_integer ? integer : static_cast<std::int64_t>(number);
}

const std::string& JsonValue::as_string() const {
    static const std::string kEmpty;
    return type == Type::String ? str : kEmpty;
}

namespace {

/// Recursive-descent parser building a JsonValue. Grammar checks mirror
/// the Validator above; this one also materializes the tree.
class Parser {
public:
    Parser(std::string_view text, std::string* error)
        : text_(text), error_(error) {}

    std::optional<JsonValue> run() {
        skip_ws();
        JsonValue v;
        if (!value(v)) return std::nullopt;
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing data");
            return std::nullopt;
        }
        return v;
    }

private:
    bool fail(const char* what) {
        if (error_) {
            *error_ = what;
            *error_ += " at byte ";
            *error_ += std::to_string(pos_);
        }
        return false;
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    static void append_utf8(std::string& out, std::uint32_t cp) {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool hex4(std::uint32_t& out) {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (eof() ||
                !std::isxdigit(static_cast<unsigned char>(peek())))
                return fail("bad \\u escape");
            const char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<std::uint32_t>(c - '0');
            else
                out |= static_cast<std::uint32_t>(
                    10 + (std::tolower(static_cast<unsigned char>(c)) - 'a'));
        }
        return true;
    }

    bool string(std::string& out) {
        ++pos_; // opening quote
        out.clear();
        while (!eof()) {
            unsigned char c = static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (eof()) return fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    std::uint32_t cp = 0;
                    if (!hex4(cp)) return false;
                    // Surrogate pair: combine when a low surrogate follows.
                    if (cp >= 0xd800 && cp <= 0xdbff &&
                        text_.substr(pos_, 2) == "\\u") {
                        pos_ += 2;
                        std::uint32_t lo = 0;
                        if (!hex4(lo)) return false;
                        if (lo >= 0xdc00 && lo <= 0xdfff)
                            cp = 0x10000 + ((cp - 0xd800) << 10) +
                                 (lo - 0xdc00);
                    }
                    append_utf8(out, cp);
                    break;
                }
                default: return fail("bad escape");
                }
                continue;
            }
            if (c < 0x20) return fail("control char in string");
            out += static_cast<char>(c);
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool number(JsonValue& v) {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
            return fail("bad number");
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        bool integral = true;
        if (!eof() && peek() == '.') {
            integral = false;
            ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad fraction");
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            integral = false;
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad exponent");
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        const std::string_view tok = text_.substr(start, pos_ - start);
        v.type = JsonValue::Type::Number;
        v.is_integer = integral;
        if (integral) {
            auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(),
                                           v.integer);
            if (ec != std::errc{} || p != tok.data() + tok.size()) {
                // Out-of-range integer token: keep the double view only.
                v.is_integer = false;
            }
        }
        {
            // from_chars<double> is the exact inverse of the shortest-
            // round-trip to_chars used by json_double.
            auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(),
                                           v.number);
            if (ec != std::errc{}) return fail("unparseable number");
            (void)p;
        }
        if (v.is_integer) v.number = static_cast<double>(v.integer);
        return true;
    }

    bool object(JsonValue& v) {
        ++pos_; // '{'
        if (++depth_ > kMaxDepth) return fail("nesting too deep");
        v.type = JsonValue::Type::Object;
        skip_ws();
        if (!eof() && peek() == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skip_ws();
            if (eof() || peek() != '"') return fail("expected object key");
            std::string key;
            if (!string(key)) return false;
            skip_ws();
            if (eof() || peek() != ':') return fail("expected ':'");
            ++pos_;
            skip_ws();
            JsonValue member;
            if (!value(member)) return false;
            v.members.emplace_back(std::move(key), std::move(member));
            skip_ws();
            if (eof()) return fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool array(JsonValue& v) {
        ++pos_; // '['
        if (++depth_ > kMaxDepth) return fail("nesting too deep");
        v.type = JsonValue::Type::Array;
        skip_ws();
        if (!eof() && peek() == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skip_ws();
            JsonValue item;
            if (!value(item)) return false;
            v.array.push_back(std::move(item));
            skip_ws();
            if (eof()) return fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool value(JsonValue& v) {
        if (eof()) return fail("expected value");
        switch (peek()) {
        case '{': return object(v);
        case '[': return array(v);
        case '"':
            v.type = JsonValue::Type::String;
            return string(v.str);
        case 't':
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return literal("true");
        case 'f':
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
            return literal("false");
        case 'n':
            v.type = JsonValue::Type::Null;
            return literal("null");
        default: return number(v);
        }
    }

    static constexpr int kMaxDepth = 64;

    std::string_view text_;
    std::string* error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
    return Parser(text, error).run();
}

namespace {

void write_value(JsonWriter& jw, const JsonValue& v) {
    switch (v.type) {
    case JsonValue::Type::Null: jw.raw("null"); break;
    case JsonValue::Type::Bool: jw.value(v.boolean); break;
    case JsonValue::Type::Number:
        if (v.is_integer)
            jw.value(v.integer);
        else
            jw.value(v.number);
        break;
    case JsonValue::Type::String: jw.value(std::string_view(v.str)); break;
    case JsonValue::Type::Array:
        jw.begin_array();
        for (const auto& e : v.array) write_value(jw, e);
        jw.end_array();
        break;
    case JsonValue::Type::Object:
        jw.begin_object();
        for (const auto& [k, e] : v.members) {
            jw.key(k);
            write_value(jw, e);
        }
        jw.end_object();
        break;
    }
}

} // namespace

std::string json_serialize(const JsonValue& v) {
    std::ostringstream out;
    JsonWriter jw(out);
    write_value(jw, v);
    return out.str();
}

} // namespace gatekit::report
