// Terminal rendering of the paper's device-ordered figures: one row per
// device, values as aligned numbers plus a proportional bar, population
// median/mean in the footer — the same information Figures 2-10 carry.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace gatekit::report {

struct PlotPoint {
    std::string label; ///< device tag
    double value = 0.0;
    std::optional<double> q1; ///< lower quartile (error bar)
    std::optional<double> q3; ///< upper quartile
};

struct PlotSeries {
    std::string name;
    std::vector<PlotPoint> points; ///< same label order across series
};

struct PlotOptions {
    std::string title;
    std::string unit;
    bool log_scale = false; ///< Figure 7 uses a log axis
    bool sort_by_first_series = true; ///< devices ordered by value, as in
                                      ///< the paper's figures
    int bar_width = 40;
    bool footer_stats = true; ///< print Pop. Median / Pop. Mean
};

/// Render one or more series (multi-series figures like Figure 2 print
/// every series' value per device; the bar tracks the first series).
void render_plot(std::ostream& out, const PlotOptions& options,
                 const std::vector<PlotSeries>& series);

} // namespace gatekit::report
