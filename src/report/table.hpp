// Column-aligned text tables for bench output (Table 1, Table 2).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gatekit::report {

class TextTable {
public:
    /// Define columns; every subsequent row must match the column count.
    explicit TextTable(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    /// Render with single-space-padded columns and a separator rule.
    void print(std::ostream& out) const;
    std::string to_string() const;

    std::size_t rows() const { return rows_.size(); }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by the bench binaries.
std::string fmt_double(double v, int decimals = 2);

} // namespace gatekit::report
