#include "report/journal.hpp"

#include <sstream>

namespace gatekit::report {

std::string journal_header_line(const JournalHeader& header) {
    std::ostringstream out;
    JsonWriter jw(out);
    jw.begin_object();
    jw.key("schema").value(std::string_view(kJournalSchema));
    jw.key("fingerprint").value(std::string_view(header.fingerprint));
    if (header.shard >= 0)
        jw.key("shard").value(static_cast<std::int64_t>(header.shard));
    jw.key("devices").begin_array();
    for (const auto& tag : header.devices) jw.value(std::string_view(tag));
    jw.end_array();
    jw.end_object();
    return out.str();
}

namespace {

bool known_status(std::string_view s) {
    return s == "ok" || s == "degraded" || s == "gave_up" ||
           s == "quarantined";
}

} // namespace

bool decode_journal_header(const JsonValue& v, JournalHeader& header,
                           std::string* error) {
    const JsonValue* schema = v.find("schema");
    if (schema == nullptr || schema->as_string() != kJournalSchema) {
        if (error) *error = "missing or wrong schema tag";
        return false;
    }
    header.schema = schema->as_string();
    if (const JsonValue* fp = v.find("fingerprint"))
        header.fingerprint = fp->as_string();
    if (const JsonValue* sh = v.find("shard"))
        header.shard = static_cast<int>(sh->as_int(-1));
    const JsonValue* devices = v.find("devices");
    if (devices == nullptr || devices->type != JsonValue::Type::Array) {
        if (error) *error = "header lacks devices array";
        return false;
    }
    header.devices.clear();
    for (const auto& d : devices->array)
        header.devices.push_back(d.as_string());
    return true;
}

namespace {

bool decode_entry(JsonValue v, JournalEntry& entry, std::string* error) {
    const JsonValue* device = v.find("device");
    const JsonValue* unit = v.find("unit");
    const JsonValue* status = v.find("status");
    if (device == nullptr || unit == nullptr || status == nullptr) {
        if (error) *error = "entry lacks device/unit/status";
        return false;
    }
    entry.device = static_cast<int>(device->as_int());
    entry.unit = unit->as_string();
    entry.status = status->as_string();
    if (!known_status(entry.status)) {
        if (error) *error = "unknown status '" + entry.status + "'";
        return false;
    }
    if (const JsonValue* tag = v.find("tag")) entry.tag = tag->as_string();
    if (const JsonValue* a = v.find("attempts"))
        entry.attempts = static_cast<int>(a->as_int(1));
    if (const JsonValue* r = v.find("reason"))
        entry.reason = r->as_string();
    if (const JsonValue* t = v.find("t_start_ns"))
        entry.t_start_ns = t->as_int();
    if (const JsonValue* t = v.find("t_end_ns"))
        entry.t_end_ns = t->as_int();
    if (const JsonValue* st = v.find("state")) {
        if (const JsonValue* c = st->find("client_eph"))
            entry.state.client_eph = static_cast<std::uint64_t>(c->as_int());
        if (const JsonValue* c = st->find("server_eph"))
            entry.state.server_eph = static_cast<std::uint64_t>(c->as_int());
        if (const JsonValue* c = st->find("udp_pool"))
            entry.state.udp_pool = static_cast<std::uint64_t>(c->as_int());
        if (const JsonValue* c = st->find("tcp_pool"))
            entry.state.tcp_pool = static_cast<std::uint64_t>(c->as_int());
        if (const JsonValue* r = st->find("rng")) {
            if (r->type != JsonValue::Type::Array) {
                if (error) *error = "state.rng is not an array";
                return false;
            }
            for (const auto& sv : r->array) {
                JournalStateStamp::RngStamp stamp;
                if (const JsonValue* c = sv.find("device"))
                    stamp.device = static_cast<int>(c->as_int());
                if (const JsonValue* c = sv.find("link"))
                    stamp.link = c->as_string();
                if (const JsonValue* c = sv.find("dir"))
                    stamp.dir = c->as_string();
                if (const JsonValue* c = sv.find("seed"))
                    stamp.seed = static_cast<std::uint64_t>(c->as_int());
                if (const JsonValue* c = sv.find("draws"))
                    stamp.draws = static_cast<std::uint64_t>(c->as_int());
                entry.state.rng.push_back(std::move(stamp));
            }
        }
    }
    if (JsonValue* p = const_cast<JsonValue*>(v.find("payload")))
        entry.payload = std::move(*p);
    return true;
}

} // namespace

bool JournalWriter::open_new(const std::string& path,
                             const JournalHeader& header) {
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_.good()) return false;
    out_ << journal_header_line(header) << '\n';
    out_.flush();
    return out_.good();
}

bool JournalWriter::open_append(const std::string& path) {
    out_.open(path, std::ios::binary | std::ios::app);
    return out_.good();
}

bool JournalWriter::append(const JournalEntry& entry,
                           std::string_view payload_json) {
    if (!ok()) return false;
    JsonWriter jw(out_);
    jw.begin_object();
    jw.key("device").value(static_cast<std::int64_t>(entry.device));
    jw.key("tag").value(std::string_view(entry.tag));
    jw.key("unit").value(std::string_view(entry.unit));
    jw.key("status").value(std::string_view(entry.status));
    jw.key("attempts").value(static_cast<std::int64_t>(entry.attempts));
    jw.key("reason").value(std::string_view(entry.reason));
    jw.key("t_start_ns").value(entry.t_start_ns);
    jw.key("t_end_ns").value(entry.t_end_ns);
    jw.key("state").begin_object();
    jw.key("client_eph").value(entry.state.client_eph);
    jw.key("server_eph").value(entry.state.server_eph);
    jw.key("udp_pool").value(entry.state.udp_pool);
    jw.key("tcp_pool").value(entry.state.tcp_pool);
    if (!entry.state.rng.empty()) {
        jw.key("rng").begin_array();
        for (const auto& stamp : entry.state.rng) {
            jw.begin_object();
            jw.key("device").value(static_cast<std::int64_t>(stamp.device));
            jw.key("link").value(std::string_view(stamp.link));
            jw.key("dir").value(std::string_view(stamp.dir));
            jw.key("seed").value(stamp.seed);
            jw.key("draws").value(stamp.draws);
            jw.end_object();
        }
        jw.end_array();
    }
    jw.end_object();
    jw.key("payload").raw(payload_json);
    jw.end_object();
    out_ << '\n';
    out_.flush(); // write-ahead: durable before the result is merged
    return out_.good();
}

bool JournalReader::load(const std::string& path, JournalHeader& header,
                         std::vector<JournalEntry>& entries,
                         std::string* error) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        if (error) *error = "cannot open journal '" + path + "'";
        return false;
    }
    entries.clear();
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) continue;
        std::string perr;
        auto v = json_parse(line, &perr);
        if (!v) {
            if (error)
                *error = "line " + std::to_string(lineno) + ": " + perr;
            return false;
        }
        if (lineno == 1) {
            if (!decode_journal_header(*v, header, error)) return false;
            continue;
        }
        JournalEntry entry;
        std::string derr;
        if (!decode_entry(std::move(*v), entry, &derr)) {
            if (error)
                *error = "line " + std::to_string(lineno) + ": " + derr;
            return false;
        }
        entries.push_back(std::move(entry));
    }
    if (lineno == 0) {
        if (error) *error = "empty journal";
        return false;
    }
    return true;
}

bool validate_journal(std::string_view text, std::string* error) {
    std::istringstream in{std::string(text)};
    std::string line;
    std::size_t lineno = 0;
    JournalHeader header;
    int last_device = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) continue;
        std::string perr;
        auto v = json_parse(line, &perr);
        if (!v) {
            if (error)
                *error = "line " + std::to_string(lineno) + ": " + perr;
            return false;
        }
        if (lineno == 1) {
            if (!decode_journal_header(*v, header, error)) return false;
            continue;
        }
        JournalEntry entry;
        std::string derr;
        if (!decode_entry(std::move(*v), entry, &derr)) {
            if (error)
                *error = "line " + std::to_string(lineno) + ": " + derr;
            return false;
        }
        if (entry.device < 0 ||
            entry.device >= static_cast<int>(header.devices.size())) {
            if (error)
                *error = "line " + std::to_string(lineno) +
                         ": device index out of roster";
            return false;
        }
        if (header.devices[static_cast<std::size_t>(entry.device)] !=
            entry.tag) {
            if (error)
                *error = "line " + std::to_string(lineno) +
                         ": tag does not match roster";
            return false;
        }
        if (entry.device < last_device) {
            if (error)
                *error = "line " + std::to_string(lineno) +
                         ": device order regressed";
            return false;
        }
        last_device = entry.device;
    }
    if (lineno == 0) {
        if (error) *error = "empty journal";
        return false;
    }
    return true;
}

} // namespace gatekit::report
