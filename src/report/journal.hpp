// Campaign journal (schema "gatekit.journal.v1"): a write-ahead JSONL
// log of completed (device, test) measurement units. Line 1 is a header
// binding the journal to one campaign (config fingerprint + device
// roster); each following line is one completed unit with its full
// result payload and the resume-state stamp (sim clock + allocator
// cursors) needed to replay the rest of the campaign byte-identically.
//
// The report layer stays harness-agnostic: units and statuses are
// strings here, payloads are opaque JSON. src/harness/results_io.*
// owns the mapping to the typed result structs.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "report/json.hpp"

namespace gatekit::report {

inline constexpr const char* kJournalSchema = "gatekit.journal.v1";

struct JournalHeader {
    std::string schema;
    std::string fingerprint; ///< campaign config hash, hex
    std::vector<std::string> devices; ///< profile tags, slot order
    /// Shard index when this journal is one shard's segment of a
    /// device-sharded campaign, -1 for a whole-campaign journal. The
    /// field is omitted from the header line when absent, so sequential
    /// journals are byte-identical to the pre-shard format.
    int shard = -1;
};

/// Allocator cursors captured at a unit boundary. Restoring them (plus
/// aligning the sim clock to `t_end`) is what makes a resumed campaign's
/// remaining units reproduce the uninterrupted run exactly: sequential
/// port pools and ephemeral-port counters are the only cross-unit state
/// the probes observe.
struct JournalStateStamp {
    std::uint64_t client_eph = 0; ///< test client's next ephemeral port
    std::uint64_t server_eph = 0; ///< test server's next ephemeral port
    std::uint64_t udp_pool = 0;   ///< device's UDP pool cursor
    std::uint64_t tcp_pool = 0;   ///< device's TCP pool cursor
    /// Exact state of one link-impairment RNG at the unit boundary, as
    /// the compact (seed, draw-count) pair util::Rng restores from.
    /// Without these a resumed impaired campaign re-seeds every
    /// impairer from scratch and diverges from the uninterrupted run at
    /// the first fate draw.
    struct RngStamp {
        int device = 0;    ///< slot index owning the link
        std::string link;  ///< "wan" | "lan"
        std::string dir;   ///< "a2b" | "b2a" (Link::Side A/B transmit)
        std::uint64_t seed = 0;
        std::uint64_t draws = 0;
    };
    /// One stamp per installed impairer, capture order (device, then
    /// wan/lan, then a2b/b2a). Empty for unimpaired campaigns, and the
    /// "rng" key is then omitted so lossless journals keep the
    /// pre-impairment byte format.
    std::vector<RngStamp> rng;
};

struct JournalEntry {
    int device = 0;      ///< slot index
    std::string tag;     ///< profile tag (cross-checked on resume)
    std::string unit;    ///< e.g. "udp1", "tcp2", "binding_rate"
    std::string status;  ///< "ok" | "degraded" | "gave_up" | "quarantined"
    int attempts = 1;
    std::string reason;  ///< machine-readable failure reason, "" when ok
    // Sim-clock bounds of the unit, integer nanoseconds: a resumed
    // campaign realigns its clock to the last entry's t_end exactly
    // (doubles in seconds would round and shift every later event).
    std::int64_t t_start_ns = 0;
    std::int64_t t_end_ns = 0;
    JournalStateStamp state;
    JsonValue payload;   ///< unit result, opaque to the report layer
};

/// Append-only journal writer. Every append is flushed before returning,
/// so a campaign killed at any instant loses at most the in-flight unit.
class JournalWriter {
public:
    /// Start a fresh journal (truncates) and write the header line.
    bool open_new(const std::string& path, const JournalHeader& header);

    /// Reopen an existing journal for appending (resumed campaign).
    bool open_append(const std::string& path);

    bool ok() const { return out_.is_open() && out_.good(); }

    /// Append one completed unit. `payload_json` is spliced verbatim as
    /// the entry's "payload" member.
    bool append(const JournalEntry& entry, std::string_view payload_json);

private:
    std::ofstream out_;
};

/// Canonical rendering of a journal header line (no trailing newline).
/// Shared by the journal writer and the shard scheduler's segment
/// carve/merge, so header bytes have exactly one authority.
std::string journal_header_line(const JournalHeader& header);

/// Decode a parsed header line; false (with a description in `error`
/// when non-null) on a missing/wrong schema tag or devices array.
bool decode_journal_header(const JsonValue& v, JournalHeader& header,
                           std::string* error = nullptr);

/// Journal reader: load + structural decode of header and entries.
class JournalReader {
public:
    /// Parse the journal at `path`. Returns false (with a description in
    /// `error` when non-null) on I/O failure or any malformed line.
    static bool load(const std::string& path, JournalHeader& header,
                     std::vector<JournalEntry>& entries,
                     std::string* error = nullptr);
};

/// Structural + schema validation of journal text: header line with the
/// v1 schema tag, every entry line carrying the required fields with a
/// known status, device indices within the roster, and units appearing
/// in non-decreasing device order. Used by the journal_smoke ctest.
bool validate_journal(std::string_view text, std::string* error = nullptr);

} // namespace gatekit::report
