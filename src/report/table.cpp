#include "report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace gatekit::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    GK_EXPECTS(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
    GK_EXPECTS(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]))
                << cells[c];
            if (c + 1 < cells.size()) out << "  ";
        }
        out << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
    std::ostringstream ss;
    print(ss);
    return ss.str();
}

std::string fmt_double(double v, int decimals) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(decimals) << v;
    return ss.str();
}

} // namespace gatekit::report
