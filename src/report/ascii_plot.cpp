#include "report/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <numeric>
#include <ostream>

#include "report/table.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace gatekit::report {

void render_plot(std::ostream& out, const PlotOptions& options,
                 const std::vector<PlotSeries>& series) {
    GK_EXPECTS(!series.empty());
    const auto& first = series.front();
    GK_EXPECTS(!first.points.empty());
    for (const auto& s : series)
        GK_EXPECTS(s.points.size() == first.points.size());

    // Device order: ascending by the first series (paper convention).
    std::vector<std::size_t> order(first.points.size());
    std::iota(order.begin(), order.end(), 0u);
    if (options.sort_by_first_series) {
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return first.points[a].value <
                                    first.points[b].value;
                         });
    }

    double max_v = 0.0, min_v = 1e300;
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            max_v = std::max(max_v, p.value);
            if (p.value > 0) min_v = std::min(min_v, p.value);
        }
    }
    if (max_v <= 0) max_v = 1.0;
    if (min_v > max_v) min_v = max_v;

    auto bar_len = [&](double v) -> int {
        if (v <= 0) return 0;
        double frac;
        if (options.log_scale && max_v > min_v) {
            frac = (std::log10(v) - std::log10(min_v)) /
                   (std::log10(max_v) - std::log10(min_v));
        } else {
            frac = v / max_v;
        }
        frac = std::clamp(frac, 0.0, 1.0);
        return static_cast<int>(std::lround(frac * options.bar_width));
    };

    out << options.title << '\n';
    out << std::string(options.title.size(), '=') << '\n';

    std::size_t label_w = 5;
    for (const auto& p : first.points)
        label_w = std::max(label_w, p.label.size());

    // Header for multi-series output.
    if (series.size() > 1) {
        out << std::setw(static_cast<int>(label_w)) << std::left << "tag";
        for (const auto& s : series)
            out << "  " << std::setw(10) << std::right << s.name;
        out << '\n';
    }

    for (std::size_t idx : order) {
        const auto& p = first.points[idx];
        out << std::setw(static_cast<int>(label_w)) << std::left << p.label;
        for (const auto& s : series) {
            out << "  " << std::setw(10) << std::right
                << fmt_double(s.points[idx].value);
        }
        if (p.q1 && p.q3 && (*p.q3 - *p.q1) > 0.005 * std::max(1.0, p.value)) {
            out << "  [" << fmt_double(*p.q1) << ", " << fmt_double(*p.q3)
                << "]";
        }
        out << "  |" << std::string(static_cast<std::size_t>(
                            std::max(0, bar_len(p.value))), '#')
            << '\n';
    }

    if (options.footer_stats) {
        std::vector<double> xs;
        for (const auto& p : first.points) xs.push_back(p.value);
        out << "Pop. Median = " << fmt_double(stats::median(xs))
            << " " << options.unit
            << "   Pop. Mean = " << fmt_double(stats::mean(xs)) << " "
            << options.unit << '\n';
    }
    out << '\n';
}

} // namespace gatekit::report
