// CSV export of bench results, for replotting with external tools.
#pragma once

#include <string>
#include <vector>

namespace gatekit::report {

class CsvWriter {
public:
    explicit CsvWriter(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    /// Write the file; throws std::runtime_error on I/O failure.
    void save(const std::string& path) const;

    std::string to_string() const;

private:
    static std::string escape(const std::string& cell);
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gatekit::report
