#include "gateway/home_gateway.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gatekit::gateway {

namespace {

/// Filter key for the legacy (parsed-packet) path, matching
/// RuleChain::key_of(PacketView) exactly: ports are present only for
/// non-fragment UDP/TCP whose transport geometry is sound.
RuleChain::Key filter_key_of(const net::Ipv4Packet& pkt) {
    RuleChain::Key k{pkt.h.protocol, pkt.h.src.value(), pkt.h.dst.value(), 0,
                     0};
    if (pkt.h.more_fragments || pkt.h.frag_offset != 0) return k;
    const auto& p = pkt.payload;
    bool have_ports = false;
    if (pkt.h.protocol == net::proto::kUdp && p.size() >= 8) {
        const std::size_t udp_len =
            static_cast<std::size_t>((p[4] << 8) | p[5]);
        have_ports = udp_len == p.size();
    } else if (pkt.h.protocol == net::proto::kTcp && p.size() >= 20) {
        const std::size_t doff = static_cast<std::size_t>(p[12] >> 4) * 4;
        have_ports = doff >= 20 && doff <= p.size();
    }
    if (have_ports) {
        k.sport = static_cast<std::uint16_t>((p[0] << 8) | p[1]);
        k.dport = static_cast<std::uint16_t>((p[2] << 8) | p[3]);
    }
    return k;
}

} // namespace

HomeGateway::HomeGateway(sim::EventLoop& loop, Config config)
    : loop_(loop), config_(std::move(config)),
      host_(loop, "gw-" + config_.profile.tag,
            net::MacAddr::from_index(config_.mac_index)),
      wan_nic_(host_.add_nic(
          config_.profile.same_mac_both_sides
              ? net::MacAddr::from_index(config_.mac_index)
              : net::MacAddr::from_index(config_.mac_index + 1))),
      lan_if_(host_.add_iface()), wan_if_(host_.add_iface_on(wan_nic_)),
      nat_(loop, config_.profile), fwd_(loop, config_.profile.fwd),
      dns_proxy_(host_, config_.profile) {
    lan_if_.configure(config_.lan_addr, config_.lan_prefix_len);
    host_.add_route(config_.lan_addr, config_.lan_prefix_len, lan_if_);

    for (const Rule& r : config_.profile.firewall_rules)
        filter_.add_rule(r);
    filter_compiled_ = config_.profile.firewall_compiled;

    // Datapath hooks: LAN->WAN via the forward hook (dst is never local),
    // WAN->LAN via local intercept (inbound packets target the WAN addr).
    host_.set_forward_hook([this](stack::Iface& in,
                                  const net::Ipv4Packet& pkt,
                                  std::span<const std::uint8_t>) {
        if (stalled()) return; // faulted device forwards nothing
        if (&in == &lan_if_) on_lan_ip(in, pkt);
        // WAN-side packets for non-local destinations: only the plain
        // router fallback forwards into the LAN subnet.
        else if (config_.profile.unknown_proto ==
                     UnknownProtocolPolicy::Untranslated &&
                 pkt.h.dst.same_subnet(config_.lan_addr,
                                       config_.lan_prefix_len)) {
            net::Ipv4Packet out = pkt;
            if (config_.profile.decrement_ttl) {
                if (pkt.h.ttl <= 1) {
                    ttl_expired(pkt);
                    return;
                }
                out.h.ttl = static_cast<std::uint8_t>(pkt.h.ttl - 1);
            }
            auto bytes = out.serialize();
            const auto dst = out.h.dst;
            const std::size_t len = bytes.size();
            fwd_.submit(Direction::Down, len,
                        [this, bytes = std::move(bytes), dst]() mutable {
                            emit_lan(std::move(bytes), dst);
                        });
        }
    });
    host_.set_local_intercept([this](stack::Iface& in,
                                     const net::Ipv4Packet& pkt,
                                     std::span<const std::uint8_t>) {
        // During a fault stall the device is dead to the wire: swallow
        // everything (NAT'd and gateway-local alike) until it recovers.
        if (stalled()) return true;
        if (!nat_.configured()) return false;
        if (&in == &wan_if_) return on_wan_local(pkt);
        // LAN-side packets addressed to the WAN address: hairpin
        // candidates on devices that support it; otherwise they reach
        // the gateway's own stack (e.g. pinging the WAN address).
        if (&in == &lan_if_ && pkt.h.dst == nat_.wan_addr()) {
            auto out = nat_.hairpin(pkt);
            if (!out) return false;
            const auto dst = net::ipv4_dst(*out);
            const std::size_t len = out->size();
            fwd_.submit(Direction::Down, len,
                        [this, bytes = std::move(*out), dst]() mutable {
                            emit_lan(std::move(bytes), dst);
                        });
            return true;
        }
        return false;
    });
    install_fast_hooks();
}

void HomeGateway::install_fast_hooks() {
    if (!config_.enable_fast_path) return;
    host_.nic().set_fast_ip_hook(
        [this](net::PacketView& v, sim::Frame& f) {
            return fast_from_lan(v, f);
        });
    wan_nic_.set_fast_ip_hook(
        [this](net::PacketView& v, sim::Frame& f) {
            return fast_from_wan(v, f);
        });
}

bool HomeGateway::filter_pass(const RuleChain::Key& key) {
    const RuleVerdict v = filter_compiled_ ? filter_.evaluate_compiled(key)
                                           : filter_.evaluate(key);
    return v == RuleVerdict::kAccept;
}

/// An unconfigured empty-accept chain must cost nothing and count
/// nothing — the unfiltered figure benches run through here per packet.
static bool filter_active(const RuleChain& f) {
    return !f.empty() || f.default_verdict() != RuleVerdict::kAccept;
}

bool HomeGateway::fast_from_lan(net::PacketView& v, sim::Frame& frame) {
    // Both legacy hooks swallow all traffic during a fault stall.
    if (stalled()) {
        host_.nic().pool().release(std::move(frame));
        return true;
    }
    if (!nat_.configured()) return false;
    const net::Ipv4Addr dst = v.dst();
    if (dst.is_broadcast() || host_.is_local_addr(dst))
        return false; // gateway-local / hairpin: legacy delivery path
    // Rule out a kSlow replay before the filter sees the packet — a
    // replay would walk the chain a second time and double its counters.
    if (!NatEngine::fast_eligible(v)) return false;
    // TTL expiry needs the pristine parsed packet for the ICMP quote:
    // defer to the legacy path before anything rewrites the frame.
    if (config_.profile.decrement_ttl && v.ttl() <= 1) return false;
    if (filter_active(filter_) && !filter_pass(RuleChain::key_of(v))) {
        host_.nic().pool().release(std::move(frame));
        return true;
    }
    const auto verdict = nat_.outbound_fast(v);
    if (verdict == NatEngine::FastVerdict::kSlow) return false;
    if (verdict == NatEngine::FastVerdict::kDropped) {
        host_.nic().pool().release(std::move(frame));
        return true;
    }
    frame.resize(14u + v.total_len()); // shed any trailing link padding
    fwd_.submit(Direction::Up, v.total_len(),
                [this, f = std::move(frame), dst]() mutable {
                    emit_wan_frame(std::move(f), dst);
                });
    return true;
}

bool HomeGateway::fast_from_wan(net::PacketView& v, sim::Frame& frame) {
    if (stalled()) {
        wan_nic_.pool().release(std::move(frame));
        return true;
    }
    if (!nat_.configured()) return false;
    const net::Ipv4Addr wire_dst = v.dst();
    if (wire_dst.is_broadcast() || !host_.is_local_addr(wire_dst))
        return false; // plain-router fallback (or not ours): legacy
    if (!NatEngine::fast_eligible(v)) return false;
    // Same deferral as the LAN side: an expiring TTL must reach the
    // legacy path unrewritten so the Time Exceeded quote is faithful.
    if (config_.profile.decrement_ttl && v.ttl() <= 1) return false;
    bool handled = false;
    const auto verdict = nat_.inbound_fast(v, handled);
    if (verdict == NatEngine::FastVerdict::kSlow)
        return false; // unknown flow: gateway-local delivery via legacy
    // Like the legacy path, the FORWARD chain sees the internal (post-
    // DNAT) view of the flow.
    if (verdict == NatEngine::FastVerdict::kDropped ||
        (filter_active(filter_) && !filter_pass(RuleChain::key_of(v)))) {
        wan_nic_.pool().release(std::move(frame));
        return true;
    }
    frame.resize(14u + v.total_len());
    const net::Ipv4Addr dst = v.dst(); // internal destination post-rewrite
    fwd_.submit(Direction::Down, v.total_len(),
                [this, f = std::move(frame), dst]() mutable {
                    emit_lan_frame(std::move(f), dst);
                });
    return true;
}

void HomeGateway::emit_wan_frame(sim::Frame frame, net::Ipv4Addr dst) {
    const stack::Route* route = host_.lookup_route(dst);
    if (route == nullptr || route->iface != &wan_if_) {
        wan_nic_.pool().release(std::move(frame));
        return;
    }
    const auto next_hop = route->via ? *route->via : dst;
    if (const auto mac = wan_if_.arp_cache().lookup(next_hop)) {
        std::copy(mac->octets().begin(), mac->octets().end(), frame.begin());
        // mac() returns by value; copy the octets out rather than
        // binding a reference into the dead temporary.
        const auto src = wan_nic_.mac().octets();
        std::copy(src.begin(), src.end(), frame.begin() + 6);
        wan_nic_.send_raw_frame(std::move(frame));
        return;
    }
    // ARP miss: the queue-and-resolve machinery owns datagram bytes, not
    // frames; copy the datagram out and recycle the frame shell.
    net::Bytes dgram(frame.begin() + 14, frame.end());
    wan_nic_.pool().release(std::move(frame));
    wan_if_.send_ip_raw(std::move(dgram), next_hop);
}

void HomeGateway::emit_lan_frame(sim::Frame frame, net::Ipv4Addr dst) {
    const stack::Route* route = host_.lookup_route(dst);
    if (route == nullptr || route->iface != &lan_if_) {
        host_.nic().pool().release(std::move(frame));
        return;
    }
    const auto next_hop = route->via ? *route->via : dst;
    if (const auto mac = lan_if_.arp_cache().lookup(next_hop)) {
        std::copy(mac->octets().begin(), mac->octets().end(), frame.begin());
        const auto src = host_.nic().mac().octets();
        std::copy(src.begin(), src.end(), frame.begin() + 6);
        host_.nic().send_raw_frame(std::move(frame));
        return;
    }
    net::Bytes dgram(frame.begin() + 14, frame.end());
    host_.nic().pool().release(std::move(frame));
    lan_if_.send_ip_raw(std::move(dgram), next_hop);
}

void HomeGateway::connect_lan(sim::Link& link, sim::Link::Side side) {
    host_.nic().connect(link, side);
}

void HomeGateway::connect_wan(sim::Link& link, sim::Link::Side side) {
    wan_nic_.connect(link, side);
}

void HomeGateway::start(std::function<void(net::Ipv4Addr)> on_ready) {
    on_ready_ = std::move(on_ready);
    wan_dhcp_ = std::make_unique<stack::DhcpClient>(host_, wan_if_);
    wan_dhcp_->start([this](const stack::DhcpLease& lease) {
        host_.add_route(lease.addr, lease.prefix_len, wan_if_);
        if (!lease.router.is_unspecified()) {
            host_.add_route(net::Ipv4Addr::any(), 0, wan_if_, lease.router);
            // Off-link egress (e.g. toward subnets behind an upstream
            // CGN) resolves the lease's router instead of ARPing for
            // the final destination.
            wan_if_.set_gateway(lease.router);
        }
        nat_.set_addresses(config_.lan_addr, config_.lan_prefix_len,
                           lease.addr);

        // LAN-side services come up once the uplink works.
        stack::DhcpServerConfig lan_cfg;
        lan_cfg.pool_base = config_.lan_pool_base;
        lan_cfg.prefix_len = config_.lan_prefix_len;
        lan_cfg.router = config_.lan_addr;
        lan_cfg.dns_server = config_.lan_addr; // we proxy DNS
        lan_dhcp_ = std::make_unique<stack::DhcpServer>(host_, lan_if_,
                                                        lan_cfg);
        dns_proxy_.start({lease.dns_server, net::kDnsPort}, lease.addr);
        if (on_ready_) on_ready_(lease.addr);
    });
}

void HomeGateway::bind_observability(obs::MetricsRegistry* reg,
                                     obs::Tracer* tracer,
                                     const std::string& device) {
    tracer_ = tracer;
    obs_device_ = device;
    if (reg != nullptr) {
        nat_.bind_observability(*reg, device);
        fwd_.bind_observability(*reg, device);
        dns_proxy_.bind_observability(*reg, device);
        if (!filter_.empty()) filter_.attach_metrics(*reg, device);
        m_faults_ = reg->counter("gateway.faults", {{"device", device}});
    }
    host_.bind_observability(reg, tracer);
}

void HomeGateway::inject_fault(const GatewayFault& fault) {
    ++faults_injected_;
    obs::inc(m_faults_);
    if (obs::trace_on(tracer_)) {
        auto ev = tracer_->event(obs_device_, "gateway", "fault");
        ev.with("flush_nat", static_cast<std::int64_t>(fault.flush_nat));
        ev.with("stall_ns", static_cast<std::int64_t>(fault.stall.count()));
        tracer_->emit(ev);
    }
    if (fault.flush_nat) nat_.flush();
    if (fault.stall > sim::Duration::zero())
        stalled_until_ = std::max(stalled_until_, loop_.now() + fault.stall);
    // Dump the flight recorder after applying the fault so the window
    // shows what led up to it.
    if (obs::trace_on(tracer_)) tracer_->trigger(obs_device_, "gateway.fault");
}

void HomeGateway::on_lan_ip(stack::Iface&, const net::Ipv4Packet& pkt) {
    if (!nat_.configured()) return;
    // Linux order: the forwarding path's TTL check (and its Time
    // Exceeded) precedes the FORWARD chain. The NAT engine's own
    // ttl<=1 drop stays as a backstop for direct engine users.
    if (config_.profile.decrement_ttl && pkt.h.ttl <= 1) {
        ttl_expired(pkt);
        return;
    }
    if (filter_active(filter_) && !filter_pass(filter_key_of(pkt)))
        return; // FORWARD chain, pre-SNAT (internal view of the flow)
    // Outbound translation never rewrites the destination, so route on
    // the ingress parse instead of re-reading the header out of the
    // rewritten bytes — drop accounting and forwarding then agree on
    // one view of the packet.
    const auto dst = pkt.h.dst;
    auto out = nat_.outbound(pkt);
    if (!out) return;
    // Read the size before the lambda capture moves the buffer out.
    const std::size_t len = out->size();
    fwd_.submit(Direction::Up, len,
                [this, bytes = std::move(*out), dst]() mutable {
                    emit_wan(std::move(bytes), dst);
                });
}

bool HomeGateway::on_wan_local(const net::Ipv4Packet& pkt) {
    bool handled = false;
    auto out = nat_.inbound(pkt, handled);
    if (!handled) return false; // gateway-local traffic (DHCP, DNS, ping)
    // The engine answered "this flow is NAT'd and would be forwarded";
    // only now is a TTL of 1 a forwarding event rather than local
    // delivery. Pre-fix the translated packet left here with TTL 0.
    if (out && config_.profile.decrement_ttl && pkt.h.ttl <= 1) {
        ttl_expired(pkt);
        return true;
    }
    if (out) {
        if (filter_active(filter_)) {
            // FORWARD chain, post-DNAT: key off the translated bytes so
            // the chain sees the internal view in both directions.
            const auto iv = net::PacketView::parse(
                std::span<std::uint8_t>(out->data(), out->size()));
            if (iv && !filter_pass(RuleChain::key_of(*iv)))
                return true; // filtered; the packet was still ours
        }
        const auto dst = net::ipv4_dst(*out);
        const std::size_t len = out->size();
        fwd_.submit(Direction::Down, len,
                    [this, bytes = std::move(*out), dst]() mutable {
                        emit_lan(std::move(bytes), dst);
                    });
    }
    return true;
}

void HomeGateway::ttl_expired(const net::Ipv4Packet& pkt) {
    if (pkt.h.src.is_unspecified() || pkt.h.src.is_broadcast()) return;
    const auto original = pkt.serialize();
    const auto err = net::IcmpMessage::make_error(
        net::IcmpType::TimeExceeded, net::icmp_code::kTtlExceeded, 0,
        original);
    // Routed back toward the source; the egress interface's address
    // becomes the ICMP source (LAN address upstream, WAN downstream).
    host_.send_icmp(net::Ipv4Addr::any(), pkt.h.src, err);
}

void HomeGateway::emit_wan(net::Bytes datagram, net::Ipv4Addr dst) {
    const stack::Route* route = host_.lookup_route(dst);
    if (route == nullptr || route->iface != &wan_if_) return;
    const auto next_hop = route->via ? *route->via : dst;
    host_.send_raw(wan_if_, std::move(datagram), next_hop);
}

void HomeGateway::emit_lan(net::Bytes datagram, net::Ipv4Addr dst) {
    // Route-table-driven (mirrors emit_wan): anything whose best route
    // does not leave via the LAN port is dropped here, which preserves
    // the old on-link-only gate while allowing routed LAN-side subnets.
    const stack::Route* route = host_.lookup_route(dst);
    if (route == nullptr || route->iface != &lan_if_) return;
    host_.send_raw(lan_if_, std::move(datagram),
                   route->via ? *route->via : dst);
}

} // namespace gatekit::gateway
