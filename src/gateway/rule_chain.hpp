// Netfilter-style sequential rule chain, the workload Niemann et al.
// ("Performance Evaluation of netfilter") measure on Linux gateways:
// every packet walks an ordered rule list until the first match, so
// forwarding cost grows linearly with chain length. The chain here
// mirrors the iptables FORWARD-chain shape — per-rule 5-tuple matchers
// (protocol, source/destination prefixes, port ranges), ACCEPT/DROP
// verdicts, a default policy, and per-rule hit counters.
//
// A compiled single-pass classifier (bit-vector scheme in the style of
// Lakshman & Stiliadis) is built lazily from the same rule list: each
// dimension's elementary intervals carry a bitmask of the rules they
// satisfy, a lookup ANDs five masks and takes the lowest set bit. That
// turns the 1000-rule case from a 1000-step walk into five binary
// searches plus a 16-word AND, which is what flattens the rule-count
// curve in bench/rulechain_sweep.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/addr.hpp"
#include "net/packet_view.hpp"
#include "obs/metrics.hpp"

namespace gatekit::gateway {

enum class RuleVerdict : std::uint8_t { kAccept, kDrop };

/// Inclusive port range; the default [0, 65535] matches anything,
/// including the port-less protocols (whose key ports read as 0).
struct PortRange {
    std::uint16_t lo = 0;
    std::uint16_t hi = 65535;

    constexpr bool contains(std::uint16_t p) const {
        return p >= lo && p <= hi;
    }
    constexpr bool is_any() const { return lo == 0 && hi == 65535; }
};

/// One chain entry. Prefix length 0 (or protocol 0) means "any", as in
/// an iptables rule with that matcher omitted.
struct Rule {
    std::uint8_t proto = 0; ///< IP protocol number; 0 = any
    net::Ipv4Addr src_net;
    int src_prefix_len = 0;
    net::Ipv4Addr dst_net;
    int dst_prefix_len = 0;
    PortRange sport;
    PortRange dport;
    RuleVerdict verdict = RuleVerdict::kAccept;
};

class RuleChain {
public:
    /// The packet fields a rule can match on, extracted once per packet.
    struct Key {
        std::uint8_t proto = 0;
        std::uint32_t src = 0;
        std::uint32_t dst = 0;
        std::uint16_t sport = 0;
        std::uint16_t dport = 0;
    };

    /// Ports read 0 when the view has no parsed L4 header (fragments,
    /// ICMP, malformed transport) — matching netfilter, where a port
    /// matcher cannot match a packet that has no ports.
    static Key key_of(const net::PacketView& v) {
        return Key{v.protocol(), v.src().value(), v.dst().value(),
                   v.has_l4() ? v.src_port() : std::uint16_t{0},
                   v.has_l4() ? v.dst_port() : std::uint16_t{0}};
    }

    void add_rule(Rule r);
    void clear();
    std::size_t size() const { return rules_.size(); }
    bool empty() const { return rules_.empty(); }

    void set_default_verdict(RuleVerdict v) { default_verdict_ = v; }
    RuleVerdict default_verdict() const { return default_verdict_; }

    /// Sequential first-match walk — the netfilter cost model.
    RuleVerdict evaluate(const Key& k);

    /// Single-pass compiled classifier; same verdicts and counters as
    /// evaluate() for every key (compiles lazily after rule changes).
    RuleVerdict evaluate_compiled(const Key& k);

    /// Packets whose first match was rule `i` (either evaluate flavour).
    std::uint64_t hits(std::size_t i) const { return rules_[i].hit_count; }
    /// Packets that fell through to the default policy.
    std::uint64_t default_hits() const { return default_hits_; }

    /// Register per-rule hit counters plus chain totals in `reg` under
    /// `rule_chain_*` with a chain label; pre-existing counts carry over.
    void attach_metrics(obs::MetricsRegistry& reg, const std::string& chain);

private:
    struct Entry {
        Rule rule;
        std::uint64_t hit_count = 0;
        obs::Counter* obs_hits = nullptr;
    };

    /// One match dimension of the compiled form: sorted elementary
    /// interval starts plus, per interval, the bitmask of rules whose
    /// matcher covers it.
    struct Dimension {
        std::vector<std::uint32_t> starts; ///< starts[0] == 0 always
        std::vector<std::uint64_t> masks;  ///< starts.size() * words each
    };

    static bool matches(const Rule& r, const Key& k);
    void record_hit(Entry& e);
    void record_default();
    void compile();
    const std::uint64_t* dim_lookup(const Dimension& d,
                                    std::uint32_t v) const;

    std::vector<Entry> rules_;
    RuleVerdict default_verdict_ = RuleVerdict::kAccept;
    std::uint64_t default_hits_ = 0;
    obs::Counter* obs_default_ = nullptr;
    obs::Counter* obs_accepted_ = nullptr;
    obs::Counter* obs_dropped_ = nullptr;

    bool compiled_valid_ = false;
    std::size_t words_ = 0; ///< 64-bit words per rule bitmask
    Dimension dim_proto_, dim_src_, dim_dst_, dim_sport_, dim_dport_;
    std::vector<std::uint64_t> and_scratch_;
};

} // namespace gatekit::gateway
