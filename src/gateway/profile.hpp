// DeviceProfile: the complete behavioral parameterization of one home
// gateway model. Every application-observable quirk the paper measured is
// a knob here; src/devices/profiles.cpp instantiates 34 of these,
// calibrated to the paper's figures and tables.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gateway/rule_chain.hpp"
#include "sim/time.hpp"

namespace gatekit::gateway {

/// External port selection for new bindings (paper test UDP-4).
enum class PortAllocation {
    PreserveSourcePort, ///< use the internal source port when free (27/34)
    Sequential,         ///< always pick the next pool port (7/34)
    /// "Paired" pooling (RFC 6888 APP): the internal endpoint's first
    /// flow draws the next pool port; later flows from the same endpoint
    /// reuse it while any of them lives. Endpoint-independent mapping
    /// confined to the pool — the CGN posture, where preserving the
    /// subscriber's source port is impossible (it lies outside the
    /// subscriber's assigned block). No calibrated device uses it.
    ReusePooled,
};

/// What happens to an unknown transport protocol (paper section 4.3).
enum class UnknownProtocolPolicy {
    Drop,            ///< firewall it (10/34)
    Untranslated,    ///< route it through with no rewriting at all (4/34)
    TranslateIpOnly, ///< rewrite only the IP source address (20/34)
};

/// What the NAT does with an unsolicited WAN-side TCP SYN (no ACK bit).
/// The paper's devices all forward such segments into the TCP state
/// machine (where an unmatched one draws a gateway-local RST); the ReDAN
/// study (arXiv:2410.21984) shows that posture lets an off-path attacker
/// poison transitory binding state, so hardened profiles can drop or
/// tarpit instead.
enum class WanSynPolicy {
    Forward, ///< legacy behavior: hand the SYN to the state machine
    Drop,    ///< silently discard; no state touched, no RST reflected
    Tarpit,  ///< like Drop, but counted separately for operator telemetry
};

/// DNS proxy behavior on TCP port 53 (paper section 4.3, "DNS").
enum class DnsTcpMode {
    NoListen,    ///< connection refused (20/34)
    AcceptOnly,  ///< accepts the connection but never answers (4/34)
    ProxyTcp,    ///< forwards the query upstream over TCP (9/34)
    ProxyViaUdp, ///< forwards the query upstream over UDP (ap)
};

/// The ten ICMP error kinds the study probes, for each of TCP and UDP.
enum class IcmpKind : int {
    ReassemblyTimeExceeded = 0,
    FragNeeded,
    ParamProblem,
    SourceRouteFailed,
    SourceQuench,
    TtlExceeded,
    HostUnreachable,
    NetUnreachable,
    PortUnreachable,
    ProtoUnreachable,
    kCount,
};
inline constexpr int kIcmpKindCount = static_cast<int>(IcmpKind::kCount);

const char* to_string(IcmpKind kind);

/// Per-transport bitmask of ICMP kinds the device translates.
class IcmpTranslationSet {
public:
    constexpr IcmpTranslationSet() = default;
    static constexpr IcmpTranslationSet all() {
        IcmpTranslationSet s;
        s.bits_ = (1u << kIcmpKindCount) - 1;
        return s;
    }
    static constexpr IcmpTranslationSet none() { return {}; }

    constexpr IcmpTranslationSet& set(IcmpKind k, bool on = true) {
        const auto bit = 1u << static_cast<int>(k);
        bits_ = on ? (bits_ | bit) : (bits_ & ~bit);
        return *this;
    }
    constexpr bool translates(IcmpKind k) const {
        return (bits_ >> static_cast<int>(k)) & 1u;
    }
    constexpr int count() const {
        int n = 0;
        for (int i = 0; i < kIcmpKindCount; ++i)
            n += static_cast<int>((bits_ >> i) & 1u);
        return n;
    }

private:
    std::uint32_t bits_ = 0;
};

/// UDP binding timer policy. A binding starts NEW; the first inbound
/// packet confirms it. Refreshes set the timer to the state-appropriate
/// value, which is how the paper's UDP-1/2/3 differences arise.
struct UdpTimerPolicy {
    sim::Duration initial{std::chrono::seconds(90)}; ///< UDP-1 measures this
    /// Timer granted when an inbound packet refreshes the binding (UDP-2).
    sim::Duration inbound_refresh{std::chrono::seconds(180)};
    /// Timer granted when a later outbound packet refreshes it (UDP-3).
    sim::Duration outbound_refresh{std::chrono::seconds(180)};
    bool inbound_refreshes = true;
    bool outbound_refreshes = true;
    /// Coarse binding-timer granularity: expiries snap up to multiples of
    /// this (0 = exact). Produces the wide inter-quartile ranges the paper
    /// saw on we/al/je/ng5.
    sim::Duration granularity{0};
    /// Per-destination-port overrides of all three timers (dl8 shortens
    /// DNS bindings; paper test UDP-5).
    std::map<std::uint16_t, sim::Duration> per_service;
};

/// Forwarding performance model: per-direction line-processing rates, one
/// shared CPU, and drop-tail ingress buffers. Throughput (TCP-2) and
/// queuing delay (TCP-3) both emerge from these five numbers.
struct ForwardingModel {
    double down_mbps = 100.0; ///< WAN->LAN direction service rate
    double up_mbps = 100.0;   ///< LAN->WAN direction service rate
    double aggregate_mbps = 200.0; ///< shared CPU budget across directions
    std::size_t buffer_down_bytes = 64 * 1024;
    std::size_t buffer_up_bytes = 64 * 1024;
    /// Fixed per-packet processing latency.
    sim::Duration processing_delay{std::chrono::microseconds(100)};
    /// Timer-batched forwarding: deliveries snap up to multiples of this
    /// tick (0 = immediate). Software gateways that schedule forwarding
    /// on a coarse timer add large delays even at full throughput — the
    /// paper's dl8/ap/ng4 pattern of high TCP-3 delay with decent TCP-2
    /// rates. The per-packet delay is uniform in [0, tick), median ~tick/2.
    sim::Duration forwarding_tick{0};
};

struct DeviceProfile {
    // --- identity (paper Table 1) --------------------------------------
    std::string tag;      ///< shorthand used throughout the paper
    std::string vendor;
    std::string model;
    std::string firmware;

    // --- UDP binding behavior -------------------------------------------
    UdpTimerPolicy udp;

    // --- TCP binding behavior -------------------------------------------
    /// Idle timeout of an established TCP binding (TCP-1). Values above
    /// 24 h exceed the paper's measurement cutoff.
    sim::Duration tcp_established_timeout{std::chrono::minutes(60)};
    /// Timeout while the handshake is incomplete.
    sim::Duration tcp_transitory_timeout{std::chrono::minutes(4)};
    /// Linger after observing both FINs before dropping the binding.
    sim::Duration tcp_fin_linger{std::chrono::seconds(10)};
    /// Maximum concurrent TCP bindings (TCP-4).
    int max_tcp_bindings = 1024;
    /// Maximum concurrent UDP bindings. Negative = follow
    /// max_tcp_bindings, which matches every calibrated device (the paper
    /// only measured the TCP cap, so the UDP pool defaults to the same
    /// budget).
    int max_udp_bindings = -1;

    // --- port allocation (UDP-4) ----------------------------------------
    PortAllocation port_allocation = PortAllocation::PreserveSourcePort;
    /// Quarantine on a just-expired binding's port: a new binding for the
    /// same flow within this window gets a fresh port instead (the 4/34
    /// "creates a new binding" devices). Zero = immediate reuse.
    sim::Duration port_quarantine{0};
    std::uint16_t pool_begin = 20000; ///< sequential allocation pool
    std::uint16_t pool_end = 29999;

    // --- ICMP translation (Table 2) --------------------------------------
    IcmpTranslationSet icmp_tcp;
    IcmpTranslationSet icmp_udp;
    /// Errors concerning ICMP-echo bindings (Table 2 "ICMP: Host Unreach.").
    bool icmp_query_errors_translated = true;
    /// Rewrites the transport header embedded in ICMP payloads (ports +
    /// transport checksum); ~half the devices fail this.
    bool fix_embedded_transport = true;
    /// Fixes the embedded IP header checksum after rewriting it
    /// (zy1 and ls1 do not).
    bool fix_embedded_ip_checksum = true;
    /// ls2: turns TCP-related ICMP errors into (invalid) TCP RSTs.
    bool tcp_icmp_becomes_rst = false;

    // --- unknown transport protocols (SCTP/DCCP) -------------------------
    UnknownProtocolPolicy unknown_proto = UnknownProtocolPolicy::Drop;
    /// With TranslateIpOnly: whether inbound packets of unknown protocols
    /// are forwarded back (2 of the 20 ip-only devices firewall them,
    /// which is why only 18 pass SCTP).
    bool unknown_proto_inbound_allowed = true;
    sim::Duration unknown_proto_timeout{std::chrono::seconds(120)};

    // --- DNS proxy --------------------------------------------------------
    bool dns_udp_proxy = true;
    DnsTcpMode dns_tcp = DnsTcpMode::NoListen;
    /// Strips EDNS0 OPT records from forwarded queries — the breakage the
    /// DNSSEC router studies ([1], [5], [9] in the paper) found: upstream
    /// servers then truncate anything beyond 512 bytes.
    bool dns_proxy_strips_edns = false;
    /// Largest UDP response the proxy forwards; larger ones are silently
    /// dropped (the other common DNSSEC failure mode). 0 = unlimited.
    std::size_t dns_proxy_max_udp = 0;

    /// Hairpinning: a LAN host can reach another LAN host through its
    /// external mapping (tested in the paper's related work [14]; kept as
    /// a behavior knob and probed by the future-work bench).
    bool hairpin = false;

    // --- IP-level quirks (paper section 4.4) ------------------------------
    bool decrement_ttl = true;
    bool honor_record_route = false;
    bool same_mac_both_sides = false;

    // --- forwarding performance -------------------------------------------
    ForwardingModel fwd;

    // --- firewall (netfilter-style FORWARD chain) -------------------------
    /// Ordered FORWARD-chain rules installed into the gateway's RuleChain
    /// at construction. Empty (every calibrated device) means no
    /// filtering and zero per-packet cost; the population sampler can
    /// synthesize chains so rule-walk cost and per-rule hit counters
    /// appear in campaign metrics.
    std::vector<Rule> firewall_rules;
    /// Evaluate the chain via the compiled single-pass classifier
    /// instead of the sequential walk (same verdicts and counters).
    bool firewall_compiled = false;

    // --- hardening (off-path attack battery) ------------------------------
    // Every knob below defaults to the measured legacy behavior of the 34
    // calibrated devices; profile_identity() emits the section only when
    // one is non-default, and the NAT hot paths pay a single untaken
    // branch while they stay off. bench/attack_matrix ablates each knob
    // against the attack it closes.
    /// Purge the matched binding when an inbound hard ICMP error
    /// (Port/Host/Proto-Unreachable) is accepted for it — the
    /// conntrack-style teardown posture ReDAN abuses for off-path DoS.
    bool icmp_error_teardown = false;
    /// Require the embedded quote of an inbound ICMP error to be
    /// structurally complete (full 8 transport bytes, sane embedded UDP
    /// length) before acting on it; rejects the truncated/malformed
    /// quotes attack class 4 sends. Default-off devices accept any quote
    /// carrying at least the two port fields.
    bool validate_embedded_binding = false;
    /// Per-second budget of inbound WAN ICMP errors the NAT will process;
    /// excess errors are dropped before any binding lookup, so an
    /// attacker's port sweep exhausts its own budget. 0 = unlimited.
    int icmp_error_rate_limit = 0;
    /// Disposition of unsolicited inbound SYNs; non-Forward values also
    /// enable strict handshake tracking (a binding that has not seen an
    /// inbound SYN-ACK accepts nothing else from the WAN until it is
    /// established).
    WanSynPolicy wan_syn_policy = WanSynPolicy::Forward;
    /// Maximum live bindings one internal host may hold per transport
    /// table; contains single-host port-exhaustion races. -1 = unlimited.
    int per_host_binding_budget = -1;

    /// Check the invariants every consumer of a profile assumes. Returns
    /// "" when the profile is usable, else a short description of the
    /// first violated invariant. The calibrated profiles satisfy all of
    /// these by construction; the population sampler and hand-built test
    /// profiles are the ones that can stray:
    ///   * every UDP/TCP timeout and the unknown-protocol timeout > 0;
    ///   * granularity, quarantine, fin linger, processing delay, and
    ///     forwarding tick >= 0;
    ///   * max_tcp_bindings > 0; max_udp_bindings > 0 or exactly -1
    ///     (the documented follow-TCP sentinel);
    ///   * pool_begin >= 1 and pool_begin <= pool_end;
    ///   * every ForwardingModel rate > 0 and both buffers > 0;
    ///   * every firewall rule has prefix lengths in [0, 32] and
    ///     non-inverted port ranges (lo <= hi);
    ///   * icmp_error_rate_limit >= 0; per_host_binding_budget > 0 or
    ///     exactly -1 (the unlimited sentinel).
    /// Testbed::add_device rejects profiles that fail this, so a bad
    /// sample can never silently produce a nonsense measurement.
    std::string validate() const;
};

/// Canonical one-line text of every behavioral knob (identity fields
/// included). Two profiles produce the same identity iff a campaign
/// cannot distinguish them, so hashing identities — rather than tags —
/// binds a journal fingerprint to sampled rosters whose tags ("p0",
/// "p1", ...) carry no behavioral information.
std::string profile_identity(const DeviceProfile& p);

} // namespace gatekit::gateway
