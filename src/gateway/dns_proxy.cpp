#include "gateway/dns_proxy.hpp"

#include "stack/host.hpp"
#include "stack/tcp_socket.hpp"
#include "stack/udp_socket.hpp"

namespace gatekit::gateway {

DnsProxy::DnsProxy(stack::Host& host, const DeviceProfile& profile)
    : host_(host), profile_(profile) {}

DnsProxy::~DnsProxy() {
    if (lan_sock_ != nullptr) host_.udp_close(*lan_sock_);
    if (upstream_sock_ != nullptr) host_.udp_close(*upstream_sock_);
    if (tcp_listener_ != nullptr) host_.tcp_close_listener(*tcp_listener_);
}

void DnsProxy::start(net::Endpoint upstream, net::Ipv4Addr wan_addr) {
    upstream_ = upstream;
    wan_addr_ = wan_addr;

    if (profile_.dns_udp_proxy) {
        lan_sock_ = &host_.udp_open(net::Ipv4Addr::any(), net::kDnsPort);
        lan_sock_->set_receive_handler(
            [this](net::Endpoint src, std::span<const std::uint8_t> payload,
                   const net::Ipv4Packet&) { on_lan_query(src, payload); });
        upstream_sock_ = &host_.udp_open(net::Ipv4Addr::any(), 0);
        upstream_sock_->set_receive_handler(
            [this](net::Endpoint, std::span<const std::uint8_t> payload,
                   const net::Ipv4Packet&) { on_upstream_response(payload); });
    }

    if (profile_.dns_tcp != DnsTcpMode::NoListen) {
        tcp_listener_ = &host_.tcp_listen(net::kDnsPort);
        tcp_listener_->set_accept_handler(
            [this](stack::TcpSocket& conn) { on_tcp_conn(conn); });
    }
}

void DnsProxy::on_lan_query(net::Endpoint client,
                            std::span<const std::uint8_t> payload) {
    net::DnsMessage query;
    try {
        query = net::DnsMessage::parse(payload);
    } catch (const net::ParseError&) {
        return;
    }
    if (query.is_response) return;
    pending_[query.id] = client;
    ++udp_forwarded_;
    if (profile_.dns_proxy_strips_edns && query.edns_udp_size) {
        // Re-serialize without the OPT record (the studies' observed
        // breakage: the proxy "cleans" queries it does not understand).
        query.edns_udp_size.reset();
        upstream_sock_->send_to(upstream_, query.serialize());
        return;
    }
    upstream_sock_->send_to(upstream_,
                            net::Bytes(payload.begin(), payload.end()));
}

void DnsProxy::on_upstream_response(std::span<const std::uint8_t> payload) {
    net::DnsMessage resp;
    try {
        resp = net::DnsMessage::parse(payload);
    } catch (const net::ParseError&) {
        return;
    }
    auto it = pending_.find(resp.id);
    if (it == pending_.end()) return;
    if (profile_.dns_proxy_max_udp != 0 &&
        payload.size() > profile_.dns_proxy_max_udp)
        return; // silently dropped, as the broken devices do
    lan_sock_->send_to(it->second, net::Bytes(payload.begin(), payload.end()));
    pending_.erase(it);
}

void DnsProxy::on_tcp_conn(stack::TcpSocket& conn) {
    ++tcp_accepted_;
    if (profile_.dns_tcp == DnsTcpMode::AcceptOnly) {
        // Accepts the connection, reads, answers nothing. (Real devices
        // in this class leave dig hanging until its timeout.)
        conn.on_data = [](std::span<const std::uint8_t>) {};
        conn.on_remote_close = [&conn] { conn.close(); };
        return;
    }
    auto framer = std::make_shared<stack::DnsTcpFramer>();
    tcp_framers_[&conn] = framer;
    conn.on_data = [this, framer, &conn](std::span<const std::uint8_t> d) {
        framer->feed(d);
        net::Bytes query;
        while (framer->next(query)) forward_tcp_query(conn, query);
    };
    conn.on_remote_close = [this, &conn] {
        tcp_framers_.erase(&conn);
        conn.close();
    };
    conn.on_error = [this, &conn](const std::string&) {
        tcp_framers_.erase(&conn);
    };
}

void DnsProxy::forward_tcp_query(stack::TcpSocket& client_conn,
                                 net::Bytes query) {
    if (profile_.dns_tcp == DnsTcpMode::ProxyViaUdp) {
        // ap's quirk: the TCP-received query goes upstream over UDP.
        net::DnsMessage q;
        try {
            q = net::DnsMessage::parse(query);
        } catch (const net::ParseError&) {
            return;
        }
        auto& sock = host_.udp_open(net::Ipv4Addr::any(), 0);
        auto* client = &client_conn;
        sock.set_receive_handler(
            [this, client, &sock](net::Endpoint,
                                  std::span<const std::uint8_t> payload,
                                  const net::Ipv4Packet&) {
                client->send(stack::DnsTcpFramer::frame(
                    net::Bytes(payload.begin(), payload.end())));
                host_.udp_close(sock);
            });
        sock.send_to(upstream_, std::move(query));
        return;
    }

    // ProxyTcp: one upstream TCP connection per query.
    auto& up = host_.tcp_connect(wan_addr_, 0, upstream_);
    auto up_framer = std::make_shared<stack::DnsTcpFramer>();
    auto* client = &client_conn;
    up.on_established = [&up, q = std::move(query)] {
        up.send(stack::DnsTcpFramer::frame(q));
    };
    up.on_data = [this, up_framer, client,
                  &up](std::span<const std::uint8_t> d) {
        up_framer->feed(d);
        net::Bytes resp;
        while (up_framer->next(resp)) {
            if (tcp_framers_.contains(client))
                client->send(stack::DnsTcpFramer::frame(resp));
            up.close();
        }
    };
    up.on_remote_close = [&up] { up.close(); };
}

} // namespace gatekit::gateway
