#include "gateway/dns_proxy.hpp"

#include "stack/host.hpp"
#include "stack/tcp_socket.hpp"
#include "stack/udp_socket.hpp"

namespace gatekit::gateway {

DnsProxy::DnsProxy(stack::Host& host, const DeviceProfile& profile)
    : host_(host), profile_(profile) {}

DnsProxy::~DnsProxy() {
    while (!udp_inflight_.empty())
        close_udp_inflight(udp_inflight_.size() - 1, true);
    while (!tcp_inflight_.empty())
        close_tcp_inflight(tcp_inflight_.size() - 1, true);
    if (lan_sock_ != nullptr) host_.udp_close(*lan_sock_);
    if (upstream_sock_ != nullptr) host_.udp_close(*upstream_sock_);
    if (tcp_listener_ != nullptr) host_.tcp_close_listener(*tcp_listener_);
}

void DnsProxy::start(net::Endpoint upstream, net::Ipv4Addr wan_addr) {
    upstream_ = upstream;
    wan_addr_ = wan_addr;

    if (profile_.dns_udp_proxy) {
        lan_sock_ = &host_.udp_open(net::Ipv4Addr::any(), net::kDnsPort);
        lan_sock_->set_receive_handler(
            [this](net::Endpoint src, std::span<const std::uint8_t> payload,
                   const net::Ipv4Packet&) { on_lan_query(src, payload); });
        upstream_sock_ = &host_.udp_open(net::Ipv4Addr::any(), 0);
        upstream_sock_->set_receive_handler(
            [this](net::Endpoint, std::span<const std::uint8_t> payload,
                   const net::Ipv4Packet&) { on_upstream_response(payload); });
    }

    if (profile_.dns_tcp != DnsTcpMode::NoListen) {
        tcp_listener_ = &host_.tcp_listen(net::kDnsPort);
        tcp_listener_->set_accept_handler(
            [this](stack::TcpSocket& conn) { on_tcp_conn(conn); });
    }
}

void DnsProxy::bind_observability(obs::MetricsRegistry& reg,
                                  const std::string& device) {
    obs::Labels labels{{"device", device}};
    m_udp_queries_ = reg.counter("dns.udp.queries", labels);
    m_tcp_accepted_ = reg.counter("dns.tcp.accepted", labels);
    m_oversize_drops_ = reg.counter("dns.oversize.drops", labels);
    m_pending_depth_ = reg.gauge("dns.pending.depth", labels);
}

void DnsProxy::on_lan_query(net::Endpoint client,
                            std::span<const std::uint8_t> payload) {
    net::DnsMessage query;
    try {
        query = net::DnsMessage::parse(payload);
    } catch (const net::ParseError&) {
        return;
    }
    if (query.is_response) return;
    prune_pending();
    pending_[PendingKey{query.id, client}] = host_.loop().now();
    ++udp_forwarded_;
    obs::inc(m_udp_queries_);
    obs::set(m_pending_depth_, static_cast<double>(pending_.size()));
    if (profile_.dns_proxy_strips_edns && query.edns_udp_size) {
        // Re-serialize without the OPT record (the studies' observed
        // breakage: the proxy "cleans" queries it does not understand).
        query.edns_udp_size.reset();
        upstream_sock_->send_to(upstream_, query.serialize());
        return;
    }
    upstream_sock_->send_to(upstream_,
                            net::Bytes(payload.begin(), payload.end()));
}

void DnsProxy::on_upstream_response(std::span<const std::uint8_t> payload) {
    net::DnsMessage resp;
    try {
        resp = net::DnsMessage::parse(payload);
    } catch (const net::ParseError&) {
        return;
    }
    // Entries sharing an id are adjacent in key order; the response is
    // matched to the oldest of them (map order within one id is by
    // client, but collisions are rare enough that FIFO-by-key is fine).
    auto it = pending_.lower_bound(PendingKey{resp.id, {}});
    if (it == pending_.end() || it->first.id != resp.id) return;
    // Consume the pending entry even when the response is then dropped:
    // the transaction is over either way, and keeping it would leak the
    // slot and misdirect a later unrelated response with the same id.
    const auto client = it->first.client;
    pending_.erase(it);
    obs::set(m_pending_depth_, static_cast<double>(pending_.size()));
    if (profile_.dns_proxy_max_udp != 0 &&
        payload.size() > profile_.dns_proxy_max_udp) {
        // Silently dropped on the wire, as the broken devices do — but
        // the registry still sees it.
        obs::inc(m_oversize_drops_);
        return;
    }
    lan_sock_->send_to(client, net::Bytes(payload.begin(), payload.end()));
}

void DnsProxy::prune_pending() {
    // Queries whose upstream response never arrived would otherwise pin
    // their slot forever. Amortized over inserts; the map stays tiny.
    const auto now = host_.loop().now();
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (now - it->second > kQueryTtl)
            it = pending_.erase(it);
        else
            ++it;
    }
}

void DnsProxy::on_tcp_conn(stack::TcpSocket& conn) {
    ++tcp_accepted_;
    obs::inc(m_tcp_accepted_);
    if (profile_.dns_tcp == DnsTcpMode::AcceptOnly) {
        // Accepts the connection, reads, answers nothing. (Real devices
        // in this class leave dig hanging until its timeout.)
        conn.on_data = [](std::span<const std::uint8_t>) {};
        conn.on_remote_close = [&conn] { conn.close(); };
        return;
    }
    auto framer = std::make_shared<stack::DnsTcpFramer>();
    tcp_framers_[&conn] = framer;
    conn.on_data = [this, framer, &conn](std::span<const std::uint8_t> d) {
        framer->feed(d);
        net::Bytes query;
        while (framer->next(query)) forward_tcp_query(conn, query);
    };
    conn.on_remote_close = [this, &conn] {
        tcp_framers_.erase(&conn);
        cancel_inflight_for(&conn);
        conn.close();
    };
    conn.on_error = [this, &conn](const std::string&) {
        tcp_framers_.erase(&conn);
        cancel_inflight_for(&conn);
    };
}

void DnsProxy::forward_tcp_query(stack::TcpSocket& client_conn,
                                 net::Bytes query) {
    if (profile_.dns_tcp == DnsTcpMode::ProxyViaUdp) {
        // ap's quirk: the TCP-received query goes upstream over UDP.
        net::DnsMessage q;
        try {
            q = net::DnsMessage::parse(query);
        } catch (const net::ParseError&) {
            return;
        }
        auto& sock = host_.udp_open(net::Ipv4Addr::any(), 0);
        // Track the query so a vanishing client cancels it and a silent
        // upstream cannot leak the socket; the handler resolves the
        // client through the tracking entry, never a captured pointer.
        const auto expiry =
            host_.loop().after(kQueryTtl, [this, sock_ptr = &sock] {
                for (std::size_t i = 0; i < udp_inflight_.size(); ++i) {
                    if (udp_inflight_[i].sock == sock_ptr) {
                        close_udp_inflight(i, true);
                        return;
                    }
                }
            });
        udp_inflight_.push_back(UdpInflight{&sock, &client_conn, expiry});
        sock.set_receive_handler(
            [this, sock_ptr = &sock](net::Endpoint,
                                     std::span<const std::uint8_t> payload,
                                     const net::Ipv4Packet&) {
                for (std::size_t i = 0; i < udp_inflight_.size(); ++i) {
                    if (udp_inflight_[i].sock != sock_ptr) continue;
                    udp_inflight_[i].client->send(stack::DnsTcpFramer::frame(
                        net::Bytes(payload.begin(), payload.end())));
                    close_udp_inflight(i, true);
                    return;
                }
            });
        sock.send_to(upstream_, std::move(query));
        return;
    }

    // ProxyTcp: one upstream TCP connection per query, tracked so a
    // closed client cancels it and an unanswered one expires instead of
    // leaking. Callbacks resolve the client via the tracking entry; the
    // old captured-pointer scheme dangled once the client was reaped.
    auto& up = host_.tcp_connect(wan_addr_, 0, upstream_);
    auto up_framer = std::make_shared<stack::DnsTcpFramer>();
    const auto expiry = host_.loop().after(kQueryTtl, [this, up_ptr = &up] {
        for (std::size_t i = 0; i < tcp_inflight_.size(); ++i) {
            if (tcp_inflight_[i].up == up_ptr) {
                close_tcp_inflight(i, true);
                return;
            }
        }
    });
    tcp_inflight_.push_back(TcpInflight{&up, &client_conn, expiry});
    up.on_established = [&up, q = std::move(query)] {
        up.send(stack::DnsTcpFramer::frame(q));
    };
    up.on_data = [this, up_framer, up_ptr = &up](
                     std::span<const std::uint8_t> d) {
        up_framer->feed(d);
        net::Bytes resp;
        while (up_framer->next(resp)) {
            for (std::size_t i = 0; i < tcp_inflight_.size(); ++i) {
                if (tcp_inflight_[i].up != up_ptr) continue;
                tcp_inflight_[i].client->send(
                    stack::DnsTcpFramer::frame(resp));
                close_tcp_inflight(i, false);
                up_ptr->close();
                return;
            }
        }
    };
    up.on_remote_close = [this, up_ptr = &up] {
        for (std::size_t i = 0; i < tcp_inflight_.size(); ++i) {
            if (tcp_inflight_[i].up == up_ptr) {
                close_tcp_inflight(i, false);
                break;
            }
        }
        up_ptr->close();
    };
    up.on_error = [this, up_ptr = &up](const std::string&) {
        for (std::size_t i = 0; i < tcp_inflight_.size(); ++i) {
            if (tcp_inflight_[i].up == up_ptr) {
                // The socket is already dead; just drop the entry.
                host_.loop().cancel(tcp_inflight_[i].expiry);
                tcp_inflight_.erase(tcp_inflight_.begin() +
                                    static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
    };
}

void DnsProxy::cancel_inflight_for(stack::TcpSocket* client) {
    for (std::size_t i = udp_inflight_.size(); i-- > 0;)
        if (udp_inflight_[i].client == client) close_udp_inflight(i, true);
    for (std::size_t i = tcp_inflight_.size(); i-- > 0;)
        if (tcp_inflight_[i].client == client) close_tcp_inflight(i, true);
}

void DnsProxy::close_udp_inflight(std::size_t idx, bool close_sock) {
    UdpInflight entry = udp_inflight_[idx];
    udp_inflight_.erase(udp_inflight_.begin() +
                        static_cast<std::ptrdiff_t>(idx));
    host_.loop().cancel(entry.expiry);
    if (close_sock) host_.udp_close(*entry.sock);
}

void DnsProxy::close_tcp_inflight(std::size_t idx, bool abort_upstream) {
    TcpInflight entry = tcp_inflight_[idx];
    tcp_inflight_.erase(tcp_inflight_.begin() +
                        static_cast<std::ptrdiff_t>(idx));
    host_.loop().cancel(entry.expiry);
    if (abort_upstream) {
        // Detach first: abort() fires on_error, which must not re-enter
        // the (already erased) tracking entry.
        entry.up->on_data = nullptr;
        entry.up->on_remote_close = nullptr;
        entry.up->on_error = nullptr;
        entry.up->abort();
    }
}

} // namespace gatekit::gateway
