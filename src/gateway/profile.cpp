#include "gateway/profile.hpp"

#include <sstream>

namespace gatekit::gateway {

std::string DeviceProfile::validate() const {
    using sim::Duration;
    const auto pos = [](Duration d) { return d > Duration::zero(); };
    const auto nonneg = [](Duration d) { return d >= Duration::zero(); };
    if (!pos(udp.initial)) return "udp.initial must be > 0";
    if (!pos(udp.inbound_refresh)) return "udp.inbound_refresh must be > 0";
    if (!pos(udp.outbound_refresh))
        return "udp.outbound_refresh must be > 0";
    if (!nonneg(udp.granularity)) return "udp.granularity must be >= 0";
    for (const auto& [port, d] : udp.per_service)
        if (!pos(d))
            return "udp.per_service[" + std::to_string(port) +
                   "] must be > 0";
    if (!pos(tcp_established_timeout))
        return "tcp_established_timeout must be > 0";
    if (!pos(tcp_transitory_timeout))
        return "tcp_transitory_timeout must be > 0";
    if (!nonneg(tcp_fin_linger)) return "tcp_fin_linger must be >= 0";
    if (max_tcp_bindings <= 0) return "max_tcp_bindings must be > 0";
    if (max_udp_bindings <= 0 && max_udp_bindings != -1)
        return "max_udp_bindings must be > 0 or the -1 follow sentinel";
    if (!nonneg(port_quarantine)) return "port_quarantine must be >= 0";
    if (pool_begin < 1) return "pool_begin must be >= 1";
    if (pool_end < pool_begin) return "pool_end must be >= pool_begin";
    if (!pos(unknown_proto_timeout))
        return "unknown_proto_timeout must be > 0";
    if (!(fwd.down_mbps > 0.0)) return "fwd.down_mbps must be > 0";
    if (!(fwd.up_mbps > 0.0)) return "fwd.up_mbps must be > 0";
    if (!(fwd.aggregate_mbps > 0.0)) return "fwd.aggregate_mbps must be > 0";
    if (fwd.buffer_down_bytes == 0) return "fwd.buffer_down_bytes must be > 0";
    if (fwd.buffer_up_bytes == 0) return "fwd.buffer_up_bytes must be > 0";
    if (!nonneg(fwd.processing_delay))
        return "fwd.processing_delay must be >= 0";
    if (!nonneg(fwd.forwarding_tick))
        return "fwd.forwarding_tick must be >= 0";
    for (std::size_t i = 0; i < firewall_rules.size(); ++i) {
        const Rule& r = firewall_rules[i];
        const std::string where =
            "firewall_rules[" + std::to_string(i) + "]";
        if (r.src_prefix_len < 0 || r.src_prefix_len > 32)
            return where + ".src_prefix_len must be in [0, 32]";
        if (r.dst_prefix_len < 0 || r.dst_prefix_len > 32)
            return where + ".dst_prefix_len must be in [0, 32]";
        if (r.sport.lo > r.sport.hi)
            return where + ".sport must have lo <= hi";
        if (r.dport.lo > r.dport.hi)
            return where + ".dport must have lo <= hi";
    }
    if (icmp_error_rate_limit < 0)
        return "icmp_error_rate_limit must be >= 0";
    if (per_host_binding_budget <= 0 && per_host_binding_budget != -1)
        return "per_host_binding_budget must be > 0 or the -1 sentinel";
    return "";
}

std::string profile_identity(const DeviceProfile& p) {
    std::ostringstream s;
    // Durations as exact ns counts; doubles as hexfloat (round-trip
    // exact, locale-independent) — the identity must never depend on
    // decimal formatting.
    const auto ns = [](sim::Duration d) { return d.count(); };
    s << std::hexfloat;
    s << p.tag << '|' << p.vendor << '|' << p.model << '|' << p.firmware
      << "|udp:" << ns(p.udp.initial) << ',' << ns(p.udp.inbound_refresh)
      << ',' << ns(p.udp.outbound_refresh) << ',' << p.udp.inbound_refreshes
      << p.udp.outbound_refreshes << ',' << ns(p.udp.granularity);
    for (const auto& [port, d] : p.udp.per_service)
        s << ",svc" << port << '=' << ns(d);
    s << "|tcp:" << ns(p.tcp_established_timeout) << ','
      << ns(p.tcp_transitory_timeout) << ',' << ns(p.tcp_fin_linger) << ','
      << p.max_tcp_bindings << ',' << p.max_udp_bindings
      << "|port:" << static_cast<int>(p.port_allocation) << ','
      << ns(p.port_quarantine) << ',' << p.pool_begin << ',' << p.pool_end
      << "|icmp:";
    for (int k = 0; k < kIcmpKindCount; ++k)
        s << p.icmp_tcp.translates(static_cast<IcmpKind>(k));
    for (int k = 0; k < kIcmpKindCount; ++k)
        s << p.icmp_udp.translates(static_cast<IcmpKind>(k));
    s << ',' << p.icmp_query_errors_translated << p.fix_embedded_transport
      << p.fix_embedded_ip_checksum << p.tcp_icmp_becomes_rst
      << "|unk:" << static_cast<int>(p.unknown_proto) << ','
      << p.unknown_proto_inbound_allowed << ','
      << ns(p.unknown_proto_timeout) << "|dns:" << p.dns_udp_proxy << ','
      << static_cast<int>(p.dns_tcp) << ',' << p.dns_proxy_strips_edns
      << ',' << p.dns_proxy_max_udp << "|ip:" << p.hairpin
      << p.decrement_ttl << p.honor_record_route << p.same_mac_both_sides
      << "|fwd:" << p.fwd.down_mbps << ',' << p.fwd.up_mbps << ','
      << p.fwd.aggregate_mbps << ',' << p.fwd.buffer_down_bytes << ','
      << p.fwd.buffer_up_bytes << ',' << ns(p.fwd.processing_delay) << ','
      << ns(p.fwd.forwarding_tick);
    // Hardening section only when a knob left its default, so the
    // identities (and journal fingerprints) of every pre-existing
    // profile are unchanged.
    if (p.icmp_error_teardown || p.validate_embedded_binding ||
        p.icmp_error_rate_limit != 0 ||
        p.wan_syn_policy != WanSynPolicy::Forward ||
        p.per_host_binding_budget != -1) {
        s << "|hard:" << p.icmp_error_teardown << p.validate_embedded_binding
          << ',' << p.icmp_error_rate_limit << ','
          << static_cast<int>(p.wan_syn_policy) << ','
          << p.per_host_binding_budget;
    }
    // Firewall section only when a chain exists, so the identities of
    // every pre-existing (chain-less) profile are unchanged.
    if (!p.firewall_rules.empty()) {
        s << "|fw:" << p.firewall_compiled;
        for (const Rule& r : p.firewall_rules)
            s << ',' << static_cast<int>(r.proto) << '/'
              << r.src_net.value() << '/' << r.src_prefix_len << '/'
              << r.dst_net.value() << '/' << r.dst_prefix_len << '/'
              << r.sport.lo << '-' << r.sport.hi << '/' << r.dport.lo
              << '-' << r.dport.hi << '/' << static_cast<int>(r.verdict);
    }
    return s.str();
}

const char* to_string(IcmpKind kind) {
    switch (kind) {
    case IcmpKind::ReassemblyTimeExceeded:
        return "Reass.Time.Ex.";
    case IcmpKind::FragNeeded:
        return "Frag.Needed";
    case IcmpKind::ParamProblem:
        return "Param.Prob.";
    case IcmpKind::SourceRouteFailed:
        return "Src.Route Fail.";
    case IcmpKind::SourceQuench:
        return "Source Quench";
    case IcmpKind::TtlExceeded:
        return "TTL Exceeded";
    case IcmpKind::HostUnreachable:
        return "Host Unreach.";
    case IcmpKind::NetUnreachable:
        return "Net Unreach.";
    case IcmpKind::PortUnreachable:
        return "Port Unreach.";
    case IcmpKind::ProtoUnreachable:
        return "Proto.Unreach.";
    case IcmpKind::kCount:
        break;
    }
    return "?";
}

} // namespace gatekit::gateway
