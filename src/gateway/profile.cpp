#include "gateway/profile.hpp"

namespace gatekit::gateway {

const char* to_string(IcmpKind kind) {
    switch (kind) {
    case IcmpKind::ReassemblyTimeExceeded:
        return "Reass.Time.Ex.";
    case IcmpKind::FragNeeded:
        return "Frag.Needed";
    case IcmpKind::ParamProblem:
        return "Param.Prob.";
    case IcmpKind::SourceRouteFailed:
        return "Src.Route Fail.";
    case IcmpKind::SourceQuench:
        return "Source Quench";
    case IcmpKind::TtlExceeded:
        return "TTL Exceeded";
    case IcmpKind::HostUnreachable:
        return "Host Unreach.";
    case IcmpKind::NetUnreachable:
        return "Net Unreach.";
    case IcmpKind::PortUnreachable:
        return "Port Unreach.";
    case IcmpKind::ProtoUnreachable:
        return "Proto.Unreach.";
    case IcmpKind::kCount:
        break;
    }
    return "?";
}

} // namespace gatekit::gateway
