// NAT binding table: the translation state whose lifecycle the paper's
// UDP-1..5, TCP-1 and TCP-4 tests measure from the outside.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "gateway/profile.hpp"
#include "net/addr.hpp"
#include "sim/event_loop.hpp"

namespace gatekit::gateway {

/// 5-tuple identifying a flow from the inside.
struct FlowKey {
    std::uint8_t proto = 0;
    net::Endpoint internal;
    net::Endpoint remote;

    friend constexpr auto operator<=>(const FlowKey&, const FlowKey&) =
        default;
};

struct Binding {
    FlowKey key;
    std::uint16_t external_port = 0;
    sim::TimePoint expires_at{};
    bool confirmed = false; ///< has seen inbound traffic
    // TCP state tracking, so the NAT can reap closed connections.
    bool established = false; ///< TCP three-way handshake observed
    bool fin_in = false;
    bool fin_out = false;
    std::uint64_t packets_out = 0;
    std::uint64_t packets_in = 0;
};

/// One table instance per transport protocol (UDP and TCP each get one).
class BindingTable {
public:
    BindingTable(sim::EventLoop& loop, const DeviceProfile& profile,
                 std::uint8_t proto);

    /// Find the binding for an outbound flow, creating it if absent.
    /// Returns nullptr when the table is full (per profile max) or the
    /// port pool is exhausted. Expired entries are swept lazily.
    Binding* find_or_create_outbound(const FlowKey& key);

    /// Find the (live) binding matching an inbound packet.
    Binding* find_inbound(std::uint16_t external_port,
                          const net::Endpoint& remote);

    /// Find a live binding by external port alone (hairpin lookups have
    /// no fixed remote endpoint to match).
    Binding* find_by_external(std::uint16_t external_port);

    /// Refresh a binding's timer after an outbound or inbound packet.
    /// `timeout` is the policy-chosen duration for this event.
    void refresh(Binding& b, sim::Duration timeout);

    /// Remove immediately (TCP RST, FIN linger expiry).
    void remove(const FlowKey& key);

    std::size_t size();
    std::size_t capacity_limit() const {
        return static_cast<std::size_t>(profile_.max_tcp_bindings);
    }

    /// Expiry check honoring the device's timer granularity.
    bool expired(const Binding& b) const;

private:
    void sweep();
    std::uint16_t allocate_port(const FlowKey& key);
    /// True when `port` is claimed by a *different* internal endpoint.
    bool port_taken_by_other(std::uint16_t port,
                             const net::Endpoint& internal) const;
    sim::TimePoint quantize(sim::TimePoint t) const;

    sim::EventLoop& loop_;
    const DeviceProfile& profile_;
    std::uint8_t proto_;
    void erase_external(std::uint16_t port, const FlowKey& key);

    std::map<FlowKey, Binding> by_flow_;
    /// External port -> flows sharing it. A port-preserving NAT maps every
    /// flow from one internal endpoint to the same external port
    /// (endpoint-independent mapping, RFC 4787) and demuxes inbound
    /// traffic by remote endpoint.
    std::multimap<std::uint16_t, FlowKey> by_external_;
    /// Recently expired flows: flow -> (old external port, quarantine end).
    std::map<FlowKey, std::pair<std::uint16_t, sim::TimePoint>> graveyard_;
    std::uint16_t next_pool_port_;
};

} // namespace gatekit::gateway
