// NAT binding table: the translation state whose lifecycle the paper's
// UDP-1..5, TCP-1 and TCP-4 tests measure from the outside.
//
// Hot-path layout: hashed flow and port indexes give O(1) lookups, and a
// hierarchical timer wheel retires expired bindings in O(1) amortized —
// sweep() visits only entries whose deadline bucket has passed instead of
// scanning the whole table. Observable behavior (port assignment order,
// quarantine stamps, expiry times) is identical to the original ordered-
// map implementation: sweeps still happen at the same call sites, and a
// retired binding's quarantine window still starts at sweep time.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gateway/profile.hpp"
#include "net/addr.hpp"
#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"
#include "sim/timer_wheel.hpp"

namespace gatekit::gateway {

/// 5-tuple identifying a flow from the inside.
struct FlowKey {
    std::uint8_t proto = 0;
    net::Endpoint internal;
    net::Endpoint remote;

    friend constexpr auto operator<=>(const FlowKey&, const FlowKey&) =
        default;
};

/// 64-bit mix of the full 5-tuple for the hashed indexes.
struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept {
        std::uint64_t a = (std::uint64_t{k.internal.addr.value()} << 32) |
                          k.remote.addr.value();
        std::uint64_t b = (std::uint64_t{k.proto} << 32) |
                          (std::uint64_t{k.internal.port} << 16) |
                          k.remote.port;
        std::uint64_t x = (a * 0x9e3779b97f4a7c15ULL) ^ b;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
    }
};

/// Hash for internal-endpoint keys (the ReusePooled paired-pool index).
struct EndpointHash {
    std::size_t operator()(const net::Endpoint& e) const noexcept {
        std::uint64_t x = (std::uint64_t{e.addr.value()} << 16) ^ e.port;
        x *= 0x9e3779b97f4a7c15ULL;
        x ^= x >> 29;
        return static_cast<std::size_t>(x);
    }
};

struct Binding {
    FlowKey key;
    std::uint16_t external_port = 0;
    sim::TimePoint expires_at{};
    bool confirmed = false; ///< has seen inbound traffic
    // TCP state tracking, so the NAT can reap closed connections.
    bool established = false; ///< TCP three-way handshake observed
    /// Inbound SYN-ACK observed. Only consulted under a non-Forward
    /// wan_syn_policy (strict handshake tracking); legacy devices never
    /// read it.
    bool synack_in = false;
    bool fin_in = false;
    bool fin_out = false;
    std::uint64_t packets_out = 0;
    std::uint64_t packets_in = 0;
    // Timer-wheel bookkeeping, managed by BindingTable: when the active
    // wheel entry fires and the generation stamp identifying it.
    sim::TimePoint wheel_deadline{};
    std::uint64_t wheel_gen = 0;
    /// Slab index, managed by BindingTable; keys the hot deadline array.
    std::uint32_t slot = 0;
};

/// One table instance per transport protocol (UDP and TCP each get one).
class BindingTable {
public:
    BindingTable(sim::EventLoop& loop, const DeviceProfile& profile,
                 std::uint8_t proto);

    /// Find the binding for an outbound flow, creating it if absent.
    /// Returns nullptr when the table is full (per profile max) or the
    /// port pool is exhausted. Expired entries are swept lazily.
    Binding* find_or_create_outbound(const FlowKey& key);

    /// Find an existing live outbound binding without creating one (used
    /// when attributing an ICMP error's quote to a flow). Returns nullptr
    /// for unknown or expired flows; expired entries are left for sweep().
    Binding* find_outbound(const FlowKey& key);

    /// Find the (live) binding matching an inbound packet.
    Binding* find_inbound(std::uint16_t external_port,
                          const net::Endpoint& remote);

    /// Find a live binding by external port alone (hairpin lookups have
    /// no fixed remote endpoint to match).
    Binding* find_by_external(std::uint16_t external_port);

    /// Refresh a binding's timer after an outbound or inbound packet.
    /// `timeout` is the policy-chosen duration for this event.
    void refresh(Binding& b, sim::Duration timeout);

    /// Set an absolute expiry deadline (TCP transitory / FIN-linger
    /// shortcuts). Keeps the timer wheel in sync when the deadline moves
    /// earlier; all expiry writes must go through here or refresh().
    void set_expiry(Binding& b, sim::TimePoint at);

    /// Remove immediately (TCP RST, FIN linger expiry).
    void remove(const FlowKey& key);

    /// Drop every binding and all quarantine history at once — what a
    /// power-cycled gateway does to its translation state. Parked wheel
    /// entries go stale and are discarded when their buckets pop.
    void clear();

    std::size_t size();
    /// Per-protocol concurrent-binding cap from the device profile.
    std::size_t capacity_limit() const;

    /// Expiry check honoring the device's timer granularity. Reads the
    /// cached effective deadline (hot array), not the binding record.
    bool expired(const Binding& b) const {
        return loop_.now().count() >= hot_deadline_[b.slot];
    }

    /// Outbound creations refused by per_host_binding_budget (0 while the
    /// knob is disabled). Read by the supervisor's attack annotator and
    /// the attack battery's verdict oracles.
    std::uint64_t host_budget_refusals() const {
        return host_budget_refusals_;
    }

    /// Sequential-allocation pool cursor. Journaled by the campaign
    /// supervisor: devices that hand out pool ports in order would
    /// otherwise start a resumed run from the pool base and diverge from
    /// the straight-through port sequence.
    std::uint16_t pool_cursor() const { return next_pool_port_; }
    void set_pool_cursor(std::uint16_t port) { next_pool_port_ = port; }

    /// Register this table's instruments (create/expire/refuse counters,
    /// occupancy + wheel-cascade gauges) under `device`. Without a bind
    /// every instrumentation site stays a branch-on-null no-op.
    void bind_observability(obs::MetricsRegistry& reg,
                            const std::string& device);

private:
    void sweep();
    std::uint16_t allocate_port(const FlowKey& key);
    /// True when `port` is claimed by a *different* internal endpoint.
    bool port_taken_by_other(std::uint16_t port,
                             const net::Endpoint& internal) const;
    sim::TimePoint quantize(sim::TimePoint t) const;
    /// Deadline at which the binding becomes observable as expired.
    sim::TimePoint effective_deadline(const Binding& b) const;
    /// Park (or re-park) the binding's expiry in the timer wheel.
    void schedule_expiry(Binding& b, sim::TimePoint at);
    void erase_external(std::uint16_t port, std::uint32_t slot);
    bool external_in_use(std::uint16_t port) const;
    void add_to_graveyard(const FlowKey& key, std::uint16_t port,
                          sim::TimePoint until);
    std::uint32_t alloc_binding();
    /// Per-host live-binding accounting; no-ops (one untaken branch)
    /// unless per_host_binding_budget is enabled. `host_release` must run
    /// before free_binding() resets the record.
    void host_claim(const Binding& b);
    void host_release(const Binding& b);
    /// Paired-pool accounting (ReusePooled only): which pool port each
    /// internal endpoint holds and how many live flows ride it. Like
    /// host_release, `internal_release` must precede free_binding().
    void internal_claim(const Binding& b);
    void internal_release(const Binding& b);
    /// Reset a slab slot for reuse. Zeroing wheel_gen makes any parked
    /// wheel entry for the old occupant stale.
    void free_binding(std::uint32_t slot);
    /// Recompute the cached effective deadline. Every expiry-affecting
    /// write funnels through here: refresh()/set_expiry() call it, and
    /// the NAT engine's direct `confirmed` flips are always followed by
    /// a refresh (first inbound always refreshes), so the cache never
    /// goes stale between expired() checks.
    void update_hot(const Binding& b) {
        hot_deadline_[b.slot] = effective_deadline(b).count();
    }

    sim::EventLoop& loop_;
    const DeviceProfile& profile_;
    std::uint8_t proto_;

    /// Binding records live in a stable slab (deque: references survive
    /// growth) addressed by slot index; the indexes below store 4-byte
    /// slots instead of full key or record copies, and the hot expiry
    /// deadlines live in their own contiguous array so lookups and
    /// sweeps touch one cache line's worth of data per check instead of
    /// a hash node.
    std::deque<Binding> slots_;
    std::vector<std::uint32_t> free_binding_slots_;
    /// Cached effective deadline (ns) per slot — the only field the
    /// per-packet expiry checks read.
    std::vector<std::int64_t> hot_deadline_;

    std::unordered_map<FlowKey, std::uint32_t, FlowKeyHash> by_flow_;
    /// External port -> slots of flows sharing it, in claim order. A
    /// port-preserving NAT maps every flow from one internal endpoint to
    /// the same external port (endpoint-independent mapping, RFC 4787)
    /// and demuxes inbound traffic by remote endpoint.
    std::unordered_map<std::uint16_t, std::vector<std::uint32_t>>
        by_external_;
    /// Recently expired flows: flow -> (old external port, quarantine end).
    std::unordered_map<FlowKey, std::pair<std::uint16_t, sim::TimePoint>,
                       FlowKeyHash>
        graveyard_;
    /// Quarantine expiry order. The quarantine duration is a per-device
    /// constant and the clock is monotonic, so insertion order is expiry
    /// order; stale entries (flow re-quarantined later) are skipped by
    /// matching the recorded end time.
    struct GraveEntry {
        FlowKey key;
        sim::TimePoint end;
    };
    std::deque<GraveEntry> grave_queue_;

    /// Expiry wheel. Entries reference pending_ slots; an entry is stale
    /// when its generation no longer matches the binding (refreshed to an
    /// earlier deadline, removed, or the slab slot reused). Entries name
    /// slab slots directly, so harvesting needs no hash lookups.
    sim::TimerWheel wheel_;
    struct PendingExpiry {
        std::uint32_t slot = 0;
        std::uint64_t gen = 0;
    };
    std::vector<PendingExpiry> pending_;
    std::vector<std::uint64_t> pending_free_;
    std::uint64_t next_gen_ = 1;

    std::uint16_t next_pool_port_;

    /// Live bindings per internal host; only populated while
    /// per_host_binding_budget is enabled.
    std::unordered_map<std::uint32_t, std::uint32_t> per_host_;

    /// Internal endpoint -> (held pool port, live-flow refcount); only
    /// populated under PortAllocation::ReusePooled.
    std::unordered_map<net::Endpoint, std::pair<std::uint16_t, std::uint32_t>,
                       EndpointHash>
        by_internal_;
    std::uint64_t host_budget_refusals_ = 0;

    // Instrumentation; all nullptr until bind_observability.
    obs::Counter* m_created_ = nullptr;
    obs::Counter* m_expired_ = nullptr;
    obs::Counter* m_refused_ = nullptr;
    obs::Counter* m_port_collisions_ = nullptr;
    obs::Counter* m_host_budget_refused_ = nullptr;
    obs::Gauge* m_occupancy_ = nullptr;
    obs::Gauge* m_cascades_ = nullptr;
};

} // namespace gatekit::gateway
