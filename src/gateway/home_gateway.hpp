// HomeGateway: a complete simulated CPE device. Internally it is a Host
// (giving it ARP, DHCP client/server, a DNS proxy and its own sockets)
// plus a NAT datapath hooked in front of forwarding and local delivery,
// and a forwarding-performance model. Behavior is entirely driven by its
// DeviceProfile; src/devices instantiates the paper's 34 models.
#pragma once

#include <functional>
#include <memory>

#include "gateway/dns_proxy.hpp"
#include "gateway/fwd_path.hpp"
#include "gateway/nat_engine.hpp"
#include "gateway/profile.hpp"
#include "gateway/rule_chain.hpp"
#include "stack/dhcp_service.hpp"
#include "stack/host.hpp"

namespace gatekit::gateway {

/// A scripted device fault. `flush_nat` models the state loss of a power
/// cycle (every binding, ICMP query id, and IP-only mapping forgotten);
/// `stall` models the outage window during which the datapath silently
/// drops traffic in both directions. The gateway's own stack (DHCP
/// leases, DNS proxy sockets) survives — the paper's devices kept their
/// WAN lease across short reboots, and losing it would turn every fault
/// into a full re-provisioning cycle.
struct GatewayFault {
    bool flush_nat = true;
    sim::Duration stall{0};
};

class HomeGateway {
public:
    struct Config {
        DeviceProfile profile;
        net::Ipv4Addr lan_addr{192, 168, 1, 1};
        int lan_prefix_len = 24;
        net::Ipv4Addr lan_pool_base{192, 168, 1, 100};
        /// Base index for deterministic MAC assignment.
        std::uint32_t mac_index = 1000;
        /// Zero-copy datapath: untagged unicast IPv4 frames to the
        /// gateway's own MAC are translated in place and forwarded
        /// without the parse/serialize round trip. Off forces every
        /// packet through the legacy path (equivalence tests rely on
        /// the two producing byte-identical wire traffic).
        bool enable_fast_path = true;
    };

    HomeGateway(sim::EventLoop& loop, Config config);

    HomeGateway(const HomeGateway&) = delete;
    HomeGateway& operator=(const HomeGateway&) = delete;

    void connect_lan(sim::Link& link, sim::Link::Side side);
    void connect_wan(sim::Link& link, sim::Link::Side side);

    /// Bring the device up: run the WAN DHCP client; once a lease arrives
    /// the NAT, LAN DHCP server, and DNS proxy become operational and
    /// `on_ready` fires with the acquired WAN address.
    void start(std::function<void(net::Ipv4Addr)> on_ready = {});

    bool ready() const { return nat_.configured(); }
    net::Ipv4Addr lan_addr() const { return config_.lan_addr; }
    net::Ipv4Addr wan_addr() const { return nat_.wan_addr(); }
    const DeviceProfile& profile() const { return config_.profile; }

    /// Inject a scripted fault right now. Repeated stalls extend the
    /// outage window rather than shortening it.
    void inject_fault(const GatewayFault& fault);
    bool stalled() const { return loop_.now() < stalled_until_; }
    std::uint64_t faults_injected() const { return faults_injected_; }

    /// Wire the whole device into an observability session under `device`
    /// (typically the profile's model name + slot index): NAT engine and
    /// binding tables, forwarding path, DNS proxy, and the gateway's own
    /// host stack. Fault injection becomes a flight-recorder trigger.
    void bind_observability(obs::MetricsRegistry* reg, obs::Tracer* tracer,
                            const std::string& device);

    stack::Host& host() { return host_; }
    /// The gateway's interfaces. Exposed so the campaign supervisor can
    /// restore their ARP caches on journal resume (entries never expire,
    /// so warm state is part of replayed history).
    stack::Iface& lan_if() { return lan_if_; }
    stack::Iface& wan_if() { return wan_if_; }
    NatEngine& nat() { return nat_; }
    FwdPath& fwd() { return fwd_; }
    DnsProxy& dns_proxy() { return dns_proxy_; }
    stack::DhcpServer* lan_dhcp() { return lan_dhcp_.get(); }

    /// Netfilter-style FORWARD chain applied to NAT'd traffic in both
    /// directions (keys are always the internal/LAN view of the flow:
    /// pre-SNAT going up, post-DNAT coming down). Hairpin and the plain
    /// router fallback bypass it. An empty chain with an ACCEPT default
    /// costs nothing and bumps no counters.
    RuleChain& filter() { return filter_; }
    /// Evaluate the filter via the compiled single-pass classifier
    /// instead of the sequential first-match walk (verdicts identical).
    void set_filter_compiled(bool on) { filter_compiled_ = on; }

private:
    void install_fast_hooks();
    bool fast_from_lan(net::PacketView& v, sim::Frame& frame);
    bool fast_from_wan(net::PacketView& v, sim::Frame& frame);
    void emit_wan_frame(sim::Frame frame, net::Ipv4Addr dst);
    void emit_lan_frame(sim::Frame frame, net::Ipv4Addr dst);
    bool filter_pass(const RuleChain::Key& key);

    void on_lan_ip(stack::Iface& in, const net::Ipv4Packet& pkt);
    bool on_wan_local(const net::Ipv4Packet& pkt);
    /// Emit ICMP Time Exceeded toward `pkt`'s source (RFC 792): this hop
    /// would have decremented the TTL to zero. Both datapath directions
    /// land here, so cascaded (NAT444) chains report the expiring hop
    /// instead of silently eating traceroute probes.
    void ttl_expired(const net::Ipv4Packet& pkt);
    void emit_wan(net::Bytes datagram, net::Ipv4Addr dst);
    void emit_lan(net::Bytes datagram, net::Ipv4Addr dst);

    sim::EventLoop& loop_;
    Config config_;
    stack::Host host_;
    stack::NetIf& wan_nic_;
    stack::Iface& lan_if_;
    stack::Iface& wan_if_;
    NatEngine nat_;
    FwdPath fwd_;
    RuleChain filter_;
    bool filter_compiled_ = false;
    DnsProxy dns_proxy_;
    std::unique_ptr<stack::DhcpClient> wan_dhcp_;
    std::unique_ptr<stack::DhcpServer> lan_dhcp_;
    std::function<void(net::Ipv4Addr)> on_ready_;
    sim::TimePoint stalled_until_{0};
    std::uint64_t faults_injected_ = 0;

    // Instrumentation; nullptr/empty until bind_observability.
    obs::Counter* m_faults_ = nullptr;
    obs::Tracer* tracer_ = nullptr;
    std::string obs_device_;
};

} // namespace gatekit::gateway
