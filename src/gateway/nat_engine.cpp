#include "gateway/nat_engine.hpp"

#include "net/checksum.hpp"
#include "net/tcp_header.hpp"
#include "net/udp.hpp"
#include "util/assert.hpp"

namespace gatekit::gateway {

namespace {
constexpr sim::Duration kIcmpQueryTimeout = std::chrono::seconds(60);
// Side-table capacity caps. Unlike the UDP/TCP binding tables (bounded
// per profile), the ICMP-query and IP-only maps used to grow without
// limit under a flood of distinct query ids or remote addresses. Real
// devices bound this state; the caps are far above anything the paper's
// measurements create, so only hostile workloads ever reach them.
constexpr std::size_t kMaxIcmpQueries = 1024;
constexpr std::size_t kMaxIpOnly = 1024;

/// Drop every expired entry; both side tables prune this way when the
/// cap is reached (the hot paths never pay the scan).
template <typename Map>
void prune_expired(Map& m, sim::TimePoint now) {
    for (auto it = m.begin(); it != m.end();) {
        if (now >= it->second.expires_at)
            it = m.erase(it);
        else
            ++it;
    }
}
} // namespace

NatEngine::NatEngine(sim::EventLoop& loop, const DeviceProfile& profile)
    : loop_(loop), profile_(profile), udp_(loop, profile, net::proto::kUdp),
      tcp_(loop, profile, net::proto::kTcp) {}

void NatEngine::set_addresses(net::Ipv4Addr lan_addr, int lan_prefix_len,
                              net::Ipv4Addr wan_addr) {
    lan_addr_ = lan_addr;
    lan_prefix_len_ = lan_prefix_len;
    wan_addr_ = wan_addr;
}

net::Ipv4Packet NatEngine::translated_header(const net::Ipv4Packet& pkt,
                                             net::Ipv4Addr new_src,
                                             net::Ipv4Addr new_dst) const {
    net::Ipv4Packet out;
    out.h = pkt.h;
    out.h.src = new_src;
    out.h.dst = new_dst;
    if (profile_.decrement_ttl)
        out.h.ttl = static_cast<std::uint8_t>(pkt.h.ttl - 1);
    if (profile_.honor_record_route) out.record_route(wan_addr_);
    return out;
}

sim::Duration NatEngine::udp_timeout_for(const Binding& b,
                                         bool inbound_packet,
                                         std::uint16_t service_port) const {
    const auto granted = [this](sim::Duration d) {
        obs::observe(m_to_granted_ns_, static_cast<double>(d.count()));
        return d;
    };
    auto it = profile_.udp.per_service.find(service_port);
    if (it != profile_.udp.per_service.end()) {
        obs::inc(m_to_per_service_);
        return granted(it->second);
    }
    if (inbound_packet) {
        obs::inc(m_to_inbound_);
        return granted(profile_.udp.inbound_refresh);
    }
    if (b.confirmed) {
        obs::inc(m_to_outbound_);
        return granted(profile_.udp.outbound_refresh);
    }
    obs::inc(m_to_initial_);
    return granted(profile_.udp.initial);
}

void NatEngine::bind_observability(obs::MetricsRegistry& reg,
                                   const std::string& device) {
    udp_.bind_observability(reg, device);
    tcp_.bind_observability(reg, device);
    obs::Labels labels{{"device", device}};
    m_drop_capacity_ = reg.counter("nat.drop.capacity", labels);
    m_drop_policy_ = reg.counter("nat.drop.policy", labels);
    m_icmp_translated_ = reg.counter("nat.icmp.translated", labels);
    m_icmp_dropped_ = reg.counter("nat.icmp.dropped", labels);
    m_icmp_rate_limited_ = reg.counter("nat.icmp.rate_limited", labels);
    m_icmp_quote_rejected_ = reg.counter("nat.icmp.quote_rejected", labels);
    m_icmp_teardown_ = reg.counter("nat.icmp.teardown", labels);
    m_wan_syn_dropped_ = reg.counter("nat.wan_syn.dropped", labels);
    m_wan_syn_tarpitted_ = reg.counter("nat.wan_syn.tarpitted", labels);
    m_wan_stray_dropped_ = reg.counter("nat.wan_syn.stray_dropped", labels);
    m_to_per_service_ = reg.counter("nat.timeout.per_service", labels);
    m_to_inbound_ = reg.counter("nat.timeout.inbound_refresh", labels);
    m_to_outbound_ = reg.counter("nat.timeout.outbound_refresh", labels);
    m_to_initial_ = reg.counter("nat.timeout.initial", labels);
    // Distribution of the UDP timeout actually granted per refresh, in
    // ns — the policy counters say which rule fired, the sketch says
    // what the population of granted lifetimes looks like.
    m_to_granted_ns_ = reg.log_histogram("nat.timeout.granted_ns", labels);
}

std::optional<net::Bytes> NatEngine::outbound(const net::Ipv4Packet& pkt) {
    GK_EXPECTS(configured());
    if (profile_.decrement_ttl && pkt.h.ttl <= 1) return std::nullopt;
    switch (pkt.h.protocol) {
    case net::proto::kUdp:
        return outbound_udp(pkt);
    case net::proto::kTcp:
        return outbound_tcp(pkt);
    case net::proto::kIcmp:
        return outbound_icmp(pkt);
    default:
        return outbound_unknown(pkt);
    }
}

NatEngine::FastVerdict NatEngine::outbound_fast(net::PacketView& v) {
    GK_EXPECTS(configured());
    // Anything the legacy path treats specially goes back through it:
    // IP options (record-route handling), fragments, transports other
    // than plain UDP/TCP, L4 geometry the legacy serializer would trim
    // or reject, and checksum-less UDP (re-serialization computes a
    // fresh checksum; an in-place rewrite cannot). None of these checks
    // touch translation state, so a kSlow replay is exact.
    if (v.has_options() || v.is_fragment() || !v.has_l4() ||
        v.l4_checksum_disabled())
        return FastVerdict::kSlow;
    if (profile_.decrement_ttl && v.ttl() <= 1)
        return FastVerdict::kDropped; // outbound(): pre-dispatch TTL drop
    const bool udp = v.protocol() == net::proto::kUdp;
    BindingTable& table = udp ? udp_ : tcp_;
    const FlowKey key{v.protocol(),
                      {v.src(), v.src_port()},
                      {v.dst(), v.dst_port()}};
    Binding* b = table.find_or_create_outbound(key);
    if (b == nullptr) {
        ++stats_.dropped_capacity;
        obs::inc(m_drop_capacity_);
        return FastVerdict::kDropped;
    }
    if (udp) {
        ++b->packets_out;
        if (profile_.udp.outbound_refreshes || b->packets_out == 1)
            udp_.refresh(*b, udp_timeout_for(*b, false, key.remote.port));
    } else {
        const std::uint8_t flags = v.tcp_flags();
        const bool syn = (flags & 0x02) != 0;
        if (syn && (flags & 0x10) == 0)
            tcp_.set_expiry(*b,
                            loop_.now() + profile_.tcp_transitory_timeout);
        ++b->packets_out;
        if (b->packets_in > 0 && !syn) b->established = true;
        refresh_tcp(*b);
        if ((flags & 0x01) != 0) b->fin_out = true;
    }
    v.set_src(wan_addr_);
    v.set_src_port(b->external_port);
    if (profile_.decrement_ttl) v.decrement_ttl();
    if (!udp) {
        const std::uint8_t flags = v.tcp_flags();
        if ((flags & 0x04) != 0) {
            tcp_.remove(key); // b invalid past this point
        } else if (b->fin_in && b->fin_out) {
            tcp_.set_expiry(*b, loop_.now() + profile_.tcp_fin_linger);
        }
    }
    return FastVerdict::kForwarded;
}

NatEngine::FastVerdict NatEngine::inbound_fast(net::PacketView& v,
                                               bool& handled) {
    GK_EXPECTS(configured());
    handled = false;
    if (v.has_options() || v.is_fragment() || !v.has_l4() ||
        v.l4_checksum_disabled())
        return FastVerdict::kSlow;
    const bool udp = v.protocol() == net::proto::kUdp;
    BindingTable& table = udp ? udp_ : tcp_;
    // Mirror of inbound_tcp()'s unsolicited-SYN policy and strict
    // handshake tracking; one untaken branch per TCP packet while the
    // knob stays at Forward.
    if (!udp && profile_.wan_syn_policy != WanSynPolicy::Forward) {
        const std::uint8_t flags = v.tcp_flags();
        if ((flags & 0x02) != 0 && (flags & 0x10) == 0) {
            handled = true;
            if (profile_.wan_syn_policy == WanSynPolicy::Tarpit) {
                ++stats_.wan_syn_tarpitted;
                obs::inc(m_wan_syn_tarpitted_);
            } else {
                ++stats_.wan_syn_dropped;
                obs::inc(m_wan_syn_dropped_);
            }
            return FastVerdict::kDropped;
        }
    }
    Binding* b = table.find_inbound(v.dst_port(), {v.src(), v.src_port()});
    if (b == nullptr) return FastVerdict::kSlow; // maybe gateway-local
    if (!udp && profile_.wan_syn_policy != WanSynPolicy::Forward) {
        const std::uint8_t flags = v.tcp_flags();
        const bool synack = (flags & 0x12) == 0x12;
        if (!b->established && !b->synack_in && !synack) {
            handled = true;
            ++stats_.wan_stray_dropped;
            obs::inc(m_wan_stray_dropped_);
            return FastVerdict::kDropped;
        }
        if (synack) b->synack_in = true;
    }
    handled = true;
    ++b->packets_in;
    if (udp) {
        const bool first_inbound = !b->confirmed;
        b->confirmed = true;
        if (profile_.udp.inbound_refreshes || first_inbound)
            udp_.refresh(*b, udp_timeout_for(*b, true, b->key.remote.port));
    } else {
        const std::uint8_t flags = v.tcp_flags();
        // Mirror of inbound_tcp(): only non-SYN traffic past the
        // handshake promotes to the established timeout.
        if (b->packets_out > 1 && (flags & 0x02) == 0) b->established = true;
        refresh_tcp(*b);
        if ((flags & 0x01) != 0) b->fin_in = true;
    }
    v.set_dst(b->key.internal.addr);
    v.set_dst_port(b->key.internal.port);
    if (profile_.decrement_ttl) v.decrement_ttl();
    if (!udp) {
        const std::uint8_t flags = v.tcp_flags();
        if ((flags & 0x04) != 0) {
            tcp_.remove(b->key); // b invalid past this point
        } else if (b->fin_in && b->fin_out) {
            tcp_.set_expiry(*b, loop_.now() + profile_.tcp_fin_linger);
        }
    }
    return FastVerdict::kForwarded;
}

std::optional<net::Bytes> NatEngine::outbound_udp(const net::Ipv4Packet& pkt) {
    net::UdpDatagram dgram;
    try {
        dgram = net::UdpDatagram::parse(pkt.payload, pkt.h.src, pkt.h.dst);
    } catch (const net::ParseError&) {
        return std::nullopt;
    }
    const FlowKey key{net::proto::kUdp,
                      {pkt.h.src, dgram.src_port},
                      {pkt.h.dst, dgram.dst_port}};
    Binding* b = udp_.find_or_create_outbound(key);
    if (b == nullptr) {
        ++stats_.dropped_capacity;
        obs::inc(m_drop_capacity_);
        return std::nullopt;
    }
    ++b->packets_out;
    if (profile_.udp.outbound_refreshes || b->packets_out == 1)
        udp_.refresh(*b, udp_timeout_for(*b, false, key.remote.port));

    auto out = translated_header(pkt, wan_addr_, pkt.h.dst);
    dgram.src_port = b->external_port;
    out.payload = dgram.serialize(out.h.src, out.h.dst);
    return out.serialize();
}

std::optional<net::Bytes> NatEngine::outbound_tcp(const net::Ipv4Packet& pkt) {
    net::TcpSegment seg;
    try {
        seg = net::TcpSegment::parse(pkt.payload, pkt.h.src, pkt.h.dst);
    } catch (const net::ParseError&) {
        return std::nullopt;
    }
    const FlowKey key{net::proto::kTcp,
                      {pkt.h.src, seg.src_port},
                      {pkt.h.dst, seg.dst_port}};
    Binding* b = tcp_.find_or_create_outbound(key);
    if (b == nullptr) {
        ++stats_.dropped_capacity;
        obs::inc(m_drop_capacity_);
        return std::nullopt;
    }
    if (seg.flags.syn && !seg.flags.ack)
        tcp_.set_expiry(*b, loop_.now() + profile_.tcp_transitory_timeout);
    ++b->packets_out;
    if (b->packets_in > 0 && !seg.flags.syn) b->established = true;
    refresh_tcp(*b);
    if (seg.flags.fin) b->fin_out = true;

    auto out = translated_header(pkt, wan_addr_, pkt.h.dst);
    seg.src_port = b->external_port;
    out.payload = seg.serialize(out.h.src, out.h.dst);
    const auto bytes = out.serialize();

    if (seg.flags.rst) {
        tcp_.remove(key);
    } else if (b->fin_in && b->fin_out) {
        tcp_.set_expiry(*b, loop_.now() + profile_.tcp_fin_linger);
    }
    return bytes;
}

void NatEngine::flush() {
    udp_.clear();
    tcp_.clear();
    icmp_queries_.clear();
    ip_only_.clear();
}

void NatEngine::refresh_tcp(Binding& b) {
    tcp_.refresh(b, b.established ? profile_.tcp_established_timeout
                                  : profile_.tcp_transitory_timeout);
}

std::optional<net::Bytes> NatEngine::outbound_icmp(
    const net::Ipv4Packet& pkt) {
    net::IcmpMessage msg;
    try {
        msg = net::IcmpMessage::parse(pkt.payload);
    } catch (const net::ParseError&) {
        return std::nullopt;
    }
    if (msg.type == net::IcmpType::Echo) {
        const IcmpQueryKey key{pkt.h.src, msg.echo_id(), pkt.h.dst};
        if (!icmp_queries_.contains(key) &&
            icmp_queries_.size() >= kMaxIcmpQueries) {
            prune_expired(icmp_queries_, loop_.now());
            if (icmp_queries_.size() >= kMaxIcmpQueries) {
                ++stats_.dropped_capacity;
                obs::inc(m_drop_capacity_);
                return std::nullopt;
            }
        }
        icmp_queries_[key] =
            IcmpQueryBinding{key, loop_.now() + kIcmpQueryTimeout};
        auto out = translated_header(pkt, wan_addr_, pkt.h.dst);
        out.payload = pkt.payload; // id preserved
        return out.serialize();
    }
    // Outbound errors from LAN hosts: forward with outer translation.
    auto out = translated_header(pkt, wan_addr_, pkt.h.dst);
    out.payload = pkt.payload;
    return out.serialize();
}

std::optional<net::Bytes> NatEngine::outbound_unknown(
    const net::Ipv4Packet& pkt) {
    switch (profile_.unknown_proto) {
    case UnknownProtocolPolicy::Drop:
        ++stats_.dropped_policy;
        obs::inc(m_drop_policy_);
        return std::nullopt;
    case UnknownProtocolPolicy::Untranslated: {
        // Behave as a plain router: forward verbatim (TTL per profile).
        net::Ipv4Packet out = pkt;
        if (profile_.decrement_ttl)
            out.h.ttl = static_cast<std::uint8_t>(pkt.h.ttl - 1);
        return out.serialize();
    }
    case UnknownProtocolPolicy::TranslateIpOnly: {
        const IpOnlyKey key{pkt.h.protocol, pkt.h.dst};
        if (!ip_only_.contains(key) && ip_only_.size() >= kMaxIpOnly) {
            prune_expired(ip_only_, loop_.now());
            if (ip_only_.size() >= kMaxIpOnly) {
                ++stats_.dropped_capacity;
                obs::inc(m_drop_capacity_);
                return std::nullopt;
            }
        }
        ip_only_[key] = IpOnlyBinding{
            pkt.h.src, loop_.now() + profile_.unknown_proto_timeout};
        // Rewrite only the source address and the IP header checksum,
        // leaving the transport payload bytes untouched: SCTP's CRC
        // survives this, DCCP's pseudo-header checksum does not.
        net::Ipv4Packet out = pkt;
        out.h.src = wan_addr_;
        if (profile_.decrement_ttl)
            out.h.ttl = static_cast<std::uint8_t>(pkt.h.ttl - 1);
        return out.serialize(); // payload bytes preserved verbatim
    }
    }
    return std::nullopt;
}

std::optional<net::Bytes> NatEngine::hairpin(const net::Ipv4Packet& pkt) {
    if (!profile_.hairpin || pkt.h.protocol != net::proto::kUdp)
        return std::nullopt;
    net::UdpDatagram dgram;
    try {
        dgram = net::UdpDatagram::parse(pkt.payload, pkt.h.src, pkt.h.dst);
    } catch (const net::ParseError&) {
        return std::nullopt;
    }
    Binding* target = udp_.find_by_external(dgram.dst_port);
    if (target == nullptr) return std::nullopt;

    // The sender gets its own external mapping too, so the target sees
    // hairpinned traffic from the same endpoint an outside peer would.
    const FlowKey key{net::proto::kUdp,
                      {pkt.h.src, dgram.src_port},
                      {wan_addr_, dgram.dst_port}};
    Binding* sender = udp_.find_or_create_outbound(key);
    if (sender == nullptr) return std::nullopt;
    ++sender->packets_out;
    udp_.refresh(*sender, udp_timeout_for(*sender, false, dgram.dst_port));

    auto out = translated_header(pkt, wan_addr_, target->key.internal.addr);
    dgram.src_port = sender->external_port;
    dgram.dst_port = target->key.internal.port;
    out.payload = dgram.serialize(out.h.src, out.h.dst);
    return out.serialize();
}

std::optional<net::Bytes> NatEngine::inbound(const net::Ipv4Packet& pkt,
                                             bool& handled) {
    GK_EXPECTS(configured());
    handled = false;
    switch (pkt.h.protocol) {
    case net::proto::kUdp:
        return inbound_udp(pkt, handled);
    case net::proto::kTcp:
        return inbound_tcp(pkt, handled);
    case net::proto::kIcmp:
        return inbound_icmp(pkt, handled);
    default:
        return inbound_unknown(pkt, handled);
    }
}

std::optional<net::Bytes> NatEngine::inbound_udp(const net::Ipv4Packet& pkt,
                                                 bool& handled) {
    net::UdpDatagram dgram;
    try {
        dgram = net::UdpDatagram::parse(pkt.payload, pkt.h.src, pkt.h.dst);
    } catch (const net::ParseError&) {
        return std::nullopt;
    }
    Binding* b = udp_.find_inbound(dgram.dst_port,
                                   {pkt.h.src, dgram.src_port});
    if (b == nullptr) return std::nullopt; // not ours: maybe gateway-local
    handled = true;
    ++b->packets_in;
    const bool first_inbound = !b->confirmed;
    b->confirmed = true;
    if (profile_.udp.inbound_refreshes || first_inbound)
        udp_.refresh(*b, udp_timeout_for(*b, true, b->key.remote.port));

    auto out = translated_header(pkt, pkt.h.src, b->key.internal.addr);
    dgram.dst_port = b->key.internal.port;
    out.payload = dgram.serialize(out.h.src, out.h.dst);
    return out.serialize();
}

std::optional<net::Bytes> NatEngine::inbound_tcp(const net::Ipv4Packet& pkt,
                                                 bool& handled) {
    net::TcpSegment seg;
    try {
        seg = net::TcpSegment::parse(pkt.payload, pkt.h.src, pkt.h.dst);
    } catch (const net::ParseError&) {
        return std::nullopt;
    }
    // Unsolicited-SYN policy: Drop/Tarpit devices swallow any inbound
    // plain SYN before it can touch binding state or draw a gateway-
    // local RST, and additionally track the handshake strictly: until a
    // binding has seen an inbound SYN-ACK (or is established), nothing
    // else from the WAN is accepted on it. Forward (every calibrated
    // device) takes neither branch.
    if (profile_.wan_syn_policy != WanSynPolicy::Forward &&
        seg.flags.syn && !seg.flags.ack) {
        handled = true;
        if (profile_.wan_syn_policy == WanSynPolicy::Tarpit) {
            ++stats_.wan_syn_tarpitted;
            obs::inc(m_wan_syn_tarpitted_);
        } else {
            ++stats_.wan_syn_dropped;
            obs::inc(m_wan_syn_dropped_);
        }
        return std::nullopt;
    }
    Binding* b = tcp_.find_inbound(seg.dst_port, {pkt.h.src, seg.src_port});
    if (b == nullptr) return std::nullopt;
    handled = true;
    if (profile_.wan_syn_policy != WanSynPolicy::Forward) {
        const bool synack = seg.flags.syn && seg.flags.ack;
        if (!b->established && !b->synack_in && !synack) {
            ++stats_.wan_stray_dropped;
            obs::inc(m_wan_stray_dropped_);
            return std::nullopt;
        }
        if (synack) b->synack_in = true;
    }
    ++b->packets_in;
    // Mirror of the outbound rule at outbound_tcp(): only non-SYN traffic
    // past the handshake promotes. A retransmitted SYN followed by the
    // SYN-ACK must not jump to the established timeout.
    if (b->packets_out > 1 && !seg.flags.syn) b->established = true;
    refresh_tcp(*b);
    if (seg.flags.fin) b->fin_in = true;

    auto out = translated_header(pkt, pkt.h.src, b->key.internal.addr);
    seg.dst_port = b->key.internal.port;
    out.payload = seg.serialize(out.h.src, out.h.dst);
    const auto bytes = out.serialize();

    if (seg.flags.rst) {
        tcp_.remove(b->key);
    } else if (b->fin_in && b->fin_out) {
        tcp_.set_expiry(*b, loop_.now() + profile_.tcp_fin_linger);
    }
    return bytes;
}

std::optional<IcmpKind> NatEngine::classify_icmp(const net::IcmpMessage& m) {
    using net::IcmpType;
    namespace code = net::icmp_code;
    switch (m.type) {
    case IcmpType::DestUnreachable:
        switch (m.code) {
        case code::kNetUnreachable:
            return IcmpKind::NetUnreachable;
        case code::kHostUnreachable:
            return IcmpKind::HostUnreachable;
        case code::kProtoUnreachable:
            return IcmpKind::ProtoUnreachable;
        case code::kPortUnreachable:
            return IcmpKind::PortUnreachable;
        case code::kFragNeeded:
            return IcmpKind::FragNeeded;
        case code::kSourceRouteFailed:
            return IcmpKind::SourceRouteFailed;
        default:
            return std::nullopt;
        }
    case IcmpType::SourceQuench:
        return IcmpKind::SourceQuench;
    case IcmpType::TimeExceeded:
        // Only the two defined codes classify; anything else used to be
        // lumped in with TtlExceeded, which let a spoofed error with a
        // nonsense code ride a device's TTL-translation posture.
        switch (m.code) {
        case code::kTtlExceeded:
            return IcmpKind::TtlExceeded;
        case code::kReassemblyTimeExceeded:
            return IcmpKind::ReassemblyTimeExceeded;
        default:
            return std::nullopt;
        }
    case IcmpType::ParamProblem:
        return IcmpKind::ParamProblem;
    default:
        return std::nullopt;
    }
}

bool NatEngine::icmp_error_admitted() {
    const auto now = loop_.now();
    if (now >= icmp_err_window_ + std::chrono::seconds(1)) {
        icmp_err_window_ = now;
        icmp_err_count_ = 0;
    }
    if (icmp_err_count_ >= profile_.icmp_error_rate_limit) return false;
    ++icmp_err_count_;
    return true;
}

bool NatEngine::embedded_quote_valid(const net::Ipv4Packet& embedded) {
    // RFC 792 quotes carry the embedded IP header plus at least the
    // first 8 transport bytes; a shorter quote cannot be checked against
    // a binding beyond the bare port pair, which is exactly the sloppy
    // acceptance attack class 4 exploits.
    if (embedded.payload.size() < 8) return false;
    if (embedded.h.protocol == net::proto::kUdp) {
        const auto udp_len = static_cast<std::uint16_t>(
            (embedded.payload[4] << 8) | embedded.payload[5]);
        if (udp_len < 8) return false; // impossible UDP header
    }
    return true;
}

net::Bytes NatEngine::translate_embedded(const net::Bytes& quoted,
                                         const Binding& binding,
                                         std::uint8_t proto) const {
    net::Bytes out = quoted;
    if (out.size() < 20) return out;
    const std::size_t ihl = static_cast<std::size_t>(out[0] & 0xf) * 4;
    if (out.size() < ihl) return out;

    // Rewrite the embedded source address (external -> internal).
    const std::uint32_t old_addr = wan_addr_.value();
    const std::uint32_t new_addr = binding.key.internal.addr.value();
    for (int i = 0; i < 4; ++i)
        out[12 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(new_addr >> (24 - 8 * i));

    if (profile_.fix_embedded_ip_checksum) {
        const auto old_ck =
            static_cast<std::uint16_t>((quoted[10] << 8) | quoted[11]);
        const auto new_ck = net::checksum_update32(old_ck, old_addr, new_addr);
        out[10] = static_cast<std::uint8_t>(new_ck >> 8);
        out[11] = static_cast<std::uint8_t>(new_ck);
    }

    if (profile_.fix_embedded_transport && out.size() >= ihl + 2) {
        // Rewrite the embedded source port (external -> internal).
        const std::uint16_t old_port = binding.external_port;
        const std::uint16_t new_port = binding.key.internal.port;
        out[ihl] = static_cast<std::uint8_t>(new_port >> 8);
        out[ihl + 1] = static_cast<std::uint8_t>(new_port);
        // Fix the embedded transport checksum when it is inside the quote
        // (UDP: offset 6; TCP's checksum at offset 16 is beyond the
        // 8-byte quote). Account for both the port and the pseudo-header
        // address change.
        if (proto == net::proto::kUdp && out.size() >= ihl + 8) {
            auto ck = static_cast<std::uint16_t>((out[ihl + 6] << 8) |
                                                 out[ihl + 7]);
            if (ck != 0) { // zero means checksum disabled
                ck = net::checksum_update32(ck, old_addr, new_addr);
                ck = net::checksum_update16(ck, old_port, new_port);
                // A computed zero must be written as 0xffff (RFC 768):
                // a raw 0x0000 here reads as "checksum disabled" to the
                // next NAT layer in a cascade, which then skips its own
                // rewrite and delivers a quote with a stale checksum.
                if (ck == 0) ck = 0xffff;
                out[ihl + 6] = static_cast<std::uint8_t>(ck >> 8);
                out[ihl + 7] = static_cast<std::uint8_t>(ck);
            }
        }
    }
    return out;
}

net::Bytes NatEngine::synthesize_rst_from_icmp(
    const net::Ipv4Packet& embedded, const Binding& binding) const {
    // ls2 behavior: instead of relaying the ICMP error, fabricate a TCP
    // RST toward the internal host. The RST is invalid: sequence and ack
    // numbers are zero, so a correct TCP stack ignores it.
    net::TcpSegment rst;
    rst.src_port = binding.key.remote.port;
    rst.dst_port = binding.key.internal.port;
    rst.flags.rst = true;
    net::Ipv4Packet out;
    out.h.protocol = net::proto::kTcp;
    out.h.src = embedded.h.dst; // the remote the flow was talking to
    out.h.dst = binding.key.internal.addr;
    out.h.ttl = 64;
    out.payload = rst.serialize(out.h.src, out.h.dst);
    return out.serialize();
}

std::optional<net::Bytes> NatEngine::inbound_icmp(const net::Ipv4Packet& pkt,
                                                  bool& handled) {
    net::IcmpMessage msg;
    try {
        msg = net::IcmpMessage::parse(pkt.payload);
    } catch (const net::ParseError&) {
        return std::nullopt;
    }

    if (msg.type == net::IcmpType::EchoReply) {
        for (auto it = icmp_queries_.begin(); it != icmp_queries_.end();) {
            if (loop_.now() >= it->second.expires_at) {
                it = icmp_queries_.erase(it);
                continue;
            }
            if (it->first.id == msg.echo_id() &&
                it->first.remote == pkt.h.src) {
                handled = true;
                auto out = translated_header(pkt, pkt.h.src,
                                             it->first.internal);
                out.payload = pkt.payload;
                return out.serialize();
            }
            ++it;
        }
        return std::nullopt; // unsolicited reply: gateway-local (its ping)
    }

    if (!msg.is_error()) return std::nullopt;

    // Hardened devices budget how many inbound WAN errors they process
    // per second; once spent, errors are dropped before any quote parse
    // or binding lookup, so an attacker's port sweep starves itself.
    if (profile_.icmp_error_rate_limit > 0 && !icmp_error_admitted()) {
        handled = true;
        ++stats_.icmp_rate_limited;
        obs::inc(m_icmp_rate_limited_);
        return std::nullopt;
    }

    // Parse the quoted datagram to identify the binding it concerns.
    net::Ipv4Packet embedded;
    try {
        embedded = net::Ipv4Packet::parse_prefix(msg.payload);
    } catch (const net::ParseError&) {
        return std::nullopt;
    }
    if (embedded.h.src != wan_addr_) return std::nullopt; // not our flow

    // A quote of a non-first fragment carries mid-stream payload where
    // the transport header would sit; reading those bytes as ports could
    // alias an unrelated live binding on attacker-chosen data. The quote
    // is unattributable, so drop the error outright.
    if (embedded.h.frag_offset != 0) {
        handled = true;
        ++stats_.icmp_dropped;
        obs::inc(m_icmp_dropped_);
        return std::nullopt;
    }

    const auto kind = classify_icmp(msg);
    if (!kind) return std::nullopt;

    if (embedded.h.protocol == net::proto::kIcmp) {
        // Error about an ICMP echo flow (Table 2 "ICMP: Host Unreach.").
        handled = true;
        if (!profile_.icmp_query_errors_translated) {
            ++stats_.icmp_dropped;
            obs::inc(m_icmp_dropped_);
            return std::nullopt;
        }
        if (embedded.payload.size() < 8) return std::nullopt;
        const auto id = static_cast<std::uint16_t>(
            (embedded.payload[4] << 8) | embedded.payload[5]);
        for (const auto& [key, qb] : icmp_queries_) {
            if (key.id == id && key.remote == embedded.h.dst) {
                ++stats_.icmp_translated;
                obs::inc(m_icmp_translated_);
                net::Bytes quoted = msg.payload;
                // Rewrite the embedded source address back.
                const std::uint32_t v = key.internal.value();
                for (int i = 0; i < 4; ++i)
                    quoted[12 + static_cast<std::size_t>(i)] =
                        static_cast<std::uint8_t>(v >> (24 - 8 * i));
                // The quote's IP checksum covers the rewritten address;
                // leaving it stale survives one NAT layer (end hosts
                // rarely verify quotes) but a downstream home NAT that
                // validates embedded quotes discards the error. Same
                // incremental update the UDP/TCP path applies, behind
                // the same profile knob.
                if (profile_.fix_embedded_ip_checksum && quoted.size() >= 12) {
                    const auto old_ck = static_cast<std::uint16_t>(
                        (quoted[10] << 8) | quoted[11]);
                    const auto new_ck = net::checksum_update32(
                        old_ck, wan_addr_.value(), v);
                    quoted[10] = static_cast<std::uint8_t>(new_ck >> 8);
                    quoted[11] = static_cast<std::uint8_t>(new_ck);
                }
                net::IcmpMessage fwd = msg;
                fwd.payload = std::move(quoted);
                auto out = translated_header(pkt, pkt.h.src, key.internal);
                out.payload = fwd.serialize();
                return out.serialize();
            }
        }
        return std::nullopt;
    }

    if (embedded.h.protocol != net::proto::kUdp &&
        embedded.h.protocol != net::proto::kTcp)
        return std::nullopt;
    if (embedded.payload.size() < 4) return std::nullopt;
    if (profile_.validate_embedded_binding &&
        !embedded_quote_valid(embedded)) {
        handled = true;
        ++stats_.icmp_quote_rejected;
        obs::inc(m_icmp_quote_rejected_);
        return std::nullopt;
    }

    const auto ext_port = static_cast<std::uint16_t>(
        (embedded.payload[0] << 8) | embedded.payload[1]);
    const auto remote_port = static_cast<std::uint16_t>(
        (embedded.payload[2] << 8) | embedded.payload[3]);
    const net::Endpoint remote{embedded.h.dst, remote_port};

    const bool is_tcp = embedded.h.protocol == net::proto::kTcp;
    BindingTable& table = is_tcp ? tcp_ : udp_;
    Binding* b = table.find_inbound(ext_port, remote);
    if (b == nullptr) return std::nullopt;
    handled = true;

    // Conntrack-style teardown posture: an accepted hard error purges
    // the binding it names, whether or not the device also relays the
    // error into the LAN. This is the ReDAN off-path DoS surface; the
    // purge runs after the relay bytes are built (the binding is read
    // there) and before every return below.
    const bool purge =
        profile_.icmp_error_teardown &&
        (*kind == IcmpKind::PortUnreachable ||
         *kind == IcmpKind::HostUnreachable ||
         *kind == IcmpKind::ProtoUnreachable);
    std::optional<net::Bytes> result;

    const auto& set = is_tcp ? profile_.icmp_tcp : profile_.icmp_udp;
    if (!set.translates(*kind)) {
        ++stats_.icmp_dropped;
        obs::inc(m_icmp_dropped_);
    } else if (is_tcp && profile_.tcp_icmp_becomes_rst) {
        ++stats_.icmp_translated;
        obs::inc(m_icmp_translated_);
        result = synthesize_rst_from_icmp(embedded, *b);
    } else {
        ++stats_.icmp_translated;
        obs::inc(m_icmp_translated_);
        net::IcmpMessage fwd = msg;
        fwd.payload =
            translate_embedded(msg.payload, *b, embedded.h.protocol);
        auto out = translated_header(pkt, pkt.h.src, b->key.internal.addr);
        out.payload = fwd.serialize(); // outer ICMP checksum recomputed
        result = out.serialize();
    }
    if (purge) {
        ++stats_.icmp_teardowns;
        obs::inc(m_icmp_teardown_);
        table.remove(b->key); // b invalid past this point
    }
    return result;
}

std::optional<net::Bytes> NatEngine::inbound_unknown(
    const net::Ipv4Packet& pkt, bool& handled) {
    if (profile_.unknown_proto != UnknownProtocolPolicy::TranslateIpOnly)
        return std::nullopt;
    auto it = ip_only_.find(IpOnlyKey{pkt.h.protocol, pkt.h.src});
    if (it == ip_only_.end()) return std::nullopt;
    if (loop_.now() >= it->second.expires_at) {
        ip_only_.erase(it);
        return std::nullopt;
    }
    handled = true;
    if (!profile_.unknown_proto_inbound_allowed) {
        ++stats_.dropped_policy;
        obs::inc(m_drop_policy_);
        return std::nullopt;
    }
    it->second.expires_at = loop_.now() + profile_.unknown_proto_timeout;
    // IP-only rewrite of the destination; transport bytes untouched.
    net::Ipv4Packet out = pkt;
    out.h.dst = it->second.internal;
    if (profile_.decrement_ttl)
        out.h.ttl = static_cast<std::uint8_t>(pkt.h.ttl - 1);
    return out.serialize();
}

} // namespace gatekit::gateway
