#include "gateway/rule_chain.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace gatekit::gateway {

namespace {

/// Inclusive match interval of one rule in one dimension.
struct Interval {
    std::uint32_t lo = 0;
    std::uint32_t hi = std::numeric_limits<std::uint32_t>::max();
};

Interval proto_interval(const Rule& r) {
    if (r.proto == 0) return {};
    return {r.proto, r.proto};
}

Interval prefix_interval(net::Ipv4Addr net, int prefix_len) {
    if (prefix_len <= 0) return {};
    const std::uint32_t mask =
        prefix_len >= 32 ? 0xffffffffu : ~((1u << (32 - prefix_len)) - 1);
    return {net.value() & mask, (net.value() & mask) | ~mask};
}

Interval port_interval(PortRange pr) { return {pr.lo, pr.hi}; }

} // namespace

bool RuleChain::matches(const Rule& r, const Key& k) {
    if (r.proto != 0 && r.proto != k.proto) return false;
    if (r.src_prefix_len > 0 &&
        !r.src_net.same_subnet(net::Ipv4Addr{k.src}, r.src_prefix_len))
        return false;
    if (r.dst_prefix_len > 0 &&
        !r.dst_net.same_subnet(net::Ipv4Addr{k.dst}, r.dst_prefix_len))
        return false;
    return r.sport.contains(k.sport) && r.dport.contains(k.dport);
}

void RuleChain::add_rule(Rule r) {
    rules_.push_back(Entry{r, 0, nullptr});
    compiled_valid_ = false;
}

void RuleChain::clear() {
    rules_.clear();
    default_hits_ = 0;
    compiled_valid_ = false;
}

void RuleChain::record_hit(Entry& e) {
    ++e.hit_count;
    obs::inc(e.obs_hits);
    obs::inc(e.rule.verdict == RuleVerdict::kAccept ? obs_accepted_
                                                    : obs_dropped_);
}

void RuleChain::record_default() {
    ++default_hits_;
    obs::inc(obs_default_);
    obs::inc(default_verdict_ == RuleVerdict::kAccept ? obs_accepted_
                                                      : obs_dropped_);
}

RuleVerdict RuleChain::evaluate(const Key& k) {
    for (Entry& e : rules_) {
        if (matches(e.rule, k)) {
            record_hit(e);
            return e.rule.verdict;
        }
    }
    record_default();
    return default_verdict_;
}

void RuleChain::compile() {
    const std::size_t n = rules_.size();
    words_ = (n + 63) / 64;
    and_scratch_.assign(words_, 0);

    auto build = [&](Dimension& d, auto interval_of) {
        d.starts.clear();
        d.starts.push_back(0);
        for (const Entry& e : rules_) {
            const Interval iv = interval_of(e.rule);
            d.starts.push_back(iv.lo);
            if (iv.hi != std::numeric_limits<std::uint32_t>::max())
                d.starts.push_back(iv.hi + 1);
        }
        std::sort(d.starts.begin(), d.starts.end());
        d.starts.erase(std::unique(d.starts.begin(), d.starts.end()),
                       d.starts.end());
        d.masks.assign(d.starts.size() * words_, 0);
        for (std::size_t i = 0; i < n; ++i) {
            const Interval iv = interval_of(rules_[i].rule);
            const auto first = std::lower_bound(d.starts.begin(),
                                                d.starts.end(), iv.lo);
            const auto last =
                iv.hi == std::numeric_limits<std::uint32_t>::max()
                    ? d.starts.end()
                    : std::lower_bound(d.starts.begin(), d.starts.end(),
                                       iv.hi + 1);
            const std::uint64_t bit = std::uint64_t{1} << (i % 64);
            for (auto it = first; it != last; ++it) {
                const std::size_t seg =
                    static_cast<std::size_t>(it - d.starts.begin());
                d.masks[seg * words_ + i / 64] |= bit;
            }
        }
    };

    build(dim_proto_, [](const Rule& r) { return proto_interval(r); });
    build(dim_src_, [](const Rule& r) {
        return prefix_interval(r.src_net, r.src_prefix_len);
    });
    build(dim_dst_, [](const Rule& r) {
        return prefix_interval(r.dst_net, r.dst_prefix_len);
    });
    build(dim_sport_, [](const Rule& r) { return port_interval(r.sport); });
    build(dim_dport_, [](const Rule& r) { return port_interval(r.dport); });
    compiled_valid_ = true;
}

const std::uint64_t* RuleChain::dim_lookup(const Dimension& d,
                                           std::uint32_t v) const {
    // starts[0] == 0, so upper_bound is always past at least one element.
    const std::size_t seg = static_cast<std::size_t>(
        std::upper_bound(d.starts.begin(), d.starts.end(), v) -
        d.starts.begin() - 1);
    return &d.masks[seg * words_];
}

RuleVerdict RuleChain::evaluate_compiled(const Key& k) {
    if (rules_.empty()) {
        record_default();
        return default_verdict_;
    }
    if (!compiled_valid_) compile();
    const std::uint64_t* mp = dim_lookup(dim_proto_, k.proto);
    const std::uint64_t* ms = dim_lookup(dim_src_, k.src);
    const std::uint64_t* md = dim_lookup(dim_dst_, k.dst);
    const std::uint64_t* msp = dim_lookup(dim_sport_, k.sport);
    const std::uint64_t* mdp = dim_lookup(dim_dport_, k.dport);
    for (std::size_t w = 0; w < words_; ++w) {
        const std::uint64_t hit = mp[w] & ms[w] & md[w] & msp[w] & mdp[w];
        if (hit != 0) {
            Entry& e = rules_[w * 64 + std::countr_zero(hit)];
            record_hit(e);
            return e.rule.verdict;
        }
    }
    record_default();
    return default_verdict_;
}

void RuleChain::attach_metrics(obs::MetricsRegistry& reg,
                               const std::string& chain) {
    obs_default_ = reg.counter("rule_chain_default_hits", {{"chain", chain}});
    obs_accepted_ = reg.counter("rule_chain_accepted", {{"chain", chain}});
    obs_dropped_ = reg.counter("rule_chain_dropped", {{"chain", chain}});
    obs::add(obs_default_, default_hits_);
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        Entry& e = rules_[i];
        e.obs_hits = reg.counter(
            "rule_chain_rule_hits",
            {{"chain", chain}, {"rule", std::to_string(i)}});
        obs::add(e.obs_hits, e.hit_count);
    }
}

} // namespace gatekit::gateway
