#include "gateway/binding_table.hpp"

#include <algorithm>

#include "net/ipv4.hpp"
#include "util/assert.hpp"

namespace gatekit::gateway {

BindingTable::BindingTable(sim::EventLoop& loop,
                           const DeviceProfile& profile, std::uint8_t proto)
    : loop_(loop), profile_(profile), proto_(proto),
      next_pool_port_(profile.pool_begin) {}

void BindingTable::bind_observability(obs::MetricsRegistry& reg,
                                      const std::string& device) {
    const std::string proto = proto_ == net::proto::kUdp ? "udp" : "tcp";
    obs::Labels labels{{"device", device}, {"proto", proto}};
    m_created_ = reg.counter("nat.binding.created", labels);
    m_expired_ = reg.counter("nat.binding.expired", labels);
    m_refused_ = reg.counter("nat.binding.refused", labels);
    m_port_collisions_ = reg.counter("nat.port.collisions", labels);
    m_host_budget_refused_ = reg.counter("nat.binding.host_budget_refused",
                                         labels);
    m_occupancy_ = reg.gauge("nat.binding.occupancy", labels);
    m_cascades_ = reg.gauge("nat.wheel.cascades", labels);
}

std::size_t BindingTable::capacity_limit() const {
    if (proto_ == net::proto::kUdp && profile_.max_udp_bindings >= 0)
        return static_cast<std::size_t>(profile_.max_udp_bindings);
    return static_cast<std::size_t>(profile_.max_tcp_bindings);
}

sim::TimePoint BindingTable::quantize(sim::TimePoint t) const {
    const auto g = profile_.udp.granularity;
    if (g <= sim::Duration::zero()) return t;
    const auto ticks = (t.count() + g.count() - 1) / g.count();
    return sim::TimePoint{ticks * g.count()};
}

sim::TimePoint BindingTable::effective_deadline(const Binding& b) const {
    // Coarse timers only affect confirmed bindings: the paper's UDP-1
    // results are tight for every device, while UDP-2 shows wide
    // quartiles on the coarse-timer models (we/al/je/ng5).
    return b.confirmed ? quantize(b.expires_at) : b.expires_at;
}

void BindingTable::schedule_expiry(Binding& b, sim::TimePoint at) {
    b.wheel_deadline = at;
    b.wheel_gen = next_gen_++;
    std::uint64_t idx;
    if (!pending_free_.empty()) {
        idx = pending_free_.back();
        pending_free_.pop_back();
        pending_[idx] = PendingExpiry{b.slot, b.wheel_gen};
    } else {
        idx = pending_.size();
        pending_.push_back(PendingExpiry{b.slot, b.wheel_gen});
    }
    wheel_.schedule(idx, at);
}

std::uint32_t BindingTable::alloc_binding() {
    if (!free_binding_slots_.empty()) {
        const std::uint32_t s = free_binding_slots_.back();
        free_binding_slots_.pop_back();
        slots_[s].slot = s;
        return s;
    }
    const auto s = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slots_.back().slot = s;
    hot_deadline_.push_back(0);
    return s;
}

void BindingTable::host_claim(const Binding& b) {
    if (profile_.per_host_binding_budget < 0) return;
    ++per_host_[b.key.internal.addr.value()];
}

void BindingTable::host_release(const Binding& b) {
    if (profile_.per_host_binding_budget < 0) return;
    auto it = per_host_.find(b.key.internal.addr.value());
    if (it == per_host_.end()) return;
    if (--it->second == 0) per_host_.erase(it);
}

void BindingTable::internal_claim(const Binding& b) {
    if (profile_.port_allocation != PortAllocation::ReusePooled) return;
    auto& held = by_internal_[b.key.internal];
    held.first = b.external_port;
    ++held.second;
}

void BindingTable::internal_release(const Binding& b) {
    if (profile_.port_allocation != PortAllocation::ReusePooled) return;
    auto it = by_internal_.find(b.key.internal);
    if (it == by_internal_.end()) return;
    if (--it->second.second == 0) by_internal_.erase(it);
}

void BindingTable::free_binding(std::uint32_t slot) {
    slots_[slot] = Binding{};
    free_binding_slots_.push_back(slot);
}

void BindingTable::add_to_graveyard(const FlowKey& key, std::uint16_t port,
                                    sim::TimePoint until) {
    graveyard_[key] = {port, until};
    grave_queue_.push_back(GraveEntry{key, until});
}

void BindingTable::erase_external(std::uint16_t port, std::uint32_t slot) {
    auto pit = by_external_.find(port);
    if (pit == by_external_.end()) return;
    auto& slots = pit->second;
    auto it = std::find(slots.begin(), slots.end(), slot);
    if (it == slots.end()) return;
    slots.erase(it); // preserves claim order of the remaining flows
    if (slots.empty()) by_external_.erase(pit);
}

bool BindingTable::external_in_use(std::uint16_t port) const {
    return by_external_.find(port) != by_external_.end();
}

void BindingTable::sweep() {
    const auto now = loop_.now();
    // Harvest wheel entries whose scheduled deadline has passed. An entry
    // is a conservative lower bound on its binding's effective deadline
    // (refreshes only move it by rescheduling when earlier), so a binding
    // that pops unexpired is simply re-parked at its real deadline.
    for (std::uint64_t idx : wheel_.collect_due(now)) {
        const PendingExpiry rec = pending_[idx];
        pending_free_.push_back(idx);
        Binding& b = slots_[rec.slot];
        // A removed binding or reused slot never matches: free_binding
        // zeroes wheel_gen and generations are never recycled.
        if (b.wheel_gen != rec.gen) continue;
        const sim::TimePoint deadline{hot_deadline_[rec.slot]};
        if (now >= deadline) {
            add_to_graveyard(b.key, b.external_port,
                             now + profile_.port_quarantine);
            erase_external(b.external_port, rec.slot);
            by_flow_.erase(b.key);
            host_release(b);
            internal_release(b);
            obs::inc(m_expired_);
            free_binding(rec.slot);
        } else {
            schedule_expiry(b, deadline);
        }
    }
    obs::set(m_occupancy_, static_cast<double>(by_flow_.size()));
    obs::set(m_cascades_, static_cast<double>(wheel_.cascades()));
    while (!grave_queue_.empty() && now >= grave_queue_.front().end) {
        const GraveEntry& front = grave_queue_.front();
        auto it = graveyard_.find(front.key);
        if (it != graveyard_.end() && it->second.second == front.end)
            graveyard_.erase(it);
        grave_queue_.pop_front();
    }
}

bool BindingTable::port_taken_by_other(std::uint16_t port,
                                       const net::Endpoint& internal) const {
    auto pit = by_external_.find(port);
    if (pit == by_external_.end()) return false;
    for (const std::uint32_t slot : pit->second)
        if (slots_[slot].key.internal != internal) return true;
    return false;
}

std::uint16_t BindingTable::allocate_port(const FlowKey& key) {
    if (profile_.port_allocation == PortAllocation::ReusePooled) {
        // Paired pooling: while any of this endpoint's flows lives, new
        // flows share its pool port (endpoint-independent mapping). The
        // port cannot collide — find_or_create_outbound already missed
        // by_flow_, so this (internal, remote) pair is new on it.
        auto it = by_internal_.find(key.internal);
        if (it != by_internal_.end()) return it->second.first;
    }
    if (profile_.port_allocation == PortAllocation::PreserveSourcePort) {
        bool quarantined = false;
        auto it = graveyard_.find(key);
        if (it != graveyard_.end() && loop_.now() < it->second.second &&
            it->second.first == key.internal.port)
            quarantined = true;
        // The same internal endpoint may share its preserved external
        // port across flows (endpoint-independent mapping); only a
        // different internal endpoint blocks preservation.
        if (!quarantined &&
            !port_taken_by_other(key.internal.port, key.internal))
            return key.internal.port;
        // Preservation blocked (quarantine or another endpoint owns the
        // port) counts as one collision; the pool scan adds the rest.
        obs::inc(m_port_collisions_);
    }
    // Sequential scan of the pool for a completely free port.
    const auto pool_size =
        static_cast<std::uint32_t>(profile_.pool_end - profile_.pool_begin + 1);
    for (std::uint32_t i = 0; i < pool_size; ++i) {
        std::uint16_t candidate = next_pool_port_;
        next_pool_port_ = candidate >= profile_.pool_end
                              ? profile_.pool_begin
                              : static_cast<std::uint16_t>(candidate + 1);
        if (!external_in_use(candidate)) return candidate;
        obs::inc(m_port_collisions_);
    }
    return 0; // pool exhausted
}

Binding* BindingTable::find_or_create_outbound(const FlowKey& key) {
    sweep();
    auto it = by_flow_.find(key);
    if (it != by_flow_.end()) return &slots_[it->second];

    if (by_flow_.size() >= capacity_limit()) {
        obs::inc(m_refused_);
        return nullptr;
    }
    if (profile_.per_host_binding_budget >= 0) {
        auto hit = per_host_.find(key.internal.addr.value());
        if (hit != per_host_.end() &&
            hit->second >=
                static_cast<std::uint32_t>(profile_.per_host_binding_budget)) {
            ++host_budget_refusals_;
            obs::inc(m_host_budget_refused_);
            return nullptr;
        }
    }
    const std::uint16_t port = allocate_port(key);
    if (port == 0) {
        obs::inc(m_refused_);
        return nullptr;
    }

    const std::uint32_t slot = alloc_binding();
    Binding& b = slots_[slot];
    b.key = key;
    b.external_port = port;
    b.expires_at = loop_.now() + profile_.udp.initial;
    const auto [ins, ok] = by_flow_.emplace(key, slot);
    GK_ASSERT(ok);
    (void)ins;
    by_external_[port].push_back(slot);
    host_claim(b);
    internal_claim(b);
    update_hot(b);
    schedule_expiry(b, effective_deadline(b));
    obs::inc(m_created_);
    obs::set(m_occupancy_, static_cast<double>(by_flow_.size()));
    return &b;
}

Binding* BindingTable::find_outbound(const FlowKey& key) {
    auto it = by_flow_.find(key);
    if (it == by_flow_.end()) return nullptr;
    Binding& b = slots_[it->second];
    return expired(b) ? nullptr : &b;
}

Binding* BindingTable::find_inbound(std::uint16_t external_port,
                                    const net::Endpoint& remote) {
    auto pit = by_external_.find(external_port);
    if (pit == by_external_.end()) return nullptr;
    auto& slots = pit->second;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        const std::uint32_t slot = slots[i];
        Binding& b = slots_[slot];
        // Endpoint-dependent filtering: the inbound peer must match.
        if (b.key.remote != remote) continue;
        if (expired(b)) {
            add_to_graveyard(b.key, b.external_port,
                             loop_.now() + profile_.port_quarantine);
            slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(i));
            if (slots.empty()) by_external_.erase(pit);
            by_flow_.erase(b.key);
            host_release(b);
            internal_release(b);
            free_binding(slot);
            obs::inc(m_expired_);
            obs::set(m_occupancy_, static_cast<double>(by_flow_.size()));
            return nullptr;
        }
        return &b;
    }
    return nullptr;
}

Binding* BindingTable::find_by_external(std::uint16_t external_port) {
    auto pit = by_external_.find(external_port);
    if (pit == by_external_.end()) return nullptr;
    for (const std::uint32_t slot : pit->second)
        if (!expired(slots_[slot])) return &slots_[slot];
    return nullptr;
}

void BindingTable::refresh(Binding& b, sim::Duration timeout) {
    set_expiry(b, loop_.now() + timeout);
}

void BindingTable::set_expiry(Binding& b, sim::TimePoint at) {
    b.expires_at = at;
    const auto deadline = effective_deadline(b);
    hot_deadline_[b.slot] = deadline.count();
    // Later deadlines ride the existing wheel entry (it re-parks itself on
    // pop); earlier ones need a fresh entry or sweep() would miss them.
    if (deadline < b.wheel_deadline) schedule_expiry(b, deadline);
}

void BindingTable::remove(const FlowKey& key) {
    auto it = by_flow_.find(key);
    if (it == by_flow_.end()) return;
    const std::uint32_t slot = it->second;
    erase_external(slots_[slot].external_port, slot);
    by_flow_.erase(it);
    host_release(slots_[slot]);
    internal_release(slots_[slot]);
    // The wheel entry goes stale and is discarded when it pops.
    free_binding(slot);
}

void BindingTable::clear() {
    by_flow_.clear();
    by_external_.clear();
    graveyard_.clear();
    grave_queue_.clear();
    per_host_.clear();
    by_internal_.clear();
    // Reset every slab slot (zeroed generations stale out parked wheel
    // entries) and rebuild the free list; the slab itself is retained.
    free_binding_slots_.clear();
    for (std::uint32_t i = static_cast<std::uint32_t>(slots_.size()); i-- > 0;)
        free_binding(i);
    obs::set(m_occupancy_, 0.0);
    // Wheel entries all reference now-absent slots; each is recycled into
    // pending_free_ as its bucket pops, so no explicit wheel reset needed.
}

std::size_t BindingTable::size() {
    sweep();
    return by_flow_.size();
}

} // namespace gatekit::gateway
