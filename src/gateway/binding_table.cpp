#include "gateway/binding_table.hpp"

#include "util/assert.hpp"

namespace gatekit::gateway {

BindingTable::BindingTable(sim::EventLoop& loop,
                           const DeviceProfile& profile, std::uint8_t proto)
    : loop_(loop), profile_(profile), proto_(proto),
      next_pool_port_(profile.pool_begin) {}

sim::TimePoint BindingTable::quantize(sim::TimePoint t) const {
    const auto g = profile_.udp.granularity;
    if (g <= sim::Duration::zero()) return t;
    const auto ticks = (t.count() + g.count() - 1) / g.count();
    return sim::TimePoint{ticks * g.count()};
}

bool BindingTable::expired(const Binding& b) const {
    // Coarse timers only affect confirmed bindings: the paper's UDP-1
    // results are tight for every device, while UDP-2 shows wide
    // quartiles on the coarse-timer models (we/al/je/ng5).
    const auto deadline = b.confirmed ? quantize(b.expires_at) : b.expires_at;
    return loop_.now() >= deadline;
}

void BindingTable::erase_external(std::uint16_t port, const FlowKey& key) {
    auto [lo, hi] = by_external_.equal_range(port);
    for (auto it = lo; it != hi; ++it) {
        if (it->second == key) {
            by_external_.erase(it);
            return;
        }
    }
}

void BindingTable::sweep() {
    const auto now = loop_.now();
    for (auto it = by_flow_.begin(); it != by_flow_.end();) {
        if (expired(it->second)) {
            graveyard_[it->first] = {it->second.external_port,
                                     now + profile_.port_quarantine};
            erase_external(it->second.external_port, it->first);
            it = by_flow_.erase(it);
        } else {
            ++it;
        }
    }
    for (auto it = graveyard_.begin(); it != graveyard_.end();) {
        if (now >= it->second.second)
            it = graveyard_.erase(it);
        else
            ++it;
    }
}

bool BindingTable::port_taken_by_other(std::uint16_t port,
                                       const net::Endpoint& internal) const {
    auto [lo, hi] = by_external_.equal_range(port);
    for (auto it = lo; it != hi; ++it)
        if (it->second.internal != internal) return true;
    return false;
}

std::uint16_t BindingTable::allocate_port(const FlowKey& key) {
    if (profile_.port_allocation == PortAllocation::PreserveSourcePort) {
        bool quarantined = false;
        auto it = graveyard_.find(key);
        if (it != graveyard_.end() && loop_.now() < it->second.second &&
            it->second.first == key.internal.port)
            quarantined = true;
        // The same internal endpoint may share its preserved external
        // port across flows (endpoint-independent mapping); only a
        // different internal endpoint blocks preservation.
        if (!quarantined &&
            !port_taken_by_other(key.internal.port, key.internal))
            return key.internal.port;
    }
    // Sequential scan of the pool for a completely free port.
    const auto pool_size =
        static_cast<std::uint32_t>(profile_.pool_end - profile_.pool_begin + 1);
    for (std::uint32_t i = 0; i < pool_size; ++i) {
        std::uint16_t candidate = next_pool_port_;
        next_pool_port_ = candidate >= profile_.pool_end
                              ? profile_.pool_begin
                              : static_cast<std::uint16_t>(candidate + 1);
        if (by_external_.count(candidate) == 0) return candidate;
    }
    return 0; // pool exhausted
}

Binding* BindingTable::find_or_create_outbound(const FlowKey& key) {
    sweep();
    auto it = by_flow_.find(key);
    if (it != by_flow_.end()) return &it->second;

    if (by_flow_.size() >= capacity_limit()) return nullptr;
    const std::uint16_t port = allocate_port(key);
    if (port == 0) return nullptr;

    Binding b;
    b.key = key;
    b.external_port = port;
    b.expires_at = loop_.now() + profile_.udp.initial;
    auto [ins, ok] = by_flow_.emplace(key, b);
    GK_ASSERT(ok);
    by_external_.emplace(port, key);
    return &ins->second;
}

Binding* BindingTable::find_inbound(std::uint16_t external_port,
                                    const net::Endpoint& remote) {
    auto [lo, hi] = by_external_.equal_range(external_port);
    for (auto pit = lo; pit != hi; ++pit) {
        auto it = by_flow_.find(pit->second);
        if (it == by_flow_.end()) continue;
        Binding& b = it->second;
        // Endpoint-dependent filtering: the inbound peer must match.
        if (b.key.remote != remote) continue;
        if (expired(b)) {
            graveyard_[b.key] = {b.external_port,
                                 loop_.now() + profile_.port_quarantine};
            by_external_.erase(pit);
            by_flow_.erase(it);
            return nullptr;
        }
        return &b;
    }
    return nullptr;
}

Binding* BindingTable::find_by_external(std::uint16_t external_port) {
    auto [lo, hi] = by_external_.equal_range(external_port);
    for (auto pit = lo; pit != hi; ++pit) {
        auto it = by_flow_.find(pit->second);
        if (it != by_flow_.end() && !expired(it->second))
            return &it->second;
    }
    return nullptr;
}

void BindingTable::refresh(Binding& b, sim::Duration timeout) {
    b.expires_at = loop_.now() + timeout;
}

void BindingTable::remove(const FlowKey& key) {
    auto it = by_flow_.find(key);
    if (it == by_flow_.end()) return;
    erase_external(it->second.external_port, key);
    by_flow_.erase(it);
}

std::size_t BindingTable::size() {
    sweep();
    return by_flow_.size();
}

} // namespace gatekit::gateway
