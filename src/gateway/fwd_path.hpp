// Gateway forwarding path: drop-tail ingress buffers, per-direction line
// processing and a shared forwarding CPU. TCP-2's throughput caps and
// TCP-3's bufferbloat delays both emerge from this single mechanism, as
// they did on the physical devices.
#pragma once

#include <cstdint>
#include <deque>

#include "gateway/profile.hpp"
#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"
#include "util/small_fn.hpp"

namespace gatekit::gateway {

enum class Direction { Down, Up }; ///< Down = WAN->LAN, Up = LAN->WAN

class FwdPath {
public:
    /// Completion callback. Inline capacity fits the hot-path captures
    /// (owner + recycled frame buffer + destination address) so queueing
    /// a packet never heap-allocates for the callable.
    using DeliverFn = util::SmallFn<void(), 48>;

    FwdPath(sim::EventLoop& loop, const ForwardingModel& model);

    /// Submit a translated packet of `bytes` length for forwarding in
    /// `dir`; `deliver` runs when the device finishes processing it.
    /// Returns false (and drops) when the ingress buffer is full.
    bool submit(Direction dir, std::size_t bytes, DeliverFn deliver);

    std::uint64_t drops(Direction dir) const { return q(dir).drops; }
    std::uint64_t forwarded(Direction dir) const { return q(dir).forwarded; }
    std::size_t queued_bytes(Direction dir) const { return q(dir).bytes; }

    /// Register per-direction forwarded/dropped counters, queue-depth
    /// gauges and a packet-size log histogram under `device`.
    void bind_observability(obs::MetricsRegistry& reg,
                            const std::string& device);

private:
    struct Job {
        std::size_t bytes;
        DeliverFn deliver;
    };
    struct Queue {
        std::deque<Job> jobs;
        std::size_t bytes = 0;
        std::size_t limit = 0;
        double line_mbps = 100.0;
        sim::TimePoint line_free_at{};
        std::uint64_t drops = 0;
        std::uint64_t forwarded = 0;
        // One-entry service-time memo (line rate is fixed per queue, and
        // traffic repeats packet sizes): skips two double divisions per
        // packet while returning the identical computed Duration.
        std::size_t st_bytes = SIZE_MAX;
        sim::Duration st_line{};
        // Instrumentation; nullptr until bind_observability.
        obs::Counter* m_forwarded = nullptr;
        obs::Counter* m_dropped = nullptr;
        obs::Gauge* m_bytes = nullptr;
        obs::LogHistogram* m_pkt_bytes = nullptr;
    };

    Queue& q(Direction dir) { return dir == Direction::Down ? down_ : up_; }
    const Queue& q(Direction dir) const {
        return dir == Direction::Down ? down_ : up_;
    }

    void schedule();
    void start_service(Direction dir);
    /// Begin servicing a job on the shared CPU (caller established
    /// eligibility); factored so the idle fast path can bypass the queue.
    void start_job(Direction dir, std::size_t bytes, DeliverFn&& deliver);
    static sim::Duration service_time(std::size_t bytes, double mbps);

    sim::EventLoop& loop_;
    ForwardingModel model_;
    Queue down_;
    Queue up_;
    /// Completion callback of the job occupying the CPU. Parked here so
    /// the completion event captures only `this` instead of nesting the
    /// full DeliverFn inside the event-loop handler (which would drag an
    /// indirect move through every handler relocation). `cpu_busy_`
    /// guarantees at most one job is in flight.
    DeliverFn inflight_;
    /// CPU-side service-time memo (shared aggregate rate).
    std::size_t cpu_st_bytes_ = SIZE_MAX;
    sim::Duration cpu_st_time_{};
    bool cpu_busy_ = false;
    Direction last_served_ = Direction::Up; ///< round-robin fairness
    sim::EventId retry_event_;
};

} // namespace gatekit::gateway
