// Gateway forwarding path: drop-tail ingress buffers, per-direction line
// processing and a shared forwarding CPU. TCP-2's throughput caps and
// TCP-3's bufferbloat delays both emerge from this single mechanism, as
// they did on the physical devices.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "gateway/profile.hpp"
#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"

namespace gatekit::gateway {

enum class Direction { Down, Up }; ///< Down = WAN->LAN, Up = LAN->WAN

class FwdPath {
public:
    using DeliverFn = std::function<void()>;

    FwdPath(sim::EventLoop& loop, const ForwardingModel& model);

    /// Submit a translated packet of `bytes` length for forwarding in
    /// `dir`; `deliver` runs when the device finishes processing it.
    /// Returns false (and drops) when the ingress buffer is full.
    bool submit(Direction dir, std::size_t bytes, DeliverFn deliver);

    std::uint64_t drops(Direction dir) const { return q(dir).drops; }
    std::uint64_t forwarded(Direction dir) const { return q(dir).forwarded; }
    std::size_t queued_bytes(Direction dir) const { return q(dir).bytes; }

    /// Register per-direction forwarded/dropped counters, queue-depth
    /// gauges and a packet-size histogram under `device`.
    void bind_observability(obs::MetricsRegistry& reg,
                            const std::string& device);

private:
    struct Job {
        std::size_t bytes;
        DeliverFn deliver;
    };
    struct Queue {
        std::deque<Job> jobs;
        std::size_t bytes = 0;
        std::size_t limit = 0;
        double line_mbps = 100.0;
        sim::TimePoint line_free_at{};
        std::uint64_t drops = 0;
        std::uint64_t forwarded = 0;
        // Instrumentation; nullptr until bind_observability.
        obs::Counter* m_forwarded = nullptr;
        obs::Counter* m_dropped = nullptr;
        obs::Gauge* m_bytes = nullptr;
        obs::Histogram* m_pkt_bytes = nullptr;
    };

    Queue& q(Direction dir) { return dir == Direction::Down ? down_ : up_; }
    const Queue& q(Direction dir) const {
        return dir == Direction::Down ? down_ : up_;
    }

    void schedule();
    void start_service(Direction dir);
    static sim::Duration service_time(std::size_t bytes, double mbps);

    sim::EventLoop& loop_;
    ForwardingModel model_;
    Queue down_;
    Queue up_;
    bool cpu_busy_ = false;
    Direction last_served_ = Direction::Up; ///< round-robin fairness
    sim::EventId retry_event_;
};

} // namespace gatekit::gateway
