// Carrier-grade NAT (RFC 6888 posture) and the CgnGateway device that
// wraps it: the middle box of a NAT444 deployment, translating between
// the carrier access network (one home-gateway WAN address per
// subscriber) and a single ISP-facing external address.
//
// Unlike a DeviceProfile-driven HomeGateway — a measured consumer device
// with calibrated quirks — the CGN always translates correctly: every
// checksum is fixed, ICMP quotes are rewritten in both directions, and
// TTL is decremented per hop. Its knobs are the deployment parameters an
// operator chooses: the port pool, the per-subscriber block carve
// (RFC 7422 deterministic NAT), EIM vs. EDM mapping, and hairpinning.
// The engine reuses the BindingTable slab/timer-wheel machinery (one
// UDP + TCP table pair per subscriber block, or one shared pair), and
// the gateway's datapath rides the same Host/NetIf packet-pool stack as
// every other device.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gateway/binding_table.hpp"
#include "gateway/profile.hpp"
#include "stack/dhcp_service.hpp"
#include "stack/host.hpp"

namespace gatekit::gateway {

/// RFC 6888 inherits RFC 4787 REQ-5's 120 s floor for UDP mapping
/// timers; the defaults sit exactly there, so the NAT444 effective
/// timeout min(home, cgn) clips every calibrated device above 120 s.
inline UdpTimerPolicy cgn_udp_defaults() {
    UdpTimerPolicy p;
    p.initial = std::chrono::seconds(120);
    p.inbound_refresh = std::chrono::seconds(120);
    p.outbound_refresh = std::chrono::seconds(120);
    return p;
}

/// Operator-chosen CGN deployment parameters.
struct CgnConfig {
    /// External port pool (shared by every subscriber).
    std::uint16_t pool_begin = 1024;
    std::uint16_t pool_end = 65534;
    /// Ports per subscriber block (RFC 7422 deterministic NAT): each
    /// subscriber address maps to a fixed block, computable offline, so
    /// the operator needs no per-flow logging. 0 = one shared pool —
    /// first-come allocation where a single churning subscriber can
    /// exhaust everyone's ports (the ReDAN exhaustion victim).
    std::uint16_t block_size = 2048;
    /// Endpoint-independent mapping (RFC 4787 REQ-1): all flows from one
    /// subscriber endpoint share one external port, which is what makes
    /// hole punching through the CGN layer possible. false = endpoint-
    /// dependent (symmetric) mapping — every flow draws a fresh port.
    bool eim = true;
    /// RFC 6888 REQ-9: hairpin subscriber-to-subscriber traffic sent to
    /// the external address.
    bool hairpin = true;
    /// UDP binding timers (see cgn_udp_defaults above).
    UdpTimerPolicy udp = cgn_udp_defaults();
    sim::Duration tcp_established_timeout{std::chrono::hours(2)};
    sim::Duration tcp_transitory_timeout{std::chrono::minutes(4)};
    sim::Duration tcp_fin_linger{std::chrono::seconds(10)};
    /// Per-subscriber concurrent-binding cap per transport. 0 = bounded
    /// by the block span (block mode) or the whole pool (shared mode).
    int max_bindings = 0;
};

/// The translation core. Pure packet-in/bytes-out like NatEngine; the
/// CgnGateway below owns the wires.
class CgnEngine {
public:
    CgnEngine(sim::EventLoop& loop, CgnConfig cfg);

    /// `access_addr/prefix` is the subscriber-facing subnet; packets
    /// sourced outside it are not translated. `external_addr` is the
    /// single ISP-facing address every subscriber is multiplexed onto.
    void set_addresses(net::Ipv4Addr access_addr, int access_prefix_len,
                       net::Ipv4Addr external_addr);
    bool configured() const { return !external_addr_.is_unspecified(); }
    net::Ipv4Addr external_addr() const { return external_addr_; }
    const CgnConfig& config() const { return cfg_; }

    /// Subscriber -> deterministic port block (RFC 7422): block index is
    /// host-id modulo block count, so it is computable offline from the
    /// address alone. nullopt in shared-pool mode.
    struct BlockInfo {
        int index = 0;
        std::uint16_t begin = 0;
        std::uint16_t end = 0;
    };
    std::optional<BlockInfo> block_of(net::Ipv4Addr subscriber) const;
    int num_blocks() const;

    std::optional<net::Bytes> outbound(const net::Ipv4Packet& pkt);
    std::optional<net::Bytes> inbound(const net::Ipv4Packet& pkt,
                                      bool& handled);
    /// Subscriber-to-subscriber traffic addressed to the external
    /// address (UDP only, like the consumer devices' hairpin).
    std::optional<net::Bytes> hairpin(const net::Ipv4Packet& pkt);

    /// Live bindings a subscriber currently holds (UDP + TCP).
    std::size_t live_bindings(net::Ipv4Addr subscriber);

    /// Drop all translation state (maintenance restart).
    void flush();

    struct Stats {
        std::uint64_t translated_out = 0;
        std::uint64_t translated_in = 0;
        /// find_or_create refused: port block / shared pool dry, or the
        /// per-subscriber cap hit.
        std::uint64_t pool_exhausted = 0;
        /// Subscriber refused because its deterministic block is already
        /// owned by a different address (over-subscribed modulus).
        std::uint64_t block_collisions = 0;
        std::uint64_t dropped_no_binding = 0;
        std::uint64_t dropped_policy = 0;
        std::uint64_t icmp_relayed = 0;
        std::uint64_t icmp_dropped = 0;
        std::uint64_t hairpinned = 0;
    };
    const Stats& stats() const { return stats_; }

private:
    /// One port block's translation state. In shared-pool mode a single
    /// instance (block -1, full pool) carries every subscriber — FlowKey
    /// internals keep them apart, but they compete for ports.
    struct Slice {
        net::Ipv4Addr owner; ///< unspecified in shared mode
        int block = -1;
        DeviceProfile prof; ///< stable: the tables hold a reference
        BindingTable udp;
        BindingTable tcp;
        Slice(sim::EventLoop& loop, net::Ipv4Addr a, int blk,
              DeviceProfile p)
            : owner(a), block(blk), prof(std::move(p)),
              udp(loop, prof, 17), tcp(loop, prof, 6) {}
    };

    Slice* slice_for_subscriber(net::Ipv4Addr src);
    Slice* slice_for_port(std::uint16_t external_port);
    DeviceProfile make_profile(std::uint16_t begin, std::uint16_t end) const;
    bool on_access_subnet(net::Ipv4Addr a) const {
        return a.same_subnet(access_addr_, access_prefix_len_);
    }

    std::optional<net::Bytes> outbound_l4(const net::Ipv4Packet& pkt);
    std::optional<net::Bytes> outbound_icmp(const net::Ipv4Packet& pkt);
    std::optional<net::Bytes> inbound_l4(const net::Ipv4Packet& pkt,
                                         bool& handled);
    std::optional<net::Bytes> inbound_icmp(const net::Ipv4Packet& pkt,
                                           bool& handled);
    void refresh_udp(Slice& s, Binding& b, bool inbound_packet);
    void refresh_tcp(Slice& s, Binding& b);

    sim::EventLoop& loop_;
    CgnConfig cfg_;
    net::Ipv4Addr access_addr_;
    int access_prefix_len_ = 24;
    net::Ipv4Addr external_addr_;

    /// Block index -> slice (created on first use); shared mode uses
    /// blocks_[0] as the single full-pool slice.
    std::vector<std::unique_ptr<Slice>> blocks_;

    struct QueryKey {
        net::Ipv4Addr internal;
        std::uint16_t id = 0;
        net::Ipv4Addr remote;
        friend constexpr auto operator<=>(const QueryKey&,
                                          const QueryKey&) = default;
    };
    struct QueryKeyHash {
        std::size_t operator()(const QueryKey& k) const noexcept {
            std::uint64_t x = (std::uint64_t{k.internal.value()} << 32) |
                              k.remote.value();
            x ^= std::uint64_t{k.id} << 13;
            x *= 0x9e3779b97f4a7c15ULL;
            x ^= x >> 29;
            return static_cast<std::size_t>(x);
        }
    };
    std::unordered_map<QueryKey, sim::TimePoint, QueryKeyHash> icmp_queries_;

    Stats stats_;
};

/// The deployable middle box: a Host with an access-side interface (it
/// runs the access network's DHCP server, handing each home gateway its
/// WAN lease) and a WAN interface (DHCP client toward the ISP), with a
/// CgnEngine spliced into forwarding and local delivery the same way
/// HomeGateway splices its NatEngine. No FwdPath: carrier boxes forward
/// at line rate relative to the CPE devices under study.
class CgnGateway {
public:
    struct Config {
        CgnConfig cgn;
        net::Ipv4Addr access_addr{100, 64, 0, 1}; ///< RFC 6598 space
        int access_prefix_len = 24;
        net::Ipv4Addr access_pool_base{100, 64, 0, 100};
        std::uint32_t mac_index = 5000;
    };

    CgnGateway(sim::EventLoop& loop, Config config);

    CgnGateway(const CgnGateway&) = delete;
    CgnGateway& operator=(const CgnGateway&) = delete;

    void connect_access(sim::Link& link, sim::Link::Side side);
    void connect_wan(sim::Link& link, sim::Link::Side side);

    /// Bring the box up: WAN DHCP first; once the external address is
    /// leased the engine configures and the access-side DHCP server
    /// starts serving subscriber (home-gateway WAN) leases.
    void start(std::function<void(net::Ipv4Addr)> on_ready = {});

    bool ready() const { return engine_.configured(); }
    net::Ipv4Addr access_addr() const { return config_.access_addr; }
    net::Ipv4Addr external_addr() const { return engine_.external_addr(); }

    stack::Host& host() { return host_; }
    CgnEngine& engine() { return engine_; }
    stack::Iface& access_if() { return access_if_; }
    stack::Iface& wan_if() { return wan_if_; }

private:
    void on_access_ip(const net::Ipv4Packet& pkt);
    bool on_wan_local(const net::Ipv4Packet& pkt);
    void emit(net::Bytes datagram, net::Ipv4Addr dst);
    void ttl_expired(const net::Ipv4Packet& pkt);

    sim::EventLoop& loop_;
    Config config_;
    stack::Host host_;
    stack::NetIf& wan_nic_;
    stack::Iface& access_if_;
    stack::Iface& wan_if_;
    CgnEngine engine_;
    std::unique_ptr<stack::DhcpClient> wan_dhcp_;
    std::unique_ptr<stack::DhcpServer> access_dhcp_;
    std::function<void(net::Ipv4Addr)> on_ready_;
};

} // namespace gatekit::gateway
