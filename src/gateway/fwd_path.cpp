#include "gateway/fwd_path.hpp"

#include "util/assert.hpp"

namespace gatekit::gateway {

FwdPath::FwdPath(sim::EventLoop& loop, const ForwardingModel& model)
    : loop_(loop), model_(model) {
    down_.limit = model.buffer_down_bytes;
    down_.line_mbps = model.down_mbps;
    up_.limit = model.buffer_up_bytes;
    up_.line_mbps = model.up_mbps;
}

void FwdPath::bind_observability(obs::MetricsRegistry& reg,
                                 const std::string& device) {
    for (Direction dir : {Direction::Down, Direction::Up}) {
        const std::string d = dir == Direction::Down ? "down" : "up";
        obs::Labels labels{{"device", device}, {"direction", d}};
        Queue& queue = q(dir);
        queue.m_forwarded = reg.counter("fwd.forwarded", labels);
        queue.m_dropped = reg.counter(
            "fwd.dropped", {{"device", device},
                            {"direction", d},
                            {"reason", "buffer_full"}});
        queue.m_bytes = reg.gauge("fwd.queue.bytes", labels);
        // Log-bucketed sizes: 12.5% relative resolution from runt
        // frames to jumbo without pre-chosen Ethernet bounds.
        queue.m_pkt_bytes = reg.log_histogram("fwd.packet.bytes", labels);
    }
}

sim::Duration FwdPath::service_time(std::size_t bytes, double mbps) {
    GK_EXPECTS(mbps > 0.0);
    const double seconds = static_cast<double>(bytes) * 8.0 / (mbps * 1e6);
    return sim::from_sec(seconds);
}

bool FwdPath::submit(Direction dir, std::size_t bytes, DeliverFn deliver) {
    Queue& queue = q(dir);
    if (queue.bytes + bytes > queue.limit) {
        ++queue.drops;
        obs::inc(queue.m_dropped);
        return false;
    }
    // Idle fast path: with the CPU free, this queue empty and its line
    // ready, schedule() would pick this job immediately (the other
    // direction can hold only line-blocked work when the CPU is idle) —
    // start it without the ingress-queue round trip. Queue gauge and
    // timestamps match the queued path exactly.
    if (!cpu_busy_ && queue.jobs.empty() && queue.line_free_at <= loop_.now()) {
        obs::set(queue.m_bytes, static_cast<double>(queue.bytes));
        obs::observe(queue.m_pkt_bytes, static_cast<double>(bytes));
        start_job(dir, bytes, std::move(deliver));
        return true;
    }
    queue.jobs.push_back(Job{bytes, std::move(deliver)});
    queue.bytes += bytes;
    obs::set(queue.m_bytes, static_cast<double>(queue.bytes));
    obs::observe(queue.m_pkt_bytes, static_cast<double>(bytes));
    schedule();
    return true;
}

void FwdPath::schedule() {
    if (cpu_busy_) return;
    const auto now = loop_.now();

    // Pick an eligible direction: non-empty queue whose line is free.
    // Round-robin between the two when both are eligible.
    auto eligible = [&](Direction dir) {
        return !q(dir).jobs.empty() && q(dir).line_free_at <= now;
    };
    Direction pick = last_served_ == Direction::Down ? Direction::Up
                                                     : Direction::Down;
    if (!eligible(pick)) {
        pick = pick == Direction::Down ? Direction::Up : Direction::Down;
        if (!eligible(pick)) {
            // Nothing eligible now: if work is waiting on a busy line,
            // retry when the earliest line frees up.
            sim::TimePoint wake = sim::TimePoint::max();
            for (Direction d : {Direction::Down, Direction::Up})
                if (!q(d).jobs.empty())
                    wake = std::min(wake, q(d).line_free_at);
            if (wake != sim::TimePoint::max() && !retry_event_) {
                retry_event_ = loop_.at(wake, [this] {
                    retry_event_ = sim::EventId{};
                    schedule();
                });
            }
            return;
        }
    }
    start_service(pick);
}

void FwdPath::start_service(Direction dir) {
    Queue& queue = q(dir);
    GK_ASSERT(!queue.jobs.empty());
    Job job = std::move(queue.jobs.front());
    queue.jobs.pop_front();
    queue.bytes -= job.bytes;
    obs::set(queue.m_bytes, static_cast<double>(queue.bytes));
    start_job(dir, job.bytes, std::move(job.deliver));
}

void FwdPath::start_job(Direction dir, std::size_t bytes, DeliverFn&& deliver) {
    Queue& queue = q(dir);
    cpu_busy_ = true;
    last_served_ = dir;
    if (bytes != cpu_st_bytes_) {
        cpu_st_bytes_ = bytes;
        cpu_st_time_ = service_time(bytes, model_.aggregate_mbps);
    }
    if (bytes != queue.st_bytes) {
        queue.st_bytes = bytes;
        queue.st_line = service_time(bytes, queue.line_mbps);
    }
    const auto cpu_time = cpu_st_time_;
    const auto line_time = queue.st_line;
    queue.line_free_at = loop_.now() + line_time;
    ++queue.forwarded;
    obs::inc(queue.m_forwarded);

    inflight_ = std::move(deliver);
    loop_.after(cpu_time, [this] {
        cpu_busy_ = false;
        // Move out first: deliver() may re-enter submit() and start the
        // next job, which reuses the inflight_ parking spot.
        DeliverFn deliver = std::move(inflight_);
        // Completion of processing: hand the packet to the egress side
        // after the fixed processing latency, snapped up to the device's
        // forwarding tick (timer-batched forwarders). Quantization is
        // monotonic, so packet order is preserved.
        sim::TimePoint when = loop_.now() + model_.processing_delay;
        if (model_.forwarding_tick > sim::Duration::zero()) {
            const auto tick = model_.forwarding_tick.count();
            const auto ticks = (when.count() + tick - 1) / tick;
            when = sim::TimePoint{ticks * tick};
        }
        if (when > loop_.now()) {
            loop_.at(when, std::move(deliver));
        } else {
            deliver();
        }
        schedule();
    });
}

} // namespace gatekit::gateway
