// The gateway's DNS proxy. Every studied device proxies DNS over UDP;
// TCP support varies wildly (paper section 4.3): 20 devices refuse TCP/53,
// 4 accept but never answer, 9 proxy over TCP, and ap forwards TCP
// queries upstream over UDP.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "gateway/profile.hpp"
#include "net/dns.hpp"
#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"
#include "stack/dns_service.hpp"

namespace gatekit::stack {
class Host;
class UdpSocket;
class TcpListener;
class TcpSocket;
} // namespace gatekit::stack

namespace gatekit::gateway {

class DnsProxy {
public:
    DnsProxy(stack::Host& host, const DeviceProfile& profile);
    ~DnsProxy();

    DnsProxy(const DnsProxy&) = delete;
    DnsProxy& operator=(const DnsProxy&) = delete;

    /// Start listening; `upstream` is the resolver learned via WAN DHCP
    /// and `wan_addr` the gateway's own upstream-facing address (used as
    /// the source of proxied TCP queries).
    void start(net::Endpoint upstream, net::Ipv4Addr wan_addr);

    std::uint64_t udp_forwarded() const { return udp_forwarded_; }
    std::uint64_t tcp_accepted() const { return tcp_accepted_; }

    /// Outstanding UDP queries awaiting an upstream response.
    std::size_t pending_queries() const { return pending_.size(); }

    /// Register query/drop counters and the pending-depth gauge under
    /// `device`.
    void bind_observability(obs::MetricsRegistry& reg,
                            const std::string& device);
    /// Outstanding per-query upstream sockets/connections (TCP paths).
    std::size_t inflight_queries() const {
        return udp_inflight_.size() + tcp_inflight_.size();
    }

private:
    /// How long per-query upstream state may wait for an answer before
    /// the orphaned socket is reclaimed. Generous against slow resolvers;
    /// the point is that unanswered queries cannot accumulate forever.
    static constexpr sim::Duration kQueryTtl{std::chrono::seconds(10)};

    void on_lan_query(net::Endpoint client,
                      std::span<const std::uint8_t> payload);
    void on_upstream_response(std::span<const std::uint8_t> payload);
    void on_tcp_conn(stack::TcpSocket& conn);
    void forward_tcp_query(stack::TcpSocket& client_conn, net::Bytes query);
    void prune_pending();
    /// Drop all in-flight upstream state tied to a closed client conn.
    void cancel_inflight_for(stack::TcpSocket* client);
    void close_udp_inflight(std::size_t idx, bool close_sock);
    void close_tcp_inflight(std::size_t idx, bool abort_upstream);

    stack::Host& host_;
    const DeviceProfile& profile_;
    net::Endpoint upstream_;
    net::Ipv4Addr wan_addr_;
    stack::UdpSocket* lan_sock_ = nullptr;
    stack::UdpSocket* upstream_sock_ = nullptr;
    stack::TcpListener* tcp_listener_ = nullptr;

    /// Outstanding UDP queries, keyed by (transaction id, client) so two
    /// LAN clients with colliding ids cannot clobber each other; an
    /// upstream response is matched to the oldest entry with its id. The
    /// value is the forwarding time, used to prune queries whose
    /// response never came.
    struct PendingKey {
        std::uint16_t id = 0;
        net::Endpoint client;
        friend constexpr auto operator<=>(const PendingKey&,
                                          const PendingKey&) = default;
    };
    std::map<PendingKey, sim::TimePoint> pending_;

    std::map<stack::TcpSocket*, std::shared_ptr<stack::DnsTcpFramer>>
        tcp_framers_;

    /// ProxyViaUdp: one upstream UDP socket per TCP-received query.
    struct UdpInflight {
        stack::UdpSocket* sock = nullptr;
        stack::TcpSocket* client = nullptr;
        sim::EventId expiry;
    };
    std::vector<UdpInflight> udp_inflight_;

    /// ProxyTcp: one upstream TCP connection per query.
    struct TcpInflight {
        stack::TcpSocket* up = nullptr;
        stack::TcpSocket* client = nullptr;
        sim::EventId expiry;
    };
    std::vector<TcpInflight> tcp_inflight_;

    std::uint64_t udp_forwarded_ = 0;
    std::uint64_t tcp_accepted_ = 0;

    // Instrumentation; nullptr until bind_observability.
    obs::Counter* m_udp_queries_ = nullptr;
    obs::Counter* m_tcp_accepted_ = nullptr;
    obs::Counter* m_oversize_drops_ = nullptr;
    obs::Gauge* m_pending_depth_ = nullptr;
};

} // namespace gatekit::gateway
