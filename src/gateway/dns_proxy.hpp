// The gateway's DNS proxy. Every studied device proxies DNS over UDP;
// TCP support varies wildly (paper section 4.3): 20 devices refuse TCP/53,
// 4 accept but never answer, 9 proxy over TCP, and ap forwards TCP
// queries upstream over UDP.
#pragma once

#include <map>
#include <memory>

#include "gateway/profile.hpp"
#include "net/dns.hpp"
#include "sim/event_loop.hpp"
#include "stack/dns_service.hpp"

namespace gatekit::stack {
class Host;
class UdpSocket;
class TcpListener;
class TcpSocket;
} // namespace gatekit::stack

namespace gatekit::gateway {

class DnsProxy {
public:
    DnsProxy(stack::Host& host, const DeviceProfile& profile);
    ~DnsProxy();

    DnsProxy(const DnsProxy&) = delete;
    DnsProxy& operator=(const DnsProxy&) = delete;

    /// Start listening; `upstream` is the resolver learned via WAN DHCP
    /// and `wan_addr` the gateway's own upstream-facing address (used as
    /// the source of proxied TCP queries).
    void start(net::Endpoint upstream, net::Ipv4Addr wan_addr);

    std::uint64_t udp_forwarded() const { return udp_forwarded_; }
    std::uint64_t tcp_accepted() const { return tcp_accepted_; }

private:
    void on_lan_query(net::Endpoint client,
                      std::span<const std::uint8_t> payload);
    void on_upstream_response(std::span<const std::uint8_t> payload);
    void on_tcp_conn(stack::TcpSocket& conn);
    void forward_tcp_query(stack::TcpSocket& client_conn, net::Bytes query);

    stack::Host& host_;
    const DeviceProfile& profile_;
    net::Endpoint upstream_;
    net::Ipv4Addr wan_addr_;
    stack::UdpSocket* lan_sock_ = nullptr;
    stack::UdpSocket* upstream_sock_ = nullptr;
    stack::TcpListener* tcp_listener_ = nullptr;
    std::map<std::uint16_t, net::Endpoint> pending_; ///< query id -> client
    std::map<stack::TcpSocket*, std::shared_ptr<stack::DnsTcpFramer>>
        tcp_framers_;
    std::uint64_t udp_forwarded_ = 0;
    std::uint64_t tcp_accepted_ = 0;
};

} // namespace gatekit::gateway
