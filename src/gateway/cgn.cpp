#include "gateway/cgn.hpp"

#include "net/checksum.hpp"
#include "net/icmp.hpp"
#include "net/tcp_header.hpp"
#include "net/udp.hpp"
#include "util/assert.hpp"

namespace gatekit::gateway {

namespace {
constexpr sim::Duration kIcmpQueryTimeout = std::chrono::seconds(60);
constexpr std::size_t kMaxIcmpQueries = 4096;

/// Rewrite one (address, port) half of an ICMP error quote — `src_side`
/// selects the quoted source or destination — keeping the quote's IP
/// header checksum and, when the quote reaches it, its UDP checksum
/// incrementally correct (RFC 1624). A computed UDP checksum of zero is
/// written as 0xffff (RFC 768); a raw 0x0000 would read as "disabled" to
/// the next NAT layer of the cascade. TCP's checksum at transport offset
/// 16 lies beyond the RFC 792 8-byte quote and is left alone.
void rewrite_quote(net::Bytes& q, bool src_side, net::Ipv4Addr new_addr,
                   std::uint16_t new_port, bool rewrite_port) {
    if (q.size() < 20) return;
    const std::size_t ihl = static_cast<std::size_t>(q[0] & 0xf) * 4;
    if (ihl < 20 || q.size() < ihl) return;

    const std::size_t ao = src_side ? 12 : 16;
    const auto old_addr = static_cast<std::uint32_t>(
        (q[ao] << 24) | (q[ao + 1] << 16) | (q[ao + 2] << 8) | q[ao + 3]);
    const std::uint32_t na = new_addr.value();
    for (int i = 0; i < 4; ++i)
        q[ao + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(na >> (24 - 8 * i));
    auto ip_ck = static_cast<std::uint16_t>((q[10] << 8) | q[11]);
    ip_ck = net::checksum_update32(ip_ck, old_addr, na);
    q[10] = static_cast<std::uint8_t>(ip_ck >> 8);
    q[11] = static_cast<std::uint8_t>(ip_ck);

    std::uint16_t old_port = 0;
    std::uint16_t port = 0;
    const std::size_t po = ihl + (src_side ? 0u : 2u);
    const bool port_done = rewrite_port && q.size() >= po + 2;
    if (port_done) {
        old_port = static_cast<std::uint16_t>((q[po] << 8) | q[po + 1]);
        port = new_port;
        q[po] = static_cast<std::uint8_t>(port >> 8);
        q[po + 1] = static_cast<std::uint8_t>(port);
    }
    if (q[9] == net::proto::kUdp && q.size() >= ihl + 8) {
        auto ck = static_cast<std::uint16_t>((q[ihl + 6] << 8) | q[ihl + 7]);
        if (ck != 0) { // zero means the quoted datagram had no checksum
            ck = net::checksum_update32(ck, old_addr, na);
            if (port_done) ck = net::checksum_update16(ck, old_port, port);
            if (ck == 0) ck = 0xffff;
            q[ihl + 6] = static_cast<std::uint8_t>(ck >> 8);
            q[ihl + 7] = static_cast<std::uint8_t>(ck);
        }
    }
}
} // namespace

CgnEngine::CgnEngine(sim::EventLoop& loop, CgnConfig cfg)
    : loop_(loop), cfg_(cfg) {
    GK_EXPECTS(cfg_.pool_begin >= 1 && cfg_.pool_begin <= cfg_.pool_end);
    if (cfg_.block_size != 0) GK_EXPECTS(num_blocks() >= 1);
}

int CgnEngine::num_blocks() const {
    if (cfg_.block_size == 0) return 0;
    return (cfg_.pool_end - cfg_.pool_begin + 1) / cfg_.block_size;
}

void CgnEngine::set_addresses(net::Ipv4Addr access_addr,
                              int access_prefix_len,
                              net::Ipv4Addr external_addr) {
    GK_EXPECTS(!external_addr.is_unspecified());
    access_addr_ = access_addr;
    access_prefix_len_ = access_prefix_len;
    external_addr_ = external_addr;
    blocks_.clear();
    blocks_.resize(cfg_.block_size == 0
                       ? 1u
                       : static_cast<std::size_t>(num_blocks()));
    icmp_queries_.clear();
    stats_ = Stats{};
}

std::optional<CgnEngine::BlockInfo>
CgnEngine::block_of(net::Ipv4Addr subscriber) const {
    GK_EXPECTS(configured());
    if (cfg_.block_size == 0) return std::nullopt;
    const auto n = static_cast<std::uint32_t>(num_blocks());
    const std::uint32_t host_mask =
        access_prefix_len_ == 0
            ? ~std::uint32_t{0}
            : ~(~std::uint32_t{0} << (32 - access_prefix_len_));
    const std::uint32_t host = subscriber.value() & host_mask;
    BlockInfo info;
    info.index = static_cast<int>(host % n);
    info.begin = static_cast<std::uint16_t>(
        cfg_.pool_begin + info.index * cfg_.block_size);
    info.end = static_cast<std::uint16_t>(info.begin + cfg_.block_size - 1);
    return info;
}

DeviceProfile CgnEngine::make_profile(std::uint16_t begin,
                                      std::uint16_t end) const {
    DeviceProfile p;
    p.tag = "cgn";
    p.vendor = "carrier";
    p.model = "cgn";
    p.firmware = "rfc6888";
    p.udp = cfg_.udp;
    p.tcp_established_timeout = cfg_.tcp_established_timeout;
    p.tcp_transitory_timeout = cfg_.tcp_transitory_timeout;
    p.tcp_fin_linger = cfg_.tcp_fin_linger;
    const int span = end - begin + 1;
    const int cap = cfg_.max_bindings > 0 ? cfg_.max_bindings : span;
    p.max_tcp_bindings = cap;
    p.max_udp_bindings = cap;
    // Preserving the subscriber's source port is impossible — it lies
    // outside the assigned block — so EIM is paired pooling (RFC 6888
    // APP) and EDM is a fresh sequential port per flow.
    p.port_allocation = cfg_.eim ? PortAllocation::ReusePooled
                                 : PortAllocation::Sequential;
    p.port_quarantine = sim::Duration{0};
    p.pool_begin = begin;
    p.pool_end = end;
    p.icmp_tcp = IcmpTranslationSet::all();
    p.icmp_udp = IcmpTranslationSet::all();
    p.hairpin = cfg_.hairpin;
    p.decrement_ttl = true;
    GK_EXPECTS(p.validate().empty());
    return p;
}

CgnEngine::Slice* CgnEngine::slice_for_subscriber(net::Ipv4Addr src) {
    if (cfg_.block_size == 0) {
        auto& s = blocks_[0];
        if (!s)
            s = std::make_unique<Slice>(
                loop_, net::Ipv4Addr{}, -1,
                make_profile(cfg_.pool_begin, cfg_.pool_end));
        return s.get();
    }
    const auto info = block_of(src);
    auto& s = blocks_[static_cast<std::size_t>(info->index)];
    if (!s) {
        s = std::make_unique<Slice>(loop_, src, info->index,
                                    make_profile(info->begin, info->end));
        return s.get();
    }
    if (s->owner != src) {
        // Deterministic NAT refusal: the block is statically someone
        // else's. An over-subscribed modulus surfaces as exhaustion for
        // the colliding address, never as port leakage across blocks.
        ++stats_.block_collisions;
        return nullptr;
    }
    return s.get();
}

CgnEngine::Slice* CgnEngine::slice_for_port(std::uint16_t external_port) {
    if (external_port < cfg_.pool_begin || external_port > cfg_.pool_end)
        return nullptr;
    if (cfg_.block_size == 0) return blocks_[0].get();
    const auto idx = static_cast<std::size_t>(
        (external_port - cfg_.pool_begin) / cfg_.block_size);
    // Remainder ports past the last full block are never allocated.
    if (idx >= blocks_.size()) return nullptr;
    return blocks_[idx].get();
}

void CgnEngine::refresh_udp(Slice& s, Binding& b, bool inbound_packet) {
    sim::Duration d = cfg_.udp.initial;
    if (inbound_packet)
        d = cfg_.udp.inbound_refresh;
    else if (b.confirmed)
        d = cfg_.udp.outbound_refresh;
    s.udp.refresh(b, d);
}

void CgnEngine::refresh_tcp(Slice& s, Binding& b) {
    s.tcp.refresh(b, b.established ? cfg_.tcp_established_timeout
                                   : cfg_.tcp_transitory_timeout);
}

std::optional<net::Bytes> CgnEngine::outbound(const net::Ipv4Packet& pkt) {
    GK_EXPECTS(configured());
    if (pkt.h.ttl <= 1) return std::nullopt; // caller emits Time Exceeded
    if (!on_access_subnet(pkt.h.src)) {
        ++stats_.dropped_policy;
        return std::nullopt;
    }
    switch (pkt.h.protocol) {
    case net::proto::kUdp:
    case net::proto::kTcp:
        return outbound_l4(pkt);
    case net::proto::kIcmp:
        return outbound_icmp(pkt);
    default:
        // RFC 6888 scopes a CGN to the transports it can multiplex;
        // anything else cannot share the external address and is dropped.
        ++stats_.dropped_policy;
        return std::nullopt;
    }
}

std::optional<net::Bytes> CgnEngine::outbound_l4(const net::Ipv4Packet& pkt) {
    const bool udp = pkt.h.protocol == net::proto::kUdp;
    net::UdpDatagram dgram;
    net::TcpSegment seg;
    std::uint16_t sport = 0;
    std::uint16_t dport = 0;
    try {
        if (udp) {
            dgram = net::UdpDatagram::parse(pkt.payload, pkt.h.src,
                                            pkt.h.dst);
            sport = dgram.src_port;
            dport = dgram.dst_port;
        } else {
            seg = net::TcpSegment::parse(pkt.payload, pkt.h.src, pkt.h.dst);
            sport = seg.src_port;
            dport = seg.dst_port;
        }
    } catch (const net::ParseError&) {
        return std::nullopt;
    }

    Slice* s = slice_for_subscriber(pkt.h.src);
    if (s == nullptr) return std::nullopt; // block collision (counted)
    BindingTable& table = udp ? s->udp : s->tcp;
    const FlowKey key{pkt.h.protocol,
                      {pkt.h.src, sport},
                      {pkt.h.dst, dport}};
    Binding* b = table.find_or_create_outbound(key);
    if (b == nullptr) {
        ++stats_.pool_exhausted;
        return std::nullopt;
    }

    net::Ipv4Packet out;
    out.h = pkt.h;
    out.h.src = external_addr_;
    out.h.ttl = static_cast<std::uint8_t>(pkt.h.ttl - 1);

    if (udp) {
        ++b->packets_out;
        if (cfg_.udp.outbound_refreshes || b->packets_out == 1)
            refresh_udp(*s, *b, false);
        dgram.src_port = b->external_port;
        out.payload = dgram.serialize(out.h.src, out.h.dst);
        ++stats_.translated_out;
        return out.serialize();
    }

    if (seg.flags.syn && !seg.flags.ack)
        table.set_expiry(*b, loop_.now() + cfg_.tcp_transitory_timeout);
    ++b->packets_out;
    if (b->packets_in > 0 && !seg.flags.syn) b->established = true;
    refresh_tcp(*s, *b);
    if (seg.flags.fin) b->fin_out = true;
    seg.src_port = b->external_port;
    out.payload = seg.serialize(out.h.src, out.h.dst);
    auto bytes = out.serialize();
    if (seg.flags.rst) {
        table.remove(key); // b invalid past this point
    } else if (b->fin_in && b->fin_out) {
        table.set_expiry(*b, loop_.now() + cfg_.tcp_fin_linger);
    }
    ++stats_.translated_out;
    return bytes;
}

std::optional<net::Bytes> CgnEngine::outbound_icmp(
    const net::Ipv4Packet& pkt) {
    net::IcmpMessage msg;
    try {
        msg = net::IcmpMessage::parse(pkt.payload);
    } catch (const net::ParseError&) {
        return std::nullopt;
    }

    net::Ipv4Packet out;
    out.h = pkt.h;
    out.h.src = external_addr_;
    out.h.ttl = static_cast<std::uint8_t>(pkt.h.ttl - 1);

    if (msg.type == net::IcmpType::Echo) {
        const QueryKey key{pkt.h.src, msg.echo_id(), pkt.h.dst};
        if (!icmp_queries_.contains(key) &&
            icmp_queries_.size() >= kMaxIcmpQueries) {
            for (auto it = icmp_queries_.begin();
                 it != icmp_queries_.end();) {
                if (loop_.now() >= it->second)
                    it = icmp_queries_.erase(it);
                else
                    ++it;
            }
            if (icmp_queries_.size() >= kMaxIcmpQueries) {
                ++stats_.dropped_policy;
                return std::nullopt;
            }
        }
        icmp_queries_[key] = loop_.now() + kIcmpQueryTimeout;
        out.payload = pkt.payload; // id preserved
        ++stats_.translated_out;
        return out.serialize();
    }

    if (msg.is_error()) {
        // A subscriber-originated error (a home gateway's Time Exceeded,
        // a port unreachable) quotes the inbound packet as the subscriber
        // saw it: destination = subscriber address and internal port.
        // Rewrite that half to the external view so the upstream sender
        // can attribute the error to its own flow through both layers.
        net::Bytes quoted = msg.payload;
        net::Ipv4Packet embedded;
        bool parsed = true;
        try {
            embedded = net::Ipv4Packet::parse_prefix(msg.payload);
        } catch (const net::ParseError&) {
            parsed = false;
        }
        if (parsed && embedded.h.frag_offset == 0 &&
            (embedded.h.protocol == net::proto::kUdp ||
             embedded.h.protocol == net::proto::kTcp) &&
            embedded.payload.size() >= 4 &&
            on_access_subnet(embedded.h.dst)) {
            const auto remote_port = static_cast<std::uint16_t>(
                (embedded.payload[0] << 8) | embedded.payload[1]);
            const auto int_port = static_cast<std::uint16_t>(
                (embedded.payload[2] << 8) | embedded.payload[3]);
            if (Slice* s = slice_for_subscriber(embedded.h.dst)) {
                BindingTable& table =
                    embedded.h.protocol == net::proto::kUdp ? s->udp
                                                            : s->tcp;
                const FlowKey key{embedded.h.protocol,
                                  {embedded.h.dst, int_port},
                                  {embedded.h.src, remote_port}};
                if (const Binding* b = table.find_outbound(key))
                    rewrite_quote(quoted, /*src_side=*/false,
                                  external_addr_, b->external_port, true);
            }
        } else if (parsed && embedded.h.frag_offset == 0 &&
                   embedded.h.protocol == net::proto::kIcmp &&
                   on_access_subnet(embedded.h.dst)) {
            // Error about an inbound echo reply: the quote's destination
            // is the subscriber that sent the query; only the address
            // needs the external view (the query id is preserved).
            rewrite_quote(quoted, /*src_side=*/false, external_addr_, 0,
                          false);
        }
        net::IcmpMessage fwd = msg;
        fwd.payload = std::move(quoted);
        out.payload = fwd.serialize(); // outer ICMP checksum recomputed
        ++stats_.icmp_relayed;
        return out.serialize();
    }

    // Remaining query types cross with outer translation only.
    out.payload = pkt.payload;
    ++stats_.translated_out;
    return out.serialize();
}

std::optional<net::Bytes> CgnEngine::inbound(const net::Ipv4Packet& pkt,
                                             bool& handled) {
    GK_EXPECTS(configured());
    handled = false;
    if (pkt.h.dst != external_addr_) return std::nullopt;
    switch (pkt.h.protocol) {
    case net::proto::kUdp:
    case net::proto::kTcp:
        return inbound_l4(pkt, handled);
    case net::proto::kIcmp:
        return inbound_icmp(pkt, handled);
    default:
        return std::nullopt; // CGN-host local (none expected)
    }
}

std::optional<net::Bytes> CgnEngine::inbound_l4(const net::Ipv4Packet& pkt,
                                                bool& handled) {
    const bool udp = pkt.h.protocol == net::proto::kUdp;
    net::UdpDatagram dgram;
    net::TcpSegment seg;
    std::uint16_t sport = 0;
    std::uint16_t dport = 0;
    try {
        if (udp) {
            dgram = net::UdpDatagram::parse(pkt.payload, pkt.h.src,
                                            pkt.h.dst);
            sport = dgram.src_port;
            dport = dgram.dst_port;
        } else {
            seg = net::TcpSegment::parse(pkt.payload, pkt.h.src, pkt.h.dst);
            sport = seg.src_port;
            dport = seg.dst_port;
        }
    } catch (const net::ParseError&) {
        return std::nullopt;
    }

    Slice* s = slice_for_port(dport);
    if (s == nullptr) return std::nullopt; // outside the pool: host-local
    BindingTable& table = udp ? s->udp : s->tcp;
    Binding* b = table.find_inbound(dport, {pkt.h.src, sport});
    if (b == nullptr) {
        ++stats_.dropped_no_binding;
        return std::nullopt; // unsolicited: falls to the CGN's own stack
    }
    handled = true;
    ++b->packets_in;

    net::Ipv4Packet out;
    out.h = pkt.h;
    out.h.dst = b->key.internal.addr;
    out.h.ttl = static_cast<std::uint8_t>(pkt.h.ttl - 1);

    if (udp) {
        const bool first_inbound = !b->confirmed;
        b->confirmed = true;
        if (cfg_.udp.inbound_refreshes || first_inbound)
            refresh_udp(*s, *b, true);
        dgram.dst_port = b->key.internal.port;
        out.payload = dgram.serialize(out.h.src, out.h.dst);
        ++stats_.translated_in;
        return out.serialize();
    }

    if (b->packets_out > 1 && !seg.flags.syn) b->established = true;
    refresh_tcp(*s, *b);
    if (seg.flags.fin) b->fin_in = true;
    seg.dst_port = b->key.internal.port;
    out.payload = seg.serialize(out.h.src, out.h.dst);
    const auto bytes = out.serialize();
    if (seg.flags.rst) {
        table.remove(b->key); // b invalid past this point
    } else if (b->fin_in && b->fin_out) {
        table.set_expiry(*b, loop_.now() + cfg_.tcp_fin_linger);
    }
    ++stats_.translated_in;
    return bytes;
}

std::optional<net::Bytes> CgnEngine::inbound_icmp(const net::Ipv4Packet& pkt,
                                                  bool& handled) {
    net::IcmpMessage msg;
    try {
        msg = net::IcmpMessage::parse(pkt.payload);
    } catch (const net::ParseError&) {
        return std::nullopt;
    }

    if (msg.type == net::IcmpType::EchoReply) {
        for (auto it = icmp_queries_.begin(); it != icmp_queries_.end();) {
            if (loop_.now() >= it->second) {
                it = icmp_queries_.erase(it);
                continue;
            }
            if (it->first.id == msg.echo_id() &&
                it->first.remote == pkt.h.src) {
                handled = true;
                net::Ipv4Packet out;
                out.h = pkt.h;
                out.h.dst = it->first.internal;
                out.h.ttl = static_cast<std::uint8_t>(pkt.h.ttl - 1);
                out.payload = pkt.payload;
                ++stats_.translated_in;
                return out.serialize();
            }
            ++it;
        }
        return std::nullopt; // the CGN's own ping, if any
    }

    if (!msg.is_error()) return std::nullopt;

    net::Ipv4Packet embedded;
    try {
        embedded = net::Ipv4Packet::parse_prefix(msg.payload);
    } catch (const net::ParseError&) {
        return std::nullopt;
    }
    if (embedded.h.src != external_addr_) return std::nullopt; // not ours
    if (embedded.h.frag_offset != 0) {
        // Unattributable: the bytes where ports would sit are mid-stream
        // payload.
        handled = true;
        ++stats_.icmp_dropped;
        return std::nullopt;
    }

    if (embedded.h.protocol == net::proto::kIcmp) {
        if (embedded.payload.size() < 8) return std::nullopt;
        const auto id = static_cast<std::uint16_t>(
            (embedded.payload[4] << 8) | embedded.payload[5]);
        for (const auto& [key, expires] : icmp_queries_) {
            if (key.id != id || key.remote != embedded.h.dst) continue;
            handled = true;
            net::Bytes quoted = msg.payload;
            rewrite_quote(quoted, /*src_side=*/true, key.internal, 0,
                          false);
            net::IcmpMessage fwd = msg;
            fwd.payload = std::move(quoted);
            net::Ipv4Packet out;
            out.h = pkt.h;
            out.h.dst = key.internal;
            out.h.ttl = static_cast<std::uint8_t>(pkt.h.ttl - 1);
            out.payload = fwd.serialize();
            ++stats_.icmp_relayed;
            return out.serialize();
        }
        return std::nullopt;
    }

    if (embedded.h.protocol != net::proto::kUdp &&
        embedded.h.protocol != net::proto::kTcp)
        return std::nullopt;
    if (embedded.payload.size() < 4) return std::nullopt;

    const auto ext_port = static_cast<std::uint16_t>(
        (embedded.payload[0] << 8) | embedded.payload[1]);
    const auto remote_port = static_cast<std::uint16_t>(
        (embedded.payload[2] << 8) | embedded.payload[3]);
    Slice* s = slice_for_port(ext_port);
    if (s == nullptr) return std::nullopt;
    BindingTable& table =
        embedded.h.protocol == net::proto::kUdp ? s->udp : s->tcp;
    Binding* b = table.find_inbound(ext_port, {embedded.h.dst, remote_port});
    if (b == nullptr) return std::nullopt;
    handled = true;

    net::Bytes quoted = msg.payload;
    rewrite_quote(quoted, /*src_side=*/true, b->key.internal.addr,
                  b->key.internal.port, true);
    net::IcmpMessage fwd = msg;
    fwd.payload = std::move(quoted);
    net::Ipv4Packet out;
    out.h = pkt.h;
    out.h.dst = b->key.internal.addr;
    out.h.ttl = static_cast<std::uint8_t>(pkt.h.ttl - 1);
    out.payload = fwd.serialize();
    ++stats_.icmp_relayed;
    return out.serialize();
}

std::optional<net::Bytes> CgnEngine::hairpin(const net::Ipv4Packet& pkt) {
    GK_EXPECTS(configured());
    if (!cfg_.hairpin || pkt.h.protocol != net::proto::kUdp)
        return std::nullopt;
    net::UdpDatagram dgram;
    try {
        dgram = net::UdpDatagram::parse(pkt.payload, pkt.h.src, pkt.h.dst);
    } catch (const net::ParseError&) {
        return std::nullopt;
    }
    Slice* ts = slice_for_port(dgram.dst_port);
    Binding* target =
        ts != nullptr ? ts->udp.find_by_external(dgram.dst_port) : nullptr;
    if (target == nullptr) return std::nullopt;

    Slice* ss = slice_for_subscriber(pkt.h.src);
    if (ss == nullptr) return std::nullopt;
    const FlowKey key{net::proto::kUdp,
                      {pkt.h.src, dgram.src_port},
                      {external_addr_, dgram.dst_port}};
    Binding* sender = ss->udp.find_or_create_outbound(key);
    if (sender == nullptr) {
        ++stats_.pool_exhausted;
        return std::nullopt;
    }
    ++sender->packets_out;
    refresh_udp(*ss, *sender, false);

    net::Ipv4Packet out;
    out.h = pkt.h;
    out.h.src = external_addr_;
    out.h.dst = target->key.internal.addr;
    out.h.ttl = static_cast<std::uint8_t>(pkt.h.ttl - 1);
    dgram.src_port = sender->external_port;
    dgram.dst_port = target->key.internal.port;
    out.payload = dgram.serialize(out.h.src, out.h.dst);
    ++stats_.hairpinned;
    return out.serialize();
}

std::size_t CgnEngine::live_bindings(net::Ipv4Addr subscriber) {
    GK_EXPECTS(configured());
    if (cfg_.block_size == 0) {
        // Shared pool: per-subscriber attribution would need a table
        // walk; report the pool-wide total (what exhaustion is felt
        // against).
        auto* s = blocks_[0].get();
        return s == nullptr ? 0 : s->udp.size() + s->tcp.size();
    }
    const auto info = block_of(subscriber);
    auto* s = blocks_[static_cast<std::size_t>(info->index)].get();
    if (s == nullptr || s->owner != subscriber) return 0;
    return s->udp.size() + s->tcp.size();
}

void CgnEngine::flush() {
    for (auto& s : blocks_) {
        if (!s) continue;
        s->udp.clear();
        s->tcp.clear();
    }
    icmp_queries_.clear();
}

CgnGateway::CgnGateway(sim::EventLoop& loop, Config config)
    : loop_(loop), config_(std::move(config)),
      host_(loop, "cgn", net::MacAddr::from_index(config_.mac_index)),
      wan_nic_(host_.add_nic(
          net::MacAddr::from_index(config_.mac_index + 1))),
      access_if_(host_.add_iface()), wan_if_(host_.add_iface_on(wan_nic_)),
      engine_(loop, config_.cgn) {
    access_if_.configure(config_.access_addr, config_.access_prefix_len);
    host_.add_route(config_.access_addr, config_.access_prefix_len,
                    access_if_);

    host_.set_forward_hook([this](stack::Iface& in,
                                  const net::Ipv4Packet& pkt,
                                  std::span<const std::uint8_t>) {
        // WAN-side packets for non-local destinations are not ours: a
        // CGN translates toward its external address, it does not
        // transit-route.
        if (&in == &access_if_) on_access_ip(pkt);
    });
    host_.set_local_intercept([this](stack::Iface& in,
                                     const net::Ipv4Packet& pkt,
                                     std::span<const std::uint8_t>) {
        if (!engine_.configured()) return false;
        if (&in == &wan_if_) return on_wan_local(pkt);
        if (&in == &access_if_ && pkt.h.dst == engine_.external_addr()) {
            // Subscriber traffic addressed to the shared external
            // address: hairpin candidate (RFC 6888 REQ-9).
            if (pkt.h.ttl <= 1) {
                ttl_expired(pkt);
                return true;
            }
            auto out = engine_.hairpin(pkt);
            if (!out) return false; // e.g. pinging the external address
            const auto dst = net::ipv4_dst(*out);
            emit(std::move(*out), dst);
            return true;
        }
        return false;
    });
}

void CgnGateway::connect_access(sim::Link& link, sim::Link::Side side) {
    host_.nic().connect(link, side);
}

void CgnGateway::connect_wan(sim::Link& link, sim::Link::Side side) {
    wan_nic_.connect(link, side);
}

void CgnGateway::start(std::function<void(net::Ipv4Addr)> on_ready) {
    on_ready_ = std::move(on_ready);
    wan_dhcp_ = std::make_unique<stack::DhcpClient>(host_, wan_if_);
    wan_dhcp_->start([this](const stack::DhcpLease& lease) {
        host_.add_route(lease.addr, lease.prefix_len, wan_if_);
        if (!lease.router.is_unspecified()) {
            host_.add_route(net::Ipv4Addr::any(), 0, wan_if_, lease.router);
            wan_if_.set_gateway(lease.router);
        }
        engine_.set_addresses(config_.access_addr,
                              config_.access_prefix_len, lease.addr);

        // The access side comes up once the external address is known:
        // the CGN is the access network's DHCP server and router, and
        // passes the ISP's resolver through (no DNS proxy of its own —
        // subscriber gateways already proxy for their LANs).
        stack::DhcpServerConfig acc;
        acc.pool_base = config_.access_pool_base;
        acc.prefix_len = config_.access_prefix_len;
        acc.router = config_.access_addr;
        acc.dns_server = lease.dns_server;
        access_dhcp_ =
            std::make_unique<stack::DhcpServer>(host_, access_if_, acc);
        if (on_ready_) on_ready_(lease.addr);
    });
}

void CgnGateway::on_access_ip(const net::Ipv4Packet& pkt) {
    if (!engine_.configured()) return;
    // Forwarding-path TTL check precedes translation (Linux order), so
    // the Time Exceeded quote embeds the pristine received packet.
    if (pkt.h.ttl <= 1) {
        ttl_expired(pkt);
        return;
    }
    const auto dst = pkt.h.dst;
    auto out = engine_.outbound(pkt);
    if (!out) return;
    emit(std::move(*out), dst);
}

bool CgnGateway::on_wan_local(const net::Ipv4Packet& pkt) {
    bool handled = false;
    auto out = engine_.inbound(pkt, handled);
    if (!handled) return false; // CGN-host local (DHCP toward the ISP)
    // Only a packet the engine attributes to a subscriber flow is a
    // forwarding event; its TTL expiring here draws a Time Exceeded.
    if (out && pkt.h.ttl <= 1) {
        ttl_expired(pkt);
        return true;
    }
    if (out) {
        const auto dst = net::ipv4_dst(*out);
        emit(std::move(*out), dst);
    }
    return true;
}

void CgnGateway::emit(net::Bytes datagram, net::Ipv4Addr dst) {
    const stack::Route* route = host_.lookup_route(dst);
    if (route == nullptr) return;
    host_.send_raw(*route->iface, std::move(datagram),
                   route->via ? *route->via : dst);
}

void CgnGateway::ttl_expired(const net::Ipv4Packet& pkt) {
    if (pkt.h.src.is_unspecified() || pkt.h.src.is_broadcast()) return;
    const auto original = pkt.serialize();
    const auto err = net::IcmpMessage::make_error(
        net::IcmpType::TimeExceeded, net::icmp_code::kTtlExceeded, 0,
        original);
    host_.send_icmp(net::Ipv4Addr::any(), pkt.h.src, err);
}

} // namespace gatekit::gateway
