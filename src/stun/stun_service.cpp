#include "stun/stun_service.hpp"

#include <memory>

#include "stack/host.hpp"
#include "stack/udp_socket.hpp"
#include "util/assert.hpp"

namespace gatekit::stun {

const char* to_string(Mapping m) {
    switch (m) {
    case Mapping::NoNat:
        return "no NAT";
    case Mapping::EndpointIndependent:
        return "endpoint-independent";
    case Mapping::AddressDependent:
        return "address-dependent";
    case Mapping::Blocked:
        return "blocked";
    }
    return "?";
}

StunServer::StunServer(stack::Host& host, std::uint16_t port) : host_(host) {
    sock_ = &host_.udp_open(net::Ipv4Addr::any(), port);
    sock_->set_receive_handler([this](net::Endpoint src,
                                      std::span<const std::uint8_t> payload,
                                      const net::Ipv4Packet&) {
        Message request;
        try {
            request = Message::parse(payload);
        } catch (const net::ParseError&) {
            return;
        }
        if (request.type != MessageType::BindingRequest) return;
        Message response;
        response.type = MessageType::BindingResponse;
        response.transaction = request.transaction;
        response.xor_mapped = src;
        sock_->send_to(src, response.serialize());
        ++served_;
    });
}

StunServer::~StunServer() {
    if (sock_ != nullptr) host_.udp_close(*sock_);
}

namespace {

/// State for one query with retransmissions.
struct Pending {
    stack::Host& host;
    stack::UdpSocket& sock;
    StunClient::Handler handler;
    TransactionId txn;
    sim::EventId timer;
    bool done = false;
    int tries_left;
};

} // namespace

void StunClient::query(net::Ipv4Addr local_addr, net::Endpoint server,
                       Handler h, int retries, sim::Duration timeout) {
    auto& sock = host_.udp_open(local_addr, 0);
    const auto txn = TransactionId::from_seed(next_txn_++);
    auto st = std::make_shared<Pending>(
        Pending{host_, sock, std::move(h), txn, {}, false, retries});
    const auto local_port = sock.local().port;

    auto finish = [st, local_port](StunResult r) {
        if (st->done) return;
        st->done = true;
        if (st->timer) st->host.loop().cancel(st->timer);
        st->host.udp_close(st->sock);
        if (r.ok) r.port_preserved = r.reflexive.port == local_port;
        st->handler(r);
    };

    sock.set_receive_handler([finish, txn](net::Endpoint,
                                           std::span<const std::uint8_t> pl,
                                           const net::Ipv4Packet&) {
        Message resp;
        try {
            resp = Message::parse(pl);
        } catch (const net::ParseError&) {
            return;
        }
        if (resp.transaction != txn) return;
        if (resp.type != MessageType::BindingResponse || !resp.xor_mapped) {
            finish(StunResult{false, {}, {}, Mapping::Blocked, false,
                              "error response"});
            return;
        }
        StunResult r;
        r.ok = true;
        r.reflexive = *resp.xor_mapped;
        finish(r);
    });

    Message request;
    request.type = MessageType::BindingRequest;
    request.transaction = txn;
    const auto wire = request.serialize();

    auto send_round = std::make_shared<std::function<void()>>();
    *send_round = [st, finish, server, wire, timeout, send_round] {
        if (st->done) return;
        st->sock.send_to(server, wire);
        st->timer = st->host.loop().after(timeout, [st, finish,
                                                    send_round] {
            if (st->done) return;
            if (st->tries_left-- > 0) {
                (*send_round)();
            } else {
                finish(StunResult{false, {}, {}, Mapping::Blocked, false,
                                  "timeout"});
            }
        });
    };
    (*send_round)();
}

void StunClient::discover(net::Ipv4Addr local_addr, net::Endpoint server_a,
                          net::Endpoint server_b, Handler h) {
    // Mapping discovery must reuse ONE local socket toward two servers;
    // run both queries over a single shared socket.
    auto& sock = host_.udp_open(local_addr, 0);
    const auto local_port = sock.local().port;
    struct Discovery {
        stack::Host& host;
        stack::UdpSocket& sock;
        StunClient::Handler handler;
        TransactionId txn_a, txn_b;
        std::optional<net::Endpoint> refl_a, refl_b;
        sim::EventId deadline;
        bool done = false;
    };
    auto st = std::make_shared<Discovery>(Discovery{
        host_, sock, std::move(h), TransactionId::from_seed(next_txn_++),
        TransactionId::from_seed(next_txn_++), {}, {}, {}, false});

    auto finish = [st, local_addr, local_port] {
        if (st->done) return;
        st->done = true;
        if (st->deadline) st->host.loop().cancel(st->deadline);
        st->host.udp_close(st->sock);
        StunResult r;
        if (!st->refl_a && !st->refl_b) {
            r.mapping = Mapping::Blocked;
            r.error = "no responses";
        } else if (st->refl_a && st->refl_b) {
            r.ok = true;
            r.reflexive = *st->refl_a;
            r.reflexive_alt = *st->refl_b;
            if (st->refl_a->addr == local_addr)
                r.mapping = Mapping::NoNat;
            else if (*st->refl_a == *st->refl_b)
                r.mapping = Mapping::EndpointIndependent;
            else
                r.mapping = Mapping::AddressDependent;
            r.port_preserved = st->refl_a->port == local_port;
        } else {
            // One server unreachable: report what we have.
            r.ok = true;
            r.reflexive = st->refl_a ? *st->refl_a : *st->refl_b;
            r.mapping = Mapping::EndpointIndependent;
            r.error = "partial (one server unreachable)";
            r.port_preserved = r.reflexive.port == local_port;
        }
        st->handler(r);
    };

    sock.set_receive_handler([st, finish](net::Endpoint,
                                          std::span<const std::uint8_t> pl,
                                          const net::Ipv4Packet&) {
        Message resp;
        try {
            resp = Message::parse(pl);
        } catch (const net::ParseError&) {
            return;
        }
        if (!resp.xor_mapped) return;
        if (resp.transaction == st->txn_a) st->refl_a = *resp.xor_mapped;
        if (resp.transaction == st->txn_b) st->refl_b = *resp.xor_mapped;
        if (st->refl_a && st->refl_b) finish();
    });

    for (auto [txn, server] :
         {std::pair{st->txn_a, server_a}, std::pair{st->txn_b, server_b}}) {
        Message request;
        request.type = MessageType::BindingRequest;
        request.transaction = txn;
        sock.send_to(server, request.serialize());
    }
    st->deadline =
        host_.loop().after(std::chrono::seconds(2), [finish] { finish(); });
}

} // namespace gatekit::stun
