// TURN-style relay (RFC 5766 subset): Allocate a relay address on the
// server; data for that relay address is wrapped in Data indications
// toward the allocating client, and the client's Send indications emerge
// from the relay address toward arbitrary peers. The paper lists "success
// rates of ... TURN" among its planned experiments; together with STUN
// this gives the harness a complete ICE-style connectivity ladder.
// (Simplifications vs RFC 5766: no authentication, no permissions, no
// lifetime refresh; allocations live for the test's duration.)
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "sim/event_loop.hpp"
#include "stun/stun.hpp"

namespace gatekit::stack {
class Host;
class Iface;
class UdpSocket;
} // namespace gatekit::stack

namespace gatekit::stun {

inline constexpr std::uint16_t kTurnPort = 3480;

class TurnServer {
public:
    /// `relay_addr` is the address relay sockets bind to (the server
    /// host's public address on the relevant network).
    TurnServer(stack::Host& host, net::Ipv4Addr relay_addr,
               std::uint16_t port = kTurnPort);
    ~TurnServer();

    TurnServer(const TurnServer&) = delete;
    TurnServer& operator=(const TurnServer&) = delete;

    std::size_t allocations() const { return allocations_.size(); }
    std::uint64_t relayed_packets() const { return relayed_; }

private:
    struct Allocation {
        net::Endpoint client;       ///< the allocating client (as seen)
        stack::UdpSocket* relay = nullptr;
    };

    void on_control(net::Endpoint src, std::span<const std::uint8_t> data);
    void handle_allocate(net::Endpoint src, const Message& request);
    void handle_send(net::Endpoint src, const Message& indication);

    stack::Host& host_;
    net::Ipv4Addr relay_addr_;
    stack::UdpSocket* control_ = nullptr;
    std::map<net::Endpoint, std::unique_ptr<Allocation>> allocations_;
    std::uint64_t relayed_ = 0;
};

/// Client side: allocate, then exchange datagrams through the relay.
class TurnClient {
public:
    /// (peer endpoint as reported by the relay, payload)
    using DataHandler =
        std::function<void(net::Endpoint, std::span<const std::uint8_t>)>;
    using AllocatedHandler = std::function<void(bool ok,
                                                net::Endpoint relayed)>;

    /// `iface` (optional) pins traffic to one interface, as hole-punching
    /// peers require.
    TurnClient(stack::Host& host, net::Ipv4Addr local_addr,
               net::Endpoint server, stack::Iface* iface = nullptr);
    ~TurnClient();

    TurnClient(const TurnClient&) = delete;
    TurnClient& operator=(const TurnClient&) = delete;

    /// Request a relay address. Retries, then reports failure.
    void allocate(AllocatedHandler h);

    /// Send a datagram to `peer` from the relay address.
    bool send(net::Endpoint peer, net::Bytes payload);

    void set_data_handler(DataHandler h) { on_data_ = std::move(h); }

    net::Endpoint relayed() const { return relayed_; }
    bool allocated() const { return allocated_; }

private:
    stack::Host& host_;
    net::Endpoint server_;
    stack::UdpSocket* sock_ = nullptr;
    TransactionId txn_;
    sim::EventId retry_;
    int tries_left_ = 3;
    bool allocated_ = false;
    net::Endpoint relayed_;
    AllocatedHandler on_allocated_;
    DataHandler on_data_;
};

} // namespace gatekit::stun
