// STUN (RFC 5389, binding-discovery subset). The paper's future-work list
// includes "measuring the success rates of STUN"; this module provides
// the wire format plus client/server endpoints so the harness can run
// that experiment against every device profile.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/addr.hpp"
#include "net/buffer.hpp"

namespace gatekit::stun {

inline constexpr std::uint32_t kMagicCookie = 0x2112A442;
inline constexpr std::uint16_t kDefaultPort = 3478;

enum class MessageType : std::uint16_t {
    BindingRequest = 0x0001,
    BindingResponse = 0x0101,
    BindingError = 0x0111,
    // TURN subset (RFC 5766 methods, simplified attributes):
    AllocateRequest = 0x0003,
    AllocateResponse = 0x0103,
    AllocateError = 0x0113,
    SendIndication = 0x0016,
    DataIndication = 0x0017,
};

namespace attr {
inline constexpr std::uint16_t kMappedAddress = 0x0001;
inline constexpr std::uint16_t kXorMappedAddress = 0x0020;
inline constexpr std::uint16_t kErrorCode = 0x0009;
// TURN attributes:
inline constexpr std::uint16_t kXorPeerAddress = 0x0012;
inline constexpr std::uint16_t kData = 0x0013;
inline constexpr std::uint16_t kXorRelayedAddress = 0x0016;
} // namespace attr

/// 96-bit transaction id.
struct TransactionId {
    std::array<std::uint8_t, 12> bytes{};

    static TransactionId from_seed(std::uint64_t seed);
    friend bool operator==(const TransactionId&, const TransactionId&) =
        default;
};

struct Message {
    MessageType type = MessageType::BindingRequest;
    TransactionId transaction;
    /// Reflexive transport address (responses).
    std::optional<net::Endpoint> xor_mapped;
    std::optional<net::Endpoint> mapped; ///< legacy MAPPED-ADDRESS
    // TURN attributes:
    std::optional<net::Endpoint> xor_relayed; ///< allocated relay address
    std::optional<net::Endpoint> xor_peer;    ///< Send/Data peer
    std::optional<net::Bytes> data;           ///< relayed payload

    net::Bytes serialize() const;
    static Message parse(std::span<const std::uint8_t> data);
};

} // namespace gatekit::stun
