// STUN server and client over Host UDP sockets. The client performs the
// RFC 5780-style mapping-behavior discovery the paper's future work
// calls for: query two distinct server addresses from one local socket
// and compare the reflexive candidates.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/event_loop.hpp"
#include "stun/stun.hpp"

namespace gatekit::stack {
class Host;
class Iface;
class UdpSocket;
} // namespace gatekit::stack

namespace gatekit::stun {

/// Answers Binding Requests with the observed source endpoint. One
/// instance can serve any number of local addresses (binds the wildcard).
class StunServer {
public:
    StunServer(stack::Host& host, std::uint16_t port = kDefaultPort);
    ~StunServer();

    StunServer(const StunServer&) = delete;
    StunServer& operator=(const StunServer&) = delete;

    std::uint64_t requests_served() const { return served_; }

private:
    stack::Host& host_;
    stack::UdpSocket* sock_ = nullptr;
    std::uint64_t served_ = 0;
};

/// NAT mapping behavior, in RFC 4787 terms, as discovered via STUN.
enum class Mapping {
    NoNat,               ///< reflexive address equals the local address
    EndpointIndependent, ///< same mapping toward different destinations
    AddressDependent,    ///< mapping changes with the destination
    Blocked,             ///< no response at all
};

const char* to_string(Mapping m);

struct StunResult {
    bool ok = false;
    net::Endpoint reflexive;       ///< from the first server
    net::Endpoint reflexive_alt;   ///< from the second server (if probed)
    Mapping mapping = Mapping::Blocked;
    bool port_preserved = false;   ///< reflexive port == local port
    std::string error;
};

class StunClient {
public:
    explicit StunClient(stack::Host& host) : host_(host) {}

    using Handler = std::function<void(const StunResult&)>;

    /// One Binding Request (with retransmissions) to `server`.
    void query(net::Ipv4Addr local_addr, net::Endpoint server, Handler h,
               int retries = 3,
               sim::Duration timeout = std::chrono::milliseconds(500));

    /// Full mapping discovery: query `server_a` and `server_b` from one
    /// socket and classify the NAT per RFC 4787.
    void discover(net::Ipv4Addr local_addr, net::Endpoint server_a,
                  net::Endpoint server_b, Handler h);

private:
    stack::Host& host_;
    std::uint64_t next_txn_ = 1;
};

} // namespace gatekit::stun
