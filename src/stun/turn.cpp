#include "stun/turn.hpp"

#include "stack/host.hpp"
#include "stack/udp_socket.hpp"
#include "util/assert.hpp"

namespace gatekit::stun {

TurnServer::TurnServer(stack::Host& host, net::Ipv4Addr relay_addr,
                       std::uint16_t port)
    : host_(host), relay_addr_(relay_addr) {
    control_ = &host_.udp_open(net::Ipv4Addr::any(), port);
    control_->set_receive_handler(
        [this](net::Endpoint src, std::span<const std::uint8_t> payload,
               const net::Ipv4Packet&) { on_control(src, payload); });
}

TurnServer::~TurnServer() {
    for (auto& [client, alloc] : allocations_)
        if (alloc->relay != nullptr) host_.udp_close(*alloc->relay);
    if (control_ != nullptr) host_.udp_close(*control_);
}

void TurnServer::on_control(net::Endpoint src,
                            std::span<const std::uint8_t> data) {
    Message msg;
    try {
        msg = Message::parse(data);
    } catch (const net::ParseError&) {
        return;
    }
    switch (msg.type) {
    case MessageType::AllocateRequest:
        handle_allocate(src, msg);
        break;
    case MessageType::SendIndication:
        handle_send(src, msg);
        break;
    default:
        break;
    }
}

void TurnServer::handle_allocate(net::Endpoint src, const Message& request) {
    auto it = allocations_.find(src);
    if (it == allocations_.end()) {
        auto alloc = std::make_unique<Allocation>();
        alloc->client = src;
        alloc->relay = &host_.udp_open(relay_addr_, 0);
        // Peer traffic arriving at the relay is wrapped in a Data
        // indication toward the allocating client.
        Allocation* raw = alloc.get();
        alloc->relay->set_receive_handler(
            [this, raw](net::Endpoint peer,
                        std::span<const std::uint8_t> payload,
                        const net::Ipv4Packet&) {
                Message ind;
                ind.type = MessageType::DataIndication;
                ind.xor_peer = peer;
                ind.data = net::Bytes(payload.begin(), payload.end());
                control_->send_to(raw->client, ind.serialize());
                ++relayed_;
            });
        it = allocations_.emplace(src, std::move(alloc)).first;
    }
    Message response;
    response.type = MessageType::AllocateResponse;
    response.transaction = request.transaction;
    response.xor_relayed = it->second->relay->local();
    response.xor_mapped = src;
    control_->send_to(src, response.serialize());
}

void TurnServer::handle_send(net::Endpoint src, const Message& indication) {
    if (!indication.xor_peer || !indication.data) return;
    auto it = allocations_.find(src);
    if (it == allocations_.end()) return;
    it->second->relay->send_to(*indication.xor_peer, *indication.data);
    ++relayed_;
}

TurnClient::TurnClient(stack::Host& host, net::Ipv4Addr local_addr,
                       net::Endpoint server, stack::Iface* iface)
    : host_(host), server_(server) {
    sock_ = &host_.udp_open(local_addr, 0, iface);
    sock_->set_receive_handler([this](net::Endpoint,
                                      std::span<const std::uint8_t> payload,
                                      const net::Ipv4Packet&) {
        Message msg;
        try {
            msg = Message::parse(payload);
        } catch (const net::ParseError&) {
            return;
        }
        if (msg.type == MessageType::AllocateResponse &&
            msg.transaction == txn_ && msg.xor_relayed) {
            if (allocated_) return; // duplicate response
            allocated_ = true;
            relayed_ = *msg.xor_relayed;
            if (retry_) host_.loop().cancel(retry_);
            if (on_allocated_) on_allocated_(true, relayed_);
            return;
        }
        if (msg.type == MessageType::DataIndication && msg.xor_peer &&
            msg.data && on_data_) {
            on_data_(*msg.xor_peer, *msg.data);
        }
    });
}

TurnClient::~TurnClient() {
    if (retry_) host_.loop().cancel(retry_);
    if (sock_ != nullptr) host_.udp_close(*sock_);
}

void TurnClient::allocate(AllocatedHandler h) {
    GK_EXPECTS(!allocated_);
    on_allocated_ = std::move(h);
    txn_ = TransactionId::from_seed(
        0x7451000000ULL + sock_->local().port);
    Message request;
    request.type = MessageType::AllocateRequest;
    request.transaction = txn_;
    const auto wire = request.serialize();

    // Simple retransmission schedule.
    std::function<void()> round = [this, wire]() {
        sock_->send_to(server_, wire);
        retry_ = host_.loop().after(std::chrono::milliseconds(500), [this,
                                                                     wire] {
            if (allocated_) return;
            if (--tries_left_ > 0) {
                sock_->send_to(server_, wire);
                // Re-arm by resending the same lambda chain.
                retry_ = host_.loop().after(std::chrono::milliseconds(500),
                                            [this] {
                                                if (!allocated_ &&
                                                    on_allocated_)
                                                    on_allocated_(false, {});
                                            });
            } else if (on_allocated_) {
                on_allocated_(false, {});
            }
        });
    };
    round();
}

bool TurnClient::send(net::Endpoint peer, net::Bytes payload) {
    if (!allocated_) return false;
    Message ind;
    ind.type = MessageType::SendIndication;
    ind.xor_peer = peer;
    ind.data = std::move(payload);
    return sock_->send_to(server_, ind.serialize());
}

} // namespace gatekit::stun
