#include "stun/stun.hpp"

#include "util/assert.hpp"

namespace gatekit::stun {

TransactionId TransactionId::from_seed(std::uint64_t seed) {
    TransactionId id;
    for (int i = 0; i < 12; ++i)
        id.bytes[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((seed * 0x9e3779b97f4a7c15ULL) >>
                                      ((i % 8) * 8));
    id.bytes[11] = static_cast<std::uint8_t>(seed);
    return id;
}

namespace {

void write_xor_address(net::BufferWriter& w, net::Endpoint ep,
                       const TransactionId&) {
    w.u8(0);    // reserved
    w.u8(0x01); // family: IPv4
    w.u16(static_cast<std::uint16_t>(ep.port ^ (kMagicCookie >> 16)));
    w.u32(ep.addr.value() ^ kMagicCookie);
}

net::Endpoint read_xor_address(net::BufferReader& r) {
    r.skip(1);
    if (r.u8() != 0x01) throw net::ParseError("STUN: not IPv4");
    const auto xport = r.u16();
    const auto xaddr = r.u32();
    return {net::Ipv4Addr{xaddr ^ kMagicCookie},
            static_cast<std::uint16_t>(xport ^ (kMagicCookie >> 16))};
}

} // namespace

net::Bytes Message::serialize() const {
    net::BufferWriter w(32);
    w.u16(static_cast<std::uint16_t>(type));
    w.u16(0); // length placeholder
    w.u32(kMagicCookie);
    w.bytes(transaction.bytes);
    if (xor_mapped) {
        w.u16(attr::kXorMappedAddress);
        w.u16(8);
        write_xor_address(w, *xor_mapped, transaction);
    }
    if (xor_relayed) {
        w.u16(attr::kXorRelayedAddress);
        w.u16(8);
        write_xor_address(w, *xor_relayed, transaction);
    }
    if (xor_peer) {
        w.u16(attr::kXorPeerAddress);
        w.u16(8);
        write_xor_address(w, *xor_peer, transaction);
    }
    if (data) {
        GK_EXPECTS(data->size() <= 0xffff);
        w.u16(attr::kData);
        w.u16(static_cast<std::uint16_t>(data->size()));
        w.bytes(*data);
        w.zeros((4 - data->size() % 4) % 4); // attribute padding
    }
    if (mapped) {
        w.u16(attr::kMappedAddress);
        w.u16(8);
        w.u8(0);
        w.u8(0x01);
        w.u16(mapped->port);
        w.u32(mapped->addr.value());
    }
    w.patch_u16(2, static_cast<std::uint16_t>(w.size() - 20));
    return w.take();
}

Message Message::parse(std::span<const std::uint8_t> data) {
    net::BufferReader r(data);
    Message m;
    const auto type = r.u16();
    switch (type) {
    case 0x0001:
    case 0x0101:
    case 0x0111:
    case 0x0003:
    case 0x0103:
    case 0x0113:
    case 0x0016:
    case 0x0017:
        break;
    default:
        throw net::ParseError("unknown STUN message type");
    }
    m.type = static_cast<MessageType>(type);
    const auto length = r.u16();
    if (r.u32() != kMagicCookie)
        throw net::ParseError("bad STUN magic cookie");
    auto txn = r.bytes(12);
    std::copy(txn.begin(), txn.end(), m.transaction.bytes.begin());
    if (length > r.remaining())
        throw net::ParseError("STUN length beyond packet");

    std::size_t consumed = 0;
    while (consumed + 4 <= length) {
        const auto attr_type = r.u16();
        const auto attr_len = r.u16();
        consumed += 4;
        if (attr_len > r.remaining())
            throw net::ParseError("STUN attribute beyond packet");
        net::BufferReader attr_r(r.bytes(attr_len));
        const auto padded = (attr_len + 3u) / 4u * 4u;
        r.skip(std::min<std::size_t>(padded - attr_len, r.remaining()));
        consumed += padded;
        switch (attr_type) {
        case attr::kXorMappedAddress:
            m.xor_mapped = read_xor_address(attr_r);
            break;
        case attr::kXorRelayedAddress:
            m.xor_relayed = read_xor_address(attr_r);
            break;
        case attr::kXorPeerAddress:
            m.xor_peer = read_xor_address(attr_r);
            break;
        case attr::kData: {
            auto body = attr_r.rest();
            m.data = net::Bytes(body.begin(), body.end());
            break;
        }
        case attr::kMappedAddress: {
            attr_r.skip(1);
            if (attr_r.u8() != 0x01)
                throw net::ParseError("STUN: not IPv4");
            const auto port = attr_r.u16();
            m.mapped = net::Endpoint{net::Ipv4Addr{attr_r.u32()}, port};
            break;
        }
        default:
            break; // comprehension-optional for this subset
        }
    }
    return m;
}

} // namespace gatekit::stun
