// Deterministic random source used across the simulator.
#pragma once

#include <cstdint>
#include <random>

namespace gatekit {

/// Seeded pseudo-random generator. Every component that needs randomness
/// takes an Rng& so runs are reproducible from a single seed.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x67617465'6b697421ULL) : eng_(seed) {}

    /// Uniform integer in [lo, hi] (inclusive).
    std::uint32_t uniform(std::uint32_t lo, std::uint32_t hi) {
        return std::uniform_int_distribution<std::uint32_t>(lo, hi)(eng_);
    }

    /// Uniform double in [0, 1).
    double uniform01() {
        return std::uniform_real_distribution<double>(0.0, 1.0)(eng_);
    }

    std::uint64_t next_u64() { return eng_(); }

    std::mt19937_64& engine() { return eng_; }

private:
    std::mt19937_64 eng_;
};

} // namespace gatekit
