// Deterministic random source used across the simulator.
#pragma once

#include <cstdint>
#include <random>

namespace gatekit {

/// Seeded pseudo-random generator. Every component that needs randomness
/// takes an Rng& so runs are reproducible from a single seed.
///
/// The generator counts its raw engine draws, so its exact state is the
/// compact pair (seed, draws): `restore()` reseeds and fast-forwards with
/// `discard`, landing on bit-identical output. The campaign journal
/// records impairment RNGs this way — two integers per direction instead
/// of the ~6 KB textual mt19937_64 state — and a resumed run replays the
/// uninterrupted run's draw sequence exactly. For the count to be exact,
/// Rng itself is the UniformRandomBitGenerator handed to distributions;
/// the raw engine is deliberately not exposed.
class Rng {
public:
    using result_type = std::mt19937_64::result_type;

    explicit Rng(std::uint64_t seed = 0x67617465'6b697421ULL)
        : eng_(seed), seed_(seed) {}

    static constexpr result_type min() { return std::mt19937_64::min(); }
    static constexpr result_type max() { return std::mt19937_64::max(); }

    /// One raw engine draw (UniformRandomBitGenerator requirement).
    result_type operator()() {
        ++draws_;
        return eng_();
    }

    /// Uniform integer in [lo, hi] (inclusive).
    std::uint32_t uniform(std::uint32_t lo, std::uint32_t hi) {
        return std::uniform_int_distribution<std::uint32_t>(lo, hi)(*this);
    }

    /// Uniform double in [0, 1).
    double uniform01() {
        return std::uniform_real_distribution<double>(0.0, 1.0)(*this);
    }

    std::uint64_t next_u64() { return (*this)(); }

    /// The seed this generator was (re)started from.
    std::uint64_t seed() const { return seed_; }
    /// Raw engine draws consumed since that seed.
    std::uint64_t draws() const { return draws_; }

    /// Rewind to `seed`, then fast-forward exactly `draws` raw draws.
    /// After restore(s, d) the generator's future output is bit-identical
    /// to a generator seeded with s that already produced d draws.
    void restore(std::uint64_t seed, std::uint64_t draws) {
        eng_.seed(seed);
        eng_.discard(draws);
        seed_ = seed;
        draws_ = draws;
    }

private:
    std::mt19937_64 eng_;
    std::uint64_t seed_;
    std::uint64_t draws_ = 0;
};

} // namespace gatekit
