// Lightweight contract checks (Core Guidelines I.5/I.7 style).
#pragma once

#include <stdexcept>
#include <string>

namespace gatekit {

/// Thrown when a precondition or invariant check fails.
class ContractViolation : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
    throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                            file + ":" + std::to_string(line));
}

} // namespace gatekit

#define GK_EXPECTS(cond)                                                     \
    do {                                                                     \
        if (!(cond))                                                         \
            ::gatekit::contract_failure("precondition", #cond, __FILE__,     \
                                        __LINE__);                           \
    } while (false)

#define GK_ENSURES(cond)                                                     \
    do {                                                                     \
        if (!(cond))                                                         \
            ::gatekit::contract_failure("postcondition", #cond, __FILE__,    \
                                        __LINE__);                           \
    } while (false)

#define GK_ASSERT(cond)                                                      \
    do {                                                                     \
        if (!(cond))                                                         \
            ::gatekit::contract_failure("invariant", #cond, __FILE__,        \
                                        __LINE__);                           \
    } while (false)
