// Move-only callable wrapper with configurable inline storage. The event
// loop and forwarding path burn one of these per packet event; std::function
// spills any capture over two pointers to the heap, which at sub-100 ns per
// forward is the single largest cost. SmallFn keeps packet-sized captures
// (a frame buffer + an address + a couple of pointers) inline and falls back
// to the heap only for genuinely large closures, so every existing call
// site keeps compiling unchanged.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace gatekit::util {

template <typename Sig, std::size_t Inline = 48>
class SmallFn;

template <typename R, typename... Args, std::size_t Inline>
class SmallFn<R(Args...), Inline> {
public:
    SmallFn() = default;
    SmallFn(std::nullptr_t) {} // NOLINT(google-explicit-constructor)

    template <typename F>
        requires(!std::is_same_v<std::decay_t<F>, SmallFn> &&
                 std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
    SmallFn(F&& f) { // NOLINT(google-explicit-constructor)
        emplace(std::forward<F>(f));
    }

    SmallFn(SmallFn&& other) noexcept { move_from(other); }

    SmallFn& operator=(SmallFn&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    template <typename F>
        requires(!std::is_same_v<std::decay_t<F>, SmallFn> &&
                 std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
    SmallFn& operator=(F&& f) {
        reset();
        emplace(std::forward<F>(f));
        return *this;
    }

    SmallFn& operator=(std::nullptr_t) {
        reset();
        return *this;
    }

    SmallFn(const SmallFn&) = delete;
    SmallFn& operator=(const SmallFn&) = delete;

    ~SmallFn() { reset(); }

    R operator()(Args... args) {
        return invoke_(&storage_, std::forward<Args>(args)...);
    }

    /// Invoke and destroy through a single indirection, leaving *this
    /// empty — for one-shot callables (scheduled events fire exactly
    /// once). The callable is destroyed even if it throws.
    R consume(Args... args) {
        ConsumeFn c = consume_;
        invoke_ = nullptr;
        manage_ = nullptr;
        consume_ = nullptr;
        return c(&storage_, std::forward<Args>(args)...);
    }

    explicit operator bool() const { return invoke_ != nullptr; }
    friend bool operator==(const SmallFn& f, std::nullptr_t) {
        return f.invoke_ == nullptr;
    }

private:
    enum class Op { MoveTo, Destroy };

    using InvokeFn = R (*)(void*, Args&&...);
    using ManageFn = void (*)(void* self, void* dst, Op);
    using ConsumeFn = R (*)(void*, Args&&...);

    template <typename F>
    static constexpr bool fits_inline =
        sizeof(F) <= Inline && alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    template <typename F>
    struct InlineOps {
        static R invoke(void* p, Args&&... args) {
            return (*std::launder(static_cast<F*>(p)))(
                std::forward<Args>(args)...);
        }
        static void manage(void* self, void* dst, Op op) {
            F* f = std::launder(static_cast<F*>(self));
            if (op == Op::MoveTo) ::new (dst) F(std::move(*f));
            f->~F();
        }
        static R consume(void* p, Args&&... args) {
            F* f = std::launder(static_cast<F*>(p));
            struct Guard {
                F* f;
                ~Guard() { f->~F(); }
            } guard{f};
            return (*f)(std::forward<Args>(args)...);
        }
    };

    template <typename F>
    struct HeapOps {
        static R invoke(void* p, Args&&... args) {
            return (**static_cast<F**>(p))(std::forward<Args>(args)...);
        }
        static void manage(void* self, void* dst, Op op) {
            F** slot = static_cast<F**>(self);
            if (op == Op::MoveTo)
                *static_cast<F**>(dst) = *slot;
            else
                delete *slot;
        }
        static R consume(void* p, Args&&... args) {
            F* f = *static_cast<F**>(p);
            struct Guard {
                F* f;
                ~Guard() { delete f; }
            } guard{f};
            return (*f)(std::forward<Args>(args)...);
        }
    };

    template <typename F>
    void emplace(F&& f) {
        using D = std::decay_t<F>;
        if constexpr (fits_inline<D>) {
            ::new (&storage_) D(std::forward<F>(f));
            invoke_ = &InlineOps<D>::invoke;
            manage_ = &InlineOps<D>::manage;
            consume_ = &InlineOps<D>::consume;
        } else {
            ::new (&storage_) D*(new D(std::forward<F>(f)));
            invoke_ = &HeapOps<D>::invoke;
            manage_ = &HeapOps<D>::manage;
            consume_ = &HeapOps<D>::consume;
        }
    }

    void reset() {
        if (manage_ != nullptr) manage_(&storage_, nullptr, Op::Destroy);
        invoke_ = nullptr;
        manage_ = nullptr;
        consume_ = nullptr;
    }

    void move_from(SmallFn& other) noexcept {
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        consume_ = other.consume_;
        if (other.manage_ != nullptr)
            other.manage_(&other.storage_, &storage_, Op::MoveTo);
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
        other.consume_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char storage_[Inline];
    InvokeFn invoke_ = nullptr;
    ManageFn manage_ = nullptr;
    ConsumeFn consume_ = nullptr;
};

} // namespace gatekit::util
