#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace gatekit::stats {

namespace {

std::vector<double> sorted(std::span<const double> xs) {
    std::vector<double> v(xs.begin(), xs.end());
    std::sort(v.begin(), v.end());
    return v;
}

double percentile_sorted(const std::vector<double>& v, double p) {
    GK_EXPECTS(!v.empty());
    GK_EXPECTS(p >= 0.0 && p <= 100.0);
    if (v.size() == 1) return v.front();
    const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return v[lo] + (v[hi] - v[lo]) * frac;
}

} // namespace

double median(std::span<const double> xs) {
    return percentile(xs, 50.0);
}

double mean(std::span<const double> xs) {
    GK_EXPECTS(!xs.empty());
    double sum = 0.0;
    for (double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
}

double quartile_lo(std::span<const double> xs) { return percentile(xs, 25.0); }
double quartile_hi(std::span<const double> xs) { return percentile(xs, 75.0); }

double percentile(std::span<const double> xs, double p) {
    return percentile_sorted(sorted(xs), p);
}

Summary summarize(std::span<const double> xs) {
    GK_EXPECTS(!xs.empty());
    const auto v = sorted(xs);
    Summary s;
    s.n = v.size();
    s.min = v.front();
    s.max = v.back();
    s.median = percentile_sorted(v, 50.0);
    s.q1 = percentile_sorted(v, 25.0);
    s.q3 = percentile_sorted(v, 75.0);
    s.mean = mean(xs);
    return s;
}

} // namespace gatekit::stats
