// Order statistics used throughout the paper's result reporting:
// per-device medians with quartile error bars, and population median/mean.
#pragma once

#include <span>
#include <vector>

namespace gatekit::stats {

/// Median of a sample (average of the two middle elements for even sizes).
/// Precondition: non-empty.
double median(std::span<const double> xs);

/// Arithmetic mean. Precondition: non-empty.
double mean(std::span<const double> xs);

/// Lower quartile (25th percentile, linear interpolation, R-7 method).
double quartile_lo(std::span<const double> xs);

/// Upper quartile (75th percentile, linear interpolation, R-7 method).
double quartile_hi(std::span<const double> xs);

/// Arbitrary percentile p in [0,100] using the R-7 (linear interpolation)
/// definition used by numpy/Excel. Precondition: non-empty, 0 <= p <= 100.
double percentile(std::span<const double> xs, double p);

/// Summary of repeated measurements of one quantity.
struct Summary {
    double median = 0.0;
    double mean = 0.0;
    double q1 = 0.0; ///< lower quartile
    double q3 = 0.0; ///< upper quartile
    double min = 0.0;
    double max = 0.0;
    std::size_t n = 0;
};

/// Compute all summary statistics of a sample. Precondition: non-empty.
Summary summarize(std::span<const double> xs);

} // namespace gatekit::stats
