#include "l2/vlan_switch.hpp"

#include "util/assert.hpp"

namespace gatekit::l2 {

int VlanSwitch::add_access_port(std::uint16_t vlan) {
    GK_EXPECTS(vlan > 0 && vlan < 4096);
    const int index = static_cast<int>(ports_.size());
    ports_.push_back(std::make_unique<Port>(*this, index, false, vlan));
    return index;
}

int VlanSwitch::add_trunk_port() {
    const int index = static_cast<int>(ports_.size());
    ports_.push_back(std::make_unique<Port>(*this, index, true, 0));
    return index;
}

void VlanSwitch::connect(int port, sim::Link& link, sim::Link::Side side) {
    GK_EXPECTS(port >= 0 && static_cast<std::size_t>(port) < ports_.size());
    Port& p = *ports_[static_cast<std::size_t>(port)];
    p.out = sim::LinkEnd(link, side);
    link.attach(side, p);
}

void VlanSwitch::ingress(Port& port, sim::Frame raw) {
    net::EthernetFrame frame;
    try {
        frame = net::EthernetFrame::parse(raw);
    } catch (const net::ParseError&) {
        return;
    }

    std::uint16_t vlan = 0;
    if (port.trunk) {
        if (!frame.vlan_id) return; // untagged on trunk: drop
        vlan = *frame.vlan_id;
    } else {
        if (frame.vlan_id) return; // tagged on access port: drop
        vlan = port.access_vlan;
    }

    // Learn the source, then forward.
    if (!frame.src.is_multicast()) fdb_[{vlan, frame.src}] = port.index;

    if (!frame.dst.is_multicast()) {
        auto it = fdb_.find({vlan, frame.dst});
        if (it != fdb_.end()) {
            Port& out = *ports_[static_cast<std::size_t>(it->second)];
            if (out.index != port.index && member(out, vlan))
                egress(out, vlan, frame);
            return;
        }
    }
    // Broadcast/multicast/unknown unicast: flood the VLAN.
    for (auto& out : ports_) {
        if (out->index == port.index || !member(*out, vlan)) continue;
        egress(*out, vlan, frame);
    }
}

void VlanSwitch::egress(Port& port, std::uint16_t vlan,
                        const net::EthernetFrame& frame) {
    if (!port.out.connected()) return;
    net::EthernetFrame out = frame;
    if (port.trunk)
        out.vlan_id = vlan;
    else
        out.vlan_id.reset();
    port.out.send(out.serialize());
}

} // namespace gatekit::l2
