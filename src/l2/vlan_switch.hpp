// 802.1Q-aware learning switch, standing in for the paper's HP-2524s:
// access ports (one VLAN, untagged) and trunk ports (all VLANs, tagged).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/addr.hpp"
#include "net/ethernet.hpp"
#include "sim/link.hpp"

namespace gatekit::l2 {

class VlanSwitch {
public:
    explicit VlanSwitch(sim::EventLoop& loop) : loop_(loop) {}

    VlanSwitch(const VlanSwitch&) = delete;
    VlanSwitch& operator=(const VlanSwitch&) = delete;

    /// Create an access port for `vlan`; frames on the wire are untagged.
    int add_access_port(std::uint16_t vlan);
    /// Create a trunk port; all frames on the wire carry VLAN tags.
    int add_trunk_port();

    /// Attach a port to one side of a link.
    void connect(int port, sim::Link& link, sim::Link::Side side);

    std::size_t port_count() const { return ports_.size(); }
    std::size_t mac_table_size() const { return fdb_.size(); }

private:
    struct Port : sim::FrameSink {
        Port(VlanSwitch& sw, int index, bool trunk, std::uint16_t vlan)
            : owner(sw), index(index), trunk(trunk), access_vlan(vlan) {}
        void frame_in(sim::Frame frame) override {
            owner.ingress(*this, std::move(frame));
        }
        VlanSwitch& owner;
        int index;
        bool trunk;
        std::uint16_t access_vlan; ///< meaningful for access ports only
        sim::LinkEnd out;
    };

    void ingress(Port& port, sim::Frame raw);
    void egress(Port& port, std::uint16_t vlan,
                const net::EthernetFrame& frame);
    bool member(const Port& port, std::uint16_t vlan) const {
        return port.trunk || port.access_vlan == vlan;
    }

    sim::EventLoop& loop_;
    std::vector<std::unique_ptr<Port>> ports_;
    std::map<std::pair<std::uint16_t, net::MacAddr>, int> fdb_;
};

} // namespace gatekit::l2
