#include "sim/link.hpp"

#include "util/assert.hpp"

namespace gatekit::sim {

Link::Link(EventLoop& loop, std::uint64_t bits_per_sec, Duration propagation)
    : loop_(loop), rate_(bits_per_sec), prop_(propagation) {
    GK_EXPECTS(bits_per_sec > 0);
    GK_EXPECTS(propagation >= Duration::zero());
    constexpr std::uint64_t kBitsPerSecNs = 8u * 1'000'000'000ULL;
    if (kBitsPerSecNs % rate_ == 0) ns_per_byte_ = kBitsPerSecNs / rate_;
}

void Link::bind_observability(obs::MetricsRegistry* reg, obs::Tracer* tracer,
                              const std::string& device,
                              FrameIndexFn frame_index) {
    tracer_ = tracer;
    trace_device_ = device;
    frame_index_ = std::move(frame_index);
    a_to_b_.label = "a2b";
    b_to_a_.label = "b2a";
    if (reg == nullptr) return;
    for (Direction* d : {&a_to_b_, &b_to_a_}) {
        obs::Labels labels{{"device", device}, {"direction", d->label}};
        d->m_lost = reg->counter("link.impair.lost", labels);
        d->m_dup = reg->counter("link.impair.duplicated", labels);
        d->m_reordered = reg->counter("link.impair.reordered", labels);
        d->m_corrupted = reg->counter("link.impair.corrupted", labels);
        d->m_tx_drops = reg->counter("link.tx.drops", labels);
    }
}

void Link::trace_impair(const Direction& d, const char* what,
                        std::size_t bytes) const {
    if (!obs::trace_on(tracer_)) return;
    auto ev = tracer_->event(trace_device_, "link", what);
    ev.with("direction", d.label);
    ev.with("bytes", static_cast<std::int64_t>(bytes));
    // The capture tap (when attached) has already recorded this frame:
    // send() taps at wire time before the impairment draw runs.
    if (frame_index_) ev.frame = frame_index_();
    tracer_->emit(ev);
}

void Link::attach(Side side, FrameSink& sink) {
    // The receiver for frames arriving at `side` terminates the direction
    // flowing *toward* that side.
    dir(side == Side::A ? Side::B : Side::A).receiver = &sink;
}

std::size_t Link::tx_backlog_bytes(Side side) const {
    const auto& d = dir(side);
    if (d.busy_until <= loop_.now()) return 0;
    // Exact integer form of busy_ns * rate / 8e9; the product can exceed
    // 64 bits for long backlogs at gigabit rates.
    const auto busy_ns =
        static_cast<std::uint64_t>((d.busy_until - loop_.now()).count());
    const auto bytes = static_cast<unsigned __int128>(busy_ns) * rate_ /
                       (8u * 1'000'000'000ULL);
    return static_cast<std::size_t>(bytes);
}

Duration Link::tx_time(std::size_t bytes) const {
    // Whole-frame serialization delay at the configured bit rate. When
    // the rate divides 8e9 the division is exact, so the precomputed
    // per-byte form gives the identical truncated result without a
    // 64-bit divide on the per-frame path.
    if (ns_per_byte_ != 0)
        return Duration(
            static_cast<std::int64_t>(bytes * ns_per_byte_));
    const auto bits = static_cast<std::uint64_t>(bytes) * 8u;
    return Duration(static_cast<std::int64_t>(bits * 1'000'000'000ULL / rate_));
}

void Link::send(Side from, Frame frame) {
    Direction& d = dir(from);
    GK_EXPECTS(d.receiver != nullptr);
    // Finite transmit backlog: drop when more than tx_queue_bytes_ of
    // serialization time is already committed ahead of this frame.
    if (d.busy_until > loop_.now()) {
        // busy_ns * rate / 8e9 > tx_queue_bytes, cross-multiplied so the
        // comparison is exact integer arithmetic.
        const auto busy_ns =
            static_cast<std::uint64_t>((d.busy_until - loop_.now()).count());
        if (static_cast<unsigned __int128>(busy_ns) * rate_ >
            static_cast<unsigned __int128>(tx_queue_bytes_) *
                (8u * 1'000'000'000ULL)) {
            ++d.tx_drops;
            obs::inc(d.m_tx_drops);
            trace_impair(d, "tx.drop", frame.size());
            return;
        }
    }
    const TimePoint start = std::max(loop_.now(), d.busy_until);
    const TimePoint done = start + tx_time(frame.size());
    d.busy_until = done;
    ++d.frames_sent;
    if (tap_) tap_(from, start, frame);
    if (d.impair && d.impair->cfg.any()) {
        deliver_impaired(d, done, std::move(frame));
        return;
    }
    FrameSink* rx = d.receiver;
    loop_.at(done + prop_, [rx, f = std::move(frame)]() mutable {
        rx->frame_in(std::move(f));
    });
}

void Link::set_impairments(Side from, const LinkImpairments& imp,
                           std::uint64_t seed) {
    Direction& d = dir(from);
    if (!imp.any()) {
        d.impair.reset();
        return;
    }
    d.impair = std::make_unique<Impairer>(seed);
    d.impair->cfg = imp;
}

const LinkImpairments& Link::impairments(Side from) const {
    static const LinkImpairments kNone;
    const Direction& d = dir(from);
    return d.impair ? d.impair->cfg : kNone;
}

const ImpairmentStats& Link::impairment_stats(Side from) const {
    static const ImpairmentStats kZero;
    const Direction& d = dir(from);
    return d.impair ? d.impair->stats : kZero;
}

bool Link::impair_rng_state(Side from, std::uint64_t& seed,
                            std::uint64_t& draws) const {
    const Direction& d = dir(from);
    if (!d.impair) return false;
    seed = d.impair->rng.seed();
    draws = d.impair->rng.draws();
    return true;
}

bool Link::restore_impair_rng(Side from, std::uint64_t seed,
                              std::uint64_t draws) {
    Direction& d = dir(from);
    if (!d.impair) return false;
    d.impair->rng.restore(seed, draws);
    return true;
}

// Impairments apply after serialization: the frame occupied the wire, then
// the medium lost/garbled/delayed it. Draw order is fixed (loss, corrupt,
// jitter, reorder, duplicate) so a given seed replays the same fate
// sequence regardless of which knobs are non-zero.
void Link::deliver_impaired(Direction& d, TimePoint done, Frame frame) {
    Impairer& im = *d.impair;
    const LinkImpairments& cfg = im.cfg;
    if (cfg.loss > 0.0 && im.rng.uniform01() < cfg.loss) {
        ++im.stats.dropped;
        obs::inc(d.m_lost);
        trace_impair(d, "impair.lost", frame.size());
        return;
    }
    if (cfg.corrupt > 0.0 && im.rng.uniform01() < cfg.corrupt &&
        !frame.empty()) {
        ++im.stats.corrupted;
        obs::inc(d.m_corrupted);
        trace_impair(d, "impair.corrupted", frame.size());
        if ((im.rng.next_u64() & 1u) != 0) {
            frame.resize(im.rng.uniform(
                0, static_cast<std::uint32_t>(frame.size()) - 1));
        } else {
            const auto idx = im.rng.uniform(
                0, static_cast<std::uint32_t>(frame.size()) - 1);
            frame[idx] ^= static_cast<std::uint8_t>(
                im.rng.uniform(1, 255));
        }
    }
    Duration extra{0};
    if (cfg.jitter > Duration::zero()) {
        const auto span = static_cast<std::uint64_t>(cfg.jitter.count());
        extra += Duration(static_cast<std::int64_t>(im.rng.next_u64() % span));
    }
    if (cfg.reorder > 0.0 && im.rng.uniform01() < cfg.reorder) {
        ++im.stats.reordered;
        obs::inc(d.m_reordered);
        trace_impair(d, "impair.reordered", frame.size());
        extra += cfg.reorder_hold;
    }
    const bool dup =
        cfg.duplicate > 0.0 && im.rng.uniform01() < cfg.duplicate;
    FrameSink* rx = d.receiver;
    const TimePoint when = done + prop_ + extra;
    if (dup) {
        ++im.stats.duplicated;
        obs::inc(d.m_dup);
        trace_impair(d, "impair.duplicated", frame.size());
        loop_.at(when, [rx, f = frame]() mutable { rx->frame_in(std::move(f)); });
    }
    loop_.at(when, [rx, f = std::move(frame)]() mutable {
        rx->frame_in(std::move(f));
    });
}

} // namespace gatekit::sim
