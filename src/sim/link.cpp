#include "sim/link.hpp"

#include "util/assert.hpp"

namespace gatekit::sim {

Link::Link(EventLoop& loop, std::uint64_t bits_per_sec, Duration propagation)
    : loop_(loop), rate_(bits_per_sec), prop_(propagation) {
    GK_EXPECTS(bits_per_sec > 0);
    GK_EXPECTS(propagation >= Duration::zero());
}

void Link::attach(Side side, FrameSink& sink) {
    // The receiver for frames arriving at `side` terminates the direction
    // flowing *toward* that side.
    dir(side == Side::A ? Side::B : Side::A).receiver = &sink;
}

Duration Link::tx_time(std::size_t bytes) const {
    // Whole-frame serialization delay at the configured bit rate.
    const auto bits = static_cast<std::uint64_t>(bytes) * 8u;
    return Duration(static_cast<std::int64_t>(bits * 1'000'000'000ULL / rate_));
}

void Link::send(Side from, Frame frame) {
    Direction& d = dir(from);
    GK_EXPECTS(d.receiver != nullptr);
    // Finite transmit backlog: drop when more than tx_queue_bytes_ of
    // serialization time is already committed ahead of this frame.
    if (d.busy_until > loop_.now()) {
        const auto backlog_bits =
            static_cast<double>((d.busy_until - loop_.now()).count()) *
            static_cast<double>(rate_) / 1e9;
        if (backlog_bits / 8.0 > static_cast<double>(tx_queue_bytes_)) {
            ++d.tx_drops;
            return;
        }
    }
    const TimePoint start = std::max(loop_.now(), d.busy_until);
    const TimePoint done = start + tx_time(frame.size());
    d.busy_until = done;
    ++d.frames_sent;
    if (tap_) tap_(from, start, frame);
    FrameSink* rx = d.receiver;
    loop_.at(done + prop_, [rx, f = std::move(frame)]() mutable {
        rx->frame_in(std::move(f));
    });
}

} // namespace gatekit::sim
