#include "sim/link.hpp"

#include "util/assert.hpp"

namespace gatekit::sim {

Link::Link(EventLoop& loop, std::uint64_t bits_per_sec, Duration propagation)
    : loop_(loop), rate_(bits_per_sec), prop_(propagation) {
    GK_EXPECTS(bits_per_sec > 0);
    GK_EXPECTS(propagation >= Duration::zero());
}

void Link::attach(Side side, FrameSink& sink) {
    // The receiver for frames arriving at `side` terminates the direction
    // flowing *toward* that side.
    dir(side == Side::A ? Side::B : Side::A).receiver = &sink;
}

std::size_t Link::tx_backlog_bytes(Side side) const {
    const auto& d = dir(side);
    if (d.busy_until <= loop_.now()) return 0;
    // Exact integer form of busy_ns * rate / 8e9; the product can exceed
    // 64 bits for long backlogs at gigabit rates.
    const auto busy_ns =
        static_cast<std::uint64_t>((d.busy_until - loop_.now()).count());
    const auto bytes = static_cast<unsigned __int128>(busy_ns) * rate_ /
                       (8u * 1'000'000'000ULL);
    return static_cast<std::size_t>(bytes);
}

Duration Link::tx_time(std::size_t bytes) const {
    // Whole-frame serialization delay at the configured bit rate.
    const auto bits = static_cast<std::uint64_t>(bytes) * 8u;
    return Duration(static_cast<std::int64_t>(bits * 1'000'000'000ULL / rate_));
}

void Link::send(Side from, Frame frame) {
    Direction& d = dir(from);
    GK_EXPECTS(d.receiver != nullptr);
    // Finite transmit backlog: drop when more than tx_queue_bytes_ of
    // serialization time is already committed ahead of this frame.
    if (d.busy_until > loop_.now()) {
        // busy_ns * rate / 8e9 > tx_queue_bytes, cross-multiplied so the
        // comparison is exact integer arithmetic.
        const auto busy_ns =
            static_cast<std::uint64_t>((d.busy_until - loop_.now()).count());
        if (static_cast<unsigned __int128>(busy_ns) * rate_ >
            static_cast<unsigned __int128>(tx_queue_bytes_) *
                (8u * 1'000'000'000ULL)) {
            ++d.tx_drops;
            return;
        }
    }
    const TimePoint start = std::max(loop_.now(), d.busy_until);
    const TimePoint done = start + tx_time(frame.size());
    d.busy_until = done;
    ++d.frames_sent;
    if (tap_) tap_(from, start, frame);
    FrameSink* rx = d.receiver;
    loop_.at(done + prop_, [rx, f = std::move(frame)]() mutable {
        rx->frame_in(std::move(f));
    });
}

} // namespace gatekit::sim
