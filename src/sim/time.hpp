// Virtual time vocabulary types. All simulation time is nanoseconds since
// simulation start; std::chrono gives us unit-safe arithmetic for free.
#pragma once

#include <chrono>
#include <cstdint>

namespace gatekit::sim {

using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::nanoseconds; // offset from simulation start

constexpr Duration operator""_sec(unsigned long long s) {
    return std::chrono::seconds(s);
}
constexpr Duration operator""_ms(unsigned long long ms) {
    return std::chrono::milliseconds(ms);
}
constexpr Duration operator""_us(unsigned long long us) {
    return std::chrono::microseconds(us);
}

/// Seconds as a double -> Duration (rounding to whole nanoseconds).
constexpr Duration from_sec(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
}

/// Duration -> seconds as a double.
constexpr double to_sec(Duration d) {
    return static_cast<double>(d.count()) / 1e9;
}

/// Duration -> milliseconds as a double.
constexpr double to_ms(Duration d) {
    return static_cast<double>(d.count()) / 1e6;
}

} // namespace gatekit::sim
