// Hierarchical timer wheel over virtual time: O(1) amortized expiry
// bookkeeping for the NAT binding tables (and any other component that
// retires many timestamped items). The discrete-event loop can jump hours
// of virtual time in one step, so advancing the wheel is bounded by slots
// per level (not elapsed ticks): a 24-hour leap costs at most
// levels * slots bucket visits.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace gatekit::sim {

/// Stores opaque 64-bit ids at absolute virtual-time deadlines.
/// `collect_due(now)` advances the wheel and returns every id whose
/// deadline is <= now — exact to the nanosecond, not the tick: items
/// landing in a partially elapsed tick stay parked until their precise
/// deadline passes. Ids are returned in bucket order, which callers must
/// not rely on for anything semantic.
class TimerWheel {
public:
    TimerWheel() = default;

    /// Register `id` to come due at `deadline` (absolute virtual time).
    /// Scheduling in the past is allowed; the id surfaces on the next
    /// collect_due call.
    void schedule(std::uint64_t id, TimePoint deadline);

    /// Advance to `now` and harvest all due ids. The returned reference
    /// is invalidated by the next collect_due call (schedule is safe).
    const std::vector<std::uint64_t>& collect_due(TimePoint now);

    /// Items currently parked in the wheel.
    std::size_t scheduled() const { return size_; }

    /// Cumulative bucket-drain (cascade) operations since construction.
    /// Cheap enough to count unconditionally; the observability layer
    /// snapshots this into `nat.wheel.cascades`.
    std::uint64_t cascades() const { return cascades_; }

private:
    struct Item {
        std::uint64_t id;
        std::int64_t deadline_ns;
    };

    static constexpr int kTickBits = 20; ///< ~1.05 ms virtual ticks
    static constexpr int kSlotBits = 6;
    static constexpr int kSlots = 1 << kSlotBits; ///< 64 slots per level
    static constexpr int kLevels = 6; ///< 64^6 ticks ~ 2.3 years of range
    static constexpr std::uint64_t kSlotMask = kSlots - 1;

    static std::uint64_t tick_of(std::int64_t ns) {
        return static_cast<std::uint64_t>(ns) >> kTickBits;
    }
    std::vector<Item>& slot(int level, std::uint64_t index) {
        return slots_[static_cast<std::size_t>(level) * kSlots +
                      (index & kSlotMask)];
    }
    /// Bucket `item` relative to the wheel's current tick.
    void place(const Item& item);
    /// Empty `bucket`: due items land in due_, the rest re-bucket.
    void cascade(std::vector<Item>& bucket, std::int64_t now_ns);

    std::vector<Item> slots_[static_cast<std::size_t>(kLevels) * kSlots];
    std::vector<Item> scratch_; ///< drain buffer (see cascade)
    std::vector<std::uint64_t> due_;
    std::uint64_t cur_tick_ = 0;
    std::size_t size_ = 0;
    std::uint64_t cascades_ = 0;
};

} // namespace gatekit::sim
