// Point-to-point duplex Ethernet link with bit-rate, propagation delay and
// store-and-forward serialization, matching the paper's 100 Mb/s testbed
// wiring. Frames are raw byte vectors; parsing happens in higher layers.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/event_loop.hpp"
#include "util/assert.hpp"

namespace gatekit::sim {

using Frame = std::vector<std::uint8_t>;

/// Anything that can receive an Ethernet frame from a link.
class FrameSink {
public:
    virtual ~FrameSink() = default;
    virtual void frame_in(Frame frame) = 0;
};

/// Duplex link. Each direction serializes frames at `bits_per_sec` and
/// then propagates them with `propagation` delay. Each direction has a
/// finite transmit queue (the NIC/qdisc backlog): frames offered while
/// more than `tx_queue_bytes` are already waiting are dropped, exactly as
/// a host's queue discipline would. Frames never reorder.
class Link {
public:
    enum class Side { A, B };

    /// Default transmit backlog bound (~a short Linux txqueue).
    static constexpr std::size_t kDefaultTxQueueBytes = 640 * 1024;

    /// Observer invoked for every frame at the instant its first bit hits
    /// the wire. `from` names the transmitting side.
    using Tap =
        std::function<void(Side from, TimePoint at, std::span<const std::uint8_t>)>;

    Link(EventLoop& loop, std::uint64_t bits_per_sec, Duration propagation);

    /// Attach the receiver for frames arriving at the given side.
    void attach(Side side, FrameSink& sink);

    /// Transmit a frame from `from`; it is delivered to the sink attached
    /// at the opposite side after serialization + propagation.
    void send(Side from, Frame frame);

    /// Install (or clear, with nullptr) a frame observer.
    void set_tap(Tap tap) { tap_ = std::move(tap); }

    std::uint64_t bits_per_sec() const { return rate_; }
    Duration propagation() const { return prop_; }

    /// Frames transmitted per side (diagnostics).
    std::uint64_t frames_sent(Side side) const {
        return dir(side).frames_sent;
    }
    /// Frames dropped at the transmit queue per side.
    std::uint64_t tx_drops(Side side) const { return dir(side).tx_drops; }
    /// Bytes currently committed ahead in the transmit queue.
    std::size_t tx_backlog_bytes(Side side) const;
    void set_tx_queue_bytes(std::size_t bytes) { tx_queue_bytes_ = bytes; }

private:
    struct Direction {
        TimePoint busy_until{0};
        std::uint64_t frames_sent = 0;
        std::uint64_t tx_drops = 0;
        FrameSink* receiver = nullptr; // sink at the *far* end
    };

    Direction& dir(Side s) { return s == Side::A ? a_to_b_ : b_to_a_; }
    const Direction& dir(Side s) const {
        return s == Side::A ? a_to_b_ : b_to_a_;
    }

    Duration tx_time(std::size_t bytes) const;

    EventLoop& loop_;
    std::uint64_t rate_;
    Duration prop_;
    std::size_t tx_queue_bytes_ = kDefaultTxQueueBytes;
    Direction a_to_b_;
    Direction b_to_a_;
    Tap tap_;
};

/// Convenience endpoint handle binding a Link to one of its sides, so nodes
/// can hold a single object to send from / attach to.
class LinkEnd {
public:
    LinkEnd() = default;
    LinkEnd(Link& link, Link::Side side) : link_(&link), side_(side) {}

    void send(Frame frame) {
        GK_EXPECTS(link_ != nullptr);
        link_->send(side_, std::move(frame));
    }
    void attach(FrameSink& sink) {
        GK_EXPECTS(link_ != nullptr);
        link_->attach(side_, sink);
    }
    bool connected() const { return link_ != nullptr; }
    Link* link() { return link_; }

private:
    Link* link_ = nullptr;
    Link::Side side_ = Link::Side::A;
};

} // namespace gatekit::sim
