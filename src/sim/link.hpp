// Point-to-point duplex Ethernet link with bit-rate, propagation delay and
// store-and-forward serialization, matching the paper's 100 Mb/s testbed
// wiring. Frames are raw byte vectors; parsing happens in higher layers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gatekit::sim {

using Frame = std::vector<std::uint8_t>;

/// Per-direction wire impairments, all default-off. Probabilities are
/// per-frame and drawn from a dedicated seeded Rng so impaired runs are
/// reproducible and independent of any other randomness in the run.
/// Frames are still serialized (they occupy the wire) before the
/// impairment applies, matching a lossy medium rather than a lossy queue.
struct LinkImpairments {
    double loss = 0.0;      ///< drop the frame after serialization
    double duplicate = 0.0; ///< deliver a second copy of the frame
    double reorder = 0.0;   ///< hold the frame back so successors overtake it
    Duration reorder_hold{std::chrono::milliseconds(2)}; ///< hold-back span
    Duration jitter{0};     ///< extra delivery delay, uniform in [0, jitter)
    double corrupt = 0.0;   ///< flip one byte or truncate the frame

    bool any() const {
        return loss > 0.0 || duplicate > 0.0 || reorder > 0.0 ||
               jitter > Duration::zero() || corrupt > 0.0;
    }
};

/// Counters for what the impairment layer actually did to one direction.
struct ImpairmentStats {
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t corrupted = 0;
};

/// Anything that can receive an Ethernet frame from a link.
class FrameSink {
public:
    virtual ~FrameSink() = default;
    virtual void frame_in(Frame frame) = 0;
};

/// Duplex link. Each direction serializes frames at `bits_per_sec` and
/// then propagates them with `propagation` delay. Each direction has a
/// finite transmit queue (the NIC/qdisc backlog): frames offered while
/// more than `tx_queue_bytes` are already waiting are dropped, exactly as
/// a host's queue discipline would. Frames never reorder unless a
/// per-direction LinkImpairments is installed (see set_impairments); the
/// default link is a perfect pipe.
class Link {
public:
    enum class Side { A, B };

    /// Default transmit backlog bound (~a short Linux txqueue).
    static constexpr std::size_t kDefaultTxQueueBytes = 640 * 1024;

    /// Observer invoked for every frame at the instant its first bit hits
    /// the wire. `from` names the transmitting side.
    using Tap =
        std::function<void(Side from, TimePoint at, std::span<const std::uint8_t>)>;

    Link(EventLoop& loop, std::uint64_t bits_per_sec, Duration propagation);

    /// Attach the receiver for frames arriving at the given side.
    void attach(Side side, FrameSink& sink);

    /// Transmit a frame from `from`; it is delivered to the sink attached
    /// at the opposite side after serialization + propagation.
    void send(Side from, Frame frame);

    /// Install (or clear, with nullptr) a frame observer.
    void set_tap(Tap tap) { tap_ = std::move(tap); }

    std::uint64_t bits_per_sec() const { return rate_; }
    Duration propagation() const { return prop_; }

    /// Frames transmitted per side (diagnostics).
    std::uint64_t frames_sent(Side side) const {
        return dir(side).frames_sent;
    }
    /// Frames dropped at the transmit queue per side.
    std::uint64_t tx_drops(Side side) const { return dir(side).tx_drops; }
    /// Bytes currently committed ahead in the transmit queue.
    std::size_t tx_backlog_bytes(Side side) const;
    void set_tx_queue_bytes(std::size_t bytes) { tx_queue_bytes_ = bytes; }

    /// Install impairments on the direction transmitting from `from`,
    /// (re)seeding that direction's Rng. Passing a default-constructed
    /// LinkImpairments restores the perfect pipe.
    void set_impairments(Side from, const LinkImpairments& imp,
                         std::uint64_t seed = 0x1badf00dULL);
    const LinkImpairments& impairments(Side from) const;
    const ImpairmentStats& impairment_stats(Side from) const;

    /// Exact impairment RNG state for the direction transmitting from
    /// `from`, as the compact (seed, draw-count) pair the campaign
    /// journal records. False when the direction is unimpaired.
    bool impair_rng_state(Side from, std::uint64_t& seed,
                          std::uint64_t& draws) const;
    /// Restore a previously captured impairment RNG state onto an
    /// installed impairer; the direction's future fate draws become
    /// bit-identical to the run the state was captured from. False
    /// (no-op) when the direction has no impairer.
    bool restore_impair_rng(Side from, std::uint64_t seed,
                            std::uint64_t draws);

    /// Index of the most recent frame the attached capture recorded, or
    /// -1. Supplied by whoever owns the pcap tap (the harness) so trace
    /// lines can cross-reference capture frames without the sim layer
    /// depending on pcap.
    using FrameIndexFn = std::function<std::int64_t()>;

    /// Register per-direction impairment/tx-drop counters under `device`
    /// and start emitting trace events for every impairment decision.
    /// Either pointer may be null to enable only metrics or only tracing.
    void bind_observability(obs::MetricsRegistry* reg, obs::Tracer* tracer,
                            const std::string& device,
                            FrameIndexFn frame_index = {});

private:
    // Heap-allocated so the common (unimpaired) link carries only a null
    // pointer and the send fast path stays untouched.
    struct Impairer {
        LinkImpairments cfg;
        Rng rng;
        ImpairmentStats stats;
        explicit Impairer(std::uint64_t seed) : rng(seed) {}
    };

    struct Direction {
        TimePoint busy_until{0};
        std::uint64_t frames_sent = 0;
        std::uint64_t tx_drops = 0;
        FrameSink* receiver = nullptr; // sink at the *far* end
        std::unique_ptr<Impairer> impair;
        // Instrumentation; nullptr until bind_observability.
        obs::Counter* m_lost = nullptr;
        obs::Counter* m_dup = nullptr;
        obs::Counter* m_reordered = nullptr;
        obs::Counter* m_corrupted = nullptr;
        obs::Counter* m_tx_drops = nullptr;
        const char* label = "?"; ///< direction tag for trace events
    };

    Direction& dir(Side s) { return s == Side::A ? a_to_b_ : b_to_a_; }
    const Direction& dir(Side s) const {
        return s == Side::A ? a_to_b_ : b_to_a_;
    }

    Duration tx_time(std::size_t bytes) const;
    void deliver_impaired(Direction& d, TimePoint done, Frame frame);
    void trace_impair(const Direction& d, const char* what,
                      std::size_t bytes) const;

    EventLoop& loop_;
    std::uint64_t rate_;
    /// Exact whole nanoseconds per byte when the rate divides 8e9 bits
    /// (every standard rate: 10M/100M/1G...). Zero forces the general
    /// division in tx_time(); the fast path is bit-identical when set.
    std::uint64_t ns_per_byte_ = 0;
    Duration prop_;
    std::size_t tx_queue_bytes_ = kDefaultTxQueueBytes;
    Direction a_to_b_;
    Direction b_to_a_;
    Tap tap_;

    // Tracing; null/empty until bind_observability.
    obs::Tracer* tracer_ = nullptr;
    std::string trace_device_;
    FrameIndexFn frame_index_;
};

/// Convenience endpoint handle binding a Link to one of its sides, so nodes
/// can hold a single object to send from / attach to.
class LinkEnd {
public:
    LinkEnd() = default;
    LinkEnd(Link& link, Link::Side side) : link_(&link), side_(side) {}

    void send(Frame frame) {
        GK_EXPECTS(link_ != nullptr);
        link_->send(side_, std::move(frame));
    }
    void attach(FrameSink& sink) {
        GK_EXPECTS(link_ != nullptr);
        link_->attach(side_, sink);
    }
    bool connected() const { return link_ != nullptr; }
    Link* link() { return link_; }

private:
    Link* link_ = nullptr;
    Link::Side side_ = Link::Side::A;
};

} // namespace gatekit::sim
