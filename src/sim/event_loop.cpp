#include "sim/event_loop.hpp"

#include "util/assert.hpp"

namespace gatekit::sim {

EventId EventLoop::at(TimePoint t, Handler fn) {
    GK_EXPECTS(t >= now_);
    GK_EXPECTS(fn != nullptr);
    const std::uint64_t seq = next_seq_++;
    queue_.push(Event{t, seq, std::move(fn)});
    return EventId{seq};
}

EventId EventLoop::after(Duration d, Handler fn) {
    GK_EXPECTS(d >= Duration::zero());
    return at(now_ + d, std::move(fn));
}

void EventLoop::cancel(EventId id) {
    if (!id) return;
    cancelled_.insert(id.value());
}

bool EventLoop::is_cancelled(std::uint64_t seq) const {
    return cancelled_.contains(seq);
}

void EventLoop::fire(Event& ev) {
    now_ = ev.when;
    if (!cancelled_.empty() && cancelled_.erase(ev.seq) != 0) return;
    ++processed_;
    ev.fn();
}

bool EventLoop::step() {
    if (queue_.empty()) return false;
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    fire(ev);
    return true;
}

void EventLoop::run() {
    while (step()) {
    }
}

void EventLoop::run_until(TimePoint t) {
    GK_EXPECTS(t >= now_);
    while (!queue_.empty() && queue_.top().when <= t) {
        Event ev = std::move(const_cast<Event&>(queue_.top()));
        queue_.pop();
        fire(ev);
    }
    now_ = t;
}

void EventLoop::run_for(Duration d) { run_until(now_ + d); }

} // namespace gatekit::sim
