#include "sim/event_loop.hpp"

#include "util/assert.hpp"

namespace gatekit::sim {

std::uint32_t EventLoop::alloc_slot(Handler&& fn) {
    if (!free_slots_.empty()) {
        const std::uint32_t idx = free_slots_.back();
        free_slots_.pop_back();
        slot(idx).fn = std::move(fn);
        return idx;
    }
    const std::uint32_t idx = slot_count_++;
    if ((idx >> kSlotChunkBits) == chunks_.size())
        chunks_.emplace_back(new Slot[1u << kSlotChunkBits]);
    slot(idx).fn = std::move(fn);
    return idx;
}

EventId EventLoop::at(TimePoint t, Handler fn) {
    GK_EXPECTS(t >= now_);
    GK_EXPECTS(fn != nullptr);
    const std::uint64_t seq = next_seq_++;
    queue_.push(Ref{t, seq, alloc_slot(std::move(fn))});
    return EventId{seq};
}

EventId EventLoop::after(Duration d, Handler fn) {
    GK_EXPECTS(d >= Duration::zero());
    return at(now_ + d, std::move(fn));
}

void EventLoop::cancel(EventId id) {
    if (!id) return;
    cancelled_.insert(id.value());
}

bool EventLoop::is_cancelled(std::uint64_t seq) const {
    return cancelled_.contains(seq);
}

void EventLoop::fire(const Ref& ev) {
    if (hook_ != nullptr && ev.when >= hook_due_)
        hook_due_ = hook_->on_advance(ev.when);
    now_ = ev.when;
    // Free the slot even if the handler throws (the slab reference
    // stays valid while the handler runs; reuse can only happen after).
    struct SlotGuard {
        EventLoop* loop;
        std::uint32_t slot;
        ~SlotGuard() { loop->free_slots_.push_back(slot); }
    } guard{this, ev.slot};
    if (!cancelled_.empty() && cancelled_.erase(ev.seq) != 0) {
        slot(ev.slot).fn = nullptr; // destroy the skipped handler
        return;
    }
    ++processed_;
    // consume() fuses invoke + destroy into one indirection and leaves
    // the slot's handler empty, ready for reassignment on reuse.
    slot(ev.slot).fn.consume();
}

bool EventLoop::step() {
    if (queue_.empty()) return false;
    const Ref ev = queue_.top();
    queue_.pop();
    fire(ev);
    return true;
}

void EventLoop::drain_tick(std::vector<Ref>& batch) {
    const TimePoint t = queue_.top().when;
    do {
        batch.push_back(queue_.top());
        queue_.pop();
    } while (!queue_.empty() && queue_.top().when == t);
}

void EventLoop::run() {
    // Lone-event ticks (the per-packet pipeline's common case) fire
    // straight off the heap; dense ticks drain into a scratch vector
    // first, amortizing percolation when many events share a timestamp.
    // The member buffer is moved to a local so a handler that re-enters
    // run()/run_until() gets its own (briefly heap-fresh) buffer instead
    // of corrupting the one being iterated.
    std::vector<Ref> batch = std::move(batch_);
    while (!queue_.empty()) {
        if (queue_.size() == 1) {
            const Ref ev = queue_.top();
            queue_.pop();
            fire(ev);
            continue;
        }
        batch.clear();
        drain_tick(batch);
        for (const Ref& ev : batch) fire(ev);
    }
    batch.clear();
    batch_ = std::move(batch);
}

void EventLoop::run_until(TimePoint t) {
    GK_EXPECTS(t >= now_);
    std::vector<Ref> batch = std::move(batch_);
    while (!queue_.empty() && queue_.top().when <= t) {
        if (queue_.size() == 1) {
            const Ref ev = queue_.top();
            queue_.pop();
            fire(ev);
            continue;
        }
        batch.clear();
        drain_tick(batch);
        for (const Ref& ev : batch) fire(ev);
    }
    batch.clear();
    batch_ = std::move(batch);
    // The clock can advance past due boundaries with no event to carry
    // the hook; the idle jump to `t` observes them here.
    if (hook_ != nullptr && t >= hook_due_)
        hook_due_ = hook_->on_advance(t);
    now_ = t;
}

void EventLoop::run_for(Duration d) { run_until(now_ + d); }

} // namespace gatekit::sim
