#include "sim/timer_wheel.hpp"

#include <algorithm>

namespace gatekit::sim {

void TimerWheel::place(const Item& item) {
    std::uint64_t t = tick_of(item.deadline_ns);
    if (t < cur_tick_) t = cur_tick_;
    const std::uint64_t delta = t - cur_tick_;

    int level = 0;
    std::uint64_t span = kSlots; // slots covered by levels 0..level
    while (level < kLevels - 1 && delta >= span) {
        ++level;
        span <<= kSlotBits;
    }
    // Beyond the top level's horizon (~2.3 years): park in the farthest
    // top-level slot and re-bucket when it comes around.
    if (delta >= span) t = cur_tick_ + span - 1;

    slot(level, t >> (kSlotBits * level)).push_back(item);
}

void TimerWheel::cascade(std::vector<Item>& bucket, std::int64_t now_ns) {
    ++cascades_;
    // place() may re-bucket an item into the very slot being drained
    // (tick indices alias mod 64), so drain via a scratch copy.
    scratch_.clear();
    scratch_.swap(bucket);
    for (const Item& item : scratch_) {
        if (item.deadline_ns <= now_ns) {
            due_.push_back(item.id);
            --size_;
        } else {
            place(item);
        }
    }
}

const std::vector<std::uint64_t>& TimerWheel::collect_due(TimePoint now) {
    due_.clear();
    const std::int64_t now_ns = now.count();
    const std::uint64_t target = tick_of(now_ns);

    if (target > cur_tick_) {
        const std::uint64_t old = cur_tick_;
        cur_tick_ = target;
        // The old current slot may hold sub-tick stragglers whose tick has
        // now fully elapsed.
        cascade(slot(0, old), now_ns);
        for (int level = 0; level < kLevels; ++level) {
            const int shift = kSlotBits * level;
            const std::uint64_t from = old >> shift;
            const std::uint64_t to = target >> shift;
            if (from == to) break; // higher levels unchanged too
            const std::uint64_t steps =
                std::min<std::uint64_t>(to - from, kSlots);
            for (std::uint64_t s = 1; s <= steps; ++s)
                cascade(slot(level, from + s), now_ns);
        }
    }

    // Items sharing the current (partially elapsed) tick: extract the due
    // ones in place, keep the rest parked.
    std::vector<Item>& cur = slot(0, target);
    if (!cur.empty()) {
        auto keep = cur.begin();
        for (auto it = cur.begin(); it != cur.end(); ++it) {
            if (it->deadline_ns <= now_ns) {
                due_.push_back(it->id);
                --size_;
            } else {
                *keep++ = *it;
            }
        }
        cur.erase(keep, cur.end());
    }
    return due_;
}

void TimerWheel::schedule(std::uint64_t id, TimePoint deadline) {
    place(Item{id, deadline.count()});
    ++size_;
}

} // namespace gatekit::sim
