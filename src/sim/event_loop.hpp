// Discrete-event simulation core: a priority queue of timestamped callbacks
// driven in virtual time. A 24-hour NAT-timeout binary search runs in
// milliseconds of wall time because nothing ever sleeps.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace gatekit::sim {

/// Handle that allows cancelling a scheduled event. Cancellation is lazy:
/// the event stays queued but its handler is not invoked.
class EventId {
public:
    EventId() = default;

    explicit operator bool() const { return seq_ != 0; }
    std::uint64_t value() const { return seq_; }

private:
    friend class EventLoop;
    explicit EventId(std::uint64_t seq) : seq_(seq) {}
    std::uint64_t seq_ = 0;
};

/// The virtual-time event loop. Events scheduled for the same instant run
/// in FIFO order of scheduling, which keeps packet ordering deterministic.
class EventLoop {
public:
    using Handler = std::function<void()>;

    /// Current virtual time.
    TimePoint now() const { return now_; }

    /// Schedule `fn` at absolute virtual time `t` (>= now()).
    EventId at(TimePoint t, Handler fn);

    /// Schedule `fn` after `d` has elapsed (d >= 0).
    EventId after(Duration d, Handler fn);

    /// Cancel a scheduled event. Idempotent; cancelling a fired or unknown
    /// event is a no-op.
    void cancel(EventId id);

    /// Run a single event if any is pending. Returns false when idle.
    bool step();

    /// Run until the queue drains.
    void run();

    /// Run all events with timestamps <= t, then advance the clock to t.
    void run_until(TimePoint t);

    /// Convenience: run_until(now() + d).
    void run_for(Duration d);

    /// Number of handlers executed so far (diagnostics).
    std::uint64_t events_processed() const { return processed_; }

    /// Number of events currently queued (including cancelled ones).
    std::size_t pending() const { return queue_.size(); }

private:
    struct Event {
        TimePoint when;
        std::uint64_t seq; // tie-break: FIFO among equal timestamps
        Handler fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void fire(Event& ev);
    bool is_cancelled(std::uint64_t seq) const;

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::unordered_set<std::uint64_t> cancelled_;
    TimePoint now_{0};
    std::uint64_t next_seq_ = 1;
    std::uint64_t processed_ = 0;
};

} // namespace gatekit::sim
