// Discrete-event simulation core: a priority queue of timestamped callbacks
// driven in virtual time. A 24-hour NAT-timeout binary search runs in
// milliseconds of wall time because nothing ever sleeps.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"
#include "util/small_fn.hpp"

namespace gatekit::sim {

/// Handle that allows cancelling a scheduled event. Cancellation is lazy:
/// the event stays queued but its handler is not invoked.
class EventId {
public:
    EventId() = default;

    explicit operator bool() const { return seq_ != 0; }
    std::uint64_t value() const { return seq_; }

private:
    friend class EventLoop;
    explicit EventId(std::uint64_t seq) : seq_(seq) {}
    std::uint64_t seq_ = 0;
};

/// Observer of virtual-time advancement, for samplers that need a
/// periodic view of simulation state WITHOUT scheduling events — a
/// self-rescheduling sampler event would keep run() from ever draining
/// and perturb FIFO sequence numbers; a hook observes the clock the
/// loop was going to advance anyway. The hook must not schedule,
/// cancel, or otherwise touch the loop: it is a pure observer.
class AdvanceHook {
public:
    virtual ~AdvanceHook() = default;
    /// Called when virtual time is about to advance to `t` (>= the due
    /// time returned previously), before any handler at `t` runs — so
    /// the observed state is "everything strictly before t". Returns
    /// the next due time; the loop stays silent until then.
    virtual TimePoint on_advance(TimePoint t) = 0;
};

/// The virtual-time event loop. Events scheduled for the same instant run
/// in FIFO order of scheduling, which keeps packet ordering deterministic.
class EventLoop {
public:
    /// Inline capacity is sized for the largest hot-path closure: a
    /// forwarding-path DeliverFn scheduled whole for delayed delivery
    /// (80 bytes with its tail padding). Larger captures fall back to
    /// the heap transparently.
    using Handler = util::SmallFn<void(), 80>;

    /// Current virtual time.
    TimePoint now() const { return now_; }

    /// Schedule `fn` at absolute virtual time `t` (>= now()).
    EventId at(TimePoint t, Handler fn);

    /// Schedule `fn` after `d` has elapsed (d >= 0).
    EventId after(Duration d, Handler fn);

    /// Cancel a scheduled event. Idempotent; cancelling a fired or unknown
    /// event is a no-op.
    void cancel(EventId id);

    /// Run a single event if any is pending. Returns false when idle.
    bool step();

    /// Run until the queue drains.
    void run();

    /// Run all events with timestamps <= t, then advance the clock to t.
    void run_until(TimePoint t);

    /// Convenience: run_until(now() + d).
    void run_for(Duration d);

    /// Number of handlers executed so far (diagnostics).
    std::uint64_t events_processed() const { return processed_; }

    /// Number of events currently queued (including cancelled ones).
    std::size_t pending() const { return queue_.size(); }

    /// Install (or, with nullptr, remove) the advance hook. The hook
    /// fires at the next advance and thereafter per its own returned
    /// due times. Disabled cost on the firing path is one untaken
    /// branch; the caller must clear the hook before it is destroyed.
    void set_advance_hook(AdvanceHook* hook) {
        hook_ = hook;
        hook_due_ = TimePoint{};
    }

private:
    /// Handlers live in stable slots (chunked slab: references survive
    /// growth); the priority queue orders 24-byte POD refs. Heap
    /// percolation then shuffles trivially-copyable refs instead of
    /// moving ~100-byte events through the handlers' indirect move
    /// operations — the dominant scheduling cost on the per-packet
    /// forwarding path.
    struct Slot {
        Handler fn;
    };
    /// 64 slots per chunk: one 8 KB allocation per 64 events instead of
    /// a deque block every handful (a deque block holds only 512 bytes'
    /// worth of these wide slots).
    static constexpr std::uint32_t kSlotChunkBits = 6;
    static constexpr std::uint32_t kSlotChunkMask =
        (1u << kSlotChunkBits) - 1;
    struct Ref {
        TimePoint when;
        std::uint64_t seq; // tie-break: FIFO among equal timestamps
        std::uint32_t slot;
    };
    struct Later {
        bool operator()(const Ref& a, const Ref& b) const {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Slot& slot(std::uint32_t idx) {
        return chunks_[idx >> kSlotChunkBits][idx & kSlotChunkMask];
    }
    std::uint32_t alloc_slot(Handler&& fn);
    void fire(const Ref& ev);
    bool is_cancelled(std::uint64_t seq) const;
    /// Pop every event sharing the front timestamp into `batch` (seq
    /// order). Events a handler schedules at the same instant carry later
    /// seqs and land in the next batch, preserving global (when, seq)
    /// FIFO order exactly.
    void drain_tick(std::vector<Ref>& batch);

    std::priority_queue<Ref, std::vector<Ref>, Later> queue_;
    std::vector<Ref> batch_; ///< recycled drain buffer for run loops
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::uint32_t slot_count_ = 0; ///< high-water mark of allocated slots
    std::vector<std::uint32_t> free_slots_;
    std::unordered_set<std::uint64_t> cancelled_;
    TimePoint now_{0};
    std::uint64_t next_seq_ = 1;
    std::uint64_t processed_ = 0;
    AdvanceHook* hook_ = nullptr;
    TimePoint hook_due_{}; ///< next time hook_ wants on_advance
};

} // namespace gatekit::sim
