// Minimal single-homed SCTP endpoint: the four-way handshake
// (INIT / INIT-ACK+cookie / COOKIE-ECHO / COOKIE-ACK) plus unordered DATA
// and SACK — exactly enough to run the paper's "can an SCTP association be
// established and exchange data through this gateway?" test.
#pragma once

#include <functional>
#include <string>

#include "net/addr.hpp"
#include "net/sctp.hpp"
#include "sim/event_loop.hpp"

namespace gatekit::stack {

class Host;

class SctpEndpoint {
public:
    std::function<void()> on_established;
    std::function<void(std::span<const std::uint8_t>)> on_data;
    std::function<void(const std::string&)> on_error;

    net::Endpoint local() const { return {local_addr_, local_port_}; }

    /// Active open toward `remote`. Retries INIT a few times, then fails.
    void connect(net::Endpoint remote);

    /// Passive mode: accept the first association arriving at our port.
    void listen() { listening_ = true; }

    /// Send one DATA chunk over the established association.
    bool send_data(net::Bytes payload);

    bool established() const { return state_ == State::Established; }

private:
    friend class Host;
    SctpEndpoint(Host& host, net::Ipv4Addr local_addr,
                 std::uint16_t local_port)
        : host_(host), local_addr_(local_addr), local_port_(local_port) {}

    enum class State { Closed, CookieWait, CookieEchoed, Established };

    void on_packet(const net::SctpPacket& pkt, net::Ipv4Addr peer_addr);
    void send_packet(net::SctpPacket pkt);
    void send_init();
    void arm_t1();

    Host& host_;
    net::Ipv4Addr local_addr_;
    std::uint16_t local_port_ = 0;
    net::Endpoint remote_;
    State state_ = State::Closed;
    bool listening_ = false;
    std::uint32_t my_vtag_ = 0;   ///< tag peers must send to us
    std::uint32_t peer_vtag_ = 0; ///< tag we send to the peer
    std::uint32_t my_tsn_ = 1;
    sim::EventId t1_timer_;
    int init_retries_ = 0;
};

} // namespace gatekit::stack
