// Minimal DCCP endpoint: Request / Response / Ack handshake plus Data
// packets — enough for the paper's DCCP connectivity test. The endpoint
// validates the DCCP checksum (which covers an IPv4 pseudo-header), so
// packets whose addresses were rewritten without a checksum fix-up are
// dropped here, exactly as on a real host.
#pragma once

#include <functional>
#include <string>

#include "net/addr.hpp"
#include "net/dccp.hpp"
#include "sim/event_loop.hpp"

namespace gatekit::stack {

class Host;

class DccpEndpoint {
public:
    std::function<void()> on_established;
    std::function<void(std::span<const std::uint8_t>)> on_data;
    std::function<void(const std::string&)> on_error;

    net::Endpoint local() const { return {local_addr_, local_port_}; }

    /// Active open. Retries the Request a few times, then fails.
    void connect(net::Endpoint remote, std::uint32_t service_code = 42);

    /// Passive mode: accept the first connection arriving at our port.
    void listen() { listening_ = true; }

    bool send_data(net::Bytes payload);

    bool established() const { return state_ == State::Open; }

private:
    friend class Host;
    DccpEndpoint(Host& host, net::Ipv4Addr local_addr,
                 std::uint16_t local_port)
        : host_(host), local_addr_(local_addr), local_port_(local_port) {}

    enum class State { Closed, RequestSent, RespondSent, Open };

    void on_packet(const net::DccpPacket& pkt, net::Ipv4Addr peer_addr);
    void send_packet(net::DccpPacket pkt);
    void arm_retry();

    Host& host_;
    net::Ipv4Addr local_addr_;
    std::uint16_t local_port_ = 0;
    net::Endpoint remote_;
    State state_ = State::Closed;
    bool listening_ = false;
    std::uint32_t service_code_ = 0;
    std::uint64_t seq_ = 1;
    sim::EventId retry_timer_;
    int retries_ = 0;
};

} // namespace gatekit::stack
