// DNS server and client over Host sockets, speaking both UDP and TCP
// transports (TCP uses the RFC 1035 two-byte length prefix). The client
// doubles as the study's `dig`-equivalent for the DNS-over-TCP proxy test.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "net/dns.hpp"
#include "sim/event_loop.hpp"

namespace gatekit::stack {

class Host;
class UdpSocket;
class TcpListener;
class TcpSocket;

/// Authoritative-style DNS server: a static name -> A-record table,
/// answering over UDP and (optionally) TCP on port 53.
class DnsServer {
public:
    DnsServer(Host& host, net::Ipv4Addr listen_addr, bool with_tcp = true);
    ~DnsServer();

    DnsServer(const DnsServer&) = delete;
    DnsServer& operator=(const DnsServer&) = delete;

    void add_record(std::string name, net::Ipv4Addr addr);
    /// Serve a large TXT answer (a stand-in for DNSSEC-sized responses)
    /// of ~`size` bytes under `name`.
    void add_txt_record(std::string name, std::size_t size);

    std::uint64_t udp_queries() const { return udp_queries_; }
    std::uint64_t tcp_queries() const { return tcp_queries_; }

    /// Answer a query message (shared by both transports; public so the
    /// gateway's DNS proxy can reuse the logic in tests).
    net::DnsMessage answer(const net::DnsMessage& query) const;

private:
    void on_tcp_conn(TcpSocket& conn);

    Host& host_;
    std::map<std::string, net::Ipv4Addr> records_;
    std::map<std::string, net::DnsRecord> txt_records_;
    UdpSocket* udp_ = nullptr;
    TcpListener* tcp_ = nullptr;
    std::uint64_t udp_queries_ = 0;
    std::uint64_t tcp_queries_ = 0;
    std::map<TcpSocket*, net::Bytes> tcp_rx_; ///< per-conn reassembly
};

/// Stream reassembler for the RFC 1035 TCP framing: feed segments, pop
/// complete DNS messages.
class DnsTcpFramer {
public:
    void feed(std::span<const std::uint8_t> data);
    /// Extract the next complete message, if any.
    bool next(net::Bytes& out);
    /// Frame a message for the wire.
    static net::Bytes frame(const net::Bytes& message);

private:
    net::Bytes buf_;
};

/// One-shot DNS resolver with UDP and TCP transports.
class DnsClient {
public:
    explicit DnsClient(Host& host) : host_(host) {}

    struct Result {
        bool ok = false;
        net::Ipv4Addr addr;
        std::string error; ///< set when !ok
    };
    using Handler = std::function<void(const Result&)>;

    /// Resolve over UDP with retransmission; fails after `retries`.
    void query_udp(net::Endpoint server, const std::string& name, Handler h,
                   int retries = 2,
                   sim::Duration timeout = std::chrono::seconds(2));

    /// Resolve over TCP (connect, length-prefixed query, response).
    void query_tcp(net::Endpoint server, net::Ipv4Addr local_addr,
                   const std::string& name, Handler h,
                   sim::Duration timeout = std::chrono::seconds(5));

private:
    Host& host_;
    std::uint16_t next_id_ = 0x4242;
};

} // namespace gatekit::stack
