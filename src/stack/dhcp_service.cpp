#include "stack/dhcp_service.hpp"

#include "stack/host.hpp"
#include "stack/udp_socket.hpp"
#include "util/assert.hpp"

namespace gatekit::stack {

namespace {
constexpr sim::Duration kClientTimeout = std::chrono::seconds(3);
constexpr int kMaxAttempts = 4;

net::DhcpMessage parse_or_empty(std::span<const std::uint8_t> payload,
                                bool& ok) {
    ok = true;
    try {
        return net::DhcpMessage::parse(payload);
    } catch (const net::ParseError&) {
        ok = false;
        return {};
    }
}

} // namespace

DhcpServer::DhcpServer(Host& host, Iface& iface, DhcpServerConfig config)
    : host_(host), iface_(iface), config_(config) {
    GK_EXPECTS(iface.configured());
    sock_ = &host_.udp_open(net::Ipv4Addr::any(), net::kDhcpServerPort,
                            &iface_);
    sock_->set_receive_handler([this](net::Endpoint,
                                      std::span<const std::uint8_t> payload,
                                      const net::Ipv4Packet&) {
        bool ok = false;
        const auto msg = parse_or_empty(payload, ok);
        if (ok && msg.op == 1) on_datagram(msg);
    });
}

DhcpServer::~DhcpServer() {
    if (sock_ != nullptr) host_.udp_close(*sock_);
}

std::optional<net::Ipv4Addr> DhcpServer::lease_for(net::MacAddr mac) const {
    auto it = leases_.find(mac);
    if (it == leases_.end()) return std::nullopt;
    return it->second;
}

net::Ipv4Addr DhcpServer::allocate(net::MacAddr mac) {
    if (auto existing = lease_for(mac)) return *existing;
    GK_ASSERT(next_offset_ < config_.pool_size);
    const net::Ipv4Addr addr{config_.pool_base.value() +
                             static_cast<std::uint32_t>(next_offset_++)};
    leases_[mac] = addr;
    return addr;
}

void DhcpServer::on_datagram(const net::DhcpMessage& msg) {
    const auto type = msg.type();
    if (!type) return;
    switch (*type) {
    case net::DhcpMessageType::Discover:
        reply(msg, net::DhcpMessageType::Offer, allocate(msg.chaddr));
        break;
    case net::DhcpMessageType::Request: {
        // Honor the requested address when it matches our lease.
        const auto requested = msg.addr_option(net::dhcp_opt::kRequestedIp);
        const auto leased = allocate(msg.chaddr);
        if (requested && *requested != leased) {
            reply(msg, net::DhcpMessageType::Nak, net::Ipv4Addr::any());
        } else {
            reply(msg, net::DhcpMessageType::Ack, leased);
        }
        break;
    }
    case net::DhcpMessageType::Release:
        leases_.erase(msg.chaddr);
        break;
    default:
        break;
    }
}

void DhcpServer::reply(const net::DhcpMessage& req, net::DhcpMessageType type,
                       net::Ipv4Addr yiaddr) {
    net::DhcpMessage out;
    out.op = 2;
    out.xid = req.xid;
    out.yiaddr = yiaddr;
    out.siaddr = iface_.addr();
    out.chaddr = req.chaddr;
    out.set_type(type);
    out.set_addr_option(net::dhcp_opt::kServerId, iface_.addr());
    if (type != net::DhcpMessageType::Nak) {
        const std::uint32_t mask =
            config_.prefix_len == 0
                ? 0
                : ~((1u << (32 - config_.prefix_len)) - 1);
        out.set_addr_option(net::dhcp_opt::kSubnetMask, net::Ipv4Addr{mask});
        out.set_addr_option(net::dhcp_opt::kRouter, config_.router);
        out.set_addr_option(net::dhcp_opt::kDnsServer, config_.dns_server);
        out.set_u32_option(net::dhcp_opt::kLeaseTime, config_.lease_seconds);
    }
    // Clients are not yet addressable: broadcast the reply.
    sock_->send_to({net::Ipv4Addr::broadcast(), net::kDhcpClientPort},
                   out.serialize());
}

DhcpClient::DhcpClient(Host& host, Iface& iface)
    : host_(host), iface_(iface) {}

DhcpClient::~DhcpClient() {
    if (timeout_) host_.loop().cancel(timeout_);
    if (sock_ != nullptr) host_.udp_close(*sock_);
}

void DhcpClient::start(ConfiguredHandler on_configured,
                       FailedHandler on_failed) {
    GK_EXPECTS(phase_ == Phase::Idle);
    on_configured_ = std::move(on_configured);
    on_failed_ = std::move(on_failed);
    xid_ = 0x10000000u | (static_cast<std::uint32_t>(
                              iface_.mac().octets()[5]) << 8);
    sock_ = &host_.udp_open(net::Ipv4Addr::any(), net::kDhcpClientPort,
                            &iface_);
    sock_->set_receive_handler([this](net::Endpoint,
                                      std::span<const std::uint8_t> payload,
                                      const net::Ipv4Packet&) {
        bool ok = false;
        const auto msg = parse_or_empty(payload, ok);
        if (ok && msg.op == 2 && msg.xid == xid_ &&
            msg.chaddr == iface_.mac())
            on_datagram(msg);
    });
    send_discover();
}

void DhcpClient::send_discover() {
    phase_ = Phase::Selecting;
    net::DhcpMessage msg;
    msg.op = 1;
    msg.xid = xid_;
    msg.chaddr = iface_.mac();
    msg.set_type(net::DhcpMessageType::Discover);
    sock_->send_to({net::Ipv4Addr::broadcast(), net::kDhcpServerPort},
                   msg.serialize());
    arm_timeout();
}

void DhcpClient::arm_timeout() {
    if (timeout_) host_.loop().cancel(timeout_);
    timeout_ = host_.loop().after(kClientTimeout, [this] {
        timeout_ = sim::EventId{};
        if (phase_ == Phase::Bound) return;
        if (++attempts_ >= kMaxAttempts) {
            phase_ = Phase::Idle;
            if (on_failed_) on_failed_();
            return;
        }
        send_discover(); // restart the exchange
    });
}

void DhcpClient::on_datagram(const net::DhcpMessage& msg) {
    const auto type = msg.type();
    if (!type) return;

    if (phase_ == Phase::Selecting &&
        *type == net::DhcpMessageType::Offer) {
        phase_ = Phase::Requesting;
        net::DhcpMessage req;
        req.op = 1;
        req.xid = xid_;
        req.chaddr = iface_.mac();
        req.set_type(net::DhcpMessageType::Request);
        req.set_addr_option(net::dhcp_opt::kRequestedIp, msg.yiaddr);
        if (auto sid = msg.addr_option(net::dhcp_opt::kServerId))
            req.set_addr_option(net::dhcp_opt::kServerId, *sid);
        sock_->send_to({net::Ipv4Addr::broadcast(), net::kDhcpServerPort},
                       req.serialize());
        arm_timeout();
        return;
    }

    if (phase_ == Phase::Requesting && *type == net::DhcpMessageType::Ack) {
        phase_ = Phase::Bound;
        if (timeout_) {
            host_.loop().cancel(timeout_);
            timeout_ = sim::EventId{};
        }
        DhcpLease lease;
        lease.addr = msg.yiaddr;
        if (auto mask = msg.addr_option(net::dhcp_opt::kSubnetMask)) {
            int len = 0;
            for (std::uint32_t v = mask->value(); v & 0x80000000u; v <<= 1)
                ++len;
            lease.prefix_len = len;
        }
        if (auto router = msg.addr_option(net::dhcp_opt::kRouter))
            lease.router = *router;
        if (auto dns = msg.addr_option(net::dhcp_opt::kDnsServer))
            lease.dns_server = *dns;
        if (auto secs = msg.u32_option(net::dhcp_opt::kLeaseTime))
            lease.lease_seconds = *secs;
        lease_ = lease;
        iface_.configure(lease.addr, lease.prefix_len);
        if (on_configured_) on_configured_(lease);
        return;
    }

    if (phase_ == Phase::Requesting && *type == net::DhcpMessageType::Nak)
        send_discover();
}

} // namespace gatekit::stack
