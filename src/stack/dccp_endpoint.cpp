#include "stack/dccp_endpoint.hpp"

#include "net/ipv4.hpp"
#include "stack/host.hpp"
#include "util/assert.hpp"

namespace gatekit::stack {

namespace {
constexpr sim::Duration kRetryInterval = std::chrono::seconds(1);
constexpr int kMaxRetries = 4;
} // namespace

void DccpEndpoint::connect(net::Endpoint remote, std::uint32_t service_code) {
    GK_EXPECTS(state_ == State::Closed);
    remote_ = remote;
    service_code_ = service_code;
    state_ = State::RequestSent;
    net::DccpPacket req;
    req.type = net::DccpType::Request;
    req.seq = seq_++;
    req.service_code = service_code_;
    send_packet(std::move(req));
    arm_retry();
}

void DccpEndpoint::arm_retry() {
    if (retry_timer_) host_.loop().cancel(retry_timer_);
    retry_timer_ = host_.loop().after(kRetryInterval, [this] {
        retry_timer_ = sim::EventId{};
        if (state_ == State::Open || state_ == State::Closed) return;
        if (++retries_ > kMaxRetries) {
            state_ = State::Closed;
            if (on_error) on_error("DCCP connection timed out");
            return;
        }
        if (state_ == State::RequestSent) {
            net::DccpPacket req;
            req.type = net::DccpType::Request;
            req.seq = seq_++;
            req.service_code = service_code_;
            send_packet(std::move(req));
        }
        arm_retry();
    });
}

bool DccpEndpoint::send_data(net::Bytes payload) {
    if (state_ != State::Open) return false;
    net::DccpPacket data;
    data.type = net::DccpType::Data;
    data.seq = seq_++;
    data.payload = std::move(payload);
    send_packet(std::move(data));
    return true;
}

void DccpEndpoint::send_packet(net::DccpPacket pkt) {
    pkt.src_port = local_port_;
    pkt.dst_port = remote_.port;
    net::Ipv4Packet ip;
    ip.h.protocol = net::proto::kDccp;
    ip.h.src = local_addr_;
    ip.h.dst = remote_.addr;
    // The DCCP checksum covers the pseudo-header, so the source address
    // must be final before serialization.
    if (ip.h.src.is_unspecified()) {
        const Route* route = host_.lookup_route(remote_.addr);
        if (route == nullptr || !route->iface->configured()) return;
        ip.h.src = route->iface->addr();
    }
    ip.payload = pkt.serialize(ip.h.src, ip.h.dst);
    host_.send_ip(std::move(ip));
}

void DccpEndpoint::on_packet(const net::DccpPacket& pkt,
                             net::Ipv4Addr peer_addr) {
    using net::DccpType;
    switch (state_) {
    case State::Closed:
        if (listening_ && pkt.type == DccpType::Request) {
            remote_ = {peer_addr, pkt.src_port};
            state_ = State::RespondSent;
            net::DccpPacket resp;
            resp.type = DccpType::Response;
            resp.seq = seq_++;
            resp.ack_seq = pkt.seq;
            resp.service_code = pkt.service_code;
            send_packet(std::move(resp));
        }
        break;
    case State::RequestSent:
        if (pkt.type == DccpType::Response) {
            net::DccpPacket ack;
            ack.type = DccpType::Ack;
            ack.seq = seq_++;
            ack.ack_seq = pkt.seq;
            send_packet(std::move(ack));
            state_ = State::Open;
            if (retry_timer_) host_.loop().cancel(retry_timer_);
            if (on_established) on_established();
        }
        break;
    case State::RespondSent:
        if (pkt.type == DccpType::Ack || pkt.type == DccpType::DataAck ||
            pkt.type == DccpType::Data) {
            state_ = State::Open;
            if (on_established) on_established();
            if (pkt.type == DccpType::Data && on_data) on_data(pkt.payload);
        } else if (pkt.type == DccpType::Request) {
            // Retransmitted Request: resend the Response.
            net::DccpPacket resp;
            resp.type = DccpType::Response;
            resp.seq = seq_++;
            resp.ack_seq = pkt.seq;
            resp.service_code = pkt.service_code;
            send_packet(std::move(resp));
        }
        break;
    case State::Open:
        if (pkt.type == DccpType::Data && on_data) on_data(pkt.payload);
        break;
    }
}

} // namespace gatekit::stack
