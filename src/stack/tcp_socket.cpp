#include "stack/tcp_socket.hpp"

#include <algorithm>

#include "stack/host.hpp"
#include "util/assert.hpp"

namespace gatekit::stack {

namespace {

constexpr sim::Duration kMinRto = std::chrono::milliseconds(200);
constexpr sim::Duration kMaxRto = std::chrono::seconds(60);
constexpr sim::Duration kInitialRto = std::chrono::seconds(1);
constexpr sim::Duration kTimeWaitDuration = std::chrono::seconds(2);
constexpr int kMaxSynRetries = 5;
constexpr int kMaxRtoBackoffs = 8;

/// Reconstruct an absolute sequence number from a 32-bit wire value,
/// choosing the representation closest to `reference`.
std::uint64_t unwrap(std::uint32_t wire, std::uint64_t reference) {
    const auto ref32 = static_cast<std::uint32_t>(reference);
    const auto delta = static_cast<std::int32_t>(wire - ref32);
    return reference + delta;
}

} // namespace

TcpSocket::TcpSocket(Host& host, net::Endpoint local, net::Endpoint remote,
                     bool active, std::uint32_t iss)
    : host_(host), local_(local), remote_(remote),
      state_(active ? State::SynSent : State::SynRcvd), iss_(iss),
      snd_una_(iss), snd_nxt_(iss), snd_max_(iss),
      send_buf_base_(iss + 1),
      cwnd_(3u * kDefaultMss), rto_(kInitialRto) {}

void TcpSocket::start_connect() {
    GK_ASSERT(state_ == State::SynSent);
    net::TcpFlags syn;
    syn.syn = true;
    send_segment(syn, iss_, 0, /*with_mss=*/true);
    snd_nxt_ = iss_ + 1;
    snd_max_ = std::max(snd_max_, snd_nxt_);
    timed_seq_ = iss_ + 1;
    timed_sent_ = host_.loop().now();
    arm_rto();
}

void TcpSocket::start_passive(std::uint32_t peer_isn) {
    GK_ASSERT(state_ == State::SynRcvd);
    irs_ = peer_isn;
    rcv_nxt_ = irs_ + 1;
    net::TcpFlags synack;
    synack.syn = true;
    synack.ack = true;
    send_segment(synack, iss_, 0, /*with_mss=*/true);
    snd_nxt_ = iss_ + 1;
    snd_max_ = std::max(snd_max_, snd_nxt_);
    arm_rto();
}

void TcpSocket::send(net::Bytes data) {
    send_buf_.insert(send_buf_.end(), data.begin(), data.end());
    try_send();
}

void TcpSocket::close() {
    if (close_requested_ || state_ == State::Closed) return;
    close_requested_ = true;
    try_send();
}

void TcpSocket::abort() {
    if (state_ == State::Closed) return;
    net::TcpFlags rst;
    rst.rst = true;
    rst.ack = true;
    send_segment(rst, snd_nxt_, 0, false);
    fail("aborted");
}

void TcpSocket::on_segment(const net::TcpSegment& seg) {
    if (state_ == State::Closed) return;

    if (seg.flags.rst) {
        fail(state_ == State::SynSent ? "connection refused"
                                      : "connection reset");
        return;
    }
    if (seg.flags.syn) {
        if (auto ws = seg.wscale_option()) {
            peer_wscale_ = std::min<std::uint8_t>(*ws, 14);
            wscale_enabled_ = true;
        }
    }
    if (seg.flags.ack)
        rwnd_ = seg.flags.syn
                    ? seg.window // SYN segments carry unscaled windows
                    : (static_cast<std::uint32_t>(seg.window)
                       << (wscale_enabled_ ? peer_wscale_ : 0));
    if (auto mss = seg.mss_option()) mss_ = std::min(mss_, *mss);

    if (state_ == State::SynSent) {
        if (seg.flags.syn && seg.flags.ack &&
            unwrap(seg.ack, snd_nxt_) == iss_ + 1) {
            irs_ = seg.seq;
            rcv_nxt_ = irs_ + 1;
            snd_una_ = iss_ + 1;
            if (timed_seq_ != 0) {
                update_rtt(host_.loop().now() - timed_sent_);
                timed_seq_ = 0;
            }
            disarm_rto();
            send_ack();
            enter_established();
        }
        return; // ignore anything else during the handshake
    }

    if (state_ == State::SynRcvd) {
        if (seg.flags.ack && unwrap(seg.ack, snd_nxt_) == iss_ + 1) {
            snd_una_ = iss_ + 1;
            disarm_rto();
            enter_established();
            // fall through: the ACK may carry data
        } else if (seg.flags.syn && !seg.flags.ack) {
            // Retransmitted SYN: resend SYN|ACK.
            net::TcpFlags synack;
            synack.syn = true;
            synack.ack = true;
            send_segment(synack, iss_, 0, true);
            return;
        } else {
            return;
        }
    }

    if (state_ == State::TimeWait) {
        if (seg.flags.fin) send_ack(); // re-ACK a retransmitted FIN
        return;
    }

    if (seg.flags.syn) {
        // A SYN in a synchronized state is a stale handshake
        // retransmission: the peer never received our final ACK (it was
        // lost in flight) and is still resending its SYN|ACK. Re-ACK so
        // the peer can finish establishing (RFC 793: an unacceptable
        // segment elicits an ACK) and drop the segment.
        obs::inc(host_.m_tcp_stale_syn_);
        if (obs::trace_on(host_.tracer_)) {
            auto ev = host_.tracer_->event(host_.name(), "tcp",
                                           "stale_syn_reack");
            ev.with("local_port", static_cast<std::int64_t>(local_.port));
            ev.with("remote_port", static_cast<std::int64_t>(remote_.port));
            host_.tracer_->emit(ev);
        }
        send_ack();
        return;
    }

    const auto una_before = snd_una_;
    if (seg.flags.ack) handle_ack(seg);
    if (state_ == State::Closed) return; // handle_ack may complete LAST-ACK
    if (!seg.payload.empty()) handle_payload(seg);
    if (seg.flags.fin) handle_fin(seg);
    try_send();
    if (snd_una_ > una_before && on_progress) on_progress();
}

void TcpSocket::handle_ack(const net::TcpSegment& seg) {
    const std::uint64_t ack_abs = unwrap(seg.ack, snd_una_);
    if (ack_abs > snd_max_) return; // acks data never sent: ignore
    // After an RTO rollback, a cumulative ACK can cover data sent before
    // the rollback: fast-forward the send pointer past it.
    if (ack_abs > snd_nxt_) snd_nxt_ = ack_abs;

    if (ack_abs > snd_una_) {
        if (timed_seq_ != 0 && ack_abs >= timed_seq_) {
            update_rtt(host_.loop().now() - timed_sent_);
            timed_seq_ = 0;
            rto_backoffs_ = 0;
        }
        // Release acked bytes from the retransmission buffer. The FIN
        // occupies a sequence number past the data, so clamp.
        const std::uint64_t data_end = send_buf_base_ + send_buf_.size();
        const std::uint64_t acked_data = std::min(ack_abs, data_end);
        if (acked_data > send_buf_base_) {
            send_buf_.erase(send_buf_.begin(),
                            send_buf_.begin() +
                                static_cast<long>(acked_data -
                                                  send_buf_base_));
            send_buf_base_ = acked_data;
        }
        snd_una_ = ack_abs;
        dup_acks_ = 0;
        if (in_recovery_) {
            if (ack_abs >= recovery_point_) {
                in_recovery_ = false;
                recovery_cooldown_until_ =
                    host_.loop().now() +
                    (rtt_valid_ ? 2 * srtt_
                                : sim::Duration(std::chrono::milliseconds(10)));
            } else {
                // Partial ACK: the next hole starts here; resend at once.
                retransmit_head("newreno-partial");
            }
        }

        // Reno growth: slow start below ssthresh, then one MSS per RTT.
        if (cwnd_ < ssthresh_)
            cwnd_ += mss_;
        else
            cwnd_ += std::max<std::uint32_t>(1, mss_ * mss_ / cwnd_);

        if (fin_sent_ && ack_abs == fin_seq_ + 1) {
            disarm_rto();
            switch (state_) {
            case State::FinWait1:
                state_ = State::FinWait2;
                break;
            case State::Closing:
                enter_time_wait();
                break;
            case State::LastAck:
                state_ = State::Closed;
                disarm_rto();
                host_.loop().after(sim::Duration::zero(),
                                   [&h = host_, l = local_, r = remote_] {
                                       h.tcp_reap(l, r);
                                   });
                break;
            default:
                break;
            }
        } else if (snd_una_ == snd_nxt_) {
            disarm_rto();
        } else {
            arm_rto(); // restart for remaining in-flight data
        }
    } else if (ack_abs == snd_una_ && snd_nxt_ > snd_una_ &&
               seg.payload.empty() && !seg.flags.syn && !seg.flags.fin) {
        if (++dup_acks_ == 3 && !in_recovery_ &&
            host_.loop().now() >= recovery_cooldown_until_) {
            // Fast retransmit: resend only the missing head segment; the
            // receiver's reassembly queue turns the fill into one
            // cumulative-ACK jump. Enter NewReno recovery until every
            // byte outstanding at the loss is acknowledged.
            const auto inflight =
                static_cast<std::uint32_t>(snd_nxt_ - snd_una_);
            ssthresh_ = std::max(inflight / 2, 2u * mss_);
            cwnd_ = ssthresh_;
            in_recovery_ = true;
            recovery_point_ = snd_max_;
            retransmit_head("fast-retransmit");
        }
    }
}

void TcpSocket::handle_payload(const net::TcpSegment& seg) {
    const std::uint64_t seq_abs = unwrap(seg.seq, rcv_nxt_);
    const std::uint64_t len = seg.payload.size();
    if (seq_abs > rcv_nxt_) {
        // Out of order: buffer for reassembly (no SACK, but real
        // receivers keep the data; the cumulative ACK jumps once the
        // hole is filled) and emit a duplicate ACK.
        if (ooo_bytes_ + len <= kOooLimit && !ooo_.contains(seq_abs)) {
            ooo_.emplace(seq_abs, seg.payload);
            ooo_bytes_ += len;
        }
        send_ack();
        return;
    }
    const std::uint64_t overlap = rcv_nxt_ - seq_abs;
    if (overlap >= len) {
        send_ack(); // complete duplicate
        return;
    }
    net::Bytes fresh(seg.payload.begin() + static_cast<long>(overlap),
                     seg.payload.end());
    rcv_nxt_ += fresh.size();
    // Drain any now-contiguous buffered segments before acking, so the
    // cumulative ACK reports the full jump.
    while (!ooo_.empty()) {
        auto it = ooo_.begin();
        if (it->first > rcv_nxt_) break;
        const std::uint64_t seg_end = it->first + it->second.size();
        if (seg_end > rcv_nxt_) {
            const auto skip =
                static_cast<std::size_t>(rcv_nxt_ - it->first);
            fresh.insert(fresh.end(),
                         it->second.begin() + static_cast<long>(skip),
                         it->second.end());
            rcv_nxt_ = seg_end;
        }
        ooo_bytes_ -= it->second.size();
        ooo_.erase(it);
    }
    bytes_rx_ += fresh.size();
    send_ack();
    if (on_data) on_data(fresh);
}

void TcpSocket::handle_fin(const net::TcpSegment& seg) {
    const std::uint64_t fin_seq =
        unwrap(seg.seq, rcv_nxt_) + seg.payload.size();
    if (fin_seq > rcv_nxt_) {
        send_ack(); // FIN beyond a hole: ask for retransmission
        return;
    }
    if (fin_seq < rcv_nxt_) {
        send_ack(); // old FIN, already counted
        return;
    }
    rcv_nxt_ += 1;
    send_ack();
    switch (state_) {
    case State::Established:
        state_ = State::CloseWait;
        if (on_remote_close) on_remote_close();
        break;
    case State::FinWait1:
        // Our FIN not yet acked: simultaneous close.
        state_ = State::Closing;
        if (on_remote_close) on_remote_close();
        break;
    case State::FinWait2:
        enter_time_wait();
        if (on_remote_close) on_remote_close();
        break;
    default:
        break;
    }
}

bool TcpSocket::fin_ready() const {
    if (!close_requested_ || fin_sent_) return false;
    if (snd_nxt_ != send_buf_base_ + send_buf_.size()) return false;
    switch (state_) {
    case State::Established:
    case State::CloseWait:
    case State::FinWait1: // FIN rolled back by go-back-N
    case State::Closing:
    case State::LastAck:
        return true;
    default:
        return false;
    }
}

void TcpSocket::try_send() {
    switch (state_) {
    case State::Established:
    case State::CloseWait:
    case State::FinWait1:
    case State::Closing:
    case State::LastAck:
        break; // data (and a rolled-back FIN) may still need sending
    default:
        return;
    }

    const std::uint64_t data_end = send_buf_base_ + send_buf_.size();
    const std::uint64_t wnd = std::min<std::uint64_t>(cwnd_, rwnd_);
    bool sent_any = false;
    while (snd_nxt_ < data_end) {
        const std::uint64_t inflight = snd_nxt_ - snd_una_;
        if (inflight >= wnd) break;
        const std::uint64_t usable = wnd - inflight;
        const std::uint64_t remaining = data_end - snd_nxt_;
        // Sender-side silly-window avoidance: when the window opens by
        // only a few bytes per ACK (Reno's congestion-avoidance
        // increment), wait until a full segment fits rather than
        // spraying tiny segments.
        if (usable < mss_ && remaining > usable) break;
        const std::size_t len = static_cast<std::size_t>(
            std::min<std::uint64_t>({mss_, remaining, usable}));
        if (len == 0) break;
        net::TcpFlags flags;
        flags.ack = true;
        flags.psh = (snd_nxt_ + len == data_end);
        send_segment(flags, snd_nxt_, len, false);
        if (timed_seq_ == 0) {
            timed_seq_ = snd_nxt_ + len;
            timed_sent_ = host_.loop().now();
        }
        snd_nxt_ += len;
        snd_max_ = std::max(snd_max_, snd_nxt_);
        sent_any = true;
    }

    if (fin_ready()) {
        net::TcpFlags flags;
        flags.fin = true;
        flags.ack = true;
        send_segment(flags, snd_nxt_, 0, false);
        fin_seq_ = snd_nxt_;
        snd_nxt_ += 1;
        snd_max_ = std::max(snd_max_, snd_nxt_);
        fin_sent_ = true;
        if (state_ == State::CloseWait)
            state_ = State::LastAck;
        else if (state_ == State::Established)
            state_ = State::FinWait1;
        sent_any = true;
    }

    if (sent_any && snd_nxt_ > snd_una_ && !rto_timer_) arm_rto();
}

void TcpSocket::send_segment(net::TcpFlags flags, std::uint64_t seq_abs,
                             std::size_t payload_len, bool with_mss) {
    net::TcpSegment seg;
    seg.src_port = local_.port;
    seg.dst_port = remote_.port;
    seg.seq = static_cast<std::uint32_t>(seq_abs);
    seg.flags = flags;
    seg.window = 65535;
    if (flags.ack) seg.ack = static_cast<std::uint32_t>(rcv_nxt_);
    if (with_mss) {
        seg.add_mss_option(mss_);
        seg.add_wscale_option(kWscaleShift);
    }
    if (payload_len > 0) {
        GK_ASSERT(seq_abs >= send_buf_base_);
        const auto off = static_cast<std::size_t>(seq_abs - send_buf_base_);
        GK_ASSERT(off + payload_len <= send_buf_.size());
        seg.payload.assign(send_buf_.begin() + static_cast<long>(off),
                           send_buf_.begin() +
                               static_cast<long>(off + payload_len));
    }
    net::Ipv4Packet pkt;
    pkt.h.protocol = net::proto::kTcp;
    pkt.h.src = local_.addr;
    pkt.h.dst = remote_.addr;
    pkt.payload = seg.serialize(local_.addr, remote_.addr);
    host_.send_ip(std::move(pkt));
}

void TcpSocket::send_ack() {
    net::TcpFlags flags;
    flags.ack = true;
    send_segment(flags, snd_nxt_, 0, false);
}

void TcpSocket::go_back_n() {
    // The receiver keeps no out-of-order data (no SACK), so everything
    // beyond the lost segment must be resent: roll the send pointer back.
    if (snd_nxt_ <= snd_una_) return;
    snd_nxt_ = snd_una_;
    timed_seq_ = 0;
    if (fin_sent_ && fin_seq_ >= snd_nxt_) fin_sent_ = false; // resend FIN
}

void TcpSocket::retransmit_head(const char* why) {
    ++retransmits_;
    obs::inc(host_.m_tcp_retransmits_);
    if (obs::trace_on(host_.tracer_)) {
        auto ev = host_.tracer_->event(host_.name(), "tcp", "retransmit");
        ev.with("why", why);
        ev.with("local_port", static_cast<std::int64_t>(local_.port));
        ev.with("remote_port", static_cast<std::int64_t>(remote_.port));
        host_.tracer_->emit(ev);
    }
    timed_seq_ = 0; // Karn: never time retransmitted segments
    const std::uint64_t data_end = send_buf_base_ + send_buf_.size();
    if (state_ == State::SynSent) {
        net::TcpFlags syn;
        syn.syn = true;
        send_segment(syn, iss_, 0, true);
    } else if (state_ == State::SynRcvd) {
        net::TcpFlags synack;
        synack.syn = true;
        synack.ack = true;
        send_segment(synack, iss_, 0, true);
    } else if (snd_una_ < data_end) {
        const std::size_t len = static_cast<std::size_t>(
            std::min<std::uint64_t>(mss_, data_end - snd_una_));
        net::TcpFlags flags;
        flags.ack = true;
        flags.psh = true;
        send_segment(flags, snd_una_, len, false);
    } else if (fin_sent_ && snd_una_ == fin_seq_) {
        net::TcpFlags flags;
        flags.fin = true;
        flags.ack = true;
        send_segment(flags, fin_seq_, 0, false);
    }
    arm_rto();
}

void TcpSocket::arm_rto() {
    disarm_rto();
    rto_timer_ = host_.loop().after(rto_, [this] {
        rto_timer_ = sim::EventId{};
        on_rto();
    });
}

void TcpSocket::disarm_rto() {
    if (rto_timer_) {
        host_.loop().cancel(rto_timer_);
        rto_timer_ = sim::EventId{};
    }
}

void TcpSocket::on_rto() {
    if (state_ == State::Closed) return;
    if (state_ == State::SynSent || state_ == State::SynRcvd) {
        if (++syn_retries_ > kMaxSynRetries) {
            fail("connection timed out (SYN)");
            return;
        }
    } else {
        if (++rto_backoffs_ > kMaxRtoBackoffs) {
            fail("connection timed out (retransmission limit)");
            return;
        }
        const auto inflight = static_cast<std::uint32_t>(snd_nxt_ - snd_una_);
        ssthresh_ = std::max(inflight / 2, 2u * mss_);
        cwnd_ = mss_;
        dup_acks_ = 0;
        in_recovery_ = false;
        go_back_n();
    }
    rto_ = std::min(rto_ * 2, kMaxRto);
    retransmit_head("rto");
}

void TcpSocket::update_rtt(sim::Duration sample) {
    if (!rtt_valid_) {
        srtt_ = sample;
        rttvar_ = sample / 2;
        rtt_valid_ = true;
    } else {
        const auto err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
        rttvar_ = (3 * rttvar_ + err) / 4;
        srtt_ = (7 * srtt_ + sample) / 8;
    }
    rto_ = std::clamp(srtt_ + std::max<sim::Duration>(4 * rttvar_,
                                                      std::chrono::milliseconds(1)),
                      kMinRto, kMaxRto);
}

void TcpSocket::enter_established() {
    state_ = State::Established;
    if (on_established) on_established();
    try_send();
}

void TcpSocket::enter_time_wait() {
    state_ = State::TimeWait;
    disarm_rto();
    host_.loop().after(kTimeWaitDuration,
                       [&h = host_, l = local_, r = remote_] {
                           h.tcp_reap(l, r);
                       });
}

void TcpSocket::fail(const std::string& reason) {
    if (state_ == State::Closed) return;
    state_ = State::Closed;
    disarm_rto();
    auto cb = on_error;
    host_.loop().after(sim::Duration::zero(),
                       [&h = host_, l = local_, r = remote_] {
                           h.tcp_reap(l, r);
                       });
    if (cb) cb(reason);
}

} // namespace gatekit::stack
