// TCP with Reno congestion control, matching the paper's measurement
// configuration (Linux 2.6.26 with SACK/timestamps/F-RTO/D-SACK/CBI
// disabled): slow start, congestion avoidance, RTO per a simplified RFC
// 6298, fast retransmit on three duplicate ACKs with out-of-order
// reassembly at the receiver (cumulative-ACK recovery, no SACK), and
// go-back-N after an RTO. Window scaling is enabled (see DESIGN.md).
#pragma once

#include <deque>
#include <map>
#include <functional>
#include <string>

#include "net/addr.hpp"
#include "net/ipv4.hpp"
#include "net/tcp_header.hpp"
#include "sim/event_loop.hpp"

namespace gatekit::stack {

class Host;

class TcpSocket {
public:
    enum class State {
        SynSent,
        SynRcvd,
        Established,
        FinWait1,
        FinWait2,
        CloseWait,
        Closing,
        LastAck,
        TimeWait,
        Closed,
    };

    static constexpr std::uint16_t kDefaultMss = 1460;

    // --- callbacks -----------------------------------------------------
    std::function<void()> on_established;
    /// In-order application data.
    std::function<void(std::span<const std::uint8_t>)> on_data;
    /// Peer sent FIN (half close).
    std::function<void()> on_remote_close;
    /// Connection failed: RST, SYN timeout, or retransmission limit.
    /// After this fires the socket is dead and will be reaped.
    std::function<void(const std::string&)> on_error;
    /// Fired whenever previously sent data is newly acknowledged; lets an
    /// application pace its writes against the send buffer.
    std::function<void()> on_progress;

    // --- API -------------------------------------------------------------
    /// Queue application data for transmission.
    void send(net::Bytes data);
    /// Graceful close: FIN once the send queue drains.
    void close();
    /// Hard close: RST immediately.
    void abort();

    State state() const { return state_; }
    net::Endpoint local() const { return local_; }
    net::Endpoint remote() const { return remote_; }
    bool established() const { return state_ == State::Established; }

    std::uint64_t bytes_received() const { return bytes_rx_; }
    std::uint64_t bytes_acked() const { return snd_una_ - iss_ - 1; }
    /// Unacked + unsent bytes held for (re)transmission.
    std::uint64_t bytes_unsent() const { return send_buf_.size(); }
    /// Bytes queued but not yet put on the wire (application pacing).
    std::uint64_t bytes_pending_send() const {
        return send_buf_base_ + send_buf_.size() - snd_nxt_;
    }
    std::uint32_t cwnd() const { return cwnd_; }
    std::uint64_t retransmissions() const { return retransmits_; }

private:
    friend class Host;

    TcpSocket(Host& host, net::Endpoint local, net::Endpoint remote,
              bool active, std::uint32_t iss);

    void start_connect();                       // active open: send SYN
    void start_passive(std::uint32_t peer_isn); // from listener: send SYN|ACK
    void on_segment(const net::TcpSegment& seg);

    void handle_ack(const net::TcpSegment& seg);
    void handle_payload(const net::TcpSegment& seg);
    void handle_fin(const net::TcpSegment& seg);
    void try_send();
    void send_segment(net::TcpFlags flags, std::uint64_t seq_abs,
                      std::size_t payload_len, bool with_mss);
    void send_ack();
    void retransmit_head(const char* why);
    /// Roll the send pointer back to snd_una_ (go-back-N): the receiver
    /// buffers nothing out of order, so a loss invalidates the whole
    /// in-flight window.
    void go_back_n();
    void arm_rto();
    void disarm_rto();
    void on_rto();
    void update_rtt(sim::Duration sample);
    void enter_established();
    void enter_time_wait();
    void fail(const std::string& reason);
    /// Sender has nothing outstanding and close() was requested.
    bool fin_ready() const;

    Host& host_;
    net::Endpoint local_;
    net::Endpoint remote_;
    State state_;

    // All sequence bookkeeping uses 64-bit absolute offsets; the low 32
    // bits go on the wire. Transfers beyond 2^32 bytes per connection
    // would need wraparound-aware compares on receive (documented limit).
    std::uint64_t iss_;
    std::uint64_t irs_ = 0;
    std::uint64_t snd_una_ = 0; ///< oldest unacked (absolute)
    std::uint64_t snd_nxt_ = 0;
    std::uint64_t snd_max_ = 0; ///< highest sequence ever sent
    std::uint64_t rcv_nxt_ = 0;
    std::deque<std::uint8_t> send_buf_; ///< unsent + unacked app bytes
    std::uint64_t send_buf_base_ = 0;   ///< absolute seq of send_buf_[0]
    /// Out-of-order reassembly queue: segment start seq -> payload.
    /// Bounded; segments beyond the bound are dropped (sender resends).
    std::map<std::uint64_t, net::Bytes> ooo_;
    std::size_t ooo_bytes_ = 0;
    static constexpr std::size_t kOooLimit = 4 * 1024 * 1024;

    std::uint16_t mss_ = kDefaultMss;
    /// Window scaling (RFC 7323): both of our stacks offer shift 7,
    /// giving an ~8 MB effective window. See DESIGN.md: the paper's hosts
    /// had scaling disabled, but several of its published delay/rate
    /// combinations exceed what a 64 KB window can keep in flight, so the
    /// reproduction needs the larger window for TCP-2/3 fidelity.
    static constexpr std::uint8_t kWscaleShift = 7;
    std::uint8_t peer_wscale_ = 0;
    bool wscale_enabled_ = false;
    std::uint32_t cwnd_;
    /// Initial slow-start threshold: 512 KiB. Large enough to fill the
    /// biggest device buffers quickly, small enough that slow start's
    /// final doubling does not flood the sender's own NIC queue.
    std::uint32_t ssthresh_ = 512 * 1024;
    std::uint32_t rwnd_ = 65535;
    int dup_acks_ = 0;
    // NewReno-style recovery: on a partial ACK (below the recovery
    // point), retransmit the next hole immediately instead of stalling
    // until RTO — without SACK, multiple losses per window would
    // otherwise cost one RTO each.
    bool in_recovery_ = false;
    std::uint64_t recovery_point_ = 0;
    /// RFC 6582 "avoid multiple fast retransmits": our own partial-ACK
    /// retransmits can draw duplicate ACKs right after recovery ends;
    /// ignore dup-ACK bursts for one RTT after exiting recovery.
    sim::TimePoint recovery_cooldown_until_{sim::Duration::zero()};

    // RTO estimation (RFC 6298 with coarse granularity removed — the
    // simulator's clock is exact).
    sim::Duration srtt_{0};
    sim::Duration rttvar_{0};
    sim::Duration rto_{std::chrono::seconds(1)};
    bool rtt_valid_ = false;
    std::uint64_t timed_seq_ = 0; ///< segment end being timed; 0 = none
    sim::TimePoint timed_sent_{};
    sim::EventId rto_timer_;
    int syn_retries_ = 0;
    int rto_backoffs_ = 0;

    bool close_requested_ = false;
    bool fin_sent_ = false;
    std::uint64_t fin_seq_ = 0; ///< absolute seq consumed by our FIN

    std::uint64_t bytes_rx_ = 0;
    std::uint64_t retransmits_ = 0;
};

/// Passive TCP endpoint: owns no connection state; hands accepted
/// connections to the callback once their handshake completes.
class TcpListener {
public:
    using AcceptHandler = std::function<void(TcpSocket&)>;
    void set_accept_handler(AcceptHandler h) { on_accept_ = std::move(h); }
    std::uint16_t port() const { return port_; }

private:
    friend class Host;
    TcpListener(Host& host, std::uint16_t port) : host_(host), port_(port) {}
    [[maybe_unused]] Host& host_;
    std::uint16_t port_;
    AcceptHandler on_accept_;
};

} // namespace gatekit::stack
