#include "stack/netif.hpp"

#include <algorithm>
#include <chrono>

#include "util/assert.hpp"

namespace gatekit::stack {

std::optional<net::MacAddr> ArpCache::lookup(net::Ipv4Addr ip) const {
    auto it = entries_.find(ip);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
}

void ArpCache::insert(net::Ipv4Addr ip, net::MacAddr mac) {
    entries_[ip] = mac;
}

Iface::Iface(NetIf& parent, std::optional<std::uint16_t> vlan)
    : parent_(parent), vlan_(vlan) {}

void Iface::configure(net::Ipv4Addr addr, int prefix_len) {
    GK_EXPECTS(prefix_len >= 0 && prefix_len <= 32);
    addr_ = addr;
    prefix_len_ = prefix_len;
    configured_ = true;
}

void Iface::deconfigure() {
    configured_ = false;
    addr_ = net::Ipv4Addr{};
    prefix_len_ = 0;
}

net::MacAddr Iface::mac() const { return parent_.mac(); }

void Iface::send_ip(const net::Ipv4Packet& pkt, net::Ipv4Addr next_hop) {
    send_ip_raw(pkt.serialize(), next_hop);
}

void Iface::send_ip_raw(net::Bytes datagram, net::Ipv4Addr next_hop) {
    if (next_hop.is_broadcast()) {
        transmit_ip(std::move(datagram), net::MacAddr::broadcast());
        return;
    }
    // Never ARP for an address outside this interface's subnet: no one
    // on the segment answers for it, so the datagram would sit behind a
    // doomed resolution and blackhole once the retry budget runs out.
    // Substitute the configured gateway — the router on this segment is
    // the L2 next hop for everything off-link. (Callers that already
    // resolved a route pass an on-link `via`, which is unaffected.)
    if (configured_ && !next_hop.same_subnet(addr_, prefix_len_)) {
        if (gateway_.is_unspecified()) return; // off-link, no router
        next_hop = gateway_;
    }
    if (auto mac = arp_.lookup(next_hop)) {
        transmit_ip(std::move(datagram), *mac);
        return;
    }
    // Queue behind an ARP request. Only the first packet triggers one; the
    // reply flushes the whole queue. Requests retransmit on a timer: an
    // impaired link can lose the request or the reply, and without retry
    // one lost ARP frame would blackhole the next hop forever.
    if (auto it = awaiting_arp_.find(next_hop); it != awaiting_arp_.end()) {
        it->second.queue.push_back(std::move(datagram));
        return;
    }
    PendingArp& pending = awaiting_arp_[next_hop];
    pending.queue.push_back(std::move(datagram));
    pending.epoch = ++arp_epoch_;
    send_arp_request(next_hop);
    schedule_arp_retry(next_hop, pending.epoch);
}

void Iface::send_arp_request(net::Ipv4Addr next_hop) {
    net::ArpMessage req;
    req.op = net::ArpMessage::Op::Request;
    req.sender_mac = mac();
    req.sender_ip = addr_;
    req.target_ip = next_hop;
    net::EthernetFrame frame;
    frame.dst = net::MacAddr::broadcast();
    frame.src = mac();
    frame.vlan_id = vlan_;
    frame.ethertype = net::kEtherTypeArp;
    frame.payload = req.serialize();
    parent_.transmit(std::move(frame));
}

void Iface::schedule_arp_retry(net::Ipv4Addr next_hop, std::uint64_t epoch) {
    constexpr auto kRetryInterval = std::chrono::seconds(1);
    constexpr int kMaxTries = 5; // initial request + 4 retransmits
    auto& loop = parent_.loop();
    loop.at(loop.now() + kRetryInterval, [this, next_hop, epoch] {
        auto it = awaiting_arp_.find(next_hop);
        if (it == awaiting_arp_.end() || it->second.epoch != epoch)
            return; // resolved, or a newer resolution cycle owns the hop
        if (++it->second.tries >= kMaxTries) {
            // Give up and unpark: drop the queued datagrams, as a real
            // stack reports EHOSTUNREACH. A later send restarts the cycle.
            awaiting_arp_.erase(it);
            return;
        }
        send_arp_request(next_hop);
        schedule_arp_retry(next_hop, epoch);
    });
}

void Iface::transmit_ip(net::Bytes datagram, net::MacAddr dst) {
    net::EthernetFrame frame;
    frame.dst = dst;
    frame.src = mac();
    frame.vlan_id = vlan_;
    frame.ethertype = net::kEtherTypeIpv4;
    frame.payload = std::move(datagram);
    parent_.transmit(std::move(frame));
}

void Iface::handle_frame(const net::EthernetFrame& frame) {
    if (frame.ethertype == net::kEtherTypeArp) {
        handle_arp(frame);
        return;
    }
    if (frame.ethertype != net::kEtherTypeIpv4) return;
    net::Ipv4Packet pkt;
    try {
        pkt = net::Ipv4Packet::parse(frame.payload);
    } catch (const net::ParseError&) {
        return; // malformed input is dropped, as a real stack would
    }
    if (on_ip_) on_ip_(pkt, frame.payload);
}

void Iface::handle_arp(const net::EthernetFrame& frame) {
    net::ArpMessage msg;
    try {
        msg = net::ArpMessage::parse(frame.payload);
    } catch (const net::ParseError&) {
        return;
    }
    // Learn the sender either way.
    if (!msg.sender_ip.is_unspecified())
        arp_.insert(msg.sender_ip, msg.sender_mac);

    if (msg.op == net::ArpMessage::Op::Request && configured_ &&
        msg.target_ip == addr_) {
        net::ArpMessage reply;
        reply.op = net::ArpMessage::Op::Reply;
        reply.sender_mac = mac();
        reply.sender_ip = addr_;
        reply.target_mac = msg.sender_mac;
        reply.target_ip = msg.sender_ip;
        net::EthernetFrame out;
        out.dst = msg.sender_mac;
        out.src = mac();
        out.vlan_id = vlan_;
        out.ethertype = net::kEtherTypeArp;
        out.payload = reply.serialize();
        parent_.transmit(std::move(out));
    }

    // Flush datagrams that were waiting on this resolution.
    auto it = awaiting_arp_.find(msg.sender_ip);
    if (it != awaiting_arp_.end()) {
        auto queued = std::move(it->second.queue);
        awaiting_arp_.erase(it);
        for (auto& dgram : queued)
            transmit_ip(std::move(dgram), msg.sender_mac);
    }
}

NetIf::NetIf(sim::EventLoop& loop, net::MacAddr mac)
    : loop_(loop), mac_(mac) {}

void NetIf::connect(sim::Link& link, sim::Link::Side side) {
    out_ = sim::LinkEnd(link, side);
    link.attach(side, *this);
}

Iface& NetIf::add_iface(std::optional<std::uint16_t> vlan) {
    GK_EXPECTS(find_iface(vlan) == nullptr);
    ifaces_.push_back(std::make_unique<Iface>(*this, vlan));
    return *ifaces_.back();
}

Iface* NetIf::find_iface(std::optional<std::uint16_t> vlan) {
    for (auto& iface : ifaces_)
        if (iface->vlan() == vlan) return iface.get();
    return nullptr;
}

void NetIf::transmit(net::EthernetFrame frame) {
    GK_EXPECTS(out_.connected());
    out_.send(frame.serialize_into(pool_.acquire()));
}

void NetIf::send_raw_frame(sim::Frame frame) {
    GK_EXPECTS(out_.connected());
    out_.send(std::move(frame));
}

void NetIf::frame_in(sim::Frame raw) {
    // Datapath intercept: untagged IPv4 unicast addressed to this port can
    // skip the EthernetFrame/Ipv4Packet deep copies entirely. Anything the
    // hook declines (or that fails the cheap shape checks) falls through to
    // the generic demux below, so behaviour is unchanged — only faster.
    if (fast_hook_ && raw.size() >= 34 && raw[12] == 0x08 && raw[13] == 0x00 &&
        std::equal(raw.begin(), raw.begin() + 6, mac_.octets().begin())) {
        auto view = net::PacketView::parse(
            std::span<std::uint8_t>(raw.data() + 14, raw.size() - 14));
        if (view && fast_hook_(*view, raw)) return; // consumed (or recycled)
    }
    net::EthernetFrame frame;
    try {
        frame = net::EthernetFrame::parse(raw);
    } catch (const net::ParseError&) {
        pool_.release(std::move(raw));
        return;
    }
    if (frame.dst.is_broadcast() || frame.dst == mac_) {
        if (Iface* iface = find_iface(frame.vlan_id))
            iface->handle_frame(frame);
    }
    // The parse above copied the payload out, so the wire buffer is dead;
    // park its capacity for the next transmit on this port.
    pool_.release(std::move(raw));
}

} // namespace gatekit::stack
