// Network interfaces: a physical port (NetIf) carrying one untagged and/or
// several 802.1Q-tagged subinterfaces (Iface), each with its own IPv4
// configuration and ARP state. The test client in the paper's Figure 1 has
// one physical NIC with a vlan-if per home gateway; gateways have two
// physical ports with one untagged interface each. Both are built from
// these two classes.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/addr.hpp"
#include "net/arp.hpp"
#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "net/packet_pool.hpp"
#include "net/packet_view.hpp"
#include "sim/link.hpp"

namespace gatekit::stack {

class NetIf;

/// ARP resolution cache with a queue of datagrams awaiting resolution.
class ArpCache {
public:
    std::optional<net::MacAddr> lookup(net::Ipv4Addr ip) const;
    void insert(net::Ipv4Addr ip, net::MacAddr mac);
    std::size_t size() const { return entries_.size(); }

private:
    std::map<net::Ipv4Addr, net::MacAddr> entries_;
};

/// An L3 (sub)interface. Owns addressing, ARP, and IP encapsulation;
/// delivers received IP datagrams upward via a callback.
class Iface {
public:
    Iface(NetIf& parent, std::optional<std::uint16_t> vlan);

    Iface(const Iface&) = delete;
    Iface& operator=(const Iface&) = delete;

    /// Assign the IPv4 configuration (e.g. from DHCP).
    void configure(net::Ipv4Addr addr, int prefix_len);
    void deconfigure();

    bool configured() const { return configured_; }
    net::Ipv4Addr addr() const { return addr_; }
    int prefix_len() const { return prefix_len_; }

    /// Per-interface default gateway (for interface-bound sockets that
    /// must not consult the host routing table, a la SO_BINDTODEVICE).
    void set_gateway(net::Ipv4Addr gw) { gateway_ = gw; }
    net::Ipv4Addr gateway() const { return gateway_; }
    net::MacAddr mac() const;
    std::optional<std::uint16_t> vlan() const { return vlan_; }

    /// Handler for IP datagrams addressed to (or broadcast at) this iface.
    /// Receives the parsed packet plus the raw datagram bytes, which probes
    /// and NAT bug-detection need verbatim.
    using IpHandler = std::function<void(const net::Ipv4Packet&,
                                         std::span<const std::uint8_t>)>;
    void set_ip_handler(IpHandler h) { on_ip_ = std::move(h); }

    /// Send an IP datagram to `next_hop` on this interface's subnet (or an
    /// IP broadcast). ARP-resolves the next hop, queueing the datagram
    /// while a request is outstanding.
    void send_ip(const net::Ipv4Packet& pkt, net::Ipv4Addr next_hop);

    /// Send pre-serialized datagram bytes (raw injection for probes).
    void send_ip_raw(net::Bytes datagram, net::Ipv4Addr next_hop);

    ArpCache& arp_cache() { return arp_; }

    /// Called by NetIf on a frame for this subinterface.
    void handle_frame(const net::EthernetFrame& frame);

private:
    /// Datagrams parked behind an in-flight ARP resolution, plus the
    /// retransmit budget spent on it. `epoch` ties retry timers to one
    /// resolution cycle: a timer from a finished cycle must not touch a
    /// later resolution of the same next hop.
    struct PendingArp {
        std::deque<net::Bytes> queue;
        int tries = 0;
        std::uint64_t epoch = 0;
    };

    void transmit_ip(net::Bytes datagram, net::MacAddr dst);
    void handle_arp(const net::EthernetFrame& frame);
    void send_arp_request(net::Ipv4Addr next_hop);
    void schedule_arp_retry(net::Ipv4Addr next_hop, std::uint64_t epoch);

    NetIf& parent_;
    std::optional<std::uint16_t> vlan_;
    net::Ipv4Addr addr_;
    net::Ipv4Addr gateway_;
    int prefix_len_ = 0;
    bool configured_ = false;
    ArpCache arp_;
    std::map<net::Ipv4Addr, PendingArp> awaiting_arp_;
    std::uint64_t arp_epoch_ = 0;
    IpHandler on_ip_;
};

/// A physical Ethernet port: owns the MAC address, attaches to a Link, and
/// demuxes frames to subinterfaces by VLAN tag.
class NetIf : public sim::FrameSink {
public:
    NetIf(sim::EventLoop& loop, net::MacAddr mac);

    /// Attach this port to one side of a link.
    void connect(sim::Link& link, sim::Link::Side side);

    /// Create a subinterface. `vlan == nullopt` receives untagged frames.
    /// At most one subinterface per tag. Returned reference is stable.
    Iface& add_iface(std::optional<std::uint16_t> vlan = std::nullopt);

    Iface* find_iface(std::optional<std::uint16_t> vlan);

    net::MacAddr mac() const { return mac_; }
    sim::EventLoop& loop() { return loop_; }

    /// Serialize and transmit a frame (VLAN tag per `vlan`).
    void transmit(net::EthernetFrame frame);

    /// Transmit pre-serialized frame bytes verbatim — the zero-copy
    /// egress used by the gateway datapath after an in-place rewrite.
    void send_raw_frame(sim::Frame frame);

    /// Datapath intercept, tried before the generic parse on untagged
    /// unicast IPv4 frames addressed to this port. The hook receives a
    /// parsed view aliasing `frame` and may rewrite it in place and take
    /// ownership (return true = consumed); returning false falls through
    /// to the normal parse/demux path with the frame untouched. Installed
    /// by HomeGateway on its LAN/WAN ports; plain hosts have none.
    using FastIpHook = std::function<bool(net::PacketView&, sim::Frame&)>;
    void set_fast_ip_hook(FastIpHook hook) { fast_hook_ = std::move(hook); }

    void frame_in(sim::Frame frame) override;

    /// Per-port packet arena: transmit paths draw serialization buffers
    /// here and the receive path recycles consumed frames back into it.
    net::PacketPool& pool() { return pool_; }

private:
    sim::EventLoop& loop_;
    net::MacAddr mac_;
    sim::LinkEnd out_;
    std::vector<std::unique_ptr<Iface>> ifaces_;
    net::PacketPool pool_;
    FastIpHook fast_hook_;
};

} // namespace gatekit::stack
