#include "stack/dns_service.hpp"

#include "stack/host.hpp"
#include "stack/tcp_socket.hpp"
#include "stack/udp_socket.hpp"
#include "util/assert.hpp"

namespace gatekit::stack {

DnsServer::DnsServer(Host& host, net::Ipv4Addr listen_addr, bool with_tcp)
    : host_(host) {
    udp_ = &host_.udp_open(listen_addr, net::kDnsPort);
    udp_->set_receive_handler([this](net::Endpoint src,
                                     std::span<const std::uint8_t> payload,
                                     const net::Ipv4Packet&) {
        net::DnsMessage query;
        try {
            query = net::DnsMessage::parse(payload);
        } catch (const net::ParseError&) {
            return;
        }
        if (query.is_response) return;
        ++udp_queries_;
        auto response = answer(query);
        // RFC 6891: without an OPT record the response must fit in 512
        // bytes of UDP; otherwise the client's advertised size governs.
        const std::size_t limit =
            query.edns_udp_size ? *query.edns_udp_size
                                : net::kDnsClassicUdpLimit;
        if (query.edns_udp_size) response.edns_udp_size = 4096;
        auto wire = response.serialize();
        if (wire.size() > limit) {
            response.answers.clear();
            response.truncated = true;
            wire = response.serialize();
        }
        udp_->send_to(src, std::move(wire));
    });
    if (with_tcp) {
        tcp_ = &host_.tcp_listen(net::kDnsPort);
        tcp_->set_accept_handler([this](TcpSocket& conn) {
            on_tcp_conn(conn);
        });
    }
}

DnsServer::~DnsServer() {
    if (udp_ != nullptr) host_.udp_close(*udp_);
    if (tcp_ != nullptr) host_.tcp_close_listener(*tcp_);
}

void DnsServer::add_record(std::string name, net::Ipv4Addr addr) {
    records_[std::move(name)] = addr;
}

void DnsServer::add_txt_record(std::string name, std::size_t size) {
    txt_records_[name] = net::DnsMessage::make_txt_filler(name, size);
}

net::DnsMessage DnsServer::answer(const net::DnsMessage& query) const {
    if (query.questions.empty()) {
        net::DnsMessage err;
        err.id = query.id;
        err.is_response = true;
        err.rcode = 1; // FORMERR
        return err;
    }
    if (query.questions.front().qtype == net::kDnsTypeTxt) {
        auto tit = txt_records_.find(query.questions.front().name);
        if (tit != txt_records_.end()) {
            net::DnsMessage m;
            m.id = query.id;
            m.is_response = true;
            m.recursion_available = true;
            m.questions = query.questions;
            m.answers.push_back(tit->second);
            return m;
        }
    }
    auto it = records_.find(query.questions.front().name);
    if (it == records_.end()) {
        net::DnsMessage nx;
        nx.id = query.id;
        nx.is_response = true;
        nx.recursion_available = true;
        nx.questions = query.questions;
        nx.rcode = 3; // NXDOMAIN
        return nx;
    }
    return net::DnsMessage::make_a_response(query, it->second);
}

void DnsServer::on_tcp_conn(TcpSocket& conn) {
    // Per-connection framer keyed by socket identity; cleaned up on close.
    tcp_rx_[&conn] = {};
    conn.on_data = [this, &conn](std::span<const std::uint8_t> data) {
        auto& buf = tcp_rx_[&conn];
        buf.insert(buf.end(), data.begin(), data.end());
        while (buf.size() >= 2) {
            const std::size_t len =
                static_cast<std::size_t>((buf[0] << 8) | buf[1]);
            if (buf.size() < 2 + len) break;
            net::DnsMessage query;
            bool ok = true;
            try {
                query = net::DnsMessage::parse(
                    {buf.data() + 2, len});
            } catch (const net::ParseError&) {
                ok = false;
            }
            buf.erase(buf.begin(), buf.begin() + static_cast<long>(2 + len));
            if (ok && !query.is_response) {
                ++tcp_queries_;
                conn.send(DnsTcpFramer::frame(answer(query).serialize()));
            }
        }
    };
    conn.on_remote_close = [this, &conn] {
        tcp_rx_.erase(&conn);
        conn.close();
    };
    conn.on_error = [this, &conn](const std::string&) {
        tcp_rx_.erase(&conn);
    };
}

void DnsTcpFramer::feed(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
}

bool DnsTcpFramer::next(net::Bytes& out) {
    if (buf_.size() < 2) return false;
    const std::size_t len = static_cast<std::size_t>((buf_[0] << 8) | buf_[1]);
    if (buf_.size() < 2 + len) return false;
    out.assign(buf_.begin() + 2, buf_.begin() + static_cast<long>(2 + len));
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(2 + len));
    return true;
}

net::Bytes DnsTcpFramer::frame(const net::Bytes& message) {
    GK_EXPECTS(message.size() <= 0xffff);
    net::Bytes out;
    out.reserve(message.size() + 2);
    out.push_back(static_cast<std::uint8_t>(message.size() >> 8));
    out.push_back(static_cast<std::uint8_t>(message.size()));
    out.insert(out.end(), message.begin(), message.end());
    return out;
}

void DnsClient::query_udp(net::Endpoint server, const std::string& name,
                          Handler h, int retries, sim::Duration timeout) {
    const std::uint16_t id = next_id_++;
    auto& sock = host_.udp_open(net::Ipv4Addr::any(), 0);

    // Shared state between receive path and retry timer.
    struct Pending {
        Host& host;
        UdpSocket& sock;
        Handler handler;
        sim::EventId timer;
        bool done = false;
        int tries_left;
        // Owns the retransmit closure; the closure reaches itself through
        // this field instead of capturing its own shared_ptr, so finish()
        // can break the cycle and let the whole query state be freed.
        std::shared_ptr<std::function<void()>> resend;
    };
    auto st = std::make_shared<Pending>(
        Pending{host_, sock, std::move(h), {}, false, retries, nullptr});

    auto finish = [st](Result r) {
        if (st->done) return;
        st->done = true;
        if (st->timer) st->host.loop().cancel(st->timer);
        st->host.udp_close(st->sock);
        auto handler = std::move(st->handler);
        st->handler = nullptr;
        st->resend = nullptr;
        handler(r);
    };

    sock.set_receive_handler([finish, id](net::Endpoint,
                                          std::span<const std::uint8_t> pl,
                                          const net::Ipv4Packet&) {
        net::DnsMessage resp;
        try {
            resp = net::DnsMessage::parse(pl);
        } catch (const net::ParseError&) {
            return;
        }
        if (!resp.is_response || resp.id != id) return;
        if (resp.rcode != 0 || resp.answers.empty()) {
            finish({false, {}, "rcode " + std::to_string(resp.rcode)});
            return;
        }
        try {
            finish({true, resp.answers.front().a_addr(), ""});
        } catch (const net::ParseError&) {
            finish({false, {}, "malformed answer"});
        }
    });

    const auto query = net::DnsMessage::make_query(id, name).serialize();
    // std::function must be copyable: wrap the recursion in a shared fn.
    st->resend = std::make_shared<std::function<void()>>();
    *st->resend = [st, finish, server, query, timeout] {
        if (st->done) return;
        st->sock.send_to(server, query);
        st->timer = st->host.loop().after(timeout, [st, finish] {
            if (st->done) return;
            if (st->tries_left-- > 0) {
                (*st->resend)();
            } else {
                finish({false, {}, "timeout"});
            }
        });
    };
    (*st->resend)();
}

void DnsClient::query_tcp(net::Endpoint server, net::Ipv4Addr local_addr,
                          const std::string& name, Handler h,
                          sim::Duration timeout) {
    const std::uint16_t id = next_id_++;
    auto& conn = host_.tcp_connect(local_addr, 0, server);

    struct Pending {
        Host& host;
        TcpSocket& conn;
        Handler handler;
        DnsTcpFramer framer;
        sim::EventId timer;
        bool done = false;
    };
    auto st = std::make_shared<Pending>(
        Pending{host_, conn, std::move(h), {}, {}, false});

    auto finish = [st](Result r) {
        if (st->done) return;
        st->done = true;
        if (st->timer) st->host.loop().cancel(st->timer);
        // Tear the connection down; ignore errors from the abort itself.
        st->conn.on_error = nullptr;
        if (st->conn.state() != TcpSocket::State::Closed) st->conn.abort();
        st->handler(r);
    };

    st->timer = host_.loop().after(timeout, [finish] {
        finish({false, {}, "timeout"});
    });

    conn.on_established = [st, id, name] {
        const auto q = net::DnsMessage::make_query(id, name).serialize();
        st->conn.send(DnsTcpFramer::frame(q));
    };
    conn.on_data = [st, finish, id](std::span<const std::uint8_t> data) {
        st->framer.feed(data);
        net::Bytes msg;
        while (st->framer.next(msg)) {
            net::DnsMessage resp;
            try {
                resp = net::DnsMessage::parse(msg);
            } catch (const net::ParseError&) {
                continue;
            }
            if (!resp.is_response || resp.id != id) continue;
            if (resp.rcode != 0 || resp.answers.empty()) {
                finish({false, {}, "rcode " + std::to_string(resp.rcode)});
                return;
            }
            try {
                finish({true, resp.answers.front().a_addr(), ""});
            } catch (const net::ParseError&) {
                finish({false, {}, "malformed answer"});
            }
            return;
        }
    };
    conn.on_error = [finish](const std::string& reason) {
        finish({false, {}, reason});
    };
}

} // namespace gatekit::stack
