#include "stack/host.hpp"

#include "net/dccp.hpp"
#include "net/sctp.hpp"
#include "net/udp.hpp"
#include "stack/dccp_endpoint.hpp"
#include "stack/sctp_endpoint.hpp"
#include "stack/tcp_socket.hpp"
#include "stack/udp_socket.hpp"
#include "util/assert.hpp"

namespace gatekit::stack {

Host::Host(sim::EventLoop& loop, std::string name, net::MacAddr mac)
    : loop_(loop), name_(std::move(name)) {
    nics_.push_back(std::make_unique<NetIf>(loop, mac));
}

Host::~Host() = default;

NetIf& Host::add_nic(net::MacAddr mac) {
    nics_.push_back(std::make_unique<NetIf>(loop_, mac));
    return *nics_.back();
}

Iface& Host::add_iface(std::optional<std::uint16_t> vlan) {
    return add_iface_on(nic(), vlan);
}

Iface& Host::add_iface_on(NetIf& nic, std::optional<std::uint16_t> vlan) {
    Iface& iface = nic.add_iface(vlan);
    iface.set_ip_handler([this, &iface](const net::Ipv4Packet& pkt,
                                        std::span<const std::uint8_t> raw) {
        on_ip(iface, pkt, raw);
    });
    ifaces_.push_back(&iface);
    return iface;
}

void Host::add_route(net::Ipv4Addr prefix, int prefix_len, Iface& iface,
                     std::optional<net::Ipv4Addr> via) {
    GK_EXPECTS(prefix_len >= 0 && prefix_len <= 32);
    routes_.push_back(Route{prefix, prefix_len, &iface, via});
    // A duplicate (prefix, len) insert returns false and keeps the
    // earlier slab index — insertion-order tie-break preserved.
    route_index_.insert(prefix, prefix_len,
                        static_cast<std::int32_t>(routes_.size() - 1));
    route_cache_idx_ = net::RouteTable::kNoValue;
}

void Host::remove_routes_via(const Iface& iface) {
    const auto removed = std::erase_if(
        routes_, [&](const Route& r) { return r.iface == &iface; });
    if (removed != 0) reindex_routes();
}

void Host::reindex_routes() {
    route_index_.clear();
    route_cache_idx_ = net::RouteTable::kNoValue;
    for (std::size_t i = 0; i < routes_.size(); ++i)
        route_index_.insert(routes_[i].prefix, routes_[i].prefix_len,
                            static_cast<std::int32_t>(i));
}

const Route* Host::lookup_route(net::Ipv4Addr dst) const {
    // One-entry LPM cache: forwarding workloads hammer the same flow's
    // destination back to back, and the trie walk — cheap as it is —
    // sits on the packet fast path. Any table mutation invalidates.
    if (route_cache_idx_ != net::RouteTable::kNoValue &&
        dst == route_cache_dst_)
        return &routes_[static_cast<std::size_t>(route_cache_idx_)];
    const std::int32_t idx = route_index_.lookup(dst);
    if (idx == net::RouteTable::kNoValue) return nullptr;
    route_cache_dst_ = dst;
    route_cache_idx_ = idx;
    return &routes_[static_cast<std::size_t>(idx)];
}

bool Host::send_ip(net::Ipv4Packet pkt) {
    if (pkt.h.dst.is_broadcast()) return false; // needs an iface-bound send
    // Local delivery without touching the wire (same-host traffic).
    if (is_local_addr(pkt.h.dst)) {
        GK_ASSERT(!ifaces_.empty());
        const auto raw = pkt.serialize();
        loop_.after(sim::Duration::zero(), [this, raw]() {
            const auto parsed = net::Ipv4Packet::parse(raw);
            deliver_local(*ifaces_.front(), parsed, raw);
        });
        return true;
    }
    const Route* route = lookup_route(pkt.h.dst);
    if (route == nullptr || !route->iface->configured()) return false;
    if (pkt.h.src.is_unspecified()) pkt.h.src = route->iface->addr();
    if (pkt.h.id == 0) pkt.h.id = ip_id_++;
    const net::Ipv4Addr next_hop = route->via ? *route->via : pkt.h.dst;
    route->iface->send_ip(pkt, next_hop);
    return true;
}

void Host::send_raw(Iface& iface, net::Bytes datagram,
                    net::Ipv4Addr next_hop) {
    iface.send_ip_raw(std::move(datagram), next_hop);
}

bool Host::is_local_addr(net::Ipv4Addr addr) const {
    for (const Iface* iface : ifaces_)
        if (iface->configured() && iface->addr() == addr) return true;
    return false;
}

void Host::bind_observability(obs::MetricsRegistry* reg, obs::Tracer* tracer) {
    tracer_ = tracer;
    if (reg == nullptr) return;
    obs::Labels labels{{"device", name_}};
    m_tcp_retransmits_ = reg->counter("tcp.retransmits", labels);
    m_tcp_stale_syn_ = reg->counter("tcp.stale_syn_reacks", labels);
}

std::uint16_t Host::alloc_ephemeral_port() {
    // Skip ports below the ephemeral range and wrap; collisions across
    // protocols are harmless (separate demux spaces).
    if (next_ephemeral_ < 33000) next_ephemeral_ = 33000;
    return next_ephemeral_++;
}

void Host::on_ip(Iface& iface, const net::Ipv4Packet& pkt,
                 std::span<const std::uint8_t> raw) {
    const bool local = pkt.h.dst.is_broadcast() || is_local_addr(pkt.h.dst);
    if (!local) {
        if (forward_hook_) forward_hook_(iface, pkt, raw);
        return; // hosts do not forward
    }
    deliver_local(iface, pkt, raw);
}

void Host::deliver_local(Iface& iface, const net::Ipv4Packet& pkt,
                         std::span<const std::uint8_t> raw) {
    if (local_intercept_ && local_intercept_(iface, pkt, raw)) return;
    if (ip_observer_) ip_observer_(iface, pkt, raw);
    switch (pkt.h.protocol) {
    case net::proto::kIcmp:
        handle_icmp(iface, pkt);
        break;
    case net::proto::kUdp:
        handle_udp(iface, pkt);
        break;
    case net::proto::kTcp:
        handle_tcp(iface, pkt);
        break;
    case net::proto::kSctp:
        handle_sctp(iface, pkt);
        break;
    case net::proto::kDccp:
        handle_dccp(iface, pkt);
        break;
    default:
        if (icmp_enabled_)
            send_icmp_error(pkt, net::IcmpType::DestUnreachable,
                            net::icmp_code::kProtoUnreachable);
        break;
    }
}

void Host::handle_icmp(Iface& iface, const net::Ipv4Packet& pkt) {
    net::IcmpMessage msg;
    try {
        msg = net::IcmpMessage::parse(pkt.payload);
    } catch (const net::ParseError&) {
        return;
    }
    if (!msg.checksum_ok) return;

    if (msg.type == net::IcmpType::Echo && icmp_enabled_) {
        net::IcmpMessage reply = net::IcmpMessage::make_echo(
            true, msg.echo_id(), msg.echo_seq(), msg.payload);
        send_icmp(iface.addr(), pkt.h.src, reply);
    }
    if (icmp_observer_) icmp_observer_(pkt, msg);
    if (msg.is_error()) dispatch_icmp_to_transport(pkt, msg);
}

void Host::dispatch_icmp_to_transport(const net::Ipv4Packet& outer,
                                      const net::IcmpMessage& msg) {
    net::Ipv4Packet inner;
    try {
        inner = net::Ipv4Packet::parse_prefix(msg.payload);
    } catch (const net::ParseError&) {
        return;
    }
    if (inner.h.protocol == net::proto::kUdp && inner.payload.size() >= 4) {
        const auto src_port = static_cast<std::uint16_t>(
            (inner.payload[0] << 8) | inner.payload[1]);
        for (auto& sock : udp_socks_) {
            if (sock->local().port == src_port &&
                (sock->local().addr.is_unspecified() ||
                 sock->local().addr == inner.h.src)) {
                if (sock->on_icmp_) sock->on_icmp_(msg, outer);
            }
        }
    }
    // TCP ICMP errors are observable via the observer; the paper's Linux
    // config treats most of them as soft errors, so sockets ignore them.
}

void Host::handle_udp(Iface& iface, const net::Ipv4Packet& pkt) {
    net::UdpDatagram dgram;
    try {
        dgram = net::UdpDatagram::parse(pkt.payload, pkt.h.src, pkt.h.dst);
    } catch (const net::ParseError&) {
        return;
    }
    if (!dgram.checksum_ok) return;

    for (auto& sock : udp_socks_) {
        if (sock->closed_) continue;
        const auto local = sock->local();
        if (local.port != dgram.dst_port) continue;
        const bool addr_match =
            local.addr.is_unspecified() || local.addr == pkt.h.dst ||
            pkt.h.dst.is_broadcast();
        if (!addr_match) continue;
        // Iface-bound sockets only see traffic from their interface.
        if (sock->iface_ != nullptr && sock->iface_ != &iface) continue;
        sock->deliver({pkt.h.src, dgram.src_port}, dgram.payload, pkt);
        return;
    }
    if (icmp_enabled_ && !pkt.h.dst.is_broadcast())
        send_icmp_error(pkt, net::IcmpType::DestUnreachable,
                        net::icmp_code::kPortUnreachable);
}

void Host::handle_tcp(Iface&, const net::Ipv4Packet& pkt) {
    net::TcpSegment seg;
    try {
        seg = net::TcpSegment::parse(pkt.payload, pkt.h.src, pkt.h.dst);
    } catch (const net::ParseError&) {
        return;
    }
    if (!seg.checksum_ok) return;

    const net::Endpoint local{pkt.h.dst, seg.dst_port};
    const net::Endpoint remote{pkt.h.src, seg.src_port};
    auto it = tcp_conns_.find({local, remote});
    if (it != tcp_conns_.end()) {
        it->second->on_segment(seg);
        // Finished sockets schedule their own reaping.
        return;
    }

    // No connection: a listener may take a SYN.
    auto lit = tcp_listeners_.find(seg.dst_port);
    if (lit != tcp_listeners_.end() && seg.flags.syn && !seg.flags.ack) {
        auto sock = std::unique_ptr<TcpSocket>(new TcpSocket(
            *this, local, remote, /*active=*/false,
            /*iss=*/static_cast<std::uint32_t>(0x40000000u + ip_id_ * 7919u)));
        TcpSocket* raw = sock.get();
        TcpListener* listener = lit->second.get();
        tcp_conns_[{local, remote}] = std::move(sock);
        raw->on_established = [listener, raw] {
            if (listener->on_accept_) listener->on_accept_(*raw);
        };
        raw->start_passive(seg.seq);
        return;
    }

    if (!seg.flags.rst) send_tcp_rst(pkt, seg);
}

void Host::handle_sctp(Iface&, const net::Ipv4Packet& pkt) {
    net::SctpPacket sp;
    try {
        sp = net::SctpPacket::parse(pkt.payload);
    } catch (const net::ParseError&) {
        return;
    }
    if (!sp.crc_ok) return;
    for (auto& ep : sctp_eps_) {
        if (ep->local_port_ != sp.dst_port) continue;
        if (!ep->local_addr_.is_unspecified() &&
            ep->local_addr_ != pkt.h.dst)
            continue;
        ep->on_packet(sp, pkt.h.src);
        return;
    }
    // RFC 4960 would ABORT here; for the study, silence is equivalent.
}

void Host::handle_dccp(Iface&, const net::Ipv4Packet& pkt) {
    net::DccpPacket dp;
    try {
        dp = net::DccpPacket::parse(pkt.payload, pkt.h.src, pkt.h.dst);
    } catch (const net::ParseError&) {
        return;
    }
    if (!dp.checksum_ok) return; // pseudo-header mismatch lands here
    for (auto& ep : dccp_eps_) {
        if (ep->local_port_ != dp.dst_port) continue;
        if (!ep->local_addr_.is_unspecified() &&
            ep->local_addr_ != pkt.h.dst)
            continue;
        ep->on_packet(dp, pkt.h.src);
        return;
    }
}

void Host::send_icmp(net::Ipv4Addr src, net::Ipv4Addr dst,
                     const net::IcmpMessage& msg, std::uint8_t ttl) {
    net::Ipv4Packet pkt;
    pkt.h.protocol = net::proto::kIcmp;
    pkt.h.src = src;
    pkt.h.dst = dst;
    pkt.h.ttl = ttl;
    pkt.payload = msg.serialize();
    send_ip(std::move(pkt));
}

void Host::send_icmp_error(const net::Ipv4Packet& offending,
                           net::IcmpType type, std::uint8_t code) {
    if (offending.h.src.is_unspecified() || offending.h.src.is_broadcast())
        return;
    const auto original = offending.serialize();
    const auto err = net::IcmpMessage::make_error(type, code, 0, original);
    send_icmp(offending.h.dst, offending.h.src, err);
}

void Host::send_tcp_rst(const net::Ipv4Packet& pkt,
                        const net::TcpSegment& seg) {
    net::TcpSegment rst;
    rst.src_port = seg.dst_port;
    rst.dst_port = seg.src_port;
    rst.flags.rst = true;
    if (seg.flags.ack) {
        rst.seq = seg.ack;
    } else {
        rst.flags.ack = true;
        rst.ack = seg.seq + (seg.flags.syn ? 1 : 0) +
                  static_cast<std::uint32_t>(seg.payload.size());
    }
    net::Ipv4Packet out;
    out.h.protocol = net::proto::kTcp;
    out.h.src = pkt.h.dst;
    out.h.dst = pkt.h.src;
    out.payload = rst.serialize(out.h.src, out.h.dst);
    send_ip(std::move(out));
}

// --- socket factories ----------------------------------------------------

UdpSocket& Host::udp_open(net::Ipv4Addr local_addr, std::uint16_t local_port,
                          Iface* iface) {
    if (local_port == 0) local_port = alloc_ephemeral_port();
    // Newest bind shadows older ones on the same port (demux iterates
    // front to back), letting probes temporarily take over well-known
    // ports such as 53 that long-lived services hold.
    udp_socks_.insert(udp_socks_.begin(),
                      std::unique_ptr<UdpSocket>(new UdpSocket(
                          *this, local_addr, local_port, iface)));
    return **udp_socks_.begin();
}

void Host::udp_close(UdpSocket& sock) {
    // Handlers may close their own socket; destroy it only once the
    // current event has unwound.
    sock.closed_ = true;
    loop_.after(sim::Duration::zero(), [this, target = &sock] {
        std::erase_if(udp_socks_,
                      [&](const auto& s) { return s.get() == target; });
    });
}

TcpSocket& Host::tcp_connect(net::Ipv4Addr local_addr,
                             std::uint16_t local_port, net::Endpoint remote) {
    GK_EXPECTS(!local_addr.is_unspecified());
    if (local_port == 0) local_port = alloc_ephemeral_port();
    const net::Endpoint local{local_addr, local_port};
    GK_EXPECTS(!tcp_conns_.contains({local, remote}));
    auto sock = std::unique_ptr<TcpSocket>(new TcpSocket(
        *this, local, remote, /*active=*/true,
        static_cast<std::uint32_t>(0x10000000u + local_port * 104729u)));
    TcpSocket* raw = sock.get();
    tcp_conns_[{local, remote}] = std::move(sock);
    raw->start_connect();
    return *raw;
}

TcpListener& Host::tcp_listen(std::uint16_t port) {
    GK_EXPECTS(!tcp_listeners_.contains(port));
    tcp_listeners_[port] =
        std::unique_ptr<TcpListener>(new TcpListener(*this, port));
    return *tcp_listeners_[port];
}

void Host::tcp_close_listener(TcpListener& lst) {
    tcp_listeners_.erase(lst.port());
}

void Host::tcp_destroy(TcpSocket& sock) {
    sock.disarm_rto();
    tcp_conns_.erase({sock.local(), sock.remote()});
}

void Host::tcp_reap(net::Endpoint local, net::Endpoint remote) {
    auto it = tcp_conns_.find({local, remote});
    if (it != tcp_conns_.end() &&
        (it->second->state() == TcpSocket::State::Closed ||
         it->second->state() == TcpSocket::State::TimeWait))
        tcp_conns_.erase(it);
}

SctpEndpoint& Host::sctp_open(net::Ipv4Addr local_addr,
                              std::uint16_t local_port) {
    if (local_port == 0) local_port = alloc_ephemeral_port();
    sctp_eps_.push_back(std::unique_ptr<SctpEndpoint>(
        new SctpEndpoint(*this, local_addr, local_port)));
    return *sctp_eps_.back();
}

void Host::sctp_close(SctpEndpoint& ep) {
    std::erase_if(sctp_eps_, [&](const auto& e) { return e.get() == &ep; });
}

DccpEndpoint& Host::dccp_open(net::Ipv4Addr local_addr,
                              std::uint16_t local_port) {
    if (local_port == 0) local_port = alloc_ephemeral_port();
    dccp_eps_.push_back(std::unique_ptr<DccpEndpoint>(
        new DccpEndpoint(*this, local_addr, local_port)));
    return *dccp_eps_.back();
}

void Host::dccp_close(DccpEndpoint& ep) {
    std::erase_if(dccp_eps_, [&](const auto& e) { return e.get() == &ep; });
}

} // namespace gatekit::stack
