// DHCP server and client services (RFC 2131) over Host UDP sockets.
// The testbed uses one server instance per WAN VLAN (the test server
// leasing gateway WAN addresses) plus one inside every home gateway, and
// a client per test-client vlan-if and per gateway WAN interface.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "net/dhcp.hpp"
#include "sim/event_loop.hpp"

namespace gatekit::stack {

class Host;
class Iface;
class UdpSocket;

/// Network configuration handed out by a DHCP server.
struct DhcpServerConfig {
    net::Ipv4Addr pool_base;  ///< first leasable address
    int pool_size = 100;
    int prefix_len = 24;
    net::Ipv4Addr router;
    net::Ipv4Addr dns_server;
    std::uint32_t lease_seconds = 86400;
};

class DhcpServer {
public:
    /// Serve on `iface` (must be configured; its address becomes the
    /// server identifier).
    DhcpServer(Host& host, Iface& iface, DhcpServerConfig config);
    ~DhcpServer();

    DhcpServer(const DhcpServer&) = delete;
    DhcpServer& operator=(const DhcpServer&) = delete;

    std::size_t lease_count() const { return leases_.size(); }
    std::optional<net::Ipv4Addr> lease_for(net::MacAddr mac) const;

private:
    void on_datagram(const net::DhcpMessage& msg);
    net::Ipv4Addr allocate(net::MacAddr mac);
    void reply(const net::DhcpMessage& req, net::DhcpMessageType type,
               net::Ipv4Addr yiaddr);

    Host& host_;
    Iface& iface_;
    DhcpServerConfig config_;
    UdpSocket* sock_ = nullptr;
    std::map<net::MacAddr, net::Ipv4Addr> leases_;
    int next_offset_ = 0;
};

/// Result of a successful DHCP exchange.
struct DhcpLease {
    net::Ipv4Addr addr;
    int prefix_len = 24;
    net::Ipv4Addr router;
    net::Ipv4Addr dns_server;
    std::uint32_t lease_seconds = 0;
};

class DhcpClient {
public:
    using ConfiguredHandler = std::function<void(const DhcpLease&)>;
    using FailedHandler = std::function<void()>;

    DhcpClient(Host& host, Iface& iface);
    ~DhcpClient();

    DhcpClient(const DhcpClient&) = delete;
    DhcpClient& operator=(const DhcpClient&) = delete;

    /// Run DISCOVER/OFFER/REQUEST/ACK. On ACK, configures the interface
    /// and fires the callback. Mirrors the paper's modified dhcp client:
    /// it does NOT install a default route; the caller decides routes.
    void start(ConfiguredHandler on_configured, FailedHandler on_failed = {});

    bool configured() const { return lease_.has_value(); }
    const std::optional<DhcpLease>& lease() const { return lease_; }

private:
    void send_discover();
    void on_datagram(const net::DhcpMessage& msg);
    void arm_timeout();

    Host& host_;
    Iface& iface_;
    UdpSocket* sock_ = nullptr;
    std::uint32_t xid_ = 0;
    std::optional<DhcpLease> lease_;
    ConfiguredHandler on_configured_;
    FailedHandler on_failed_;
    sim::EventId timeout_;
    int attempts_ = 0;
    enum class Phase { Idle, Selecting, Requesting, Bound } phase_ =
        Phase::Idle;
};

} // namespace gatekit::stack
