#include "stack/sctp_endpoint.hpp"

#include "net/ipv4.hpp"
#include "stack/host.hpp"
#include "util/assert.hpp"

namespace gatekit::stack {

namespace {
constexpr sim::Duration kT1Init = std::chrono::seconds(1);
constexpr int kMaxInitRetries = 4;

// Chunk bodies (simplified but wire-plausible):
// INIT / INIT-ACK: initiate_tag(4) a_rwnd(4) out_streams(2) in_streams(2)
// initial_tsn(4); INIT-ACK additionally appends a state-cookie parameter.
net::Bytes make_init_body(std::uint32_t tag, std::uint32_t tsn) {
    net::BufferWriter w(16);
    w.u32(tag);
    w.u32(65536); // a_rwnd
    w.u16(1);     // outbound streams
    w.u16(1);     // inbound streams
    w.u32(tsn);
    return w.take();
}

std::uint32_t init_tag(std::span<const std::uint8_t> body) {
    net::BufferReader r(body);
    return r.u32();
}

} // namespace

void SctpEndpoint::connect(net::Endpoint remote) {
    GK_EXPECTS(state_ == State::Closed);
    remote_ = remote;
    my_vtag_ = 0x5c7b0000u | local_port_; // deterministic per endpoint
    state_ = State::CookieWait;
    send_init();
}

void SctpEndpoint::send_init() {
    net::SctpPacket pkt;
    pkt.src_port = local_port_;
    pkt.dst_port = remote_.port;
    pkt.verification_tag = 0; // INIT always carries tag 0
    net::SctpChunk init;
    init.type = net::SctpChunkType::Init;
    init.value = make_init_body(my_vtag_, my_tsn_);
    pkt.chunks.push_back(std::move(init));
    send_packet(std::move(pkt));
    arm_t1();
}

void SctpEndpoint::arm_t1() {
    if (t1_timer_) host_.loop().cancel(t1_timer_);
    t1_timer_ = host_.loop().after(kT1Init, [this] {
        t1_timer_ = sim::EventId{};
        if (state_ == State::Established) return;
        if (++init_retries_ > kMaxInitRetries) {
            state_ = State::Closed;
            if (on_error) on_error("SCTP association timed out");
            return;
        }
        if (state_ == State::CookieWait) send_init();
        // COOKIE-ECHO retransmission is folded into the same timer.
        if (state_ == State::CookieEchoed) {
            net::SctpPacket pkt;
            pkt.src_port = local_port_;
            pkt.dst_port = remote_.port;
            pkt.verification_tag = peer_vtag_;
            pkt.chunks.push_back(
                net::SctpChunk{net::SctpChunkType::CookieEcho, 0, {}});
            send_packet(std::move(pkt));
            arm_t1();
        }
    });
}

bool SctpEndpoint::send_data(net::Bytes payload) {
    if (state_ != State::Established) return false;
    net::SctpPacket pkt;
    pkt.src_port = local_port_;
    pkt.dst_port = remote_.port;
    pkt.verification_tag = peer_vtag_;
    net::SctpChunk data;
    data.type = net::SctpChunkType::Data;
    data.flags = 0x03; // beginning+end fragment (whole message)
    net::BufferWriter w(12 + payload.size());
    w.u32(my_tsn_++);
    w.u16(0); // stream id
    w.u16(0); // stream seq
    w.u32(0); // payload protocol id
    w.bytes(payload);
    data.value = w.take();
    pkt.chunks.push_back(std::move(data));
    send_packet(std::move(pkt));
    return true;
}

void SctpEndpoint::send_packet(net::SctpPacket pkt) {
    net::Ipv4Packet ip;
    ip.h.protocol = net::proto::kSctp;
    ip.h.src = local_addr_;
    ip.h.dst = remote_.addr;
    ip.payload = pkt.serialize();
    host_.send_ip(std::move(ip));
}

void SctpEndpoint::on_packet(const net::SctpPacket& pkt,
                             net::Ipv4Addr peer_addr) {
    using net::SctpChunkType;

    if (listening_ && state_ == State::Closed) {
        if (const auto* init = pkt.find(SctpChunkType::Init)) {
            remote_ = {peer_addr, pkt.src_port};
            peer_vtag_ = init_tag(init->value);
            my_vtag_ = 0x5e7f0000u | local_port_;
            net::SctpPacket ack;
            ack.src_port = local_port_;
            ack.dst_port = remote_.port;
            ack.verification_tag = peer_vtag_;
            net::SctpChunk chunk;
            chunk.type = SctpChunkType::InitAck;
            chunk.value = make_init_body(my_vtag_, my_tsn_);
            ack.chunks.push_back(std::move(chunk));
            send_packet(std::move(ack));
            // Passive side stays Closed until COOKIE-ECHO; a lost INIT-ACK
            // is covered by the peer's INIT retransmission.
            state_ = State::CookieEchoed; // provisional: awaiting echo
            return;
        }
    }

    if (state_ == State::CookieWait) {
        if (const auto* ia = pkt.find(SctpChunkType::InitAck)) {
            peer_vtag_ = init_tag(ia->value);
            net::SctpPacket echo;
            echo.src_port = local_port_;
            echo.dst_port = remote_.port;
            echo.verification_tag = peer_vtag_;
            echo.chunks.push_back(
                net::SctpChunk{SctpChunkType::CookieEcho, 0, {}});
            send_packet(std::move(echo));
            state_ = State::CookieEchoed;
            arm_t1();
            return;
        }
    }

    if (state_ == State::CookieEchoed) {
        if (listening_ && pkt.find(SctpChunkType::CookieEcho) != nullptr) {
            net::SctpPacket ack;
            ack.src_port = local_port_;
            ack.dst_port = remote_.port;
            ack.verification_tag = peer_vtag_;
            ack.chunks.push_back(
                net::SctpChunk{SctpChunkType::CookieAck, 0, {}});
            send_packet(std::move(ack));
            state_ = State::Established;
            if (t1_timer_) host_.loop().cancel(t1_timer_);
            if (on_established) on_established();
            return;
        }
        if (!listening_ && pkt.find(SctpChunkType::CookieAck) != nullptr) {
            state_ = State::Established;
            if (t1_timer_) host_.loop().cancel(t1_timer_);
            if (on_established) on_established();
            return;
        }
    }

    if (state_ == State::Established && pkt.verification_tag == my_vtag_) {
        if (const auto* data = pkt.find(SctpChunkType::Data)) {
            if (data->value.size() >= 12) {
                net::BufferReader r(data->value);
                const std::uint32_t tsn = r.u32();
                r.skip(8);
                const auto body = r.rest();
                // Acknowledge with a SACK (cumulative TSN only).
                net::SctpPacket sack;
                sack.src_port = local_port_;
                sack.dst_port = remote_.port;
                sack.verification_tag = peer_vtag_;
                net::SctpChunk chunk;
                chunk.type = SctpChunkType::Sack;
                net::BufferWriter w(12);
                w.u32(tsn);
                w.u32(65536);
                w.u16(0);
                w.u16(0);
                chunk.value = w.take();
                sack.chunks.push_back(std::move(chunk));
                send_packet(std::move(sack));
                if (on_data) on_data(body);
            }
        }
    }
}

} // namespace gatekit::stack
