#include "stack/udp_socket.hpp"

#include "net/udp.hpp"
#include "stack/host.hpp"

namespace gatekit::stack {

bool UdpSocket::send_to(net::Endpoint dst, net::Bytes payload,
                        const SendOptions& opts) {
    net::UdpDatagram dgram;
    dgram.src_port = local_port_;
    dgram.dst_port = dst.port;
    dgram.payload = std::move(payload);

    net::Ipv4Packet pkt;
    pkt.h.protocol = net::proto::kUdp;
    pkt.h.dst = dst.addr;
    pkt.h.ttl = opts.ttl;
    pkt.h.options = opts.ip_options;

    if (dst.addr.is_broadcast()) {
        // Broadcast needs a bound interface; source may be unconfigured
        // (0.0.0.0), as in DHCP DISCOVER.
        if (iface_ == nullptr) return false;
        pkt.h.src = iface_->configured() ? iface_->addr() : net::Ipv4Addr{};
        pkt.payload = dgram.serialize(pkt.h.src, pkt.h.dst);
        iface_->send_ip(pkt, net::Ipv4Addr::broadcast());
        return true;
    }

    // Interface-bound unicast (SO_BINDTODEVICE semantics): route via the
    // bound interface only — on-link directly, everything else through
    // that interface's gateway. Hole-punching peers rely on this: their
    // traffic must traverse their own NAT, not the host routing table.
    if (iface_ != nullptr && iface_->configured()) {
        pkt.h.src = iface_->addr();
        pkt.payload = dgram.serialize(pkt.h.src, pkt.h.dst);
        const bool on_link =
            dst.addr.same_subnet(iface_->addr(), iface_->prefix_len());
        const auto next_hop = on_link ? dst.addr : iface_->gateway();
        if (next_hop.is_unspecified()) return false;
        iface_->send_ip(pkt, next_hop);
        return true;
    }

    pkt.h.src = local_addr_;
    if (pkt.h.src.is_unspecified()) {
        const Route* route = host_.lookup_route(dst.addr);
        if (route == nullptr || !route->iface->configured()) return false;
        pkt.h.src = route->iface->addr();
    }
    pkt.payload = dgram.serialize(pkt.h.src, pkt.h.dst);
    return host_.send_ip(std::move(pkt));
}

void UdpSocket::deliver(net::Endpoint src,
                        std::span<const std::uint8_t> payload,
                        const net::Ipv4Packet& pkt) {
    ++rx_count_;
    if (on_receive_) on_receive_(src, payload, pkt);
}

} // namespace gatekit::stack
