// A Linux-like end host: interfaces, longest-prefix routing, ICMP, and
// transport demux for UDP, TCP, SCTP and DCCP. Both testbed hosts (test
// client, test server) and the home gateway's control plane are Hosts;
// the gateway adds a forwarding hook for its NAT datapath.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/icmp.hpp"
#include "net/tcp_header.hpp"
#include "net/ipv4.hpp"
#include "net/route_table.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stack/netif.hpp"

namespace gatekit::stack {

class UdpSocket;
class TcpSocket;
class TcpListener;
class SctpEndpoint;
class DccpEndpoint;

/// Routing table entry (longest prefix wins; ties broken by insertion
/// order, earliest first).
struct Route {
    net::Ipv4Addr prefix;
    int prefix_len = 0;
    Iface* iface = nullptr;
    std::optional<net::Ipv4Addr> via; ///< next-hop gateway; nullopt = on-link
};

class Host {
public:
    Host(sim::EventLoop& loop, std::string name, net::MacAddr mac);
    ~Host();

    Host(const Host&) = delete;
    Host& operator=(const Host&) = delete;

    const std::string& name() const { return name_; }
    sim::EventLoop& loop() { return loop_; }

    /// The host's first (default) physical port.
    NetIf& nic() { return *nics_.front(); }

    /// Add another physical port (home gateways have LAN + WAN ports).
    NetIf& add_nic(net::MacAddr mac);

    /// Create a subinterface on the default NIC and register it with the
    /// host's IP input path.
    Iface& add_iface(std::optional<std::uint16_t> vlan = std::nullopt);

    /// Create a subinterface on a specific NIC.
    Iface& add_iface_on(NetIf& nic,
                        std::optional<std::uint16_t> vlan = std::nullopt);

    // --- routing -----------------------------------------------------
    void add_route(net::Ipv4Addr prefix, int prefix_len, Iface& iface,
                   std::optional<net::Ipv4Addr> via = std::nullopt);
    void remove_routes_via(const Iface& iface);
    const Route* lookup_route(net::Ipv4Addr dst) const;

    /// Route and send a datagram. Fills in the source address from the
    /// egress interface when unset. Returns false when no route exists or
    /// the egress interface is unconfigured.
    bool send_ip(net::Ipv4Packet pkt);

    /// Inject pre-serialized datagram bytes out of a specific interface
    /// (used by probes that forge packets, bypassing routing).
    void send_raw(Iface& iface, net::Bytes datagram, net::Ipv4Addr next_hop);

    // --- transports ----------------------------------------------------
    /// Open a UDP socket. `local_port == 0` picks an ephemeral port.
    /// `iface` binds the socket for broadcast sends (DHCP needs this).
    UdpSocket& udp_open(net::Ipv4Addr local_addr, std::uint16_t local_port,
                        Iface* iface = nullptr);
    void udp_close(UdpSocket& sock);

    /// Active TCP open. `local_port == 0` picks an ephemeral port.
    TcpSocket& tcp_connect(net::Ipv4Addr local_addr,
                           std::uint16_t local_port, net::Endpoint remote);
    /// Passive TCP open on all local addresses.
    TcpListener& tcp_listen(std::uint16_t port);
    void tcp_close_listener(TcpListener& lst);
    /// Destroy a socket immediately (no FIN/RST); for harness cleanup.
    void tcp_destroy(TcpSocket& sock);

    SctpEndpoint& sctp_open(net::Ipv4Addr local_addr,
                            std::uint16_t local_port);
    void sctp_close(SctpEndpoint& ep);
    DccpEndpoint& dccp_open(net::Ipv4Addr local_addr,
                            std::uint16_t local_port);
    void dccp_close(DccpEndpoint& ep);

    // --- ICMP ----------------------------------------------------------
    /// Send an ICMP message (routed by dst).
    void send_icmp(net::Ipv4Addr src, net::Ipv4Addr dst,
                   const net::IcmpMessage& msg, std::uint8_t ttl = 64);

    /// Observe every ICMP message this host receives (after the echo
    /// responder). Outer IP packet + parsed ICMP.
    using IcmpObserver = std::function<void(const net::Ipv4Packet&,
                                            const net::IcmpMessage&)>;
    void set_icmp_observer(IcmpObserver obs) { icmp_observer_ = std::move(obs); }

    /// Observe every IP datagram delivered locally (diagnostics/probes).
    using IpObserver = std::function<void(Iface&, const net::Ipv4Packet&,
                                          std::span<const std::uint8_t>)>;
    void set_ip_observer(IpObserver obs) { ip_observer_ = std::move(obs); }

    /// Forwarding hook: invoked for datagrams that arrive addressed to
    /// some other host. Default behavior without a hook is to drop, as
    /// hosts do not forward.
    using ForwardHook = std::function<void(Iface&, const net::Ipv4Packet&,
                                           std::span<const std::uint8_t>)>;
    void set_forward_hook(ForwardHook hook) { forward_hook_ = std::move(hook); }

    /// Pre-delivery intercept for datagrams addressed to this host.
    /// Returning true consumes the packet. A NAT uses this on its WAN
    /// interface: inbound packets for active bindings are addressed to
    /// the WAN address, yet must be translated rather than delivered.
    using LocalIntercept = std::function<bool(Iface&, const net::Ipv4Packet&,
                                              std::span<const std::uint8_t>)>;
    void set_local_intercept(LocalIntercept fn) {
        local_intercept_ = std::move(fn);
    }

    /// Whether this host answers ICMP echo and emits ICMP errors.
    void set_icmp_enabled(bool on) { icmp_enabled_ = on; }

    std::uint16_t alloc_ephemeral_port();

    /// Ephemeral-port allocation cursor. Journaled by the campaign
    /// supervisor so a resumed run hands out the same local ports a
    /// straight-through run would (TCP probes connect with port 0).
    std::uint16_t ephemeral_cursor() const { return next_ephemeral_; }
    void set_ephemeral_cursor(std::uint16_t port) { next_ephemeral_ = port; }

    /// Register host-level transport counters (TCP retransmits, stale-SYN
    /// re-ACKs) labeled with this host's name, and hand the host's TCP
    /// sockets a tracer for retransmit events. Either argument may be
    /// null/omitted; instrumentation stays branch-on-null until bound.
    void bind_observability(obs::MetricsRegistry* reg,
                            obs::Tracer* tracer = nullptr);

    /// True when `addr` is one of this host's interface addresses.
    bool is_local_addr(net::Ipv4Addr addr) const;

private:
    friend class UdpSocket;
    friend class TcpSocket;
    friend class TcpListener;
    friend class SctpEndpoint;
    friend class DccpEndpoint;

    void on_ip(Iface& iface, const net::Ipv4Packet& pkt,
               std::span<const std::uint8_t> raw);
    void deliver_local(Iface& iface, const net::Ipv4Packet& pkt,
                       std::span<const std::uint8_t> raw);
    void handle_icmp(Iface& iface, const net::Ipv4Packet& pkt);
    void handle_udp(Iface& iface, const net::Ipv4Packet& pkt);
    void handle_tcp(Iface& iface, const net::Ipv4Packet& pkt);
    void handle_sctp(Iface& iface, const net::Ipv4Packet& pkt);
    void handle_dccp(Iface& iface, const net::Ipv4Packet& pkt);
    void send_icmp_error(const net::Ipv4Packet& offending,
                         net::IcmpType type, std::uint8_t code);
    void send_tcp_rst(const net::Ipv4Packet& pkt,
                      const net::TcpSegment& seg);
    /// Remove a finished connection from the table (deferred from socket
    /// state transitions so handlers never delete a live socket).
    void tcp_reap(net::Endpoint local, net::Endpoint remote);
    /// Route ICMP errors to the transport socket they concern.
    void dispatch_icmp_to_transport(const net::Ipv4Packet& outer,
                                    const net::IcmpMessage& msg);

    /// Re-index the LPM trie from routes_ (route removal shifts slab
    /// indexes, so bulk removals rebuild rather than patch).
    void reindex_routes();

    sim::EventLoop& loop_;
    std::string name_;
    std::vector<std::unique_ptr<NetIf>> nics_;
    std::vector<Iface*> ifaces_;
    // Route slab + binary-trie LPM index over it. The trie maps a
    // masked (prefix, len) key to the slab index of the selected route;
    // duplicate keys keep the earliest slab entry, preserving the
    // documented "ties broken by insertion order" contract.
    std::vector<Route> routes_;
    net::RouteTable route_index_;
    // One-entry lookup cache (dst -> slab index), invalidated by any
    // route mutation. kNoValue = empty; misses are never cached, so a
    // route added later for a previously-missing dst is found.
    mutable net::Ipv4Addr route_cache_dst_;
    mutable std::int32_t route_cache_idx_ = net::RouteTable::kNoValue;
    std::vector<std::unique_ptr<UdpSocket>> udp_socks_;
    std::map<std::pair<net::Endpoint, net::Endpoint>,
             std::unique_ptr<TcpSocket>>
        tcp_conns_; ///< key: (local, remote)
    std::map<std::uint16_t, std::unique_ptr<TcpListener>> tcp_listeners_;
    std::vector<std::unique_ptr<SctpEndpoint>> sctp_eps_;
    std::vector<std::unique_ptr<DccpEndpoint>> dccp_eps_;
    IcmpObserver icmp_observer_;
    IpObserver ip_observer_;
    ForwardHook forward_hook_;
    LocalIntercept local_intercept_;
    bool icmp_enabled_ = true;
    std::uint16_t next_ephemeral_ = 33000;
    std::uint16_t ip_id_ = 1;

    // Instrumentation shared by this host's TCP sockets; nullptr until
    // bind_observability.
    obs::Counter* m_tcp_retransmits_ = nullptr;
    obs::Counter* m_tcp_stale_syn_ = nullptr;
    obs::Tracer* tracer_ = nullptr;
};

} // namespace gatekit::stack
