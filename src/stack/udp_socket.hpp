// Event-driven UDP socket bound to a Host.
#pragma once

#include <functional>
#include <optional>

#include "net/addr.hpp"
#include "net/buffer.hpp"
#include "net/icmp.hpp"
#include "net/ipv4.hpp"

namespace gatekit::stack {

class Host;
class Iface;

class UdpSocket {
public:
    /// (source endpoint, payload, full IP packet)
    using ReceiveHandler = std::function<void(
        net::Endpoint, std::span<const std::uint8_t>, const net::Ipv4Packet&)>;
    /// ICMP error concerning a datagram this socket sent.
    using IcmpHandler =
        std::function<void(const net::IcmpMessage&, const net::Ipv4Packet&)>;

    net::Endpoint local() const { return {local_addr_, local_port_}; }

    void set_receive_handler(ReceiveHandler h) { on_receive_ = std::move(h); }
    void set_icmp_handler(IcmpHandler h) { on_icmp_ = std::move(h); }

    /// Send a datagram. Options customize probe traffic:
    /// `ttl` overrides the default 64; `ip_options` adds raw IPv4 options
    /// (e.g. Record Route).
    struct SendOptions {
        std::uint8_t ttl = 64;
        net::Bytes ip_options;
    };
    bool send_to(net::Endpoint dst, net::Bytes payload,
                 const SendOptions& opts);
    bool send_to(net::Endpoint dst, net::Bytes payload) {
        return send_to(dst, std::move(payload), SendOptions{});
    }

    std::uint64_t datagrams_received() const { return rx_count_; }

private:
    friend class Host;
    UdpSocket(Host& host, net::Ipv4Addr local_addr, std::uint16_t local_port,
              Iface* iface)
        : host_(host), local_addr_(local_addr), local_port_(local_port),
          iface_(iface) {}

    void deliver(net::Endpoint src, std::span<const std::uint8_t> payload,
                 const net::Ipv4Packet& pkt);

    Host& host_;
    net::Ipv4Addr local_addr_;
    bool closed_ = false; ///< close requested; destruction is deferred
    std::uint16_t local_port_;
    Iface* iface_; ///< bound interface (broadcast sends); may be null
    ReceiveHandler on_receive_;
    IcmpHandler on_icmp_;
    std::uint64_t rx_count_ = 0;
};

} // namespace gatekit::stack
