#include "harness/futurework_probes.hpp"

#include <memory>

#include "stack/udp_socket.hpp"
#include "util/assert.hpp"

namespace gatekit::harness {

namespace {

class QuirksMeasurement
    : public std::enable_shared_from_this<QuirksMeasurement> {
public:
    QuirksMeasurement(Testbed& tb, int slot,
                      std::function<void(QuirksResult)> done)
        : tb_(tb), slot_(tb.slot(slot)), done_(std::move(done)),
          loop_(tb.loop()) {}

    void start() {
        server_sock_ = &tb_.server().udp_open(net::Ipv4Addr::any(), kPort);
        server_sock_->set_receive_handler(
            [self = shared_from_this()](net::Endpoint,
                                        std::span<const std::uint8_t>,
                                        const net::Ipv4Packet& pkt) {
                self->last_ttl_ = pkt.h.ttl;
                self->last_route_ = pkt.recorded_route();
                ++self->server_rx_;
            });
        client_sock_ = &tb_.client().udp_open(slot_.client_addr, 47001);

        // Step 1: TTL observation.
        stack::UdpSocket::SendOptions opts;
        opts.ttl = 44;
        client_sock_->send_to({slot_.server_addr, kPort}, {'t'}, opts);
        auto self = shared_from_this();
        loop_.after(std::chrono::milliseconds(100), [self] {
            self->result_.decrements_ttl =
                self->server_rx_ > 0 && self->last_ttl_ < 44;
            self->step_record_route();
        });
    }

private:
    static constexpr std::uint16_t kPort = 47000;

    void step_record_route() {
        stack::UdpSocket::SendOptions opts;
        opts.ip_options = net::Ipv4Packet::make_record_route_option(4);
        client_sock_->send_to({slot_.server_addr, kPort}, {'r'}, opts);
        auto self = shared_from_this();
        loop_.after(std::chrono::milliseconds(100), [self] {
            for (const auto hop : self->last_route_)
                if (hop == self->slot_.gw_wan_addr)
                    self->result_.honors_record_route = true;
            self->step_hairpin();
        });
    }

    void step_hairpin() {
        // Socket A creates a binding toward the server; socket B then
        // targets A's external mapping (WAN address + A's port). On a
        // hairpinning device, A receives B's packet.
        hp_target_ = &tb_.client().udp_open(slot_.client_addr, 47002);
        hp_target_->set_receive_handler(
            [self = shared_from_this()](net::Endpoint,
                                        std::span<const std::uint8_t>,
                                        const net::Ipv4Packet&) {
                self->result_.hairpins_udp = true;
            });
        hp_target_->send_to({slot_.server_addr, kPort}, {'a'});
        auto self = shared_from_this();
        loop_.after(std::chrono::milliseconds(100), [self] {
            // A's external port: preserved or not, the server saw it.
            // Use the port the server recorded from A's packet.
            self->client_sock_->send_to(
                {self->slot_.gw_wan_addr, self->ext_port_of_target()},
                {'b'});
            self->loop_.after(std::chrono::milliseconds(200), [self] {
                self->finish();
            });
        });
        server_sock_->set_receive_handler(
            [self = shared_from_this()](net::Endpoint src,
                                        std::span<const std::uint8_t>,
                                        const net::Ipv4Packet&) {
                self->last_ext_port_ = src.port;
            });
    }

    std::uint16_t ext_port_of_target() const {
        return last_ext_port_ != 0 ? last_ext_port_ : 47002;
    }

    void finish() {
        tb_.server().udp_close(*server_sock_);
        tb_.client().udp_close(*client_sock_);
        tb_.client().udp_close(*hp_target_);
        done_(result_);
    }

    Testbed& tb_;
    Testbed::DeviceSlot& slot_;
    std::function<void(QuirksResult)> done_;
    sim::EventLoop& loop_;
    stack::UdpSocket* server_sock_ = nullptr;
    stack::UdpSocket* client_sock_ = nullptr;
    stack::UdpSocket* hp_target_ = nullptr;
    QuirksResult result_;
    std::uint8_t last_ttl_ = 0;
    std::vector<net::Ipv4Addr> last_route_;
    std::uint16_t last_ext_port_ = 0;
    int server_rx_ = 0;
};

} // namespace

void measure_quirks(Testbed& tb, int slot,
                    std::function<void(QuirksResult)> done) {
    auto m = std::make_shared<QuirksMeasurement>(tb, slot, std::move(done));
    m->start();
}

void measure_stun(Testbed& tb, int slot,
                  std::function<void(StunProbeResult)> done) {
    auto& s = tb.slot(slot);
    // Two server instances on different ports distinguish endpoint-
    // independent from endpoint-dependent mapping.
    auto srv_a = std::make_shared<stun::StunServer>(tb.server(),
                                                    stun::kDefaultPort);
    auto srv_b = std::make_shared<stun::StunServer>(
        tb.server(), static_cast<std::uint16_t>(stun::kDefaultPort + 1));
    auto client = std::make_shared<stun::StunClient>(tb.client());
    const auto wan = s.gw_wan_addr;
    client->discover(
        s.client_addr, {s.server_addr, stun::kDefaultPort},
        {s.server_addr,
         static_cast<std::uint16_t>(stun::kDefaultPort + 1)},
        [done = std::move(done), wan, srv_a, srv_b,
         client](const stun::StunResult& r) {
            StunProbeResult out;
            out.success = r.ok;
            out.mapping = r.mapping;
            out.port_preserved = r.port_preserved;
            out.reflexive_correct = r.ok && r.reflexive.addr == wan;
            done(out);
        });
}

void measure_binding_rate(Testbed& tb, int slot, int count,
                          std::function<void(BindingRateResult)> done) {
    auto& s = tb.slot(slot);
    auto& loop = tb.loop();
    auto server = &tb.server().udp_open(net::Ipv4Addr::any(), 47100);
    auto established = std::make_shared<int>(0);
    auto last_rx = std::make_shared<sim::TimePoint>(loop.now());
    server->set_receive_handler(
        [established, last_rx, &loop](net::Endpoint,
                                      std::span<const std::uint8_t>,
                                      const net::Ipv4Packet&) {
            ++*established;
            *last_rx = loop.now();
        });

    const auto start = loop.now();
    std::vector<stack::UdpSocket*> socks;
    socks.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        auto& sock = tb.client().udp_open(
            s.client_addr, static_cast<std::uint16_t>(48000 + i));
        sock.send_to({s.server_addr, 47100}, {'x'});
        socks.push_back(&sock);
    }
    loop.after(std::chrono::seconds(2), [&tb, server, socks, established,
                                         last_rx, count, start,
                                         done = std::move(done)] {
        BindingRateResult r;
        r.attempted = count;
        r.established = *established;
        // Rate over the window from the burst start to the last binding
        // observed: the device's packet path is the limiter here.
        const double window = sim::to_sec(*last_rx - start);
        r.bindings_per_sec = window > 0 ? *established / window
                                        : static_cast<double>(*established);
        for (auto* sock : socks) tb.client().udp_close(*sock);
        tb.server().udp_close(*server);
        done(r);
    });
}

} // namespace gatekit::harness
