#include "harness/results_io.hpp"

#include <cstdint>
#include <sstream>

namespace gatekit::harness {

using report::JsonValue;
using report::JsonWriter;

namespace {

std::int64_t i64(int v) { return static_cast<std::int64_t>(v); }

// --- per-struct writers ----------------------------------------------------

void write_udp_timeout(JsonWriter& jw, const UdpTimeoutResult& r) {
    jw.begin_object();
    jw.key("samples_sec").begin_array();
    for (double s : r.samples_sec) jw.value(s);
    jw.end_array();
    jw.key("creation_retries").value(i64(r.creation_retries));
    jw.key("probe_retries").value(i64(r.probe_retries));
    jw.key("search_retries").value(i64(r.search_retries));
    jw.key("search_giveups").value(i64(r.search_giveups));
    jw.end_object();
}

void read_udp_timeout(const JsonValue& v, UdpTimeoutResult& r) {
    if (const JsonValue* s = v.find("samples_sec")) {
        r.samples_sec.clear();
        for (const auto& x : s->array) r.samples_sec.push_back(x.as_double());
    }
    if (const JsonValue* x = v.find("creation_retries"))
        r.creation_retries = static_cast<int>(x->as_int());
    if (const JsonValue* x = v.find("probe_retries"))
        r.probe_retries = static_cast<int>(x->as_int());
    if (const JsonValue* x = v.find("search_retries"))
        r.search_retries = static_cast<int>(x->as_int());
    if (const JsonValue* x = v.find("search_giveups"))
        r.search_giveups = static_cast<int>(x->as_int());
}

void write_port_reuse(JsonWriter& jw, const PortReuseResult& r) {
    jw.begin_object();
    jw.key("preserves_source_port").value(r.preserves_source_port);
    jw.key("reuses_expired_binding").value(r.reuses_expired_binding);
    jw.key("observed_ports").begin_array();
    for (std::uint16_t p : r.observed_ports)
        jw.value(static_cast<std::int64_t>(p));
    jw.end_array();
    jw.end_object();
}

void read_port_reuse(const JsonValue& v, PortReuseResult& r) {
    if (const JsonValue* x = v.find("preserves_source_port"))
        r.preserves_source_port = x->as_bool();
    if (const JsonValue* x = v.find("reuses_expired_binding"))
        r.reuses_expired_binding = x->as_bool();
    if (const JsonValue* s = v.find("observed_ports")) {
        r.observed_ports.clear();
        for (const auto& x : s->array)
            r.observed_ports.push_back(static_cast<std::uint16_t>(x.as_int()));
    }
}

void write_tcp_timeout(JsonWriter& jw, const TcpTimeoutResult& r) {
    jw.begin_object();
    jw.key("samples_sec").begin_array();
    for (double s : r.samples_sec) jw.value(s);
    jw.end_array();
    jw.key("exceeded_limit").value(r.exceeded_limit);
    jw.key("connect_retries").value(i64(r.connect_retries));
    jw.key("search_retries").value(i64(r.search_retries));
    jw.key("search_giveups").value(i64(r.search_giveups));
    jw.end_object();
}

void read_tcp_timeout(const JsonValue& v, TcpTimeoutResult& r) {
    if (const JsonValue* s = v.find("samples_sec")) {
        r.samples_sec.clear();
        for (const auto& x : s->array) r.samples_sec.push_back(x.as_double());
    }
    if (const JsonValue* x = v.find("exceeded_limit"))
        r.exceeded_limit = x->as_bool();
    if (const JsonValue* x = v.find("connect_retries"))
        r.connect_retries = static_cast<int>(x->as_int());
    if (const JsonValue* x = v.find("search_retries"))
        r.search_retries = static_cast<int>(x->as_int());
    if (const JsonValue* x = v.find("search_giveups"))
        r.search_giveups = static_cast<int>(x->as_int());
}

void write_transfer(JsonWriter& jw, const TransferResult& r) {
    jw.begin_object();
    jw.key("mbps").value(r.mbps);
    jw.key("delay_ms").value(r.delay_ms);
    jw.key("bytes").value(static_cast<std::uint64_t>(r.bytes));
    jw.key("duration_sec").value(r.duration_sec);
    jw.key("completed").value(r.completed);
    jw.end_object();
}

void read_transfer(const JsonValue& v, TransferResult& r) {
    if (const JsonValue* x = v.find("mbps")) r.mbps = x->as_double();
    if (const JsonValue* x = v.find("delay_ms")) r.delay_ms = x->as_double();
    if (const JsonValue* x = v.find("bytes"))
        r.bytes = static_cast<std::uint64_t>(x->as_int());
    if (const JsonValue* x = v.find("duration_sec"))
        r.duration_sec = x->as_double();
    if (const JsonValue* x = v.find("completed")) r.completed = x->as_bool();
}

void write_throughput(JsonWriter& jw, const ThroughputResult& r) {
    jw.begin_object();
    jw.key("upload");
    write_transfer(jw, r.upload);
    jw.key("download");
    write_transfer(jw, r.download);
    jw.key("upload_bidir");
    write_transfer(jw, r.upload_bidir);
    jw.key("download_bidir");
    write_transfer(jw, r.download_bidir);
    jw.end_object();
}

void read_throughput(const JsonValue& v, ThroughputResult& r) {
    if (const JsonValue* x = v.find("upload")) read_transfer(*x, r.upload);
    if (const JsonValue* x = v.find("download")) read_transfer(*x, r.download);
    if (const JsonValue* x = v.find("upload_bidir"))
        read_transfer(*x, r.upload_bidir);
    if (const JsonValue* x = v.find("download_bidir"))
        read_transfer(*x, r.download_bidir);
}

void write_max_bindings(JsonWriter& jw, const MaxBindingsResult& r) {
    jw.begin_object();
    jw.key("max_bindings").value(i64(r.max_bindings));
    jw.key("hit_probe_limit").value(r.hit_probe_limit);
    jw.end_object();
}

void read_max_bindings(const JsonValue& v, MaxBindingsResult& r) {
    if (const JsonValue* x = v.find("max_bindings"))
        r.max_bindings = static_cast<int>(x->as_int());
    if (const JsonValue* x = v.find("hit_probe_limit"))
        r.hit_probe_limit = x->as_bool();
}

void write_icmp_verdicts(JsonWriter& jw,
                         const std::array<IcmpVerdict,
                                          gateway::kIcmpKindCount>& vs) {
    jw.begin_array();
    for (const auto& v : vs) {
        jw.begin_object();
        jw.key("forwarded").value(v.forwarded);
        jw.key("rst_instead").value(v.rst_instead);
        jw.key("embedded_transport_ok").value(v.embedded_transport_ok);
        jw.key("embedded_ip_checksum_ok").value(v.embedded_ip_checksum_ok);
        jw.end_object();
    }
    jw.end_array();
}

void read_icmp_verdicts(const JsonValue& v,
                        std::array<IcmpVerdict,
                                   gateway::kIcmpKindCount>& vs) {
    for (std::size_t i = 0; i < vs.size() && i < v.array.size(); ++i) {
        const JsonValue& e = v.array[i];
        if (const JsonValue* x = e.find("forwarded"))
            vs[i].forwarded = x->as_bool();
        if (const JsonValue* x = e.find("rst_instead"))
            vs[i].rst_instead = x->as_bool();
        if (const JsonValue* x = e.find("embedded_transport_ok"))
            vs[i].embedded_transport_ok = x->as_bool();
        if (const JsonValue* x = e.find("embedded_ip_checksum_ok"))
            vs[i].embedded_ip_checksum_ok = x->as_bool();
    }
}

void write_icmp(JsonWriter& jw, const IcmpProbeResult& r) {
    jw.begin_object();
    jw.key("udp");
    write_icmp_verdicts(jw, r.udp);
    jw.key("tcp");
    write_icmp_verdicts(jw, r.tcp);
    jw.key("query_error_forwarded").value(r.query_error_forwarded);
    jw.key("flow_retries").value(i64(r.flow_retries));
    jw.end_object();
}

void read_icmp(const JsonValue& v, IcmpProbeResult& r) {
    if (const JsonValue* x = v.find("udp")) read_icmp_verdicts(*x, r.udp);
    if (const JsonValue* x = v.find("tcp")) read_icmp_verdicts(*x, r.tcp);
    if (const JsonValue* x = v.find("query_error_forwarded"))
        r.query_error_forwarded = x->as_bool();
    if (const JsonValue* x = v.find("flow_retries"))
        r.flow_retries = static_cast<int>(x->as_int());
}

void write_transports(JsonWriter& jw, const TransportSupportResult& r) {
    jw.begin_object();
    jw.key("sctp_connects").value(r.sctp_connects);
    jw.key("sctp_data_ok").value(r.sctp_data_ok);
    jw.key("dccp_connects").value(r.dccp_connects);
    jw.key("sctp_action").value(i64(static_cast<int>(r.sctp_action)));
    jw.key("dccp_action").value(i64(static_cast<int>(r.dccp_action)));
    jw.end_object();
}

void read_transports(const JsonValue& v, TransportSupportResult& r) {
    if (const JsonValue* x = v.find("sctp_connects"))
        r.sctp_connects = x->as_bool();
    if (const JsonValue* x = v.find("sctp_data_ok"))
        r.sctp_data_ok = x->as_bool();
    if (const JsonValue* x = v.find("dccp_connects"))
        r.dccp_connects = x->as_bool();
    if (const JsonValue* x = v.find("sctp_action"))
        r.sctp_action = static_cast<NatAction>(x->as_int());
    if (const JsonValue* x = v.find("dccp_action"))
        r.dccp_action = static_cast<NatAction>(x->as_int());
}

void write_dns(JsonWriter& jw, const DnsProbeResult& r) {
    jw.begin_object();
    jw.key("udp_ok").value(r.udp_ok);
    jw.key("tcp_connects").value(r.tcp_connects);
    jw.key("tcp_answers").value(r.tcp_answers);
    jw.key("tcp_upstream_udp").value(r.tcp_upstream_udp);
    jw.key("big_udp_ok").value(r.big_udp_ok);
    jw.key("truncated_seen").value(r.truncated_seen);
    jw.key("dnssec_ready").value(r.dnssec_ready);
    jw.key("big_udp_retries").value(i64(r.big_udp_retries));
    jw.end_object();
}

void read_dns(const JsonValue& v, DnsProbeResult& r) {
    if (const JsonValue* x = v.find("udp_ok")) r.udp_ok = x->as_bool();
    if (const JsonValue* x = v.find("tcp_connects"))
        r.tcp_connects = x->as_bool();
    if (const JsonValue* x = v.find("tcp_answers"))
        r.tcp_answers = x->as_bool();
    if (const JsonValue* x = v.find("tcp_upstream_udp"))
        r.tcp_upstream_udp = x->as_bool();
    if (const JsonValue* x = v.find("big_udp_ok"))
        r.big_udp_ok = x->as_bool();
    if (const JsonValue* x = v.find("truncated_seen"))
        r.truncated_seen = x->as_bool();
    if (const JsonValue* x = v.find("dnssec_ready"))
        r.dnssec_ready = x->as_bool();
    if (const JsonValue* x = v.find("big_udp_retries"))
        r.big_udp_retries = static_cast<int>(x->as_int());
}

void write_quirks(JsonWriter& jw, const QuirksResult& r) {
    jw.begin_object();
    jw.key("decrements_ttl").value(r.decrements_ttl);
    jw.key("honors_record_route").value(r.honors_record_route);
    jw.key("hairpins_udp").value(r.hairpins_udp);
    jw.end_object();
}

void read_quirks(const JsonValue& v, QuirksResult& r) {
    if (const JsonValue* x = v.find("decrements_ttl"))
        r.decrements_ttl = x->as_bool();
    if (const JsonValue* x = v.find("honors_record_route"))
        r.honors_record_route = x->as_bool();
    if (const JsonValue* x = v.find("hairpins_udp"))
        r.hairpins_udp = x->as_bool();
}

void write_stun(JsonWriter& jw, const StunProbeResult& r) {
    jw.begin_object();
    jw.key("success").value(r.success);
    jw.key("reflexive_correct").value(r.reflexive_correct);
    jw.key("port_preserved").value(r.port_preserved);
    jw.key("mapping").value(i64(static_cast<int>(r.mapping)));
    jw.end_object();
}

void read_stun(const JsonValue& v, StunProbeResult& r) {
    if (const JsonValue* x = v.find("success")) r.success = x->as_bool();
    if (const JsonValue* x = v.find("reflexive_correct"))
        r.reflexive_correct = x->as_bool();
    if (const JsonValue* x = v.find("port_preserved"))
        r.port_preserved = x->as_bool();
    if (const JsonValue* x = v.find("mapping"))
        r.mapping = static_cast<stun::Mapping>(x->as_int());
}

void write_binding_rate(JsonWriter& jw, const BindingRateResult& r) {
    jw.begin_object();
    jw.key("attempted").value(i64(r.attempted));
    jw.key("established").value(i64(r.established));
    jw.key("bindings_per_sec").value(r.bindings_per_sec);
    jw.end_object();
}

void read_binding_rate(const JsonValue& v, BindingRateResult& r) {
    if (const JsonValue* x = v.find("attempted"))
        r.attempted = static_cast<int>(x->as_int());
    if (const JsonValue* x = v.find("established"))
        r.established = static_cast<int>(x->as_int());
    if (const JsonValue* x = v.find("bindings_per_sec"))
        r.bindings_per_sec = x->as_double();
}

constexpr std::string_view kUdp5Prefix = "udp5:";

bool write_unit(JsonWriter& jw, const DeviceResults& r,
                const std::string& unit) {
    if (unit == "udp1") return write_udp_timeout(jw, r.udp1), true;
    if (unit == "udp2") return write_udp_timeout(jw, r.udp2), true;
    if (unit == "udp3") return write_udp_timeout(jw, r.udp3), true;
    if (unit == "udp4") return write_port_reuse(jw, r.udp4), true;
    if (unit.rfind(kUdp5Prefix, 0) == 0) {
        const std::string svc = unit.substr(kUdp5Prefix.size());
        auto it = r.udp5.find(svc);
        static const UdpTimeoutResult kEmpty{};
        write_udp_timeout(jw, it != r.udp5.end() ? it->second : kEmpty);
        return true;
    }
    if (unit == "tcp1") return write_tcp_timeout(jw, r.tcp1), true;
    if (unit == "tcp2") return write_throughput(jw, r.tcp2), true;
    if (unit == "tcp4") return write_max_bindings(jw, r.tcp4), true;
    if (unit == "icmp") return write_icmp(jw, r.icmp), true;
    if (unit == "transports") return write_transports(jw, r.transports), true;
    if (unit == "dns") return write_dns(jw, r.dns), true;
    if (unit == "quirks") return write_quirks(jw, r.quirks), true;
    if (unit == "stun") return write_stun(jw, r.stun), true;
    if (unit == "binding_rate")
        return write_binding_rate(jw, r.binding_rate), true;
    return false;
}

} // namespace

std::vector<std::string> unit_plan(const CampaignConfig& config) {
    std::vector<std::string> plan;
    if (config.udp1) plan.push_back("udp1");
    if (config.udp2) plan.push_back("udp2");
    if (config.udp3) plan.push_back("udp3");
    if (config.udp4) plan.push_back("udp4");
    if (config.udp5)
        for (const auto& [name, port] : config.udp5_services)
            plan.push_back(std::string(kUdp5Prefix) + name);
    if (config.tcp1) plan.push_back("tcp1");
    if (config.tcp2) plan.push_back("tcp2");
    if (config.tcp4) plan.push_back("tcp4");
    if (config.icmp) plan.push_back("icmp");
    if (config.transports) plan.push_back("transports");
    if (config.dns) plan.push_back("dns");
    if (config.quirks) plan.push_back("quirks");
    if (config.stun) plan.push_back("stun");
    if (config.binding_rate) plan.push_back("binding_rate");
    return plan;
}

std::string unit_payload_json(const DeviceResults& r,
                              const std::string& unit) {
    std::ostringstream out;
    JsonWriter jw(out);
    if (!write_unit(jw, r, unit)) return "null";
    return out.str();
}

bool apply_unit_payload(DeviceResults& r, const std::string& unit,
                        const report::JsonValue& payload) {
    if (unit == "udp1") return read_udp_timeout(payload, r.udp1), true;
    if (unit == "udp2") return read_udp_timeout(payload, r.udp2), true;
    if (unit == "udp3") return read_udp_timeout(payload, r.udp3), true;
    if (unit == "udp4") return read_port_reuse(payload, r.udp4), true;
    if (unit.rfind(kUdp5Prefix, 0) == 0) {
        const std::string svc = unit.substr(kUdp5Prefix.size());
        read_udp_timeout(payload, r.udp5[svc]);
        return true;
    }
    if (unit == "tcp1") return read_tcp_timeout(payload, r.tcp1), true;
    if (unit == "tcp2") return read_throughput(payload, r.tcp2), true;
    if (unit == "tcp4") return read_max_bindings(payload, r.tcp4), true;
    if (unit == "icmp") return read_icmp(payload, r.icmp), true;
    if (unit == "transports")
        return read_transports(payload, r.transports), true;
    if (unit == "dns") return read_dns(payload, r.dns), true;
    if (unit == "quirks") return read_quirks(payload, r.quirks), true;
    if (unit == "stun") return read_stun(payload, r.stun), true;
    if (unit == "binding_rate")
        return read_binding_rate(payload, r.binding_rate), true;
    return false;
}

std::string device_results_json(const DeviceResults& r) {
    std::ostringstream out;
    JsonWriter jw(out);
    jw.begin_object();
    jw.key("tag").value(std::string_view(r.tag));
    jw.key("udp1");
    write_udp_timeout(jw, r.udp1);
    jw.key("udp2");
    write_udp_timeout(jw, r.udp2);
    jw.key("udp3");
    write_udp_timeout(jw, r.udp3);
    jw.key("udp4");
    write_port_reuse(jw, r.udp4);
    jw.key("udp5").begin_object();
    for (const auto& [svc, res] : r.udp5) {
        jw.key(svc);
        write_udp_timeout(jw, res);
    }
    jw.end_object();
    jw.key("tcp1");
    write_tcp_timeout(jw, r.tcp1);
    jw.key("tcp2");
    write_throughput(jw, r.tcp2);
    jw.key("tcp4");
    write_max_bindings(jw, r.tcp4);
    jw.key("icmp");
    write_icmp(jw, r.icmp);
    jw.key("transports");
    write_transports(jw, r.transports);
    jw.key("dns");
    write_dns(jw, r.dns);
    jw.key("quirks");
    write_quirks(jw, r.quirks);
    jw.key("stun");
    write_stun(jw, r.stun);
    jw.key("binding_rate");
    write_binding_rate(jw, r.binding_rate);
    jw.key("units").begin_array();
    for (const auto& u : r.units) {
        jw.begin_object();
        jw.key("unit").value(std::string_view(u.unit));
        jw.key("status").value(std::string_view(to_string(u.status)));
        jw.key("attempts").value(i64(u.attempts));
        jw.key("reason").value(std::string_view(u.reason));
        jw.key("t_start_ns").value(u.t_start_ns);
        jw.key("t_end_ns").value(u.t_end_ns);
        jw.end_object();
    }
    jw.end_array();
    jw.end_object();
    return out.str();
}

std::string campaign_fingerprint(const CampaignConfig& config,
                                 const std::vector<std::string>& devices) {
    // Canonical text of everything that shapes the measurement stream.
    // The supervisor's journal knobs are deliberately absent: a journaled
    // run and its resumed continuation share a fingerprint by design.
    std::ostringstream s;
    auto ns = [](sim::Duration d) { return d.count(); };
    s << "flags:" << config.udp1 << config.udp2 << config.udp3 << config.udp4
      << config.udp5 << config.tcp1 << config.tcp2 << config.tcp4
      << config.icmp << config.transports << config.dns << config.quirks
      << config.stun << config.binding_rate << ';'
      << "binding_rate_count:" << config.binding_rate_count << ';'
      << "udp:" << config.udp.repetitions << ',' << config.udp.server_port
      << ',' << ns(config.udp.grace) << ','
      << ns(config.udp.search.first_guess) << ','
      << ns(config.udp.search.hi_limit) << ','
      << ns(config.udp.search.resolution) << ','
      << ns(config.udp.search.retry.trial_timeout) << ','
      << config.udp.search.retry.max_attempts << ','
      << ns(config.udp.search.retry.backoff) << ','
      << config.udp.retry.creation_retries << ','
      << ns(config.udp.retry.creation_wait) << ','
      << config.udp.retry.probe_retries << ';'
      << "tcp1:" << config.tcp_timeout.repetitions << ','
      << config.tcp_timeout.server_port << ','
      << ns(config.tcp_timeout.grace) << ','
      << ns(config.tcp_timeout.search.first_guess) << ','
      << ns(config.tcp_timeout.search.hi_limit) << ','
      << ns(config.tcp_timeout.search.resolution) << ','
      << ns(config.tcp_timeout.search.retry.trial_timeout) << ','
      << config.tcp_timeout.search.retry.max_attempts << ','
      << ns(config.tcp_timeout.search.retry.backoff) << ','
      << config.tcp_timeout.connect_retries << ','
      << ns(config.tcp_timeout.connect_backoff) << ';'
      << "tcp2:" << config.throughput.bytes << ','
      << ns(config.throughput.time_limit) << ','
      << config.throughput.port_base << ';'
      << "tcp4:" << config.max_bindings.limit << ','
      << config.max_bindings.server_port << ';'
      << "sup:" << ns(config.supervisor.soft_deadline) << ','
      << ns(config.supervisor.hard_deadline) << ','
      << config.supervisor.max_attempts << ','
      << ns(config.supervisor.retry_backoff) << ','
      << ns(config.supervisor.hard_grace) << ','
      << config.supervisor.quarantine_after << ';';
    // Impairments shape every fate draw, so they bind the fingerprint —
    // but only when installed, keeping lossless campaigns' fingerprints
    // identical to the pre-impairment format. The ShardSpec is
    // deliberately absent: a shard's journal segment belongs to the same
    // campaign as the merged whole.
    if (config.impair.any()) {
        const auto& w = config.impair.wan;
        s << "impair:" << w.loss << ',' << w.duplicate << ',' << w.reorder
          << ',' << ns(w.reorder_hold) << ',' << ns(w.jitter) << ','
          << w.corrupt << ',' << config.impair.seed << ';';
    }
    s << "udp5:";
    for (const auto& [name, port] : config.udp5_services)
        s << name << '=' << port << ',';
    s << ";devices:";
    for (const auto& d : devices) s << d << ',';

    const std::string text = s.str();
    std::uint64_t h = 1469598103934665603ULL; // FNV-1a 64
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    static const char* hex = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = hex[h & 0xf];
        h >>= 4;
    }
    return out;
}

} // namespace gatekit::harness
