#include "harness/holepunch.hpp"

#include "harness/testbed.hpp"
#include "stack/udp_socket.hpp"
#include "stun/turn.hpp"

namespace gatekit::harness {

namespace {

/// The rendezvous + simultaneous-punch exchange, topology-agnostic: the
/// testbed is already up, and slots ia/ib may sit behind any NAT chain.
HolePunchResult drive_punch(Testbed& tb, sim::EventLoop& loop, int ia,
                            int ib) {
    HolePunchResult result;

    auto& rendezvous = tb.server().udp_open(net::Ipv4Addr::any(), 9987);
    rendezvous.set_receive_handler(
        [&](net::Endpoint src, std::span<const std::uint8_t> payload,
            const net::Ipv4Packet&) {
            if (payload.empty()) return;
            if (payload[0] == 'A') result.reflexive_a = src;
            if (payload[0] == 'B') result.reflexive_b = src;
        });

    // Interface-bound peers: each one's traffic goes through its own NAT.
    auto& sock_a = tb.client().udp_open(tb.slot(ia).client_addr, 46000,
                                        tb.slot(ia).client_if);
    auto& sock_b = tb.client().udp_open(tb.slot(ib).client_addr, 46000,
                                        tb.slot(ib).client_if);
    bool heard_a = false, heard_b = false;
    sock_a.set_receive_handler(
        [&](net::Endpoint, std::span<const std::uint8_t> p,
            const net::Ipv4Packet&) {
            if (!p.empty() && p[0] == 'P') heard_a = true;
        });
    sock_b.set_receive_handler(
        [&](net::Endpoint, std::span<const std::uint8_t> p,
            const net::Ipv4Packet&) {
            if (!p.empty() && p[0] == 'P') heard_b = true;
        });

    sock_a.send_to({tb.slot(ia).server_addr, 9987}, {'A'});
    sock_b.send_to({tb.slot(ib).server_addr, 9987}, {'B'});
    loop.run_for(std::chrono::milliseconds(100));
    result.registered =
        result.reflexive_a.port != 0 && result.reflexive_b.port != 0;
    if (!result.registered) return result;

    for (int round = 0; round < 3; ++round) {
        sock_a.send_to(result.reflexive_b, {'P'});
        sock_b.send_to(result.reflexive_a, {'P'});
        loop.run_for(std::chrono::milliseconds(200));
    }
    result.success = heard_a && heard_b;
    return result;
}

} // namespace

HolePunchResult run_hole_punch(const gateway::DeviceProfile& a,
                               const gateway::DeviceProfile& b) {
    sim::EventLoop loop;
    Testbed tb(loop);
    const int ia = tb.add_device(a);
    const int ib = tb.add_device(b);
    tb.start_and_wait();
    return drive_punch(tb, loop, ia, ib);
}

HolePunchResult run_hole_punch_nat444(const gateway::DeviceProfile& a,
                                      const gateway::DeviceProfile& b,
                                      const gateway::CgnConfig& cgn,
                                      bool same_cgn) {
    sim::EventLoop loop;
    Testbed tb(loop);
    const int ga = tb.add_cgn_group(cgn);
    const int gb = same_cgn ? ga : tb.add_cgn_group(cgn);
    const int ia = tb.add_device_behind_cgn(a, ga);
    const int ib = tb.add_device_behind_cgn(b, gb);
    tb.start_and_wait();
    return drive_punch(tb, loop, ia, ib);
}

const char* to_string(P2pPath p) {
    switch (p) {
    case P2pPath::Punched:
        return "punched";
    case P2pPath::Relayed:
        return "relayed";
    case P2pPath::Failed:
        return "failed";
    }
    return "?";
}

P2pResult establish_p2p(const gateway::DeviceProfile& a,
                        const gateway::DeviceProfile& b) {
    P2pResult out;

    // Rung 1: direct hole punching.
    const auto punch = run_hole_punch(a, b);
    if (punch.success) {
        out.path = P2pPath::Punched;
        out.bidirectional = true;
        return out;
    }

    // Rung 2: TURN relay. Peer A allocates; peer B only ever sends plain
    // UDP toward the relay address, which every outbound-UDP-capable NAT
    // permits.
    sim::EventLoop loop;
    Testbed tb(loop);
    const int ia = tb.add_device(a);
    const int ib = tb.add_device(b);
    tb.start_and_wait();

    stun::TurnServer turn(tb.server(), tb.slot(ia).server_addr);

    stun::TurnClient alice(tb.client(), tb.slot(ia).client_addr,
                           {tb.slot(ia).server_addr, stun::kTurnPort},
                           tb.slot(ia).client_if);
    bool allocated = false;
    net::Endpoint relay;
    alice.allocate([&](bool ok, net::Endpoint r) {
        allocated = ok;
        relay = r;
    });
    loop.run_for(std::chrono::seconds(3));
    if (!allocated) return out;

    auto& bob = tb.client().udp_open(tb.slot(ib).client_addr, 46100,
                                     tb.slot(ib).client_if);
    bool alice_heard = false, bob_heard = false;
    net::Endpoint bob_as_seen;
    alice.set_data_handler(
        [&](net::Endpoint peer, std::span<const std::uint8_t> payload) {
            if (!payload.empty() && payload[0] == 'B') {
                alice_heard = true;
                bob_as_seen = peer;
            }
        });
    bob.set_receive_handler([&](net::Endpoint src,
                                std::span<const std::uint8_t> payload,
                                const net::Ipv4Packet&) {
        if (src == relay && !payload.empty() && payload[0] == 'A')
            bob_heard = true;
    });

    // Bob contacts the relay (creating his NAT binding toward it); Alice
    // answers through the relay to the endpoint the relay observed.
    bob.send_to(relay, {'B'});
    loop.run_for(std::chrono::milliseconds(200));
    if (alice_heard) alice.send(bob_as_seen, {'A'});
    loop.run_for(std::chrono::milliseconds(200));

    if (alice_heard && bob_heard) {
        out.path = P2pPath::Relayed;
        out.bidirectional = true;
    }
    return out;
}

} // namespace gatekit::harness
