#include "harness/testrund.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "harness/results_io.hpp"
#include "report/journal.hpp"
#include "util/assert.hpp"

namespace gatekit::harness {

std::uint64_t impair_seed_for(std::uint64_t campaign_seed, int device,
                              bool wan_link, int direction) {
    // splitmix64 finalizer over campaign_seed xor the stream tag. Masked
    // to 62 bits: the journal stores seeds as JSON integers and int64
    // round-trips exactly only below 2^63.
    std::uint64_t x = campaign_seed ^
                      (static_cast<std::uint64_t>(device) * 4ULL +
                       (wan_link ? 2ULL : 0ULL) +
                       static_cast<std::uint64_t>(direction));
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x = x ^ (x >> 31);
    return x & ((1ULL << 62) - 1);
}

const char* to_string(UnitStatus s) {
    switch (s) {
    case UnitStatus::Ok: return "ok";
    case UnitStatus::Degraded: return "degraded";
    case UnitStatus::GaveUp: return "gave_up";
    case UnitStatus::Quarantined: return "quarantined";
    }
    return "ok";
}

bool unit_status_from_string(std::string_view s, UnitStatus& out) {
    if (s == "ok") {
        out = UnitStatus::Ok;
    } else if (s == "degraded") {
        out = UnitStatus::Degraded;
    } else if (s == "gave_up") {
        out = UnitStatus::GaveUp;
    } else if (s == "quarantined") {
        out = UnitStatus::Quarantined;
    } else {
        return false;
    }
    return true;
}

/// Campaign supervisor: walks the unit plan device by device, launching
/// one probe attempt at a time. Each attempt carries a fresh cancel token
/// and a generation stamp; deadline watchdogs flip the token (the probe
/// quiesces at its next trial boundary) and bump the generation (a late
/// completion is dropped instead of double-advancing the campaign).
/// With the default policy no watchdog is ever scheduled and every unit
/// completes through the same callback chain as the unsupervised runner,
/// so the event stream is bit-for-bit identical.
struct Testrund::Runner : std::enable_shared_from_this<Testrund::Runner> {
    Runner(Testbed& tb, CampaignConfig config,
           std::function<void(std::vector<DeviceResults>)> done)
        : tb(tb), config(std::move(config)), done(std::move(done)),
          plan(unit_plan(this->config)) {}

    Testbed& tb;
    CampaignConfig config;
    std::function<void(std::vector<DeviceResults>)> done;
    std::vector<std::string> plan;
    std::vector<DeviceResults> results;
    int device = 0;
    std::size_t unit_idx = 0;

    // Per-unit supervisor state.
    std::uint64_t gen = 0; ///< stamps attempts; stale callbacks are dropped
    int attempts = 1;
    sim::TimePoint unit_start{};
    std::shared_ptr<bool> cancel;
    bool hard_hit = false;
    bool unit_done = false;
    sim::EventId soft_ev{}, hard_ev{}, force_ev{};

    // Per-device quarantine state.
    int device_failures = 0;
    bool device_quarantined = false;

    report::JournalWriter journal;
    bool journaling = false;

    // Supervisor instruments, re-registered per device; branch-on-null.
    obs::Counter* m_retry = nullptr;
    obs::Counter* m_degraded = nullptr;
    obs::Counter* m_quarantined = nullptr;

    DeviceResults& cur() { return results.back(); }
    sim::EventLoop& loop() { return tb.loop(); }
    const std::string& unit() const { return plan[unit_idx]; }
    std::string label() { return Testbed::device_label(tb.slot(device)); }

    bool supervision_active() const {
        return config.supervisor.soft_enabled() ||
               config.supervisor.hard_enabled() || journaling;
    }

    /// Device range this runner measures ([first_dev, last_dev]); the
    /// whole roster unless a ShardSpec narrows it.
    int first_dev() const { return std::max(0, config.shard.first_device); }
    int last_dev() const {
        const int max = static_cast<int>(tb.device_count()) - 1;
        const int l = config.shard.last_device;
        return (l >= 0 && l < max) ? l : max;
    }

    /// Install the campaign's declarative impairments on every device's
    /// WAN link, each direction seeded from its own derived stream. Runs
    /// before any measurement traffic (bring-up is already complete and
    /// unimpaired), so a device's fate sequence is a pure function of
    /// (campaign seed, device, direction) — identical whether the
    /// campaign runs sequentially or sharded at any worker count.
    void apply_impairments() {
        if (!config.impair.any()) return;
        for (std::size_t i = 0; i < tb.device_count(); ++i) {
            const int d = static_cast<int>(i);
            auto& link = *tb.slot(d).wan_link;
            link.set_impairments(
                sim::Link::Side::A, config.impair.wan,
                impair_seed_for(config.impair.seed, d, true, 0));
            link.set_impairments(
                sim::Link::Side::B, config.impair.wan,
                impair_seed_for(config.impair.seed, d, true, 1));
        }
    }

    std::vector<std::string> roster() const {
        std::vector<std::string> tags;
        for (std::size_t i = 0; i < tb.device_count(); ++i)
            tags.push_back(
                tb.slot(static_cast<int>(i)).gw->profile().tag);
        return tags;
    }

    void start() {
        const auto& sup = config.supervisor;
        std::int64_t resume_at_ns = -1;
        if (!sup.journal_path.empty()) {
            journaling = true; // before enter_device: gates the counters
        }
        apply_impairments(); // before replay: RNG restore needs them live
        if (tb.device_count() == 0 || first_dev() > last_dev()) {
            finish_campaign();
            return;
        }
        device = first_dev();
        if (plan.empty()) {
            // Nothing to measure: enumerate the devices, as before.
            for (int d = first_dev(); d <= last_dev(); ++d) {
                results.emplace_back();
                results.back().tag = tb.slot(d).gw->profile().tag;
            }
            finish_campaign();
            return;
        }
        enter_device();
        if (!sup.journal_path.empty()) {
            if (sup.resume) {
                resume_at_ns = load_and_replay();
                if (!journal.open_append(sup.journal_path))
                    throw std::runtime_error(
                        "campaign journal: cannot append to '" +
                        sup.journal_path + "'");
            } else {
                report::JournalHeader header;
                header.schema = report::kJournalSchema;
                header.fingerprint = campaign_fingerprint(config, roster());
                header.devices = roster();
                header.shard = config.shard.index;
                if (!journal.open_new(sup.journal_path, header))
                    throw std::runtime_error(
                        "campaign journal: cannot create '" +
                        sup.journal_path + "'");
            }
        }
        if (device > last_dev()) {
            finish_campaign(); // journal already covered every unit
            return;
        }
        if (resume_at_ns >= 0) {
            // Realign the sim clock with the uninterrupted run: the next
            // unit must start exactly when it would have, or every
            // granularity-quantized expiry downstream shifts.
            const sim::TimePoint t{sim::Duration(resume_at_ns)};
            if (t > loop().now()) {
                loop().at(t, [self = shared_from_this()] {
                    self->start_unit();
                });
                return;
            }
        }
        start_unit();
    }

    /// Replay the journal prefix into `results`, advancing the campaign
    /// pointer past every completed unit. Returns the sim time (ns) at
    /// which the first live unit must start, or -1 with nothing replayed.
    std::int64_t load_and_replay() {
        const auto& sup = config.supervisor;
        report::JournalHeader header;
        std::vector<report::JournalEntry> entries;
        std::string err;
        if (!report::JournalReader::load(sup.journal_path, header, entries,
                                         &err))
            throw std::runtime_error("campaign journal: " + err);
        if (header.fingerprint != campaign_fingerprint(config, roster()))
            throw std::runtime_error(
                "campaign journal: fingerprint mismatch (campaign config "
                "or roster changed since the journal was written)");
        if (header.devices != roster())
            throw std::runtime_error(
                "campaign journal: device roster mismatch");
        if (header.shard != config.shard.index)
            throw std::runtime_error(
                "campaign journal: shard index mismatch (journal written "
                "by shard " + std::to_string(header.shard) +
                ", resuming as shard " +
                std::to_string(config.shard.index) + ")");
        if (entries.empty()) return -1;

        for (const auto& e : entries) {
            if (device > last_dev())
                throw std::runtime_error(
                    "campaign journal: more entries than planned units");
            if (e.device != device || e.unit != unit())
                throw std::runtime_error(
                    "campaign journal: entry order diverges from the "
                    "campaign plan at device " + std::to_string(device) +
                    " unit '" + unit() + "'");
            UnitReport rep;
            rep.unit = e.unit;
            if (!unit_status_from_string(e.status, rep.status))
                throw std::runtime_error(
                    "campaign journal: unknown status '" + e.status + "'");
            rep.attempts = e.attempts;
            rep.reason = e.reason;
            rep.t_start_ns = e.t_start_ns;
            rep.t_end_ns = e.t_end_ns;
            if (e.payload.type != report::JsonValue::Type::Null)
                apply_unit_payload(cur(), e.unit, e.payload);
            cur().units.push_back(std::move(rep));
            note_unit_outcome(cur().units.back().status);
            advance_pointer();
        }
        const auto& last = entries.back();
        // Restore the allocator cursors the probes observe across unit
        // boundaries. Earlier devices are finished (their cursors are
        // dead state); only the globals and, mid-device, the current
        // device's port pools matter.
        tb.client().set_ephemeral_cursor(
            static_cast<std::uint16_t>(last.state.client_eph));
        tb.server().set_ephemeral_cursor(
            static_cast<std::uint16_t>(last.state.server_eph));
        if (device <= last_dev() && unit_idx > 0) {
            auto& gw = *tb.slot(device).gw;
            gw.nat().udp_table().set_pool_cursor(
                static_cast<std::uint16_t>(last.state.udp_pool));
            gw.nat().tcp_table().set_pool_cursor(
                static_cast<std::uint16_t>(last.state.tcp_pool));
        }
        // Restore the impairment RNG streams exactly where the replayed
        // traffic left them. The impairers were installed by
        // apply_impairments() before replay; a stamp for a link with no
        // impairer means the campaign configs diverged.
        for (const auto& st : last.state.rng) {
            if (st.device < 0 ||
                st.device >= static_cast<int>(tb.device_count()))
                throw std::runtime_error(
                    "campaign journal: rng stamp device out of roster");
            auto& slot = tb.slot(st.device);
            sim::Link* link = st.link == "wan"   ? slot.wan_link.get()
                              : st.link == "lan" ? slot.lan_link.get()
                                                 : nullptr;
            if (link == nullptr || (st.dir != "a2b" && st.dir != "b2a"))
                throw std::runtime_error(
                    "campaign journal: malformed rng stamp (link '" +
                    st.link + "', dir '" + st.dir + "')");
            const auto side = st.dir == "a2b" ? sim::Link::Side::A
                                              : sim::Link::Side::B;
            if (!link->restore_impair_rng(side, st.seed, st.draws))
                throw std::runtime_error(
                    "campaign journal: rng stamp for an uninstalled "
                    "impairer (campaign impairments changed since the "
                    "journal was written)");
        }
        // Re-warm the ARP state the replayed traffic left behind: every
        // device's first unit resolves the client<->gateway and
        // gateway<->server pairs, and entries never expire. Without this
        // the first live unit pays ARP exchanges the uninterrupted run
        // already paid, shifting every later timestamp.
        for (int d = first_dev(); d <= last.device &&
                                  d < static_cast<int>(tb.device_count());
             ++d) {
            auto& slot = tb.slot(d);
            auto& gw = *slot.gw;
            slot.client_if->arp_cache().insert(gw.lan_addr(),
                                               gw.lan_if().mac());
            gw.lan_if().arp_cache().insert(slot.client_addr,
                                           slot.client_if->mac());
            gw.wan_if().arp_cache().insert(slot.server_addr,
                                           slot.server_if->mac());
            slot.server_if->arp_cache().insert(slot.gw_wan_addr,
                                               gw.wan_if().mac());
        }
        return last.t_end_ns;
    }

    void enter_device() {
        results.emplace_back();
        cur().tag = tb.slot(device).gw->profile().tag;
        device_failures = 0;
        device_quarantined = false;
        m_retry = m_degraded = m_quarantined = nullptr;
        if (auto* o = tb.observability(); o && supervision_active()) {
            auto& reg = o->metrics();
            m_retry = reg.counter("unit.retry", {{"device", label()}});
            m_degraded = reg.counter("unit.degraded", {{"device", label()}});
            m_quarantined =
                reg.counter("device.quarantined", {{"device", label()}});
        }
    }

    /// Move to the next planned unit; false when the campaign is done.
    bool advance_pointer() {
        ++unit_idx;
        if (unit_idx >= plan.size()) {
            unit_idx = 0;
            ++device;
            if (device > last_dev()) return false;
            enter_device();
        }
        return true;
    }

    void next_unit() {
        if (!advance_pointer()) {
            finish_campaign();
            return;
        }
        start_unit();
    }

    void finish_campaign() { done(std::move(results)); }

    void start_unit() {
        if (device_quarantined) {
            // Skipped wholesale; recorded and journaled so a resumed
            // campaign replays the same verdict.
            const std::int64_t now_ns = loop().now().count();
            UnitReport rep{unit(),  UnitStatus::Quarantined,
                           0,       "device_quarantined",
                           now_ns,  now_ns};
            cur().units.push_back(rep);
            journal_unit(rep, "null");
            next_unit(); // bounded recursion: at most one plan per device
            return;
        }
        unit_start = loop().now();
        attempts = 1;
        hard_hit = false;
        unit_done = false;
        hard_ev = sim::EventId{};
        launch_attempt();
    }

    void launch_attempt() {
        const std::uint64_t g = ++gen;
        cancel = std::make_shared<bool>(false);
        const auto& sup = config.supervisor;
        if (sup.soft_enabled() && attempts < sup.max_attempts) {
            soft_ev = loop().after(
                sup.soft_deadline,
                [this, g, self = shared_from_this()] { on_soft(g); });
        }
        if (sup.hard_enabled() && !hard_hit && !hard_ev) {
            // One hard budget per unit, spanning soft retries.
            hard_ev = loop().at(
                unit_start + sup.hard_deadline,
                [this, self = shared_from_this()] { on_hard(); });
        }
        dispatch(g);
    }

    template <typename Apply>
    void complete(std::uint64_t g, Apply apply) {
        if (g != gen || unit_done) return; // superseded or force-advanced
        apply(cur());
        if (hard_hit)
            finish_unit(UnitStatus::Degraded, "hard_deadline");
        else
            finish_unit(UnitStatus::Ok, "");
    }

    void finish_unit(UnitStatus status, std::string reason) {
        unit_done = true;
        if (soft_ev) loop().cancel(soft_ev);
        if (hard_ev) loop().cancel(hard_ev);
        if (force_ev) loop().cancel(force_ev);
        soft_ev = hard_ev = force_ev = sim::EventId{};
        if (status == UnitStatus::Degraded) obs::inc(m_degraded);
        UnitReport rep{unit(),    status,
                       attempts,  std::move(reason),
                       unit_start.count(), loop().now().count()};
        cur().units.push_back(rep);
        journal_unit(rep, unit_payload_json(cur(), rep.unit));
        note_unit_outcome(status);
        next_unit();
    }

    /// Shared by live completion and journal replay: quarantine counting
    /// must evolve identically in both, or a resumed campaign would run
    /// units the original would have skipped.
    void note_unit_outcome(UnitStatus status) {
        if (status == UnitStatus::Ok) {
            device_failures = 0;
            return;
        }
        ++device_failures;
        const auto& sup = config.supervisor;
        if (sup.quarantine_after > 0 &&
            device_failures >= sup.quarantine_after && !device_quarantined) {
            device_quarantined = true;
            obs::inc(m_quarantined);
            if (auto* o = tb.observability())
                o->tracer().trigger(label(), "device.quarantined");
        }
    }

    void on_soft(std::uint64_t g) {
        if (g != gen || unit_done) return;
        soft_ev = sim::EventId{};
        *cancel = true; // the attempt quiesces at its next trial boundary
        ++gen;          // and its eventual completion is dropped
        ++attempts;
        obs::inc(m_retry);
        if (auto* o = tb.observability())
            o->tracer().trigger(label(), "unit.soft_deadline");
        loop().after(config.supervisor.retry_backoff,
                     [this, self = shared_from_this()] {
                         if (unit_done) return; // hard deadline ended it
                         launch_attempt();
                     });
    }

    void on_hard() {
        if (unit_done) return;
        hard_ev = sim::EventId{};
        hard_hit = true;
        if (cancel) *cancel = true; // salvage partial results if possible
        if (auto* o = tb.observability())
            o->tracer().trigger(label(), "unit.hard_deadline");
        // A unit that cannot even deliver partial results within the
        // grace window is abandoned — this is what un-wedges a campaign
        // whose probe no longer schedules any events.
        force_ev = loop().after(
            config.supervisor.hard_grace,
            [this, self = shared_from_this()] {
                if (unit_done) return;
                ++gen; // drop any completion that limps in later
                finish_unit(UnitStatus::GaveUp, "hard_deadline");
            });
    }

    void journal_unit(const UnitReport& rep, const std::string& payload) {
        if (!journaling) return;
        report::JournalEntry e;
        e.device = device;
        e.tag = cur().tag;
        e.unit = rep.unit;
        e.status = to_string(rep.status);
        e.attempts = rep.attempts;
        e.reason = rep.reason;
        e.t_start_ns = rep.t_start_ns;
        e.t_end_ns = rep.t_end_ns;
        e.state.client_eph = tb.client().ephemeral_cursor();
        e.state.server_eph = tb.server().ephemeral_cursor();
        auto& slot = tb.slot(device);
        auto& gw = *slot.gw;
        e.state.udp_pool = gw.nat().udp_table().pool_cursor();
        e.state.tcp_pool = gw.nat().tcp_table().pool_cursor();
        // Stamp the current device's impairment RNG streams (the only
        // impairers whose state the remaining units can observe: earlier
        // devices are finished, later devices carry no traffic yet).
        auto stamp = [&](sim::Link& link, const char* lname,
                         sim::Link::Side side, const char* dname) {
            std::uint64_t seed = 0, draws = 0;
            if (link.impair_rng_state(side, seed, draws))
                e.state.rng.push_back({device, lname, dname, seed, draws});
        };
        stamp(*slot.wan_link, "wan", sim::Link::Side::A, "a2b");
        stamp(*slot.wan_link, "wan", sim::Link::Side::B, "b2a");
        stamp(*slot.lan_link, "lan", sim::Link::Side::A, "a2b");
        stamp(*slot.lan_link, "lan", sim::Link::Side::B, "b2a");
        if (!journal.append(e, payload))
            throw std::runtime_error(
                "campaign journal: write failed for '" +
                config.supervisor.journal_path + "'");
    }

    void dispatch(std::uint64_t g) {
        auto self = shared_from_this();
        const std::string& u = unit();
        if (u == "udp1" || u == "udp2" || u == "udp3") {
            const UdpPattern pattern =
                u == "udp1" ? UdpPattern::SolitaryOutbound
                : u == "udp2" ? UdpPattern::InboundRefresh
                              : UdpPattern::Bidirectional;
            auto cfg = config.udp;
            cfg.search.cancel = cancel;
            measure_udp_timeout(
                tb, device, pattern, cfg,
                [self, g, u](UdpTimeoutResult r) {
                    self->complete(g, [&](DeviceResults& d) {
                        (u == "udp1"   ? d.udp1
                         : u == "udp2" ? d.udp2
                                       : d.udp3) = std::move(r);
                    });
                });
            return;
        }
        if (u == "udp4") {
            auto cfg = config.udp;
            cfg.search.cancel = cancel;
            measure_port_reuse(tb, device, cfg,
                               [self, g](PortReuseResult r) {
                                   self->complete(g, [&](DeviceResults& d) {
                                       d.udp4 = std::move(r);
                                   });
                               });
            return;
        }
        if (u.rfind("udp5:", 0) == 0) {
            const std::string svc = u.substr(5);
            auto cfg = config.udp;
            cfg.search.cancel = cancel;
            for (const auto& [name, port] : config.udp5_services)
                if (name == svc) cfg.server_port = port;
            measure_udp_timeout(
                tb, device, UdpPattern::InboundRefresh, cfg,
                [self, g, svc](UdpTimeoutResult r) {
                    self->complete(g, [&](DeviceResults& d) {
                        d.udp5[svc] = std::move(r);
                    });
                });
            return;
        }
        if (u == "tcp1") {
            auto cfg = config.tcp_timeout;
            cfg.search.cancel = cancel;
            measure_tcp_timeout(tb, device, cfg,
                                [self, g](TcpTimeoutResult r) {
                                    self->complete(g, [&](DeviceResults& d) {
                                        d.tcp1 = std::move(r);
                                    });
                                });
            return;
        }
        if (u == "tcp2") {
            auto cfg = config.throughput;
            cfg.cancel = cancel;
            measure_throughput(tb, device, cfg,
                               [self, g](ThroughputResult r) {
                                   self->complete(g, [&](DeviceResults& d) {
                                       d.tcp2 = r;
                                   });
                               });
            return;
        }
        if (u == "tcp4") {
            auto cfg = config.max_bindings;
            cfg.cancel = cancel;
            measure_max_bindings(tb, device, cfg,
                                 [self, g](MaxBindingsResult r) {
                                     self->complete(g, [&](DeviceResults& d) {
                                         d.tcp4 = r;
                                     });
                                 });
            return;
        }
        if (u == "icmp") {
            measure_icmp(tb, device, [self, g](IcmpProbeResult r) {
                self->complete(g,
                               [&](DeviceResults& d) { d.icmp = r; });
            });
            return;
        }
        if (u == "transports") {
            measure_transport_support(
                tb, device, [self, g](TransportSupportResult r) {
                    self->complete(
                        g, [&](DeviceResults& d) { d.transports = r; });
                });
            return;
        }
        if (u == "dns") {
            measure_dns(tb, device, [self, g](DnsProbeResult r) {
                self->complete(g, [&](DeviceResults& d) { d.dns = r; });
            });
            return;
        }
        if (u == "quirks") {
            measure_quirks(tb, device, [self, g](QuirksResult r) {
                self->complete(g,
                               [&](DeviceResults& d) { d.quirks = r; });
            });
            return;
        }
        if (u == "stun") {
            measure_stun(tb, device, [self, g](StunProbeResult r) {
                self->complete(g, [&](DeviceResults& d) { d.stun = r; });
            });
            return;
        }
        if (u == "binding_rate") {
            measure_binding_rate(
                tb, device, config.binding_rate_count,
                [self, g](BindingRateResult r) {
                    self->complete(
                        g, [&](DeviceResults& d) { d.binding_rate = r; });
                });
            return;
        }
        GK_ENSURES(false); // unit_plan and dispatch share one vocabulary
    }
};

void Testrund::run(const CampaignConfig& config,
                   std::function<void(std::vector<DeviceResults>)> done) {
    auto runner = std::make_shared<Runner>(tb_, config, std::move(done));
    runner->start();
}

std::vector<DeviceResults>
Testrund::run_blocking(const CampaignConfig& config) {
    if (!tb_.all_ready()) tb_.start_and_wait();
    std::vector<DeviceResults> out;
    bool finished = false;
    run(config, [&](std::vector<DeviceResults> r) {
        out = std::move(r);
        finished = true;
    });
    tb_.loop().run();
    GK_ENSURES(finished);
    return out;
}

std::string ShardScheduler::segment_path(const std::string& path,
                                         int shard) {
    return path + ".shard" + std::to_string(shard);
}

namespace {

bool file_exists(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    return f.good();
}

/// Carve device `dev`'s entries out of a merged journal into shard
/// `shard`'s segment file. Entry lines are copied verbatim — merging is
/// a byte-level concatenation, so carve + re-merge round-trips exactly —
/// and only the header is re-rendered with the shard index added.
void carve_segment(const std::string& merged_path,
                   const std::string& seg_path, int shard, int dev) {
    std::ifstream in(merged_path, std::ios::binary);
    if (!in.good())
        throw std::runtime_error("shard scheduler: cannot open journal '" +
                                 merged_path + "'");
    std::ofstream out;
    std::string line;
    std::size_t lineno = 0;
    bool have_header = false;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) continue;
        std::string err;
        auto v = report::json_parse(line, &err);
        if (!v)
            throw std::runtime_error(
                "shard scheduler: journal '" + merged_path + "' line " +
                std::to_string(lineno) + ": " + err);
        if (!have_header) {
            report::JournalHeader header;
            if (!report::decode_journal_header(*v, header, &err))
                throw std::runtime_error("shard scheduler: journal '" +
                                         merged_path + "': " + err);
            header.shard = shard;
            out.open(seg_path, std::ios::binary | std::ios::trunc);
            if (!out.good())
                throw std::runtime_error(
                    "shard scheduler: cannot create segment '" + seg_path +
                    "'");
            out << report::journal_header_line(header) << '\n';
            have_header = true;
            continue;
        }
        const report::JsonValue* d = v->find("device");
        if (d == nullptr)
            throw std::runtime_error(
                "shard scheduler: journal '" + merged_path + "' line " +
                std::to_string(lineno) + ": entry lacks device");
        if (static_cast<int>(d->as_int(-1)) == dev) out << line << '\n';
    }
    if (!have_header)
        throw std::runtime_error("shard scheduler: journal '" +
                                 merged_path + "' is empty");
    out.flush();
    if (!out.good())
        throw std::runtime_error(
            "shard scheduler: write failed for segment '" + seg_path + "'");
}

/// Concatenate completed shard segments into the merged journal (one
/// header with the shard index dropped, then entries in device order)
/// and remove the segments. The merged text is assembled fully before
/// the output opens, so a kill mid-merge leaves the segments — the
/// resumable state — intact.
void merge_segments(const std::string& path, int n_shards) {
    std::ostringstream buf;
    std::string expected_fp;
    for (int k = 0; k < n_shards; ++k) {
        const std::string seg = ShardScheduler::segment_path(path, k);
        std::ifstream in(seg, std::ios::binary);
        if (!in.good())
            throw std::runtime_error(
                "shard scheduler: missing journal segment '" + seg + "'");
        std::string line;
        bool saw_header = false;
        while (std::getline(in, line)) {
            if (line.empty()) continue;
            if (!saw_header) {
                saw_header = true;
                std::string err;
                auto v = report::json_parse(line, &err);
                report::JournalHeader header;
                if (!v ||
                    !report::decode_journal_header(*v, header, &err))
                    throw std::runtime_error("shard scheduler: segment '" +
                                             seg + "': " + err);
                if (k == 0) {
                    expected_fp = header.fingerprint;
                    header.shard = -1;
                    buf << report::journal_header_line(header) << '\n';
                } else if (header.fingerprint != expected_fp) {
                    throw std::runtime_error(
                        "shard scheduler: segment '" + seg +
                        "' fingerprint differs from segment 0 (segments "
                        "from different campaigns?)");
                }
                continue;
            }
            buf << line << '\n';
        }
        if (!saw_header)
            throw std::runtime_error("shard scheduler: segment '" + seg +
                                     "' is empty");
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << buf.str();
    out.flush();
    if (!out.good())
        throw std::runtime_error(
            "shard scheduler: cannot write merged journal '" + path + "'");
    out.close();
    for (int k = 0; k < n_shards; ++k)
        std::remove(ShardScheduler::segment_path(path, k).c_str());
}

/// Merge per-shard trace segments in device order. From shard k keep
/// its own device's events plus device-less / host-level lines (test
/// client/server events, trigger markers — these arise only from the
/// shard's own campaign traffic); drop other roster devices' events,
/// which are the full-roster bring-up every shard re-runs.
void merge_traces(const std::string& path,
                  const std::vector<std::string>& labels) {
    const std::set<std::string> roster(labels.begin(), labels.end());
    std::ostringstream buf;
    for (std::size_t k = 0; k < labels.size(); ++k) {
        const std::string seg =
            ShardScheduler::segment_path(path, static_cast<int>(k));
        std::ifstream in(seg, std::ios::binary);
        if (!in.good())
            throw std::runtime_error(
                "shard scheduler: missing trace segment '" + seg + "'");
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty()) continue;
            auto v = report::json_parse(line);
            if (!v)
                throw std::runtime_error(
                    "shard scheduler: malformed trace line in '" + seg +
                    "'");
            const report::JsonValue* d = v->find("device");
            const std::string dev = d ? d->as_string() : std::string();
            if (dev.empty() || dev == labels[k] || roster.count(dev) == 0)
                buf << line << '\n';
        }
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << buf.str();
    out.flush();
    if (!out.good())
        throw std::runtime_error(
            "shard scheduler: cannot write merged trace '" + path + "'");
    out.close();
    for (std::size_t k = 0; k < labels.size(); ++k)
        std::remove(
            ShardScheduler::segment_path(path, static_cast<int>(k))
                .c_str());
}

} // namespace

ShardScheduler::Output ShardScheduler::run(const Options& opts) {
    const int n = static_cast<int>(opts.roster.size());
    Output out;
    if (opts.metrics) out.metrics = std::make_unique<obs::MetricsRegistry>();
    if (n == 0) return out;

    // Resume preparation runs serially before any worker spawns: shard k
    // resumes from its own segment when present, else carves its device's
    // entries out of a previously merged journal (written at any worker
    // count, including a pre-shard sequential journal), else starts
    // fresh — a killed campaign legitimately leaves later shards with no
    // segment at all.
    std::vector<char> seg_resume(static_cast<std::size_t>(n), 0);
    if (!opts.journal_path.empty() && opts.resume) {
        for (int k = 0; k < n; ++k) {
            const std::string seg = segment_path(opts.journal_path, k);
            if (file_exists(seg)) {
                seg_resume[static_cast<std::size_t>(k)] = 1;
            } else if (file_exists(opts.journal_path)) {
                carve_segment(opts.journal_path, seg, k, k);
                seg_resume[static_cast<std::size_t>(k)] = 1;
            }
        }
    }

    struct Cell {
        std::vector<DeviceResults> results;
        std::unique_ptr<obs::MetricsRegistry> metrics;
        std::string label;
        std::exception_ptr error;
    };
    std::vector<Cell> cells(static_cast<std::size_t>(n));
    std::mutex io_mutex;

    auto run_shard = [&](int k) {
        Cell& cell = cells[static_cast<std::size_t>(k)];
        sim::EventLoop loop;
        // obs before the testbed: components keep raw instrument
        // pointers, so the registry must outlive them.
        std::unique_ptr<obs::Observability> obs;
        std::unique_ptr<obs::JsonlSink> sink;
        std::unique_ptr<obs::FlightRecorder> recorder;
        if (opts.metrics || !opts.trace_path.empty())
            obs = std::make_unique<obs::Observability>(loop);
        if (!opts.trace_path.empty()) {
            const std::string seg = segment_path(opts.trace_path, k);
            sink = std::make_unique<obs::JsonlSink>(seg);
            if (!sink->ok())
                throw std::runtime_error(
                    "shard scheduler: cannot open trace segment '" + seg +
                    "'");
            recorder = std::make_unique<obs::FlightRecorder>();
            recorder->set_dump_path(seg + ".flight");
            obs->tracer().add_sink(recorder.get());
            obs->tracer().add_sink(sink.get());
        }
        Testbed tb(loop);
        for (const auto& profile : opts.roster) tb.add_device(profile);
        if (obs) tb.attach_observability(obs.get());
        tb.start_and_wait();
        cell.label = Testbed::device_label(tb.slot(k));

        CampaignConfig cfg = opts.config;
        cfg.shard = ShardSpec{k, k, k};
        if (!opts.journal_path.empty()) {
            cfg.supervisor.journal_path =
                segment_path(opts.journal_path, k);
            cfg.supervisor.resume =
                seg_resume[static_cast<std::size_t>(k)] != 0;
        } else {
            cfg.supervisor.journal_path.clear();
            cfg.supervisor.resume = false;
        }
        Testrund rund(tb);
        cell.results = rund.run_blocking(cfg);

        if (opts.metrics) {
            // Keep the shard's own-device series plus device-less and
            // host-level ones; other roster devices' series are the
            // full-roster bring-up this shard re-ran.
            std::set<std::string> roster_labels;
            for (int d = 0; d < n; ++d)
                roster_labels.insert(Testbed::device_label(tb.slot(d)));
            cell.metrics = std::make_unique<obs::MetricsRegistry>();
            cell.metrics->merge_from(
                obs->metrics(),
                [&](std::string_view, const obs::Labels& labels) {
                    for (const auto& [lk, lv] : labels)
                        if (lk == "device" &&
                            roster_labels.count(lv) != 0)
                            return lv == cell.label;
                    return true;
                });
        }
        if (opts.verbose) {
            const std::lock_guard<std::mutex> lock(io_mutex);
            std::cerr << "[gatekit] shard " << (k + 1) << "/" << n << " ("
                      << opts.roster[static_cast<std::size_t>(k)].tag
                      << ") done\n";
        }
    };

    std::atomic<int> next{0};
    auto worker = [&] {
        for (int k; (k = next.fetch_add(1)) < n;) {
            try {
                run_shard(k);
            } catch (...) {
                cells[static_cast<std::size_t>(k)].error =
                    std::current_exception();
            }
        }
    };
    const int workers = std::clamp(opts.workers, 1, n);
    if (workers == 1) {
        worker(); // no threads: byte-identical output, zero overhead
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
        for (auto& t : pool) t.join();
    }
    for (const auto& cell : cells)
        if (cell.error) std::rethrow_exception(cell.error);

    std::vector<std::string> labels;
    labels.reserve(cells.size());
    for (auto& cell : cells) {
        for (auto& r : cell.results) out.results.push_back(std::move(r));
        labels.push_back(cell.label);
        if (out.metrics && cell.metrics)
            out.metrics->merge_from(*cell.metrics);
    }
    if (!opts.journal_path.empty()) merge_segments(opts.journal_path, n);
    if (!opts.trace_path.empty()) merge_traces(opts.trace_path, labels);
    return out;
}

} // namespace gatekit::harness
