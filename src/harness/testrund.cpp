#include "harness/testrund.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "harness/results_io.hpp"
#include "obs/timeseries.hpp"
#include "report/journal.hpp"
#include "util/assert.hpp"

namespace gatekit::harness {

std::uint64_t impair_seed_for(std::uint64_t campaign_seed, int device,
                              bool wan_link, int direction) {
    // splitmix64 finalizer over campaign_seed xor the stream tag. Masked
    // to 62 bits: the journal stores seeds as JSON integers and int64
    // round-trips exactly only below 2^63.
    std::uint64_t x = campaign_seed ^
                      (static_cast<std::uint64_t>(device) * 4ULL +
                       (wan_link ? 2ULL : 0ULL) +
                       static_cast<std::uint64_t>(direction));
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x = x ^ (x >> 31);
    return x & ((1ULL << 62) - 1);
}

const char* to_string(UnitStatus s) {
    switch (s) {
    case UnitStatus::Ok: return "ok";
    case UnitStatus::Degraded: return "degraded";
    case UnitStatus::GaveUp: return "gave_up";
    case UnitStatus::Quarantined: return "quarantined";
    }
    return "ok";
}

bool unit_status_from_string(std::string_view s, UnitStatus& out) {
    if (s == "ok") {
        out = UnitStatus::Ok;
    } else if (s == "degraded") {
        out = UnitStatus::Degraded;
    } else if (s == "gave_up") {
        out = UnitStatus::GaveUp;
    } else if (s == "quarantined") {
        out = UnitStatus::Quarantined;
    } else {
        return false;
    }
    return true;
}

/// Campaign supervisor: walks the unit plan device by device, launching
/// one probe attempt at a time. Each attempt carries a fresh cancel token
/// and a generation stamp; deadline watchdogs flip the token (the probe
/// quiesces at its next trial boundary) and bump the generation (a late
/// completion is dropped instead of double-advancing the campaign).
/// With the default policy no watchdog is ever scheduled and every unit
/// completes through the same callback chain as the unsupervised runner,
/// so the event stream is bit-for-bit identical.
struct Testrund::Runner : std::enable_shared_from_this<Testrund::Runner> {
    Runner(Testbed& tb, CampaignConfig config,
           std::function<void(std::vector<DeviceResults>)> done)
        : tb(tb), config(std::move(config)), done(std::move(done)),
          plan(unit_plan(this->config)) {}

    Testbed& tb;
    CampaignConfig config;
    std::function<void(std::vector<DeviceResults>)> done;
    std::vector<std::string> plan;
    std::vector<DeviceResults> results;
    int device = 0;
    std::size_t unit_idx = 0;

    // Per-unit supervisor state.
    std::uint64_t gen = 0; ///< stamps attempts; stale callbacks are dropped
    int attempts = 1;
    sim::TimePoint unit_start{};
    std::shared_ptr<bool> cancel;
    bool hard_hit = false;
    bool unit_done = false;
    sim::EventId soft_ev{}, hard_ev{}, force_ev{};

    // Per-device quarantine state.
    int device_failures = 0;
    bool device_quarantined = false;

    /// NAT hardening counters at unit start. finish_unit() compares them
    /// against the live values and annotates a failed unit's reason with
    /// any attack-shaped deltas, so campaign post-mortems can separate
    /// probe bugs from hostile traffic the gateway was fending off.
    struct AttackSnap {
        std::uint64_t icmp_hostile = 0; ///< rate-limited + bad-quote + teardown
        std::uint64_t wan_syn = 0;      ///< dropped + tarpitted + stray
        std::uint64_t budget = 0;       ///< host-budget refusals, both tables
    };
    AttackSnap attack_snap;

    report::JournalWriter journal;
    bool journaling = false;

    // Supervisor instruments, re-registered per device; branch-on-null.
    obs::Counter* m_retry = nullptr;
    obs::Counter* m_degraded = nullptr;
    obs::Counter* m_quarantined = nullptr;

    DeviceResults& cur() { return results.back(); }
    sim::EventLoop& loop() { return tb.loop(); }
    const std::string& unit() const { return plan[unit_idx]; }
    std::string label() { return Testbed::device_label(tb.slot(device)); }

    bool supervision_active() const {
        return config.supervisor.soft_enabled() ||
               config.supervisor.hard_enabled() || journaling;
    }

    /// Device range this runner measures ([first_dev, last_dev]); the
    /// whole roster unless a ShardSpec narrows it.
    int first_dev() const { return std::max(0, config.shard.first_device); }
    int last_dev() const {
        const int max = static_cast<int>(tb.device_count()) - 1;
        const int l = config.shard.last_device;
        return (l >= 0 && l < max) ? l : max;
    }

    /// Global roster index of local testbed slot d. Journal entries and
    /// impairment RNG streams always use global indices, so a shard's
    /// segment stays carve/merge-compatible with a sequential journal
    /// of the whole roster.
    int global_dev(int d) const { return d + config.shard.device_base; }

    /// The campaign fingerprint this journal binds to: precomputed by
    /// the shard scheduler (which hashes the full roster's profile
    /// identities once), or derived here when the testbed itself holds
    /// the full roster. Hashing profile identities rather than tags is
    /// what makes the fingerprint cover sampled rosters, whose tags
    /// ("p0", "p1", ...) say nothing about behavior.
    std::string fingerprint() const {
        if (!config.shard.fingerprint.empty())
            return config.shard.fingerprint;
        std::vector<std::string> ids;
        ids.reserve(tb.device_count());
        for (std::size_t i = 0; i < tb.device_count(); ++i)
            ids.push_back(gateway::profile_identity(
                tb.slot(static_cast<int>(i)).gw->profile()));
        return campaign_fingerprint(config, ids);
    }

    /// Install the campaign's declarative impairments on every device's
    /// WAN link, each direction seeded from its own derived stream. Runs
    /// before any measurement traffic (bring-up is already complete and
    /// unimpaired), so a device's fate sequence is a pure function of
    /// (campaign seed, device, direction) — identical whether the
    /// campaign runs sequentially or sharded at any worker count.
    void apply_impairments() {
        if (!config.impair.any()) return;
        for (std::size_t i = 0; i < tb.device_count(); ++i) {
            const int d = static_cast<int>(i);
            auto& link = *tb.slot(d).wan_link;
            link.set_impairments(
                sim::Link::Side::A, config.impair.wan,
                impair_seed_for(config.impair.seed, global_dev(d), true, 0));
            link.set_impairments(
                sim::Link::Side::B, config.impair.wan,
                impair_seed_for(config.impair.seed, global_dev(d), true, 1));
        }
    }

    std::vector<std::string> roster() const {
        std::vector<std::string> tags;
        for (std::size_t i = 0; i < tb.device_count(); ++i)
            tags.push_back(
                tb.slot(static_cast<int>(i)).gw->profile().tag);
        return tags;
    }

    void start() {
        const auto& sup = config.supervisor;
        std::int64_t resume_at_ns = -1;
        if (!sup.journal_path.empty()) {
            journaling = true; // before enter_device: gates the counters
        }
        apply_impairments(); // before replay: RNG restore needs them live
        if (tb.device_count() == 0 || first_dev() > last_dev()) {
            finish_campaign();
            return;
        }
        device = first_dev();
        if (plan.empty()) {
            // Nothing to measure: enumerate the devices, as before.
            for (int d = first_dev(); d <= last_dev(); ++d) {
                results.emplace_back();
                results.back().tag = tb.slot(d).gw->profile().tag;
            }
            finish_campaign();
            return;
        }
        enter_device();
        if (!sup.journal_path.empty()) {
            if (sup.resume) {
                resume_at_ns = load_and_replay();
                if (!journal.open_append(sup.journal_path))
                    throw std::runtime_error(
                        "campaign journal: cannot append to '" +
                        sup.journal_path + "'");
            } else {
                report::JournalHeader header;
                header.schema = report::kJournalSchema;
                header.fingerprint = fingerprint();
                header.devices = roster();
                header.shard = config.shard.index;
                if (!journal.open_new(sup.journal_path, header))
                    throw std::runtime_error(
                        "campaign journal: cannot create '" +
                        sup.journal_path + "'");
            }
        }
        if (device > last_dev()) {
            finish_campaign(); // journal already covered every unit
            return;
        }
        if (resume_at_ns >= 0) {
            // Realign the sim clock with the uninterrupted run: the next
            // unit must start exactly when it would have, or every
            // granularity-quantized expiry downstream shifts.
            const sim::TimePoint t{sim::Duration(resume_at_ns)};
            if (t > loop().now()) {
                loop().at(t, [self = shared_from_this()] {
                    self->start_unit();
                });
                return;
            }
        }
        start_unit();
    }

    /// Replay the journal prefix into `results`, advancing the campaign
    /// pointer past every completed unit. Returns the sim time (ns) at
    /// which the first live unit must start, or -1 with nothing replayed.
    std::int64_t load_and_replay() {
        const auto& sup = config.supervisor;
        report::JournalHeader header;
        std::vector<report::JournalEntry> entries;
        std::string err;
        if (!report::JournalReader::load(sup.journal_path, header, entries,
                                         &err))
            throw std::runtime_error("campaign journal: " + err);
        if (header.fingerprint != fingerprint())
            throw std::runtime_error(
                "campaign journal: fingerprint mismatch (campaign config "
                "or roster changed since the journal was written)");
        if (header.devices != roster())
            throw std::runtime_error(
                "campaign journal: device roster mismatch");
        if (header.shard != config.shard.index)
            throw std::runtime_error(
                "campaign journal: shard index mismatch (journal written "
                "by shard " + std::to_string(header.shard) +
                ", resuming as shard " +
                std::to_string(config.shard.index) + ")");
        if (entries.empty()) return -1;

        for (const auto& e : entries) {
            if (device > last_dev())
                throw std::runtime_error(
                    "campaign journal: more entries than planned units");
            if (e.device != global_dev(device) || e.unit != unit())
                throw std::runtime_error(
                    "campaign journal: entry order diverges from the "
                    "campaign plan at device " + std::to_string(device) +
                    " unit '" + unit() + "'");
            UnitReport rep;
            rep.unit = e.unit;
            if (!unit_status_from_string(e.status, rep.status))
                throw std::runtime_error(
                    "campaign journal: unknown status '" + e.status + "'");
            rep.attempts = e.attempts;
            rep.reason = e.reason;
            rep.t_start_ns = e.t_start_ns;
            rep.t_end_ns = e.t_end_ns;
            if (e.payload.type != report::JsonValue::Type::Null)
                apply_unit_payload(cur(), e.unit, e.payload);
            cur().units.push_back(std::move(rep));
            note_unit_outcome(cur().units.back().status);
            advance_pointer();
        }
        const auto& last = entries.back();
        // Restore the allocator cursors the probes observe across unit
        // boundaries. Earlier devices are finished (their cursors are
        // dead state); only the globals and, mid-device, the current
        // device's port pools matter.
        tb.client().set_ephemeral_cursor(
            static_cast<std::uint16_t>(last.state.client_eph));
        tb.server().set_ephemeral_cursor(
            static_cast<std::uint16_t>(last.state.server_eph));
        if (device <= last_dev() && unit_idx > 0) {
            auto& gw = *tb.slot(device).gw;
            gw.nat().udp_table().set_pool_cursor(
                static_cast<std::uint16_t>(last.state.udp_pool));
            gw.nat().tcp_table().set_pool_cursor(
                static_cast<std::uint16_t>(last.state.tcp_pool));
        }
        // Restore the impairment RNG streams exactly where the replayed
        // traffic left them. The impairers were installed by
        // apply_impairments() before replay; a stamp for a link with no
        // impairer means the campaign configs diverged.
        for (const auto& st : last.state.rng) {
            const int local = st.device - config.shard.device_base;
            if (local < 0 || local >= static_cast<int>(tb.device_count()))
                throw std::runtime_error(
                    "campaign journal: rng stamp device out of roster");
            auto& slot = tb.slot(local);
            sim::Link* link = st.link == "wan"   ? slot.wan_link.get()
                              : st.link == "lan" ? slot.lan_link.get()
                                                 : nullptr;
            if (link == nullptr || (st.dir != "a2b" && st.dir != "b2a"))
                throw std::runtime_error(
                    "campaign journal: malformed rng stamp (link '" +
                    st.link + "', dir '" + st.dir + "')");
            const auto side = st.dir == "a2b" ? sim::Link::Side::A
                                              : sim::Link::Side::B;
            if (!link->restore_impair_rng(side, st.seed, st.draws))
                throw std::runtime_error(
                    "campaign journal: rng stamp for an uninstalled "
                    "impairer (campaign impairments changed since the "
                    "journal was written)");
        }
        // Re-warm the ARP state the replayed traffic left behind: every
        // device's first unit resolves the client<->gateway and
        // gateway<->server pairs, and entries never expire. Without this
        // the first live unit pays ARP exchanges the uninterrupted run
        // already paid, shifting every later timestamp.
        const int last_local = last.device - config.shard.device_base;
        for (int d = first_dev(); d <= last_local &&
                                  d < static_cast<int>(tb.device_count());
             ++d) {
            auto& slot = tb.slot(d);
            auto& gw = *slot.gw;
            slot.client_if->arp_cache().insert(gw.lan_addr(),
                                               gw.lan_if().mac());
            gw.lan_if().arp_cache().insert(slot.client_addr,
                                           slot.client_if->mac());
            gw.wan_if().arp_cache().insert(slot.server_addr,
                                           slot.server_if->mac());
            slot.server_if->arp_cache().insert(slot.gw_wan_addr,
                                               gw.wan_if().mac());
        }
        return last.t_end_ns;
    }

    void enter_device() {
        results.emplace_back();
        cur().tag = tb.slot(device).gw->profile().tag;
        device_failures = 0;
        device_quarantined = false;
        m_retry = m_degraded = m_quarantined = nullptr;
        if (auto* o = tb.observability(); o && supervision_active()) {
            auto& reg = o->metrics();
            m_retry = reg.counter("unit.retry", {{"device", label()}});
            m_degraded = reg.counter("unit.degraded", {{"device", label()}});
            m_quarantined =
                reg.counter("device.quarantined", {{"device", label()}});
        }
    }

    /// Move to the next planned unit; false when the campaign is done.
    bool advance_pointer() {
        ++unit_idx;
        if (unit_idx >= plan.size()) {
            unit_idx = 0;
            ++device;
            if (device > last_dev()) return false;
            enter_device();
        }
        return true;
    }

    void next_unit() {
        if (!advance_pointer()) {
            finish_campaign();
            return;
        }
        start_unit();
    }

    void finish_campaign() { done(std::move(results)); }

    void start_unit() {
        if (device_quarantined) {
            // Skipped wholesale; recorded and journaled so a resumed
            // campaign replays the same verdict.
            const std::int64_t now_ns = loop().now().count();
            UnitReport rep{unit(),  UnitStatus::Quarantined,
                           0,       "device_quarantined",
                           now_ns,  now_ns};
            cur().units.push_back(rep);
            journal_unit(rep, "null");
            if (config.profiler != nullptr) {
                config.profiler->begin_unit(); // zero-length span
                config.profiler->end_unit(label(), rep.unit,
                                          to_string(rep.status), 0, now_ns,
                                          now_ns);
            }
            next_unit(); // bounded recursion: at most one plan per device
            return;
        }
        unit_start = loop().now();
        attack_snap = attack_counters();
        attempts = 1;
        hard_hit = false;
        unit_done = false;
        hard_ev = sim::EventId{};
        if (config.profiler != nullptr) config.profiler->begin_unit();
        launch_attempt();
    }

    void launch_attempt() {
        const std::uint64_t g = ++gen;
        cancel = std::make_shared<bool>(false);
        const auto& sup = config.supervisor;
        if (sup.soft_enabled() && attempts < sup.max_attempts) {
            soft_ev = loop().after(
                sup.soft_deadline,
                [this, g, self = shared_from_this()] { on_soft(g); });
        }
        if (sup.hard_enabled() && !hard_hit && !hard_ev) {
            // One hard budget per unit, spanning soft retries.
            hard_ev = loop().at(
                unit_start + sup.hard_deadline,
                [this, self = shared_from_this()] { on_hard(); });
        }
        dispatch(g);
    }

    template <typename Apply>
    void complete(std::uint64_t g, Apply apply) {
        if (g != gen || unit_done) return; // superseded or force-advanced
        apply(cur());
        if (hard_hit)
            finish_unit(UnitStatus::Degraded, "hard_deadline");
        else
            finish_unit(UnitStatus::Ok, "");
    }

    AttackSnap attack_counters() {
        auto& nat = tb.slot(device).gw->nat();
        const auto& st = nat.stats();
        AttackSnap s;
        s.icmp_hostile =
            st.icmp_rate_limited + st.icmp_quote_rejected + st.icmp_teardowns;
        s.wan_syn =
            st.wan_syn_dropped + st.wan_syn_tarpitted + st.wan_stray_dropped;
        s.budget = nat.udp_table().host_budget_refusals() +
                   nat.tcp_table().host_budget_refusals();
        return s;
    }

    /// ";attack=<comma-list>" naming the hardening counter groups that
    /// moved during this unit, or empty. Journal replay copies the
    /// composite reason verbatim, so resumed campaigns keep the verdict.
    std::string attack_annotation() {
        const AttackSnap now = attack_counters();
        std::string list;
        const auto add = [&list](const char* name) {
            if (!list.empty()) list += ',';
            list += name;
        };
        if (now.icmp_hostile > attack_snap.icmp_hostile)
            add("icmp_error_flood");
        if (now.wan_syn > attack_snap.wan_syn) add("wan_syn_flood");
        if (now.budget > attack_snap.budget) add("binding_budget_pressure");
        return list.empty() ? std::string{} : ";attack=" + list;
    }

    void finish_unit(UnitStatus status, std::string reason) {
        unit_done = true;
        if (status != UnitStatus::Ok) reason += attack_annotation();
        if (soft_ev) loop().cancel(soft_ev);
        if (hard_ev) loop().cancel(hard_ev);
        if (force_ev) loop().cancel(force_ev);
        soft_ev = hard_ev = force_ev = sim::EventId{};
        if (status == UnitStatus::Degraded) obs::inc(m_degraded);
        UnitReport rep{unit(),    status,
                       attempts,  std::move(reason),
                       unit_start.count(), loop().now().count()};
        cur().units.push_back(rep);
        journal_unit(rep, unit_payload_json(cur(), rep.unit));
        if (config.profiler != nullptr)
            config.profiler->end_unit(label(), rep.unit,
                                      to_string(rep.status), rep.attempts,
                                      rep.t_start_ns, rep.t_end_ns);
        note_unit_outcome(status);
        next_unit();
    }

    /// Shared by live completion and journal replay: quarantine counting
    /// must evolve identically in both, or a resumed campaign would run
    /// units the original would have skipped.
    void note_unit_outcome(UnitStatus status) {
        if (status == UnitStatus::Ok) {
            device_failures = 0;
            return;
        }
        ++device_failures;
        const auto& sup = config.supervisor;
        if (sup.quarantine_after > 0 &&
            device_failures >= sup.quarantine_after && !device_quarantined) {
            device_quarantined = true;
            obs::inc(m_quarantined);
            if (auto* o = tb.observability())
                o->tracer().trigger(label(), "device.quarantined");
        }
    }

    void on_soft(std::uint64_t g) {
        if (g != gen || unit_done) return;
        soft_ev = sim::EventId{};
        *cancel = true; // the attempt quiesces at its next trial boundary
        ++gen;          // and its eventual completion is dropped
        ++attempts;
        obs::inc(m_retry);
        if (auto* o = tb.observability())
            o->tracer().trigger(label(), "unit.soft_deadline");
        loop().after(config.supervisor.retry_backoff,
                     [this, self = shared_from_this()] {
                         if (unit_done) return; // hard deadline ended it
                         launch_attempt();
                     });
    }

    void on_hard() {
        if (unit_done) return;
        hard_ev = sim::EventId{};
        hard_hit = true;
        if (cancel) *cancel = true; // salvage partial results if possible
        if (auto* o = tb.observability())
            o->tracer().trigger(label(), "unit.hard_deadline");
        // A unit that cannot even deliver partial results within the
        // grace window is abandoned — this is what un-wedges a campaign
        // whose probe no longer schedules any events.
        force_ev = loop().after(
            config.supervisor.hard_grace,
            [this, self = shared_from_this()] {
                if (unit_done) return;
                ++gen; // drop any completion that limps in later
                finish_unit(UnitStatus::GaveUp, "hard_deadline");
            });
    }

    void journal_unit(const UnitReport& rep, const std::string& payload) {
        if (!journaling) return;
        report::JournalEntry e;
        e.device = global_dev(device);
        e.tag = cur().tag;
        e.unit = rep.unit;
        e.status = to_string(rep.status);
        e.attempts = rep.attempts;
        e.reason = rep.reason;
        e.t_start_ns = rep.t_start_ns;
        e.t_end_ns = rep.t_end_ns;
        e.state.client_eph = tb.client().ephemeral_cursor();
        e.state.server_eph = tb.server().ephemeral_cursor();
        auto& slot = tb.slot(device);
        auto& gw = *slot.gw;
        e.state.udp_pool = gw.nat().udp_table().pool_cursor();
        e.state.tcp_pool = gw.nat().tcp_table().pool_cursor();
        // Stamp the current device's impairment RNG streams (the only
        // impairers whose state the remaining units can observe: earlier
        // devices are finished, later devices carry no traffic yet).
        auto stamp = [&](sim::Link& link, const char* lname,
                         sim::Link::Side side, const char* dname) {
            std::uint64_t seed = 0, draws = 0;
            if (link.impair_rng_state(side, seed, draws))
                e.state.rng.push_back(
                    {global_dev(device), lname, dname, seed, draws});
        };
        stamp(*slot.wan_link, "wan", sim::Link::Side::A, "a2b");
        stamp(*slot.wan_link, "wan", sim::Link::Side::B, "b2a");
        stamp(*slot.lan_link, "lan", sim::Link::Side::A, "a2b");
        stamp(*slot.lan_link, "lan", sim::Link::Side::B, "b2a");
        if (!journal.append(e, payload))
            throw std::runtime_error(
                "campaign journal: write failed for '" +
                config.supervisor.journal_path + "'");
    }

    void dispatch(std::uint64_t g) {
        auto self = shared_from_this();
        const std::string& u = unit();
        if (u == "udp1" || u == "udp2" || u == "udp3") {
            const UdpPattern pattern =
                u == "udp1" ? UdpPattern::SolitaryOutbound
                : u == "udp2" ? UdpPattern::InboundRefresh
                              : UdpPattern::Bidirectional;
            auto cfg = config.udp;
            cfg.search.cancel = cancel;
            measure_udp_timeout(
                tb, device, pattern, cfg,
                [self, g, u](UdpTimeoutResult r) {
                    self->complete(g, [&](DeviceResults& d) {
                        (u == "udp1"   ? d.udp1
                         : u == "udp2" ? d.udp2
                                       : d.udp3) = std::move(r);
                    });
                });
            return;
        }
        if (u == "udp4") {
            auto cfg = config.udp;
            cfg.search.cancel = cancel;
            measure_port_reuse(tb, device, cfg,
                               [self, g](PortReuseResult r) {
                                   self->complete(g, [&](DeviceResults& d) {
                                       d.udp4 = std::move(r);
                                   });
                               });
            return;
        }
        if (u.rfind("udp5:", 0) == 0) {
            const std::string svc = u.substr(5);
            auto cfg = config.udp;
            cfg.search.cancel = cancel;
            for (const auto& [name, port] : config.udp5_services)
                if (name == svc) cfg.server_port = port;
            measure_udp_timeout(
                tb, device, UdpPattern::InboundRefresh, cfg,
                [self, g, svc](UdpTimeoutResult r) {
                    self->complete(g, [&](DeviceResults& d) {
                        d.udp5[svc] = std::move(r);
                    });
                });
            return;
        }
        if (u == "tcp1") {
            auto cfg = config.tcp_timeout;
            cfg.search.cancel = cancel;
            measure_tcp_timeout(tb, device, cfg,
                                [self, g](TcpTimeoutResult r) {
                                    self->complete(g, [&](DeviceResults& d) {
                                        d.tcp1 = std::move(r);
                                    });
                                });
            return;
        }
        if (u == "tcp2") {
            auto cfg = config.throughput;
            cfg.cancel = cancel;
            measure_throughput(tb, device, cfg,
                               [self, g](ThroughputResult r) {
                                   self->complete(g, [&](DeviceResults& d) {
                                       d.tcp2 = r;
                                   });
                               });
            return;
        }
        if (u == "tcp4") {
            auto cfg = config.max_bindings;
            cfg.cancel = cancel;
            measure_max_bindings(tb, device, cfg,
                                 [self, g](MaxBindingsResult r) {
                                     self->complete(g, [&](DeviceResults& d) {
                                         d.tcp4 = r;
                                     });
                                 });
            return;
        }
        if (u == "icmp") {
            measure_icmp(tb, device, [self, g](IcmpProbeResult r) {
                self->complete(g,
                               [&](DeviceResults& d) { d.icmp = r; });
            });
            return;
        }
        if (u == "transports") {
            measure_transport_support(
                tb, device, [self, g](TransportSupportResult r) {
                    self->complete(
                        g, [&](DeviceResults& d) { d.transports = r; });
                });
            return;
        }
        if (u == "dns") {
            measure_dns(tb, device, [self, g](DnsProbeResult r) {
                self->complete(g, [&](DeviceResults& d) { d.dns = r; });
            });
            return;
        }
        if (u == "quirks") {
            measure_quirks(tb, device, [self, g](QuirksResult r) {
                self->complete(g,
                               [&](DeviceResults& d) { d.quirks = r; });
            });
            return;
        }
        if (u == "stun") {
            measure_stun(tb, device, [self, g](StunProbeResult r) {
                self->complete(g, [&](DeviceResults& d) { d.stun = r; });
            });
            return;
        }
        if (u == "binding_rate") {
            measure_binding_rate(
                tb, device, config.binding_rate_count,
                [self, g](BindingRateResult r) {
                    self->complete(
                        g, [&](DeviceResults& d) { d.binding_rate = r; });
                });
            return;
        }
        GK_ENSURES(false); // unit_plan and dispatch share one vocabulary
    }
};

void Testrund::run(const CampaignConfig& config,
                   std::function<void(std::vector<DeviceResults>)> done) {
    auto runner = std::make_shared<Runner>(tb_, config, std::move(done));
    runner->start();
}

std::vector<DeviceResults>
Testrund::run_blocking(const CampaignConfig& config) {
    if (!tb_.all_ready()) tb_.start_and_wait();
    std::vector<DeviceResults> out;
    bool finished = false;
    run(config, [&](std::vector<DeviceResults> r) {
        out = std::move(r);
        finished = true;
    });
    tb_.loop().run();
    GK_ENSURES(finished);
    return out;
}

std::string ShardScheduler::segment_path(const std::string& path,
                                         int shard) {
    return path + ".shard" + std::to_string(shard);
}

namespace {

bool file_exists(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    return f.good();
}

/// Fixed-size copy chunk for every streaming merge. Nothing in the
/// merge path may allocate proportionally to a segment or journal.
constexpr std::size_t kMergeChunk = 64 * 1024;

/// Streaming segment concatenator shared by the incremental journal and
/// trace merges. Appends segments one by one in fixed-size chunks,
/// deleting each segment only after its bytes are flushed to the merged
/// file — so a kill at any instant leaves either the segment (resumable
/// state) or its merged copy on disk, never neither.
class SegmentMerger {
public:
    /// Journal mode: `header_line` is written first and every segment's
    /// own header line is validated against `fingerprint`, then
    /// skipped. Trace mode (empty header_line): raw concatenation.
    SegmentMerger(std::string path, const std::string& header_line,
                  std::string fingerprint)
        : path_(std::move(path)), fingerprint_(std::move(fingerprint)),
          journal_mode_(!header_line.empty()) {
        out_.open(path_, std::ios::binary | std::ios::trunc);
        if (!out_.good())
            throw std::runtime_error(
                "shard scheduler: cannot write merged file '" + path_ +
                "'");
        if (journal_mode_) {
            out_ << header_line << '\n';
            note_buffer(header_line.size());
        }
    }

    void append_segment(const std::string& seg) {
        std::ifstream in(seg, std::ios::binary);
        if (!in.good())
            throw std::runtime_error(
                "shard scheduler: missing segment '" + seg + "'");
        if (journal_mode_) {
            std::string line;
            if (!std::getline(in, line) || line.empty())
                throw std::runtime_error("shard scheduler: segment '" +
                                         seg + "' is empty");
            note_buffer(line.size());
            std::string err;
            auto v = report::json_parse(line, &err);
            report::JournalHeader header;
            if (!v || !report::decode_journal_header(*v, header, &err))
                throw std::runtime_error("shard scheduler: segment '" +
                                         seg + "': " + err);
            if (header.fingerprint != fingerprint_)
                throw std::runtime_error(
                    "shard scheduler: segment '" + seg +
                    "' fingerprint differs from the campaign (segments "
                    "from different campaigns?)");
        }
        char buf[kMergeChunk];
        note_buffer(sizeof buf);
        while (in.read(buf, sizeof buf) || in.gcount() > 0) {
            out_.write(buf, in.gcount());
            stats_.bytes += static_cast<std::uint64_t>(in.gcount());
        }
        out_.flush();
        if (!out_.good())
            throw std::runtime_error(
                "shard scheduler: write failed for merged file '" + path_ +
                "'");
        in.close();
        std::remove(seg.c_str());
        ++stats_.segments;
    }

    void finish() {
        out_.flush();
        out_.close();
        if (out_.fail())
            throw std::runtime_error(
                "shard scheduler: cannot finalize merged file '" + path_ +
                "'");
    }

    const ShardScheduler::MergeStats& stats() const { return stats_; }

private:
    void note_buffer(std::size_t n) {
        stats_.peak_buffer_bytes = std::max(stats_.peak_buffer_bytes, n);
    }

    std::string path_;
    std::string fingerprint_;
    bool journal_mode_;
    std::ofstream out_;
    ShardScheduler::MergeStats stats_;
};

/// Carve every shard in `need` out of a merged journal in ONE streaming
/// pass. Entry lines are copied verbatim — merging is a byte-level
/// concatenation, so carve + re-merge round-trips exactly — and each
/// segment gets a fresh header naming its own device with the shard
/// index added. Segments are written to "<seg>.tmp" and renamed whole,
/// so a kill mid-carve never leaves a truncated segment shadowing the
/// still-intact merged journal. Only devices with at least one entry
/// get a segment (their shard resumes from it; entry-less shards start
/// fresh, which is the same outcome with one less file). Sets
/// seg_resume[k]=1 for every segment produced.
void carve_all_segments(const std::string& merged_path,
                        const std::string& journal_path,
                        const std::vector<char>& need,
                        std::vector<char>& seg_resume) {
    std::ifstream in(merged_path, std::ios::binary);
    if (!in.good())
        throw std::runtime_error("shard scheduler: cannot open journal '" +
                                 merged_path + "'");
    report::JournalHeader merged_header;
    std::ofstream out;
    std::string open_tmp, open_seg;
    int open_dev = -1, prev_dev = -1;
    bool have_header = false;
    std::string line;
    std::size_t lineno = 0;

    auto close_open_segment = [&] {
        if (open_dev < 0) return;
        out.flush();
        if (!out.good())
            throw std::runtime_error(
                "shard scheduler: write failed for segment '" + open_seg +
                "'");
        out.close();
        if (std::rename(open_tmp.c_str(), open_seg.c_str()) != 0)
            throw std::runtime_error(
                "shard scheduler: cannot finalize segment '" + open_seg +
                "'");
        seg_resume[static_cast<std::size_t>(open_dev)] = 1;
        open_dev = -1;
    };

    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) continue;
        std::string err;
        auto v = report::json_parse(line, &err);
        if (!v) {
            // A torn final line is the legitimate residue of a kill
            // mid-append; anything malformed earlier is corruption.
            if (in.peek() == std::char_traits<char>::eof()) break;
            throw std::runtime_error(
                "shard scheduler: journal '" + merged_path + "' line " +
                std::to_string(lineno) + ": " + err);
        }
        if (!have_header) {
            if (!report::decode_journal_header(*v, merged_header, &err))
                throw std::runtime_error("shard scheduler: journal '" +
                                         merged_path + "': " + err);
            have_header = true;
            continue;
        }
        const report::JsonValue* d = v->find("device");
        if (d == nullptr)
            throw std::runtime_error(
                "shard scheduler: journal '" + merged_path + "' line " +
                std::to_string(lineno) + ": entry lacks device");
        const int dev = static_cast<int>(d->as_int(-1));
        if (dev < 0 ||
            dev >= static_cast<int>(merged_header.devices.size()))
            throw std::runtime_error(
                "shard scheduler: journal '" + merged_path + "' line " +
                std::to_string(lineno) + ": device out of roster");
        if (dev < prev_dev)
            throw std::runtime_error(
                "shard scheduler: journal '" + merged_path +
                "' entries out of device order (not a merged journal?)");
        prev_dev = dev;
        if (!need[static_cast<std::size_t>(dev)]) continue;
        if (dev != open_dev) {
            close_open_segment();
            open_seg = ShardScheduler::segment_path(journal_path, dev);
            open_tmp = open_seg + ".tmp";
            out.open(open_tmp, std::ios::binary | std::ios::trunc);
            if (!out.good())
                throw std::runtime_error(
                    "shard scheduler: cannot create segment '" + open_seg +
                    "'");
            report::JournalHeader header = merged_header;
            header.shard = dev;
            header.devices = {
                merged_header.devices[static_cast<std::size_t>(dev)]};
            out << report::journal_header_line(header) << '\n';
            open_dev = dev;
        }
        out << line << '\n';
    }
    if (!have_header)
        throw std::runtime_error("shard scheduler: journal '" +
                                 merged_path + "' is empty");
    close_open_segment();
}

} // namespace

void ShardScheduler::merge_segments(const std::string& path, int n_shards,
                                    const std::string& header_line,
                                    const std::string& fingerprint,
                                    MergeStats* stats) {
    SegmentMerger merger(path, header_line, fingerprint);
    for (int k = 0; k < n_shards; ++k)
        merger.append_segment(segment_path(path, k));
    merger.finish();
    if (stats != nullptr) *stats = merger.stats();
}

void ShardScheduler::merge_traces(const std::string& path, int n_segments,
                                  MergeStats* stats) {
    SegmentMerger merger(path, "", "");
    for (int k = 0; k < n_segments; ++k)
        merger.append_segment(segment_path(path, k));
    merger.finish();
    if (stats != nullptr) *stats = merger.stats();
}

ShardScheduler::Output ShardScheduler::run(const Options& opts) {
    const int n = static_cast<int>(opts.roster.size());
    Output out;
    if (opts.metrics) out.metrics = std::make_unique<obs::MetricsRegistry>();
    if (n == 0) return out;

    // Campaign identity, computed exactly once: the fingerprint hashes
    // every roster profile's full knob identity (not just its tag), so a
    // sampled roster binds its journal to the (seed, count) that built
    // it, and every shard receives the precomputed value instead of
    // re-hashing a 10k-profile roster 10k times.
    std::vector<std::string> ids;
    ids.reserve(opts.roster.size());
    for (const auto& p : opts.roster)
        ids.push_back(gateway::profile_identity(p));
    const std::string fingerprint = campaign_fingerprint(opts.config, ids);
    ids.clear();
    ids.shrink_to_fit();
    std::string merged_header_line;
    if (!opts.journal_path.empty()) {
        report::JournalHeader mh;
        mh.schema = report::kJournalSchema;
        mh.fingerprint = fingerprint;
        for (const auto& p : opts.roster) mh.devices.push_back(p.tag);
        mh.shard = -1;
        merged_header_line = report::journal_header_line(mh);
    }

    // Resume preparation runs serially before any worker spawns: shard k
    // resumes from its own segment when present, else from its device's
    // entries carved out of a previously merged journal (written at any
    // worker count, including a pre-shard sequential journal), else
    // starts fresh — a killed campaign legitimately leaves later shards
    // with no segment at all. The merged journal is consumed by the
    // carve and deleted: the incremental merge below rebuilds it from
    // scratch as the completion frontier advances, and when a segment
    // and the merged journal both cover a shard (a kill between segment
    // flush and segment delete), the segment wins.
    std::vector<char> seg_resume(static_cast<std::size_t>(n), 0);
    if (!opts.journal_path.empty() && opts.resume) {
        std::vector<char> need(static_cast<std::size_t>(n), 0);
        bool any_need = false;
        for (int k = 0; k < n; ++k) {
            const std::string seg = segment_path(opts.journal_path, k);
            if (file_exists(seg)) {
                seg_resume[static_cast<std::size_t>(k)] = 1;
            } else {
                need[static_cast<std::size_t>(k)] = 1;
                any_need = true;
            }
        }
        if (file_exists(opts.journal_path)) {
            if (any_need)
                carve_all_segments(opts.journal_path, opts.journal_path,
                                   need, seg_resume);
            std::remove(opts.journal_path.c_str());
        }
    }

    // Per-shard completion state, merged in canonical device order by a
    // frontier that advances as shards finish: results stream out (or
    // accumulate), metrics merge, and journal/trace segments append to
    // the merged files — then the state is dropped. Out-of-order
    // completions wait in `pending`, whose size the backlog bound below
    // keeps O(workers), so memory stays flat however large the roster.
    struct Pending {
        std::vector<DeviceResults> results;
        std::unique_ptr<obs::MetricsRegistry> metrics;
        std::vector<obs::ProfileSpan> spans;
        std::string device_label;
        std::int64_t wall_ns = 0;
        int worker = 0;
        std::uint64_t flight_dumps = 0;
    };
    std::mutex m;
    std::condition_variable cv;
    std::map<int, Pending> pending;
    std::map<int, std::exception_ptr> errors;
    int frontier = 0;
    std::optional<SegmentMerger> jmerge, tmerge, tsmerge;
    if (!opts.journal_path.empty())
        jmerge.emplace(opts.journal_path, merged_header_line, fingerprint);
    if (!opts.trace_path.empty())
        tmerge.emplace(opts.trace_path, "", "");
    if (!opts.timeseries_path.empty())
        tsmerge.emplace(opts.timeseries_path, "", "");
    // Flight-recorder dumps stay per-shard files (each is a complete
    // trace window); the manifest lists them in canonical device order
    // so a reader walks dumps in the same order at any worker count.
    std::ofstream flight_manifest;
    if (!opts.trace_path.empty()) {
        flight_manifest.open(opts.trace_path + ".flight.manifest",
                             std::ios::binary | std::ios::trunc);
        if (!flight_manifest)
            throw std::runtime_error(
                "shard scheduler: cannot open flight manifest '" +
                opts.trace_path + ".flight.manifest'");
    }
    const int clamped_workers =
        std::clamp(opts.workers, 1, std::max(n, 1));
    std::ofstream profile_out;
    std::optional<obs::ProfileWriter> pwrite;
    std::vector<std::int64_t> worker_busy_ns(
        static_cast<std::size_t>(clamped_workers), 0);
    if (!opts.profile_path.empty()) {
        profile_out.open(opts.profile_path,
                         std::ios::binary | std::ios::trunc);
        if (!profile_out)
            throw std::runtime_error(
                "shard scheduler: cannot open profile sidecar '" +
                opts.profile_path + "'");
        pwrite.emplace(profile_out, clamped_workers, n);
    }
    const auto campaign_wall_start = std::chrono::steady_clock::now();

    auto run_shard = [&](int k, int worker_id) {
        Pending cell;
        cell.worker = worker_id;
        const auto shard_wall_start = std::chrono::steady_clock::now();
        sim::EventLoop loop;
        // obs before the testbed: components keep raw instrument
        // pointers, so the registry must outlive them.
        std::unique_ptr<obs::Observability> obs;
        std::unique_ptr<obs::JsonlSink> sink;
        std::unique_ptr<obs::FlightRecorder> recorder;
        if (opts.metrics || !opts.trace_path.empty() ||
            !opts.timeseries_path.empty())
            obs = std::make_unique<obs::Observability>(loop);
        if (!opts.trace_path.empty()) {
            const std::string seg = segment_path(opts.trace_path, k);
            sink = std::make_unique<obs::JsonlSink>(seg);
            if (!sink->ok())
                throw std::runtime_error(
                    "shard scheduler: cannot open trace segment '" + seg +
                    "'");
            recorder = std::make_unique<obs::FlightRecorder>();
            recorder->set_dump_path(seg + ".flight");
            obs->tracer().add_sink(recorder.get());
            obs->tracer().add_sink(sink.get());
        }
        // One-device testbed under the device's GLOBAL roster number:
        // addressing, VLANs, MACs, and the journal/RNG indices all match
        // the device's slice of a full-roster campaign, while bring-up
        // work across all shards stays linear in the roster instead of
        // quadratic.
        Testbed tb(loop);
        tb.add_device(opts.roster[static_cast<std::size_t>(k)], k + 1);
        if (obs) tb.attach_observability(obs.get());
        cell.device_label = Testbed::device_label(tb.slot(0));
        // Time-series sampler: installed before bring-up so the stream
        // covers the whole shard, sampling on sim-time boundaries via
        // the loop's advance hook (never scheduling events — the sim's
        // behavior is identical with the sampler on or off).
        std::ofstream ts_out;
        std::unique_ptr<obs::TimeseriesSampler> ts;
        if (!opts.timeseries_path.empty()) {
            const std::string seg = segment_path(opts.timeseries_path, k);
            ts_out.open(seg, std::ios::binary | std::ios::trunc);
            if (!ts_out)
                throw std::runtime_error(
                    "shard scheduler: cannot open timeseries segment '" +
                    seg + "'");
            obs::TimeseriesSampler::Options tso;
            tso.interval = opts.timeseries_interval;
            tso.device = cell.device_label;
            tso.shard = k;
            ts = std::make_unique<obs::TimeseriesSampler>(obs->metrics(),
                                                          ts_out, tso);
            loop.set_advance_hook(ts.get());
        }
        tb.start_and_wait();

        obs::ProfileCollector prof;
        CampaignConfig cfg = opts.config;
        if (!opts.profile_path.empty()) cfg.profiler = &prof;
        cfg.shard.index = k;
        cfg.shard.first_device = 0;
        cfg.shard.last_device = 0;
        cfg.shard.device_base = k;
        cfg.shard.fingerprint = fingerprint;
        if (!opts.journal_path.empty()) {
            cfg.supervisor.journal_path =
                segment_path(opts.journal_path, k);
            cfg.supervisor.resume =
                seg_resume[static_cast<std::size_t>(k)] != 0;
        } else {
            cfg.supervisor.journal_path.clear();
            cfg.supervisor.resume = false;
        }
        Testrund rund(tb);
        cell.results = rund.run_blocking(cfg);
        if (ts) {
            loop.set_advance_hook(nullptr);
            ts->finish(loop.now());
            ts_out.flush();
            if (!ts_out)
                throw std::runtime_error(
                    "shard scheduler: timeseries segment write failed");
        }
        if (recorder) cell.flight_dumps = recorder->dumps_written();
        cell.spans = prof.take_spans();
        cell.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() -
                           shard_wall_start)
                           .count();

        if (opts.metrics) {
            // A one-device shard's registry holds only its own device's
            // and host-level series, so it merges whole — the old
            // own-device filter existed to discard the other 33 devices'
            // bring-up, which no longer happens.
            cell.metrics = std::make_unique<obs::MetricsRegistry>();
            cell.metrics->merge_from(obs->metrics());
        }
        if (opts.verbose) {
            static std::mutex io_mutex;
            const std::lock_guard<std::mutex> lock(io_mutex);
            std::cerr << "[gatekit] shard " << (k + 1) << "/" << n << " ("
                      << opts.roster[static_cast<std::size_t>(k)].tag
                      << ") done\n";
        }
        return cell;
    };

    // Fold every pending shard at the frontier into the merged outputs.
    // Caller holds the lock. Merging stops (permanently) at the first
    // errored shard: the merged journal stays a valid prefix and later
    // completed shards keep their segments — exactly the on-disk state a
    // resume consumes.
    auto advance_frontier = [&] {
        while (frontier < n && errors.count(frontier) == 0) {
            auto it = pending.find(frontier);
            if (it == pending.end()) break;
            Pending& cell = it->second;
            if (opts.on_result) {
                for (auto& r : cell.results)
                    opts.on_result(frontier, std::move(r));
            } else {
                for (auto& r : cell.results)
                    out.results.push_back(std::move(r));
            }
            if (out.metrics && cell.metrics)
                out.metrics->merge_from(*cell.metrics);
            if (jmerge)
                jmerge->append_segment(
                    segment_path(opts.journal_path, frontier));
            if (tmerge) {
                tmerge->append_segment(
                    segment_path(opts.trace_path, frontier));
                const std::string base =
                    segment_path(opts.trace_path, frontier) + ".flight";
                for (std::uint64_t i = 0; i < cell.flight_dumps; ++i)
                    flight_manifest << base << '.' << i << ".jsonl\n";
            }
            if (tsmerge)
                tsmerge->append_segment(
                    segment_path(opts.timeseries_path, frontier));
            if (pwrite) {
                pwrite->write_shard(frontier, cell.device_label,
                                    cell.worker, cell.wall_ns, cell.spans);
                worker_busy_ns[static_cast<std::size_t>(cell.worker)] +=
                    cell.wall_ns;
            }
            pending.erase(it);
            ++frontier;
        }
    };

    // Backlog bound: a worker may run ahead of the merge frontier by at
    // most this many shards before it waits. The worker holding the
    // smallest unfinished shard never waits (everything below it is
    // merged), so the bound cannot deadlock; it exists purely to cap
    // how many completed-but-unmerged results sit in memory when shard
    // durations are skewed.
    const int workers = clamped_workers;
    const int backlog_limit = workers * 4 + 16;

    std::atomic<int> next{0};
    auto worker_fn = [&](int worker_id) {
        for (int k; (k = next.fetch_add(1)) < n;) {
            {
                std::unique_lock<std::mutex> lk(m);
                cv.wait(lk, [&] {
                    return !errors.empty() ||
                           k - frontier <= backlog_limit;
                });
            }
            Pending cell;
            std::exception_ptr error;
            try {
                cell = run_shard(k, worker_id);
            } catch (...) {
                error = std::current_exception();
            }
            {
                std::unique_lock<std::mutex> lk(m);
                if (error) {
                    errors.emplace(k, error);
                } else {
                    pending.emplace(k, std::move(cell));
                    try {
                        advance_frontier();
                    } catch (...) {
                        errors.emplace(frontier,
                                       std::current_exception());
                    }
                }
                cv.notify_all();
            }
        }
    };
    if (workers == 1) {
        worker_fn(0); // no threads: byte-identical output, zero overhead
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w)
            pool.emplace_back([&worker_fn, w] { worker_fn(w); });
        for (auto& t : pool) t.join();
    }
    if (!errors.empty()) std::rethrow_exception(errors.begin()->second);
    GK_ENSURES(frontier == n && pending.empty());
    if (jmerge) jmerge->finish();
    if (tmerge) {
        tmerge->finish();
        flight_manifest.flush();
        if (!flight_manifest)
            throw std::runtime_error(
                "shard scheduler: flight manifest write failed");
    }
    if (tsmerge) tsmerge->finish();
    if (pwrite) {
        pwrite->write_summary(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - campaign_wall_start)
                .count(),
            worker_busy_ns);
        profile_out.flush();
    }
    return out;
}

} // namespace gatekit::harness
