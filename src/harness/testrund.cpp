#include "harness/testrund.hpp"

#include <memory>

#include "util/assert.hpp"

namespace gatekit::harness {

/// Drives the test sequence for one device after another. Each step is a
/// callback-completion probe; `advance()` moves to the next step/device.
struct Testrund::Runner : std::enable_shared_from_this<Testrund::Runner> {
    Runner(Testbed& tb, CampaignConfig config,
           std::function<void(std::vector<DeviceResults>)> done)
        : tb(tb), config(std::move(config)), done(std::move(done)) {}

    Testbed& tb;
    CampaignConfig config;
    std::function<void(std::vector<DeviceResults>)> done;
    std::vector<DeviceResults> results;
    int device = 0;
    std::size_t udp5_index = 0;

    DeviceResults& cur() { return results.back(); }

    void start() {
        if (tb.device_count() == 0) {
            done({});
            return;
        }
        begin_device();
    }

    void begin_device() {
        results.emplace_back();
        cur().tag = tb.slot(device).gw->profile().tag;
        step_udp1();
    }

    void next_device() {
        ++device;
        if (device >= static_cast<int>(tb.device_count())) {
            done(std::move(results));
            return;
        }
        begin_device();
    }

    void step_udp1() {
        if (!config.udp1) return step_udp2();
        measure_udp_timeout(tb, device, UdpPattern::SolitaryOutbound,
                            config.udp, [self = shared_from_this()](
                                            UdpTimeoutResult r) {
                                self->cur().udp1 = std::move(r);
                                self->step_udp2();
                            });
    }
    void step_udp2() {
        if (!config.udp2) return step_udp3();
        measure_udp_timeout(tb, device, UdpPattern::InboundRefresh,
                            config.udp, [self = shared_from_this()](
                                            UdpTimeoutResult r) {
                                self->cur().udp2 = std::move(r);
                                self->step_udp3();
                            });
    }
    void step_udp3() {
        if (!config.udp3) return step_udp4();
        measure_udp_timeout(tb, device, UdpPattern::Bidirectional,
                            config.udp, [self = shared_from_this()](
                                            UdpTimeoutResult r) {
                                self->cur().udp3 = std::move(r);
                                self->step_udp4();
                            });
    }
    void step_udp4() {
        if (!config.udp4) return step_udp5();
        measure_port_reuse(tb, device, config.udp,
                           [self = shared_from_this()](PortReuseResult r) {
                               self->cur().udp4 = std::move(r);
                               self->step_udp5();
                           });
    }
    void step_udp5() {
        if (!config.udp5 || udp5_index >= config.udp5_services.size()) {
            udp5_index = 0;
            return step_tcp1();
        }
        const auto& [name, port] = config.udp5_services[udp5_index];
        auto cfg = config.udp;
        cfg.server_port = port;
        measure_udp_timeout(tb, device, UdpPattern::InboundRefresh, cfg,
                            [self = shared_from_this(),
                             name = name](UdpTimeoutResult r) {
                                self->cur().udp5[name] = std::move(r);
                                ++self->udp5_index;
                                self->step_udp5();
                            });
    }
    void step_tcp1() {
        if (!config.tcp1) return step_tcp2();
        measure_tcp_timeout(tb, device, config.tcp_timeout,
                            [self = shared_from_this()](TcpTimeoutResult r) {
                                self->cur().tcp1 = std::move(r);
                                self->step_tcp2();
                            });
    }
    void step_tcp2() {
        if (!config.tcp2) return step_tcp4();
        measure_throughput(tb, device, config.throughput,
                           [self = shared_from_this()](ThroughputResult r) {
                               self->cur().tcp2 = r;
                               self->step_tcp4();
                           });
    }
    void step_tcp4() {
        if (!config.tcp4) return step_icmp();
        measure_max_bindings(tb, device, config.max_bindings,
                             [self = shared_from_this()](
                                 MaxBindingsResult r) {
                                 self->cur().tcp4 = r;
                                 self->step_icmp();
                             });
    }
    void step_icmp() {
        if (!config.icmp) return step_transports();
        measure_icmp(tb, device,
                     [self = shared_from_this()](IcmpProbeResult r) {
                         self->cur().icmp = r;
                         self->step_transports();
                     });
    }
    void step_transports() {
        if (!config.transports) return step_dns();
        measure_transport_support(
            tb, device, [self = shared_from_this()](
                            TransportSupportResult r) {
                self->cur().transports = r;
                self->step_dns();
            });
    }
    void step_dns() {
        if (!config.dns) return step_quirks();
        measure_dns(tb, device,
                    [self = shared_from_this()](DnsProbeResult r) {
                        self->cur().dns = r;
                        self->step_quirks();
                    });
    }
    void step_quirks() {
        if (!config.quirks) return step_stun();
        measure_quirks(tb, device,
                       [self = shared_from_this()](QuirksResult r) {
                           self->cur().quirks = r;
                           self->step_stun();
                       });
    }
    void step_stun() {
        if (!config.stun) return step_binding_rate();
        measure_stun(tb, device,
                     [self = shared_from_this()](StunProbeResult r) {
                         self->cur().stun = r;
                         self->step_binding_rate();
                     });
    }
    void step_binding_rate() {
        if (!config.binding_rate) return next_device();
        measure_binding_rate(
            tb, device, config.binding_rate_count,
            [self = shared_from_this()](BindingRateResult r) {
                self->cur().binding_rate = r;
                self->next_device();
            });
    }
};

void Testrund::run(const CampaignConfig& config,
                   std::function<void(std::vector<DeviceResults>)> done) {
    auto runner = std::make_shared<Runner>(tb_, config, std::move(done));
    runner->start();
}

std::vector<DeviceResults>
Testrund::run_blocking(const CampaignConfig& config) {
    if (!tb_.all_ready()) tb_.start_and_wait();
    std::vector<DeviceResults> out;
    bool finished = false;
    run(config, [&](std::vector<DeviceResults> r) {
        out = std::move(r);
        finished = true;
    });
    tb_.loop().run();
    GK_ENSURES(finished);
    return out;
}

} // namespace gatekit::harness
