#include "harness/icmp_probe.hpp"

#include <memory>

#include "net/checksum.hpp"
#include "net/udp.hpp"
#include "stack/tcp_socket.hpp"
#include "stack/udp_socket.hpp"
#include "util/assert.hpp"

namespace gatekit::harness {

namespace {

using gateway::IcmpKind;
using gateway::kIcmpKindCount;

struct WireError {
    net::IcmpType type;
    std::uint8_t code;
    std::uint32_t rest;
};

WireError wire_error(IcmpKind kind) {
    using net::IcmpType;
    namespace code = net::icmp_code;
    switch (kind) {
    case IcmpKind::ReassemblyTimeExceeded:
        return {IcmpType::TimeExceeded, code::kReassemblyTimeExceeded, 0};
    case IcmpKind::FragNeeded:
        return {IcmpType::DestUnreachable, code::kFragNeeded, 1400};
    case IcmpKind::ParamProblem:
        return {IcmpType::ParamProblem, 0, 0x14000000u};
    case IcmpKind::SourceRouteFailed:
        return {IcmpType::DestUnreachable, code::kSourceRouteFailed, 0};
    case IcmpKind::SourceQuench:
        return {IcmpType::SourceQuench, 0, 0};
    case IcmpKind::TtlExceeded:
        return {IcmpType::TimeExceeded, code::kTtlExceeded, 0};
    case IcmpKind::HostUnreachable:
        return {IcmpType::DestUnreachable, code::kHostUnreachable, 0};
    case IcmpKind::NetUnreachable:
        return {IcmpType::DestUnreachable, code::kNetUnreachable, 0};
    case IcmpKind::PortUnreachable:
        return {IcmpType::DestUnreachable, code::kPortUnreachable, 0};
    case IcmpKind::ProtoUnreachable:
        return {IcmpType::DestUnreachable, code::kProtoUnreachable, 0};
    case IcmpKind::kCount:
        break;
    }
    GK_ASSERT(false);
    return {net::IcmpType::DestUnreachable, 0, 0};
}

class IcmpMeasurement : public std::enable_shared_from_this<IcmpMeasurement> {
public:
    IcmpMeasurement(Testbed& tb, int slot, IcmpProbeConfig config,
                    std::function<void(IcmpProbeResult)> done)
        : tb_(tb), slot_(tb.slot(slot)), config_(config),
          done_(std::move(done)), loop_(tb.loop()) {}

    void start() {
        // Sink socket so client UDP flows do not draw Port-Unreachable.
        udp_sink_ = &tb_.server().udp_open(net::Ipv4Addr::any(), kUdpPort);
        tcp_listener_ = &tb_.server().tcp_listen(kTcpPort);
        tcp_listener_->set_accept_handler([](stack::TcpSocket& conn) {
            conn.on_data = [](std::span<const std::uint8_t>) {};
            conn.on_error = [](const std::string&) {};
        });

        // Capture client->server datagrams as they leave the NAT.
        tb_.server().set_ip_observer(
            [self = shared_from_this()](stack::Iface&,
                                        const net::Ipv4Packet& pkt,
                                        std::span<const std::uint8_t> raw) {
                if (pkt.h.src == self->slot_.gw_wan_addr)
                    self->captured_.assign(raw.begin(), raw.end());
            });

        // Watch everything that reaches the client.
        tb_.client().set_icmp_observer(
            [self = shared_from_this()](const net::Ipv4Packet& pkt,
                                        const net::IcmpMessage& msg) {
                self->on_client_icmp(pkt, msg);
            });
        tb_.client().set_ip_observer(
            [self = shared_from_this()](stack::Iface&,
                                        const net::Ipv4Packet& pkt,
                                        std::span<const std::uint8_t>) {
                self->on_client_ip(pkt);
            });

        case_index_ = 0;
        next_case();
    }

private:
    static constexpr std::uint16_t kUdpPort = 33333;
    static constexpr std::uint16_t kTcpPort = 33343;
    static constexpr int kCaseCount = 2 * kIcmpKindCount + 1;

    void next_case() {
        if (case_index_ >= kCaseCount) {
            finish();
            return;
        }
        captured_.clear();
        got_error_ = false;
        got_rst_ = false;
        inner_transport_ok_ = false;
        inner_ip_ck_ok_ = false;

        if (case_index_ < kIcmpKindCount) {
            run_udp_case(static_cast<IcmpKind>(case_index_));
        } else if (case_index_ < 2 * kIcmpKindCount) {
            run_tcp_case(
                static_cast<IcmpKind>(case_index_ - kIcmpKindCount));
        } else {
            run_query_case();
        }
    }

    void record_and_advance(IcmpVerdict* out) {
        auto self = shared_from_this();
        loop_.after(std::chrono::seconds(2), [self, out] {
            if (out != nullptr) {
                out->forwarded = self->got_error_;
                out->rst_instead = self->got_rst_;
                out->embedded_transport_ok = self->inner_transport_ok_;
                out->embedded_ip_checksum_ok = self->inner_ip_ck_ok_;
            } else {
                self->result_.query_error_forwarded = self->got_error_;
            }
            ++self->case_index_;
            self->next_case();
        });
    }

    /// Forge the error at the server, aimed back at the NAT.
    void inject_error(IcmpKind kind) {
        GK_ASSERT(!captured_.empty());
        const auto we = wire_error(kind);
        const auto err =
            net::IcmpMessage::make_error(we.type, we.code, we.rest,
                                         captured_);
        tb_.server().send_icmp(slot_.server_addr, slot_.gw_wan_addr, err);
    }

    void run_udp_case(IcmpKind kind) {
        expected_client_port_ = static_cast<std::uint16_t>(
            45000 + case_index_);
        client_udp_ = &tb_.client().udp_open(slot_.client_addr,
                                             expected_client_port_);
        udp_flow_attempt(kind, 0);
    }

    void udp_flow_attempt(IcmpKind kind, int attempt) {
        auto self = shared_from_this();
        client_udp_->send_to({slot_.server_addr, kUdpPort}, {'f', 'l'});
        const auto wait = attempt == 0 ? sim::Duration(
                                             std::chrono::milliseconds(100))
                                       : config_.retry_wait;
        loop_.after(wait, [self, kind, attempt] {
            if (self->captured_.empty() &&
                attempt < self->config_.flow_retries) {
                ++self->result_.flow_retries;
                self->udp_flow_attempt(kind, attempt + 1);
                return;
            }
            if (!self->captured_.empty()) self->inject_error(kind);
            self->record_and_advance(
                &self->result_.udp[static_cast<std::size_t>(kind)]);
            self->tb_.client().udp_close(*self->client_udp_);
            self->client_udp_ = nullptr;
        });
    }

    void run_tcp_case(IcmpKind kind) {
        auto self = shared_from_this();
        expected_client_port_ = static_cast<std::uint16_t>(
            46000 + case_index_);
        auto& conn = tb_.client().tcp_connect(slot_.client_addr,
                                              expected_client_port_,
                                              {slot_.server_addr, kTcpPort});
        client_tcp_ = &conn;
        // An injected error can RST the flow; the stack then reaps the
        // socket, so drop our pointer before the deferred teardown runs.
        conn.on_error = [self](const std::string&) {
            self->client_tcp_ = nullptr;
        };
        conn.on_established = [self, &conn] {
            conn.send({'d', 'a', 't', 'a'}); // captured at the server
        };
        tcp_flow_wait(kind, 0);
    }

    /// TCP retransmits the handshake and the data segment on its own;
    /// a retry here just extends the capture window to let it.
    void tcp_flow_wait(IcmpKind kind, int attempt) {
        auto self = shared_from_this();
        const auto wait = attempt == 0 ? sim::Duration(
                                             std::chrono::milliseconds(200))
                                       : config_.retry_wait;
        loop_.after(wait, [self, kind, attempt] {
            if (self->captured_.empty() &&
                attempt < self->config_.flow_retries) {
                ++self->result_.flow_retries;
                self->tcp_flow_wait(kind, attempt + 1);
                return;
            }
            if (!self->captured_.empty()) self->inject_error(kind);
            self->record_and_advance(
                &self->result_.tcp[static_cast<std::size_t>(kind)]);
            // Tear the flow down only after the injected error has had
            // time to traverse: our own RST takes the shorter LAN path
            // and would otherwise clear the binding before the ICMP
            // reaches the NAT.
            self->loop_.after(std::chrono::milliseconds(500), [self] {
                if (self->client_tcp_ != nullptr) {
                    self->client_tcp_->on_error = nullptr;
                    self->client_tcp_->abort();
                    self->client_tcp_ = nullptr;
                }
            });
        });
    }

    void run_query_case() {
        expected_client_port_ = 0;
        query_flow_attempt(0);
    }

    void query_flow_attempt(int attempt) {
        auto self = shared_from_this();
        tb_.client().send_icmp(slot_.client_addr, slot_.server_addr,
                               net::IcmpMessage::make_echo(false, 0x7777, 1));
        const auto wait = attempt == 0 ? sim::Duration(
                                             std::chrono::milliseconds(100))
                                       : config_.retry_wait;
        loop_.after(wait, [self, attempt] {
            if (self->captured_.empty() &&
                attempt < self->config_.flow_retries) {
                ++self->result_.flow_retries;
                self->query_flow_attempt(attempt + 1);
                return;
            }
            if (!self->captured_.empty())
                self->inject_error(IcmpKind::HostUnreachable);
            self->record_and_advance(nullptr);
        });
    }

    void on_client_icmp(const net::Ipv4Packet&, const net::IcmpMessage& msg) {
        if (!msg.is_error()) return;
        got_error_ = true;
        analyze_embedded(msg);
    }

    void on_client_ip(const net::Ipv4Packet& pkt) {
        // Detect ls2-style fabricated RSTs toward our TCP flow.
        if (pkt.h.protocol != net::proto::kTcp ||
            expected_client_port_ == 0)
            return;
        try {
            const auto seg =
                net::TcpSegment::parse(pkt.payload, pkt.h.src, pkt.h.dst);
            if (seg.flags.rst && seg.dst_port == expected_client_port_)
                got_rst_ = true;
        } catch (const net::ParseError&) {
        }
    }

    void analyze_embedded(const net::IcmpMessage& msg) {
        if (msg.payload.size() < 20) return;
        const auto& quoted = msg.payload;
        const std::size_t ihl = static_cast<std::size_t>(quoted[0] & 0xf) * 4;
        if (quoted.size() < ihl + 4) return;

        // Embedded IP checksum must verify over the embedded header.
        inner_ip_ck_ok_ =
            net::internet_checksum({quoted.data(), ihl}) == 0;

        // Embedded source must be the client's view: its own address and
        // original source port.
        std::uint32_t src = 0;
        for (int i = 0; i < 4; ++i)
            src = (src << 8) | quoted[12 + static_cast<std::size_t>(i)];
        const auto sport = static_cast<std::uint16_t>(
            (quoted[ihl] << 8) | quoted[ihl + 1]);
        inner_transport_ok_ = net::Ipv4Addr{src} == slot_.client_addr &&
                              sport == expected_client_port_;

        // A port-preserving NAT makes the port comparison blind: the
        // external and internal ports are identical. The embedded UDP
        // checksum (inside the 8 quoted bytes) is the tell — the prober
        // knows exactly what it originally sent, so it can compare the
        // quoted checksum with the one its own stack computed.
        const std::uint8_t proto = quoted[9];
        if (proto == net::proto::kUdp && quoted.size() >= ihl + 8 &&
            expected_client_port_ != 0) {
            const auto quoted_ck = static_cast<std::uint16_t>(
                (quoted[ihl + 6] << 8) | quoted[ihl + 7]);
            net::UdpDatagram original;
            original.src_port = expected_client_port_;
            original.dst_port = kUdpPort;
            original.payload = {'f', 'l'};
            const auto bytes =
                original.serialize(slot_.client_addr, slot_.server_addr);
            const auto expected_ck =
                static_cast<std::uint16_t>((bytes[6] << 8) | bytes[7]);
            if (quoted_ck != expected_ck) inner_transport_ok_ = false;
        }
    }

    void finish() {
        tb_.server().set_ip_observer(nullptr);
        tb_.client().set_icmp_observer(nullptr);
        tb_.client().set_ip_observer(nullptr);
        tb_.server().udp_close(*udp_sink_);
        tb_.server().tcp_close_listener(*tcp_listener_);
        done_(result_);
    }

    Testbed& tb_;
    Testbed::DeviceSlot& slot_;
    IcmpProbeConfig config_;
    std::function<void(IcmpProbeResult)> done_;
    sim::EventLoop& loop_;

    stack::UdpSocket* udp_sink_ = nullptr;
    stack::TcpListener* tcp_listener_ = nullptr;
    stack::UdpSocket* client_udp_ = nullptr;
    stack::TcpSocket* client_tcp_ = nullptr;

    IcmpProbeResult result_;
    int case_index_ = 0;
    net::Bytes captured_;
    std::uint16_t expected_client_port_ = 0;
    bool got_error_ = false;
    bool got_rst_ = false;
    bool inner_transport_ok_ = false;
    bool inner_ip_ck_ok_ = false;
};

} // namespace

void measure_icmp(Testbed& tb, int slot,
                  std::function<void(IcmpProbeResult)> done) {
    measure_icmp(tb, slot, IcmpProbeConfig{}, std::move(done));
}

void measure_icmp(Testbed& tb, int slot, const IcmpProbeConfig& config,
                  std::function<void(IcmpProbeResult)> done) {
    auto m = std::make_shared<IcmpMeasurement>(tb, slot, config,
                                               std::move(done));
    m->start();
}

} // namespace gatekit::harness
