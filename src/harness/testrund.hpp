// testrund: the measurement orchestrator (the paper's client/server
// daemon pair). Runs any subset of the study's tests across every device
// in a testbed and collects the per-device results the figures are built
// from. Coordination uses the out-of-band management link, modeled as
// direct invocation between the client- and server-side probe halves.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/dns_probe.hpp"
#include "harness/futurework_probes.hpp"
#include "harness/icmp_probe.hpp"
#include "harness/tcp_probes.hpp"
#include "harness/transport_probe.hpp"
#include "harness/udp_probes.hpp"

namespace gatekit::harness {

/// Which measurements to run (each maps to a paper test).
struct CampaignConfig {
    bool udp1 = false;
    bool udp2 = false;
    bool udp3 = false;
    bool udp4 = false;
    bool udp5 = false;
    bool tcp1 = false;
    bool tcp2 = false; ///< also produces TCP-3 delay results
    bool tcp4 = false;
    bool icmp = false;
    bool transports = false;
    bool dns = false;
    bool quirks = false;     ///< future work: TTL / Record Route / hairpin
    bool stun = false;       ///< future work: STUN success + mapping
    bool binding_rate = false; ///< future work: binding creation rate
    int binding_rate_count = 200;

    UdpProbeConfig udp;
    TcpTimeoutConfig tcp_timeout;
    ThroughputConfig throughput;
    MaxBindingsConfig max_bindings;

    /// UDP-5 well-known services (paper Figure 6).
    std::vector<std::pair<std::string, std::uint16_t>> udp5_services{
        {"dns", 53}, {"http", 80}, {"ntp", 123}, {"snmp", 161}, {"tftp", 69}};

    static CampaignConfig all() {
        CampaignConfig c;
        c.udp1 = c.udp2 = c.udp3 = c.udp4 = c.udp5 = true;
        c.tcp1 = c.tcp2 = c.tcp4 = true;
        c.icmp = c.transports = c.dns = true;
        return c;
    }
};

struct DeviceResults {
    std::string tag;
    UdpTimeoutResult udp1, udp2, udp3;
    PortReuseResult udp4;
    std::map<std::string, UdpTimeoutResult> udp5; ///< service -> result
    TcpTimeoutResult tcp1;
    ThroughputResult tcp2; ///< includes the TCP-3 delay medians
    MaxBindingsResult tcp4;
    IcmpProbeResult icmp;
    TransportSupportResult transports;
    DnsProbeResult dns;
    QuirksResult quirks;
    StunProbeResult stun;
    BindingRateResult binding_rate;
};

/// Run a campaign over every device in the testbed. Tests run
/// sequentially per device and devices sequentially (the paper ran most
/// tests in parallel across devices and throughput alone — in virtual
/// time the distinction costs nothing and sequential keeps flows apart).
class Testrund {
public:
    explicit Testrund(Testbed& tb) : tb_(tb) {}

    /// Asynchronous: drive the event loop until `done` fires.
    void run(const CampaignConfig& config,
             std::function<void(std::vector<DeviceResults>)> done);

    /// Convenience: start the testbed if needed, run, and drive the loop
    /// to completion.
    std::vector<DeviceResults> run_blocking(const CampaignConfig& config);

private:
    struct Runner;
    Testbed& tb_;
};

} // namespace gatekit::harness
