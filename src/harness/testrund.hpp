// testrund: the measurement orchestrator (the paper's client/server
// daemon pair). Runs any subset of the study's tests across every device
// in a testbed and collects the per-device results the figures are built
// from. Coordination uses the out-of-band management link, modeled as
// direct invocation between the client- and server-side probe halves.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "gateway/profile.hpp"
#include "harness/dns_probe.hpp"
#include "harness/futurework_probes.hpp"
#include "harness/icmp_probe.hpp"
#include "harness/tcp_probes.hpp"
#include "harness/transport_probe.hpp"
#include "harness/udp_probes.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "sim/link.hpp"

namespace gatekit::harness {

/// Supervisor classification of one completed (device, test) unit.
enum class UnitStatus {
    Ok,          ///< completed normally (possibly after a soft retry)
    Degraded,    ///< hard deadline hit; partial results were salvaged
    GaveUp,      ///< hard deadline hit and the unit never reported back
    Quarantined, ///< not run: the device was quarantined earlier
};

const char* to_string(UnitStatus s);
bool unit_status_from_string(std::string_view s, UnitStatus& out);

/// Per-unit supervisor record; one per planned unit, in execution order.
struct UnitReport {
    std::string unit; ///< "udp1".."binding_rate", "udp5:<service>"
    UnitStatus status = UnitStatus::Ok;
    int attempts = 1;
    std::string reason; ///< machine-readable, "" when ok
    std::int64_t t_start_ns = 0;
    std::int64_t t_end_ns = 0;
};

/// Campaign supervision: per-unit deadline budgets, retry/quarantine
/// policy, and the write-ahead journal. Everything defaults OFF — with
/// deadlines at zero and no journal path the supervisor schedules no
/// events and touches no files, so an unsupervised campaign's event
/// stream (and every figure built from it) is bit-for-bit unchanged.
struct SupervisorPolicy {
    /// Soft per-unit budget: when a unit runs past this the supervisor
    /// dumps the flight recorder, cancels the attempt cooperatively, and
    /// re-runs the unit after `retry_backoff` (up to `max_attempts`
    /// total). Zero disables.
    sim::Duration soft_deadline{0};
    /// Hard per-unit budget, measured from the unit's first attempt:
    /// the unit is cancelled and classified degraded (partial results
    /// arrived) or gave_up (nothing came back within `hard_grace`).
    /// Zero disables.
    sim::Duration hard_deadline{0};
    int max_attempts = 2;
    sim::Duration retry_backoff{std::chrono::seconds(5)};
    /// How long after the hard deadline a cancelled unit may still
    /// deliver partial results before the supervisor force-advances.
    sim::Duration hard_grace{std::chrono::seconds(5)};
    /// Consecutive non-ok units before the device is quarantined and its
    /// remaining units skipped (the campaign itself continues). <= 0
    /// disables quarantine.
    int quarantine_after = 3;
    /// Write-ahead journal path (schema gatekit.journal.v1); empty = no
    /// journal. With `resume` set the journal is replayed first and the
    /// campaign continues from the first missing unit.
    std::string journal_path;
    bool resume = false;

    bool soft_enabled() const { return soft_deadline > sim::Duration::zero(); }
    bool hard_enabled() const { return hard_deadline > sim::Duration::zero(); }
};

/// Per-device impairment RNG stream derivation. Every (device, link,
/// direction) draws from its own generator seeded as
///
///   splitmix64(campaign_seed ^ tag),  tag = device * 4 + wan * 2 + dir
///
/// so a device's fate sequence depends only on the campaign seed and its
/// own identity — never on which devices ran before it or on how the
/// campaign is sharded across workers. (The sequential runner previously
/// had no campaign-level seeding at all; links impaired by hand shared
/// whatever draw order the caller's loop imposed.) The result is masked
/// to 62 bits so journals round-trip it through JSON integers exactly.
std::uint64_t impair_seed_for(std::uint64_t campaign_seed, int device,
                              bool wan_link, int direction);

/// Declarative campaign-wide link impairments. When `wan.any()` the
/// campaign runner installs them on every device's WAN link (both
/// directions) at campaign start, seeded per device by impair_seed_for.
/// Declaring impairments here — rather than poking Link::set_impairments
/// by hand — is what lets a sharded campaign reproduce them inside each
/// shard's private testbed, the journal fingerprint bind to them, and a
/// resumed campaign restore each impairer's exact RNG state.
struct CampaignImpairments {
    sim::LinkImpairments wan;
    std::uint64_t seed = 0x6761'7465'6b69'7421ULL;
    bool any() const { return wan.any(); }
};

/// Device-range restriction for sharded execution: the runner measures
/// only slots [first_device, last_device] of its testbed. A sharded
/// campaign builds each shard a one-device testbed whose slot 0 is
/// device number `device_base + 1` of the full roster (Testbed
/// addressing derives from the global number, so the wire bytes match
/// the device's slice of a full-roster bring-up); journal entries and
/// impairment RNG streams always use global indices, which is what
/// keeps segments carve/merge-compatible with sequential journals.
/// Deliberately excluded from the campaign fingerprint — a shard's
/// journal segment belongs to the same campaign as the merged whole.
struct ShardSpec {
    int index = -1;       ///< shard id, recorded in the journal header
    int first_device = 0; ///< first slot this runner measures
    int last_device = -1; ///< inclusive; -1 = through the last slot
    /// Global device index of testbed slot 0 (0 for a full-roster
    /// testbed). Journaled entry/RNG device fields are slot + base.
    int device_base = 0;
    /// Precomputed whole-campaign fingerprint; "" = the runner derives
    /// it from its own testbed (correct only when the testbed holds the
    /// full roster). The scheduler computes it once per campaign so a
    /// 10k-shard run does not hash a 10k-profile roster 10k times.
    std::string fingerprint;
    bool active() const { return index >= 0; }
};

/// Which measurements to run (each maps to a paper test).
struct CampaignConfig {
    bool udp1 = false;
    bool udp2 = false;
    bool udp3 = false;
    bool udp4 = false;
    bool udp5 = false;
    bool tcp1 = false;
    bool tcp2 = false; ///< also produces TCP-3 delay results
    bool tcp4 = false;
    bool icmp = false;
    bool transports = false;
    bool dns = false;
    bool quirks = false;     ///< future work: TTL / Record Route / hairpin
    bool stun = false;       ///< future work: STUN success + mapping
    bool binding_rate = false; ///< future work: binding creation rate
    int binding_rate_count = 200;

    UdpProbeConfig udp;
    TcpTimeoutConfig tcp_timeout;
    ThroughputConfig throughput;
    MaxBindingsConfig max_bindings;

    SupervisorPolicy supervisor;

    /// Campaign-wide WAN impairments (default: none installed).
    CampaignImpairments impair;

    /// Device range for sharded execution (default: whole roster).
    ShardSpec shard;

    /// Harness self-profiler (non-owning; null = off). When set the
    /// runner brackets every live unit with wall-clock stamps. Absent
    /// from the campaign fingerprint by construction — profiling reads
    /// the host clock but never schedules events, so the measurement
    /// stream is byte-identical either way.
    obs::ProfileCollector* profiler = nullptr;

    /// UDP-5 well-known services (paper Figure 6).
    std::vector<std::pair<std::string, std::uint16_t>> udp5_services{
        {"dns", 53}, {"http", 80}, {"ntp", 123}, {"snmp", 161}, {"tftp", 69}};

    /// The paper's core measurement set (sections 3.2.1-3.2.3): UDP-1..5,
    /// TCP-1/2/4 (TCP-3 rides on TCP-2), ICMP translation, SCTP/DCCP
    /// support, and the DNS proxy. The future-work probes (quirks, STUN,
    /// binding rate) stay off — use everything() to include them.
    static CampaignConfig all() {
        CampaignConfig c;
        c.udp1 = c.udp2 = c.udp3 = c.udp4 = c.udp5 = true;
        c.tcp1 = c.tcp2 = c.tcp4 = true;
        c.icmp = c.transports = c.dns = true;
        return c;
    }

    /// Every measurement the harness implements: all() plus the paper's
    /// section-5 future-work probes.
    static CampaignConfig everything() {
        CampaignConfig c = all();
        c.quirks = c.stun = c.binding_rate = true;
        return c;
    }
};

struct DeviceResults {
    std::string tag;
    UdpTimeoutResult udp1, udp2, udp3;
    PortReuseResult udp4;
    std::map<std::string, UdpTimeoutResult> udp5; ///< service -> result
    TcpTimeoutResult tcp1;
    ThroughputResult tcp2; ///< includes the TCP-3 delay medians
    MaxBindingsResult tcp4;
    IcmpProbeResult icmp;
    TransportSupportResult transports;
    DnsProbeResult dns;
    QuirksResult quirks;
    StunProbeResult stun;
    BindingRateResult binding_rate;
    /// Supervisor verdicts, one per planned unit in execution order.
    /// Every unit is listed with status ok when supervision is off.
    std::vector<UnitReport> units;

    bool quarantined() const {
        for (const auto& u : units)
            if (u.status == UnitStatus::Quarantined) return true;
        return false;
    }
};

/// Run a campaign over every device in the testbed. Tests run
/// sequentially per device and devices sequentially (the paper ran most
/// tests in parallel across devices and throughput alone — in virtual
/// time the distinction costs nothing and sequential keeps flows apart).
class Testrund {
public:
    explicit Testrund(Testbed& tb) : tb_(tb) {}

    /// Asynchronous: drive the event loop until `done` fires.
    void run(const CampaignConfig& config,
             std::function<void(std::vector<DeviceResults>)> done);

    /// Convenience: start the testbed if needed, run, and drive the loop
    /// to completion.
    std::vector<DeviceResults> run_blocking(const CampaignConfig& config);

private:
    struct Runner;
    Testbed& tb_;
};

/// Device-sharded campaign executor. One shard per roster device; each
/// shard owns a full private stack — EventLoop, a ONE-device Testbed
/// whose addressing derives from the device's global roster number (so
/// its wire bytes match that device's slice of a full-roster bring-up),
/// optional metrics registry + tracer, per-device impairment RNG
/// streams, and a per-shard journal segment — and measures only its own
/// device. Because a shard's simulation never reads another shard's
/// state, its outputs are a pure function of (device profile, config,
/// global index): total bring-up work is linear in the roster, and the
/// worker count changes wall-clock time and nothing else. Results,
/// metrics, traces, and journal segments are merged incrementally in
/// canonical device order as a completion frontier advances — per-shard
/// state is released as soon as the frontier passes it, so memory stays
/// flat in the roster size — and every output artifact is
/// byte-identical at any worker count. A killed campaign resumes from
/// whatever mix of complete shard segments and/or a previously merged
/// journal prefix is on disk.
class ShardScheduler {
public:
    struct Options {
        /// Full device roster, slot order (= canonical merge order).
        std::vector<gateway::DeviceProfile> roster;
        /// Campaign to run. `config.shard` and the supervisor journal
        /// path/resume fields are owned by the scheduler and overwritten
        /// per shard; set journaling through `journal_path` below.
        CampaignConfig config;
        /// Worker threads; clamped to [1, roster size]. 1 = run the
        /// shards sequentially on the calling thread (no threads spawn).
        int workers = 1;
        /// Merged journal path ("" = no journal). Shard k journals to
        /// segment_path(journal_path, k) while running; as the
        /// completion frontier reaches it the segment is appended to
        /// `journal_path` (header first, entries in device order) and
        /// removed, so the merged journal is always a valid prefix.
        std::string journal_path;
        /// Resume: shard k replays its segment if present, else carves
        /// its device's entries out of an existing merged journal (from
        /// a run at ANY worker count, including a pre-shard sequential
        /// journal); with neither on disk it starts fresh.
        bool resume = false;
        /// Collect per-shard metrics and merge them into Output::metrics.
        bool metrics = false;
        /// Merged trace JSONL path ("" = tracing off). Shard k streams
        /// to segment_path(trace_path, k); segments are concatenated in
        /// device order as the frontier advances. Flight-recorder dumps
        /// land at <segment>.flight.<n>.jsonl and are listed — in
        /// canonical device order, identical at any worker count — in
        /// <trace_path>.flight.manifest.
        std::string trace_path;
        /// Merged time-series sidecar path ("" = off; schema
        /// gatekit.timeseries.v1). Shard k samples its private registry
        /// every `timeseries_interval` of SIM time into
        /// segment_path(timeseries_path, k); segments are concatenated
        /// in device order as the frontier advances, exactly like
        /// journal/trace segments, so the merged stream is
        /// byte-identical at any worker count. Implies a per-shard
        /// registry even when `metrics` is false.
        std::string timeseries_path;
        sim::Duration timeseries_interval{std::chrono::seconds(1)};
        /// Harness self-profiler sidecar path ("" = off; schema
        /// gatekit.profile.v1): wall-clock spans per (device, unit),
        /// per-shard totals with worker attribution, and a
        /// worker-utilization/shard-skew summary. The one artifact that
        /// is NOT byte-gated — it records wall time by design. Campaign
        /// results remain byte-identical with it on or off.
        std::string profile_path;
        /// Progress lines ("[gatekit] shard k/n (tag) done") to stderr.
        bool verbose = false;
        /// Streaming consumer: when set, each device's results are
        /// handed over as the completion frontier passes it (canonical
        /// device order, serialized — never concurrently) and
        /// Output::results stays empty. This is what keeps a
        /// 10k-gateway campaign from holding every DeviceResults alive
        /// until the end.
        std::function<void(int device, DeviceResults&&)> on_result;
    };

    struct Output {
        /// Per-device results, canonical roster order. Empty when
        /// Options::on_result streamed them instead.
        std::vector<DeviceResults> results;
        /// Merged registry; null unless Options::metrics.
        std::unique_ptr<obs::MetricsRegistry> metrics;
    };

    /// Run the campaign. Throws (after joining every worker) if any
    /// shard fails; completed shards' journal segments stay on disk, so
    /// a rerun with `resume` replays them instead of re-measuring.
    static Output run(const Options& opts);

    /// Per-shard segment path: "<path>.shard<k>".
    static std::string segment_path(const std::string& path, int shard);

    /// Transient-buffer accounting for a streaming merge: the merge
    /// must never hold more than one fixed-size chunk of any segment in
    /// memory, whatever the journal size.
    struct MergeStats {
        std::size_t peak_buffer_bytes = 0; ///< largest transient buffer
        std::uint64_t segments = 0;        ///< segments consumed
        std::uint64_t bytes = 0;           ///< payload bytes written
    };

    /// Concatenate journal segments 0..n_shards-1 of `path` into the
    /// merged journal and remove them. `header_line` is written first
    /// (the scheduler renders it from the campaign fingerprint + roster
    /// with the shard field dropped); each segment's own header line is
    /// checked against `fingerprint` and skipped. Segment bodies are
    /// streamed in fixed-size chunks — peak transient memory is
    /// O(chunk), not O(journal) — and `stats`, when non-null, reports
    /// the high-water mark so tests can pin that property down.
    static void merge_segments(const std::string& path, int n_shards,
                               const std::string& header_line,
                               const std::string& fingerprint,
                               MergeStats* stats = nullptr);

    /// Concatenate trace segments 0..n_segments-1 of `path` (pure
    /// streamed concatenation — a one-device shard can only emit its
    /// own device's and host-level events) and remove them.
    static void merge_traces(const std::string& path, int n_segments,
                             MergeStats* stats = nullptr);
};

} // namespace gatekit::harness
