// testrund: the measurement orchestrator (the paper's client/server
// daemon pair). Runs any subset of the study's tests across every device
// in a testbed and collects the per-device results the figures are built
// from. Coordination uses the out-of-band management link, modeled as
// direct invocation between the client- and server-side probe halves.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "harness/dns_probe.hpp"
#include "harness/futurework_probes.hpp"
#include "harness/icmp_probe.hpp"
#include "harness/tcp_probes.hpp"
#include "harness/transport_probe.hpp"
#include "harness/udp_probes.hpp"

namespace gatekit::harness {

/// Supervisor classification of one completed (device, test) unit.
enum class UnitStatus {
    Ok,          ///< completed normally (possibly after a soft retry)
    Degraded,    ///< hard deadline hit; partial results were salvaged
    GaveUp,      ///< hard deadline hit and the unit never reported back
    Quarantined, ///< not run: the device was quarantined earlier
};

const char* to_string(UnitStatus s);
bool unit_status_from_string(std::string_view s, UnitStatus& out);

/// Per-unit supervisor record; one per planned unit, in execution order.
struct UnitReport {
    std::string unit; ///< "udp1".."binding_rate", "udp5:<service>"
    UnitStatus status = UnitStatus::Ok;
    int attempts = 1;
    std::string reason; ///< machine-readable, "" when ok
    std::int64_t t_start_ns = 0;
    std::int64_t t_end_ns = 0;
};

/// Campaign supervision: per-unit deadline budgets, retry/quarantine
/// policy, and the write-ahead journal. Everything defaults OFF — with
/// deadlines at zero and no journal path the supervisor schedules no
/// events and touches no files, so an unsupervised campaign's event
/// stream (and every figure built from it) is bit-for-bit unchanged.
struct SupervisorPolicy {
    /// Soft per-unit budget: when a unit runs past this the supervisor
    /// dumps the flight recorder, cancels the attempt cooperatively, and
    /// re-runs the unit after `retry_backoff` (up to `max_attempts`
    /// total). Zero disables.
    sim::Duration soft_deadline{0};
    /// Hard per-unit budget, measured from the unit's first attempt:
    /// the unit is cancelled and classified degraded (partial results
    /// arrived) or gave_up (nothing came back within `hard_grace`).
    /// Zero disables.
    sim::Duration hard_deadline{0};
    int max_attempts = 2;
    sim::Duration retry_backoff{std::chrono::seconds(5)};
    /// How long after the hard deadline a cancelled unit may still
    /// deliver partial results before the supervisor force-advances.
    sim::Duration hard_grace{std::chrono::seconds(5)};
    /// Consecutive non-ok units before the device is quarantined and its
    /// remaining units skipped (the campaign itself continues). <= 0
    /// disables quarantine.
    int quarantine_after = 3;
    /// Write-ahead journal path (schema gatekit.journal.v1); empty = no
    /// journal. With `resume` set the journal is replayed first and the
    /// campaign continues from the first missing unit.
    std::string journal_path;
    bool resume = false;

    bool soft_enabled() const { return soft_deadline > sim::Duration::zero(); }
    bool hard_enabled() const { return hard_deadline > sim::Duration::zero(); }
};

/// Which measurements to run (each maps to a paper test).
struct CampaignConfig {
    bool udp1 = false;
    bool udp2 = false;
    bool udp3 = false;
    bool udp4 = false;
    bool udp5 = false;
    bool tcp1 = false;
    bool tcp2 = false; ///< also produces TCP-3 delay results
    bool tcp4 = false;
    bool icmp = false;
    bool transports = false;
    bool dns = false;
    bool quirks = false;     ///< future work: TTL / Record Route / hairpin
    bool stun = false;       ///< future work: STUN success + mapping
    bool binding_rate = false; ///< future work: binding creation rate
    int binding_rate_count = 200;

    UdpProbeConfig udp;
    TcpTimeoutConfig tcp_timeout;
    ThroughputConfig throughput;
    MaxBindingsConfig max_bindings;

    SupervisorPolicy supervisor;

    /// UDP-5 well-known services (paper Figure 6).
    std::vector<std::pair<std::string, std::uint16_t>> udp5_services{
        {"dns", 53}, {"http", 80}, {"ntp", 123}, {"snmp", 161}, {"tftp", 69}};

    /// The paper's core measurement set (sections 3.2.1-3.2.3): UDP-1..5,
    /// TCP-1/2/4 (TCP-3 rides on TCP-2), ICMP translation, SCTP/DCCP
    /// support, and the DNS proxy. The future-work probes (quirks, STUN,
    /// binding rate) stay off — use everything() to include them.
    static CampaignConfig all() {
        CampaignConfig c;
        c.udp1 = c.udp2 = c.udp3 = c.udp4 = c.udp5 = true;
        c.tcp1 = c.tcp2 = c.tcp4 = true;
        c.icmp = c.transports = c.dns = true;
        return c;
    }

    /// Every measurement the harness implements: all() plus the paper's
    /// section-5 future-work probes.
    static CampaignConfig everything() {
        CampaignConfig c = all();
        c.quirks = c.stun = c.binding_rate = true;
        return c;
    }
};

struct DeviceResults {
    std::string tag;
    UdpTimeoutResult udp1, udp2, udp3;
    PortReuseResult udp4;
    std::map<std::string, UdpTimeoutResult> udp5; ///< service -> result
    TcpTimeoutResult tcp1;
    ThroughputResult tcp2; ///< includes the TCP-3 delay medians
    MaxBindingsResult tcp4;
    IcmpProbeResult icmp;
    TransportSupportResult transports;
    DnsProbeResult dns;
    QuirksResult quirks;
    StunProbeResult stun;
    BindingRateResult binding_rate;
    /// Supervisor verdicts, one per planned unit in execution order.
    /// Every unit is listed with status ok when supervision is off.
    std::vector<UnitReport> units;

    bool quarantined() const {
        for (const auto& u : units)
            if (u.status == UnitStatus::Quarantined) return true;
        return false;
    }
};

/// Run a campaign over every device in the testbed. Tests run
/// sequentially per device and devices sequentially (the paper ran most
/// tests in parallel across devices and throughput alone — in virtual
/// time the distinction costs nothing and sequential keeps flows apart).
class Testrund {
public:
    explicit Testrund(Testbed& tb) : tb_(tb) {}

    /// Asynchronous: drive the event loop until `done` fires.
    void run(const CampaignConfig& config,
             std::function<void(std::vector<DeviceResults>)> done);

    /// Convenience: start the testbed if needed, run, and drive the loop
    /// to completion.
    std::vector<DeviceResults> run_blocking(const CampaignConfig& config);

private:
    struct Runner;
    Testbed& tb_;
};

} // namespace gatekit::harness
