// Serialization glue between the typed harness results and the campaign
// journal (report/journal.*). One JSON payload per (device, test) unit,
// written with JsonWriter and decoded from JsonValue; doubles go through
// json_double's shortest-round-trip formatting, so a payload that is
// journaled, parsed, and re-serialized is byte-identical — the property
// the kill/resume determinism tests assert.
#pragma once

#include <string>
#include <vector>

#include "harness/testrund.hpp"
#include "report/json.hpp"

namespace gatekit::harness {

/// Execution-ordered unit names for one device under `config`: "udp1",
/// "udp2", "udp3", "udp4", one "udp5:<service>" per configured service,
/// "tcp1", "tcp2", "tcp4", "icmp", "transports", "dns", "quirks",
/// "stun", "binding_rate". Disabled tests are absent.
std::vector<std::string> unit_plan(const CampaignConfig& config);

/// Serialize the named unit's slice of `r` as one JSON value.
/// Unknown unit names serialize as null.
std::string unit_payload_json(const DeviceResults& r,
                              const std::string& unit);

/// Decode a journaled payload back into the named unit's slice of `r`.
/// Returns false for unknown unit names; absent fields keep defaults.
bool apply_unit_payload(DeviceResults& r, const std::string& unit,
                        const report::JsonValue& payload);

/// Whole-device serialization: tag, every unit payload, and the
/// supervisor unit reports. This is the byte-comparison format of the
/// journal determinism tests — a resumed campaign must reproduce the
/// uninterrupted run's string exactly.
std::string device_results_json(const DeviceResults& r);

/// FNV-1a hex fingerprint over the campaign knobs that shape the
/// measurement stream plus the device roster. A journal only resumes
/// into a campaign with the same fingerprint.
std::string campaign_fingerprint(const CampaignConfig& config,
                                 const std::vector<std::string>& devices);

} // namespace gatekit::harness
