#include "harness/transport_probe.hpp"

#include <memory>

#include "net/ethernet.hpp"
#include "stack/dccp_endpoint.hpp"
#include "stack/sctp_endpoint.hpp"

namespace gatekit::harness {

const char* to_string(NatAction a) {
    switch (a) {
    case NatAction::Dropped:
        return "dropped";
    case NatAction::Untranslated:
        return "untranslated";
    case NatAction::IpOnly:
        return "ip-only";
    }
    return "?";
}

namespace {

/// Classify the NAT's handling from the WAN-link capture: find the last
/// gateway->server frame of the given protocol and inspect its source.
NatAction classify(const Testbed::DeviceSlot& slot, std::uint8_t proto,
                   std::size_t from_record) {
    NatAction action = NatAction::Dropped;
    const auto& records = slot.wan_tap.records();
    for (std::size_t i = from_record; i < records.size(); ++i) {
        try {
            const auto frame = net::EthernetFrame::parse(records[i].frame);
            if (frame.ethertype != net::kEtherTypeIpv4) continue;
            const auto pkt = net::Ipv4Packet::parse(frame.payload);
            if (pkt.h.protocol != proto) continue;
            // Only the gateway->server direction reveals the NAT's
            // handling; the server's own replies (10.0.n.1 is also RFC
            // 1918 space) must not be mistaken for untranslated packets.
            if (pkt.h.src == slot.server_addr) continue;
            action = pkt.h.src == slot.gw_wan_addr ? NatAction::IpOnly
                                                   : NatAction::Untranslated;
        } catch (const net::ParseError&) {
        }
    }
    return action;
}

class TransportMeasurement
    : public std::enable_shared_from_this<TransportMeasurement> {
public:
    TransportMeasurement(Testbed& tb, int slot,
                         std::function<void(TransportSupportResult)> done)
        : tb_(tb), slot_(tb.slot(slot)), done_(std::move(done)),
          loop_(tb.loop()) {}

    void start() { run_sctp(); }

private:
    static constexpr std::uint16_t kPort = 38000;
    static constexpr sim::Duration kWait = std::chrono::seconds(10);

    void run_sctp() {
        auto self = shared_from_this();
        const auto tap_mark = slot_.wan_tap.records().size();
        auto& server = tb_.server().sctp_open(slot_.server_addr, kPort);
        server.listen();
        server.on_data = [self](std::span<const std::uint8_t>) {
            self->result_.sctp_data_ok = true;
        };
        auto& client = tb_.client().sctp_open(slot_.client_addr, kPort);
        client.on_established = [self, &client] {
            self->result_.sctp_connects = true;
            client.send_data({'p', 'i', 'n', 'g'});
        };
        client.on_error = [](const std::string&) {};
        client.connect({slot_.server_addr, kPort});

        loop_.after(kWait, [self, tap_mark, &server, &client] {
            self->result_.sctp_action =
                classify(self->slot_, net::proto::kSctp, tap_mark);
            self->tb_.server().sctp_close(server);
            self->tb_.client().sctp_close(client);
            self->run_dccp();
        });
    }

    void run_dccp() {
        auto self = shared_from_this();
        const auto tap_mark = slot_.wan_tap.records().size();
        auto& server = tb_.server().dccp_open(slot_.server_addr, kPort);
        server.listen();
        auto& client = tb_.client().dccp_open(slot_.client_addr, kPort);
        client.on_established = [self] {
            self->result_.dccp_connects = true;
        };
        client.on_error = [](const std::string&) {};
        client.connect({slot_.server_addr, kPort});

        loop_.after(kWait, [self, tap_mark, &server, &client] {
            self->result_.dccp_action =
                classify(self->slot_, net::proto::kDccp, tap_mark);
            self->tb_.server().dccp_close(server);
            self->tb_.client().dccp_close(client);
            self->done_(self->result_);
        });
    }

    Testbed& tb_;
    Testbed::DeviceSlot& slot_;
    std::function<void(TransportSupportResult)> done_;
    sim::EventLoop& loop_;
    TransportSupportResult result_;
};

} // namespace

void measure_transport_support(
    Testbed& tb, int slot, std::function<void(TransportSupportResult)> done) {
    auto m = std::make_shared<TransportMeasurement>(tb, slot,
                                                    std::move(done));
    m->start();
}

} // namespace gatekit::harness
