#include "harness/dns_probe.hpp"

#include <memory>

#include "stack/dns_service.hpp"
#include "stack/tcp_socket.hpp"
#include "stack/udp_socket.hpp"

namespace gatekit::harness {

namespace {

class DnsMeasurement : public std::enable_shared_from_this<DnsMeasurement> {
public:
    DnsMeasurement(Testbed& tb, int slot,
                   std::function<void(DnsProbeResult)> done)
        : tb_(tb), slot_(tb.slot(slot)), done_(std::move(done)),
          client_(tb.client()) {}

    void start() {
        auto self = shared_from_this();
        const net::Endpoint proxy{slot_.gw->lan_addr(), net::kDnsPort};
        client_.query_udp(proxy, Testbed::kTestName,
                          [self](const stack::DnsClient::Result& r) {
                              self->result_.udp_ok = r.ok;
                              self->run_tcp();
                          });
    }

private:
    void run_tcp() {
        auto self = shared_from_this();
        const net::Endpoint proxy{slot_.gw->lan_addr(), net::kDnsPort};
        const auto udp_before = tb_.dns().udp_queries();
        client_.query_tcp(
            proxy, slot_.client_addr, Testbed::kTestName,
            [self, udp_before](const stack::DnsClient::Result& r) {
                self->result_.tcp_answers = r.ok;
                // "Refused" means no listener; a timeout means the proxy
                // accepted but never answered.
                self->result_.tcp_connects =
                    r.ok || r.error != "connection refused";
                self->result_.tcp_upstream_udp =
                    r.ok && self->tb_.dns().udp_queries() > udp_before;
                self->run_big_udp();
            });
    }

    /// DNSSEC readiness step 1: EDNS0 query for a ~1.1 KB TXT answer.
    void run_big_udp() {
        auto self = shared_from_this();
        auto& sock = tb_.client().udp_open(slot_.client_addr, 0);
        big_sock_ = &sock;
        sock.set_receive_handler(
            [self](net::Endpoint, std::span<const std::uint8_t> payload,
                   const net::Ipv4Packet&) {
                net::DnsMessage resp;
                try {
                    resp = net::DnsMessage::parse(payload);
                } catch (const net::ParseError&) {
                    return;
                }
                if (!resp.is_response || resp.id != 0x6b1d) return;
                if (resp.truncated) {
                    self->result_.truncated_seen = true;
                } else if (!resp.answers.empty() &&
                           payload.size() > Testbed::kBigAnswerSize) {
                    self->result_.big_udp_ok = true;
                }
            });
        auto query = net::DnsMessage::make_query(0x6b1d, Testbed::kBigName,
                                                 net::kDnsTypeTxt);
        query.edns_udp_size = 4096;
        sock.send_to({slot_.gw->lan_addr(), net::kDnsPort},
                     query.serialize());
        tb_.loop().after(std::chrono::seconds(2), [self] {
            self->tb_.client().udp_close(*self->big_sock_);
            if (self->result_.big_udp_ok) {
                self->result_.dnssec_ready = true;
                self->done_(self->result_);
            } else {
                self->run_big_tcp();
            }
        });
    }

    /// DNSSEC readiness step 2: resolvers retry over TCP after TC (or
    /// after a UDP timeout); the proxy's TCP support decides the outcome.
    void run_big_tcp() {
        auto self = shared_from_this();
        auto& conn = tb_.client().tcp_connect(
            slot_.client_addr, 0, {slot_.gw->lan_addr(), net::kDnsPort});
        auto framer = std::make_shared<stack::DnsTcpFramer>();
        auto finished = std::make_shared<bool>(false);
        auto finish = [self, finished](bool ok) {
            if (*finished) return;
            *finished = true;
            self->result_.dnssec_ready = ok;
            self->done_(self->result_);
        };
        conn.on_established = [&conn] {
            auto query = net::DnsMessage::make_query(
                0x6b1e, Testbed::kBigName, net::kDnsTypeTxt);
            conn.send(stack::DnsTcpFramer::frame(query.serialize()));
        };
        conn.on_data = [framer, finish](std::span<const std::uint8_t> d) {
            framer->feed(d);
            net::Bytes msg;
            while (framer->next(msg)) {
                try {
                    const auto resp = net::DnsMessage::parse(msg);
                    finish(resp.is_response && !resp.answers.empty() &&
                           msg.size() > Testbed::kBigAnswerSize);
                } catch (const net::ParseError&) {
                }
                return;
            }
        };
        conn.on_error = [finish](const std::string&) { finish(false); };
        tb_.loop().after(std::chrono::seconds(5),
                         [finish] { finish(false); });
    }

    Testbed& tb_;
    Testbed::DeviceSlot& slot_;
    std::function<void(DnsProbeResult)> done_;
    stack::DnsClient client_;
    stack::UdpSocket* big_sock_ = nullptr;
    DnsProbeResult result_;
};

} // namespace

void measure_dns(Testbed& tb, int slot,
                 std::function<void(DnsProbeResult)> done) {
    auto m = std::make_shared<DnsMeasurement>(tb, slot, std::move(done));
    m->start();
}

} // namespace gatekit::harness
