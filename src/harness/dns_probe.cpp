#include "harness/dns_probe.hpp"

#include <memory>

#include "stack/dns_service.hpp"
#include "stack/tcp_socket.hpp"
#include "stack/udp_socket.hpp"

namespace gatekit::harness {

namespace {

class DnsMeasurement : public std::enable_shared_from_this<DnsMeasurement> {
public:
    DnsMeasurement(Testbed& tb, int slot, DnsProbeConfig config,
                   std::function<void(DnsProbeResult)> done)
        : tb_(tb), slot_(tb.slot(slot)), config_(config),
          done_(std::move(done)), client_(tb.client()) {}

    void start() {
        auto self = shared_from_this();
        const net::Endpoint proxy{slot_.gw->lan_addr(), net::kDnsPort};
        client_.query_udp(proxy, Testbed::kTestName,
                          [self](const stack::DnsClient::Result& r) {
                              self->result_.udp_ok = r.ok;
                              self->run_tcp();
                          },
                          config_.udp_retries);
    }

private:
    void run_tcp() {
        auto self = shared_from_this();
        const net::Endpoint proxy{slot_.gw->lan_addr(), net::kDnsPort};
        const auto udp_before = tb_.dns().udp_queries();
        client_.query_tcp(
            proxy, slot_.client_addr, Testbed::kTestName,
            [self, udp_before](const stack::DnsClient::Result& r) {
                self->result_.tcp_answers = r.ok;
                // "Refused" means no listener; a timeout means the proxy
                // accepted but never answered.
                self->result_.tcp_connects =
                    r.ok || r.error != "connection refused";
                self->result_.tcp_upstream_udp =
                    r.ok && self->tb_.dns().udp_queries() > udp_before;
                self->run_big_udp();
            });
    }

    /// DNSSEC readiness step 1: EDNS0 query for a ~1.1 KB TXT answer.
    void run_big_udp() {
        auto self = shared_from_this();
        auto& sock = tb_.client().udp_open(slot_.client_addr, 0);
        big_sock_ = &sock;
        sock.set_receive_handler(
            [self](net::Endpoint, std::span<const std::uint8_t> payload,
                   const net::Ipv4Packet&) {
                net::DnsMessage resp;
                try {
                    resp = net::DnsMessage::parse(payload);
                } catch (const net::ParseError&) {
                    return;
                }
                if (!resp.is_response || resp.id != 0x6b1d) return;
                if (resp.truncated) {
                    self->result_.truncated_seen = true;
                } else if (!resp.answers.empty() &&
                           payload.size() > Testbed::kBigAnswerSize) {
                    self->result_.big_udp_ok = true;
                }
            });
        big_udp_attempt(0);
    }

    void big_udp_attempt(int attempt) {
        auto self = shared_from_this();
        auto query = net::DnsMessage::make_query(0x6b1d, Testbed::kBigName,
                                                 net::kDnsTypeTxt);
        query.edns_udp_size = 4096;
        big_sock_->send_to({slot_.gw->lan_addr(), net::kDnsPort},
                           query.serialize());
        tb_.loop().after(config_.big_wait, [self, attempt] {
            // A TC response is an answer too — only silence is retried.
            if (!self->result_.big_udp_ok && !self->result_.truncated_seen &&
                attempt < self->config_.big_retries) {
                ++self->result_.big_udp_retries;
                self->big_udp_attempt(attempt + 1);
                return;
            }
            self->tb_.client().udp_close(*self->big_sock_);
            if (self->result_.big_udp_ok) {
                self->result_.dnssec_ready = true;
                self->done_(self->result_);
            } else {
                self->run_big_tcp();
            }
        });
    }

    /// DNSSEC readiness step 2: resolvers retry over TCP after TC (or
    /// after a UDP timeout); the proxy's TCP support decides the outcome.
    void run_big_tcp() {
        auto self = shared_from_this();
        auto& conn = tb_.client().tcp_connect(
            slot_.client_addr, 0, {slot_.gw->lan_addr(), net::kDnsPort});
        tcp_conn_ = &conn;
        auto framer = std::make_shared<stack::DnsTcpFramer>();
        auto finished = std::make_shared<bool>(false);
        auto finish = [self, finished](bool ok) {
            if (*finished) return;
            *finished = true;
            self->result_.dnssec_ready = ok;
            // Tear the probe connection down one event later (a verdict
            // can arrive from inside the socket's own callback) so its
            // handlers stop owning this measurement.
            self->tb_.loop().after(sim::Duration::zero(), [self] {
                if (self->tcp_conn_ == nullptr) return;
                self->tcp_conn_->on_established = nullptr;
                self->tcp_conn_->on_data = nullptr;
                self->tcp_conn_->on_error = nullptr;
                self->tcp_conn_->abort();
                self->tcp_conn_ = nullptr;
            });
            self->done_(self->result_);
        };
        conn.on_established = [&conn] {
            auto query = net::DnsMessage::make_query(
                0x6b1e, Testbed::kBigName, net::kDnsTypeTxt);
            conn.send(stack::DnsTcpFramer::frame(query.serialize()));
        };
        conn.on_data = [framer, finish](std::span<const std::uint8_t> d) {
            framer->feed(d);
            net::Bytes msg;
            while (framer->next(msg)) {
                try {
                    const auto resp = net::DnsMessage::parse(msg);
                    finish(resp.is_response && !resp.answers.empty() &&
                           msg.size() > Testbed::kBigAnswerSize);
                } catch (const net::ParseError&) {
                }
                return;
            }
        };
        conn.on_error = [self, finish](const std::string&) {
            self->tcp_conn_ = nullptr; // the stack reaps errored sockets
            finish(false);
        };
        tb_.loop().after(std::chrono::seconds(5),
                         [finish] { finish(false); });
    }

    Testbed& tb_;
    Testbed::DeviceSlot& slot_;
    DnsProbeConfig config_;
    std::function<void(DnsProbeResult)> done_;
    stack::DnsClient client_;
    stack::UdpSocket* big_sock_ = nullptr;
    stack::TcpSocket* tcp_conn_ = nullptr;
    DnsProbeResult result_;
};

} // namespace

void measure_dns(Testbed& tb, int slot,
                 std::function<void(DnsProbeResult)> done) {
    measure_dns(tb, slot, DnsProbeConfig{}, std::move(done));
}

void measure_dns(Testbed& tb, int slot, const DnsProbeConfig& config,
                 std::function<void(DnsProbeResult)> done) {
    auto m = std::make_shared<DnsMeasurement>(tb, slot, config,
                                              std::move(done));
    m->start();
}

} // namespace gatekit::harness
