#include "harness/binding_search.hpp"

#include "util/assert.hpp"

namespace gatekit::harness {

BindingTimeoutSearch::BindingTimeoutSearch(sim::EventLoop& loop,
                                           SearchParams params, TrialFn trial,
                                           DoneFn finished)
    : loop_(loop), params_(params), trial_(std::move(trial)),
      finished_(std::move(finished)), next_guess_(params.first_guess) {
    GK_EXPECTS(params_.first_guess > sim::Duration::zero());
    GK_EXPECTS(params_.resolution > sim::Duration::zero());
    GK_EXPECTS(params_.hi_limit >= params_.first_guess);
    GK_EXPECTS(params_.retry.max_attempts >= 1);
}

void BindingTimeoutSearch::start() { next_trial(); }

void BindingTimeoutSearch::trace(const char* name, sim::Duration gap,
                                 std::int64_t extra_num,
                                 const char* extra_key) {
    if (!obs::trace_on(params_.tracer)) return;
    auto ev = params_.tracer->event(params_.trace_device, "probe", name);
    ev.with("gap_ns", gap.count());
    ev.with("trial", trials_);
    ev.with("attempt", attempt_);
    if (extra_key != nullptr) ev.with(extra_key, extra_num);
    params_.tracer->emit(ev);
}

void BindingTimeoutSearch::next_trial() {
    if (cancel_requested()) {
        finish_cancelled();
        return;
    }
    sim::Duration gap;
    if (!have_expired_) {
        gap = std::min(next_guess_, params_.hi_limit);
    } else {
        // Converged? Report the shortest gap at which the binding was
        // observed expired — the timeout, to within the resolution.
        if (shortest_expired_ - longest_alive_ <= params_.resolution ||
            shortest_expired_ <= longest_alive_) {
            finish(shortest_expired_, false, false);
            return;
        }
        gap = longest_alive_ + (shortest_expired_ - longest_alive_) / 2;
    }
    ++trials_;
    attempt_ = 1;
    launch_attempt(gap);
}

void BindingTimeoutSearch::launch_attempt(sim::Duration gap) {
    trace("trial.launch", gap);
    const std::uint64_t gen = ++gen_;
    std::weak_ptr<char> live = liveness_;
    if (params_.retry.enabled()) {
        // The deadline covers the trial's idle gap, a gap-proportional
        // cooldown, and trial_timeout of slack for probe/grace overheads.
        watchdog_ = loop_.after(gap * 2 + params_.retry.trial_timeout,
                                [this, gap, gen, live] {
                                    if (live.expired()) return;
                                    on_watchdog(gap, gen);
                                });
    }
    trial_(gap, [this, gap, gen, live](bool alive) {
        if (live.expired()) return; // search destroyed; verdict is moot
        if (gen != gen_) return; // watchdog already gave up on this attempt
        if (params_.retry.enabled()) loop_.cancel(watchdog_);
        on_trial(gap, alive);
    });
}

void BindingTimeoutSearch::on_watchdog(sim::Duration gap, std::uint64_t gen) {
    if (gen != gen_) return; // the trial answered; stale watchdog
    ++gen_;                  // invalidate the outstanding trial callback
    if (cancel_requested()) {
        finish_cancelled();
        return;
    }
    if (attempt_ < params_.retry.max_attempts) {
        ++retries_;
        ++attempt_;
        trace("trial.watchdog_retry", gap, retries_, "retries");
        if (obs::trace_on(params_.tracer))
            params_.tracer->trigger(params_.trace_device, "probe.retry");
        const auto delay = params_.retry.backoff * (1 << (attempt_ - 2));
        loop_.after(delay,
                    [this, gap, live = std::weak_ptr<char>(liveness_)] {
                        if (live.expired()) return;
                        launch_attempt(gap);
                    });
        return;
    }
    ++giveups_;
    trace("trial.giveup", gap, giveups_, "giveups");
    if (obs::trace_on(params_.tracer))
        params_.tracer->trigger(params_.trace_device, "probe.giveup");
    // Nothing answers anymore; report the best estimate so far rather
    // than hanging the campaign.
    if (have_expired_)
        finish(shortest_expired_, false, true);
    else
        finish(longest_alive_ > sim::Duration::zero() ? longest_alive_
                                                      : params_.hi_limit,
               longest_alive_ == sim::Duration::zero(), true);
}

void BindingTimeoutSearch::on_trial(sim::Duration gap, bool alive) {
    if (cancel_requested()) {
        // A cancelled trial driver short-circuits its verdict; drop it
        // rather than folding a synthetic "expired" into the estimate.
        finish_cancelled();
        return;
    }
    trace("trial.verdict", gap, alive ? 1 : 0, "alive");
    if (alive) {
        longest_alive_ = std::max(longest_alive_, gap);
        if (!have_expired_) {
            if (gap >= params_.hi_limit) {
                // The binding outlives the measurement cutoff.
                finish(params_.hi_limit, true, false);
                return;
            }
            next_guess_ = std::min(gap * 2, params_.hi_limit);
        }
    } else {
        if (!have_expired_ || gap < shortest_expired_)
            shortest_expired_ = gap;
        have_expired_ = true;
    }
    // Schedule the next trial as a fresh event, keeping stack depth flat
    // across the potentially many iterations.
    loop_.after(sim::Duration::zero(),
                [this, live = std::weak_ptr<char>(liveness_)] {
                    if (live.expired()) return;
                    next_trial();
                });
}

void BindingTimeoutSearch::finish_cancelled() {
    trace("search.cancelled", shortest_expired_);
    if (have_expired_)
        finish(shortest_expired_, false, true, true);
    else
        finish(longest_alive_ > sim::Duration::zero() ? longest_alive_
                                                      : params_.hi_limit,
               false, true, true);
}

void BindingTimeoutSearch::finish(sim::Duration timeout, bool exceeded,
                                  bool gave_up, bool cancelled) {
    trace("search.done", timeout, gave_up ? 1 : 0, "gave_up");
    finished_(SearchResult{timeout, exceeded, trials_, retries_, giveups_,
                           gave_up, cancelled});
}

} // namespace gatekit::harness
