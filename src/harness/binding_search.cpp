#include "harness/binding_search.hpp"

#include "util/assert.hpp"

namespace gatekit::harness {

BindingTimeoutSearch::BindingTimeoutSearch(sim::EventLoop& loop,
                                           SearchParams params, TrialFn trial,
                                           DoneFn finished)
    : loop_(loop), params_(params), trial_(std::move(trial)),
      finished_(std::move(finished)), next_guess_(params.first_guess) {
    GK_EXPECTS(params_.first_guess > sim::Duration::zero());
    GK_EXPECTS(params_.resolution > sim::Duration::zero());
    GK_EXPECTS(params_.hi_limit >= params_.first_guess);
}

void BindingTimeoutSearch::start() { next_trial(); }

void BindingTimeoutSearch::next_trial() {
    sim::Duration gap;
    if (!have_expired_) {
        gap = std::min(next_guess_, params_.hi_limit);
    } else {
        // Converged? Report the shortest gap at which the binding was
        // observed expired — the timeout, to within the resolution.
        if (shortest_expired_ - longest_alive_ <= params_.resolution ||
            shortest_expired_ <= longest_alive_) {
            finished_(SearchResult{shortest_expired_, false, trials_});
            return;
        }
        gap = longest_alive_ + (shortest_expired_ - longest_alive_) / 2;
    }
    ++trials_;
    trial_(gap, [this, gap](bool alive) { on_trial(gap, alive); });
}

void BindingTimeoutSearch::on_trial(sim::Duration gap, bool alive) {
    if (alive) {
        longest_alive_ = std::max(longest_alive_, gap);
        if (!have_expired_) {
            if (gap >= params_.hi_limit) {
                // The binding outlives the measurement cutoff.
                finished_(SearchResult{params_.hi_limit, true, trials_});
                return;
            }
            next_guess_ = std::min(gap * 2, params_.hi_limit);
        }
    } else {
        if (!have_expired_ || gap < shortest_expired_)
            shortest_expired_ = gap;
        have_expired_ = true;
    }
    // Schedule the next trial as a fresh event, keeping stack depth flat
    // across the potentially many iterations.
    loop_.after(sim::Duration::zero(), [this] { next_trial(); });
}

} // namespace gatekit::harness
