// Probes for the paper's future-work list (section 5): STUN success and
// mapping classification, IP-level quirks (TTL decrement, Record Route),
// hairpinning, and the binding-creation rate.
#pragma once

#include <functional>

#include "harness/testbed.hpp"
#include "stun/stun_service.hpp"

namespace gatekit::harness {

/// "Some devices do not decrement the IP TTL field and few honor a
/// Record Route IP option" (paper section 4.4).
struct QuirksResult {
    bool decrements_ttl = false;
    bool honors_record_route = false;
    bool hairpins_udp = false;
};

void measure_quirks(Testbed& tb, int slot,
                    std::function<void(QuirksResult)> done);

/// STUN success + RFC 4787 mapping classification through one device.
/// The second query targets a second port on the test server, which
/// distinguishes endpoint-independent from endpoint-dependent mapping.
struct StunProbeResult {
    bool success = false;              ///< got a reflexive address at all
    bool reflexive_correct = false;    ///< address matches the WAN lease
    bool port_preserved = false;
    stun::Mapping mapping = stun::Mapping::Blocked;
};

void measure_stun(Testbed& tb, int slot,
                  std::function<void(StunProbeResult)> done);

/// "Measure the rate at which NATs are capable of creating new bindings":
/// burst `count` single-packet UDP flows and report how many bindings the
/// device actually established (its table cap is usually the limit).
struct BindingRateResult {
    int attempted = 0;
    int established = 0;
    double bindings_per_sec = 0.0;
};

void measure_binding_rate(Testbed& tb, int slot, int count,
                          std::function<void(BindingRateResult)> done);

} // namespace gatekit::harness
