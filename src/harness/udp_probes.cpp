#include "harness/udp_probes.hpp"

#include <memory>

#include "stack/udp_socket.hpp"
#include "util/assert.hpp"

namespace gatekit::harness {

namespace {

/// One full UDP timeout measurement for a device: `repetitions`
/// independent binary searches, each using its own client source port
/// (one flow per search, as the paper's testrund did). The object keeps
/// itself alive via shared_ptr until the last search completes.
class UdpMeasurement
    : public std::enable_shared_from_this<UdpMeasurement> {
public:
    UdpMeasurement(Testbed& tb, int slot, UdpPattern pattern,
                   UdpProbeConfig config,
                   std::function<void(UdpTimeoutResult)> done)
        : tb_(tb), slot_(tb.slot(slot)), pattern_(pattern),
          config_(config), done_(std::move(done)), loop_(tb.loop()) {
        if (obs::Observability* o = tb_.observability()) {
            const std::string device = Testbed::device_label(slot_);
            const char* probe =
                pattern_ == UdpPattern::SolitaryOutbound  ? "udp1"
                : pattern_ == UdpPattern::InboundRefresh ? "udp2"
                                                         : "udp3";
            obs::Labels labels{{"device", device}, {"probe", probe}};
            m_trials_ = o->metrics().counter("probe.trials", labels);
            m_retries_ = o->metrics().counter("probe.retries", labels);
            m_giveups_ = o->metrics().counter("probe.giveups", labels);
            m_timeout_ns_ =
                o->metrics().log_histogram("probe.timeout_ns", labels);
            if (config_.search.tracer == nullptr) {
                config_.search.tracer = &o->tracer();
                config_.search.trace_device = device;
            }
        }
    }

    void start() {
        server_sock_ =
            &tb_.server().udp_open(net::Ipv4Addr::any(), config_.server_port);
        server_sock_->set_receive_handler(
            [self = shared_from_this()](net::Endpoint src,
                                        std::span<const std::uint8_t>,
                                        const net::Ipv4Packet&) {
                self->on_server_rx(src);
            });
        next_repetition();
    }

private:
    void on_server_rx(net::Endpoint src) {
        ++server_rx_total_;
        last_peer_ = src;
        have_peer_ = true;
        // UDP-2/3: the binding-creating packet is answered immediately,
        // confirming the binding. Only the first packet of a trial is
        // echoed — echoing the client's UDP-3 reply too would ping-pong
        // forever and keep the binding alive unconditionally.
        if (server_echo_budget_ > 0) {
            --server_echo_budget_;
            server_sock_->send_to(src, {'e', 'c', 'h', 'o'});
        }
    }

    bool cancel_requested() const {
        return config_.search.cancel != nullptr && *config_.search.cancel;
    }

    void next_repetition() {
        // Drop the previous repetition's search. Its trial/finished
        // callbacks capture a shared_ptr to this measurement, so a
        // search that lingered in `search_` past the last repetition
        // would keep the whole object alive forever (ownership cycle).
        // Always deferred here (never inside the search's own stack).
        search_.reset();
        if (cancel_requested() ||
            static_cast<int>(result_.samples_sec.size()) >=
                config_.repetitions) {
            finish();
            return;
        }
        // Fresh flow per search: a new client source port.
        const auto port = static_cast<std::uint16_t>(
            40000 + result_.samples_sec.size());
        client_sock_ = &tb_.client().udp_open(slot_.client_addr, port);
        client_sock_->set_receive_handler(
            [self = shared_from_this()](net::Endpoint,
                                        std::span<const std::uint8_t>,
                                        const net::Ipv4Packet&) {
                self->on_client_rx();
            });
        prev_trial_alive_ = false;
        min_dead_gap_ = sim::Duration::zero();
        have_dead_gap_ = false;

        search_ = std::make_unique<BindingTimeoutSearch>(
            loop_, config_.search,
            [self = shared_from_this()](sim::Duration gap,
                                        std::function<void(bool)> cb) {
                self->run_trial(gap, std::move(cb));
            },
            [self = shared_from_this()](SearchResult r) {
                self->on_search_done(r);
            });
        search_->start();
    }

    void on_client_rx() {
        ++client_rx_in_trial_;
        // UDP-3: answer every server packet, refreshing via outbound.
        if (pattern_ == UdpPattern::Bidirectional && trial_running_)
            client_sock_->send_to({slot_.server_addr, config_.server_port},
                                  {'r', 'e'});
    }

    /// Idle long enough for any binding from an alive trial to die, so
    /// every trial starts from a clean slate (the paper's "identical to
    /// the first search" modification).
    sim::Duration cooldown() const {
        if (!prev_trial_alive_) return sim::Duration::zero();
        if (have_dead_gap_)
            return min_dead_gap_ * 2 + std::chrono::seconds(180);
        return config_.search.hi_limit;
    }

    void run_trial(sim::Duration gap, std::function<void(bool)> cb) {
        auto self = shared_from_this();
        loop_.after(cooldown(), [self, gap, cb = std::move(cb)]() mutable {
            if (self->cancel_requested()) {
                // Supervisor hard deadline hit during the cooldown: feed
                // the search a verdict it will discard instead of paying
                // for another full-gap trial.
                cb(false);
                return;
            }
            // Bump the epoch: any straggler chain from an abandoned
            // trial (the search watchdog moved on without it) checks it
            // at every hop and dies instead of touching this trial's
            // flow or verdict state.
            const std::uint64_t epoch = ++self->flow_epoch_;
            self->trial_running_ = true;
            self->client_rx_in_trial_ = 0;
            self->probe_attempt_ = 0;
            self->server_echo_budget_ =
                self->pattern_ == UdpPattern::SolitaryOutbound ? 0 : 1;
            // Retry-hardened runs give every trial a brand-new flow: an
            // abandoned trial's binding must never see this trial's
            // creation packet, because a second outbound packet on the
            // same flow makes it multi-packet — a class some devices
            // time out on a different schedule than a solitary flow.
            if (self->config_.retry.enabled()) self->open_fresh_flow();
            // Step 1: create the binding with a single outbound packet.
            self->send_creation(gap, 0, epoch, std::move(cb));
        });
    }

    /// Close the current client flow and open one on a fresh source
    /// port (retry-hardened trials only; the lossless path keeps one
    /// port per search).
    void open_fresh_flow() {
        if (client_sock_ != nullptr) tb_.client().udp_close(*client_sock_);
        const auto port = static_cast<std::uint16_t>(
            45000 + (fresh_flows_++ % 20000));
        client_sock_ = &tb_.client().udp_open(slot_.client_addr, port);
        client_sock_->set_receive_handler(
            [self = shared_from_this()](net::Endpoint,
                                        std::span<const std::uint8_t>,
                                        const net::Ipv4Packet&) {
                self->on_client_rx();
            });
        have_peer_ = false; // the old mapping is dead to this trial
    }

    /// Step 1 (+ optional confirm/resend loop). A creation packet lost
    /// before the server would leave `last_peer_` pointing at the
    /// previous trial's flow, turning every later probe into a false
    /// "expired"; the confirm check reads the server's receive counter
    /// over the management link and re-sends until it moves. The gap
    /// clock is re-anchored at the last send.
    void send_creation(sim::Duration gap, int attempt, std::uint64_t epoch,
                       std::function<void(bool)> cb) {
        if (epoch != flow_epoch_ || client_sock_ == nullptr) {
            // Stale chain: the search moved on (watchdog) or the whole
            // measurement finished. The late verdict is ignored by the
            // search's generation stamp.
            cb(false);
            return;
        }
        const std::uint64_t rx_before = server_rx_total_;
        client_sock_->send_to({slot_.server_addr, config_.server_port},
                              {'s', 'y', 'n'});
        auto self = shared_from_this();
        if (attempt < config_.retry.creation_retries) {
            const auto t_create = loop_.now();
            loop_.after(config_.retry.creation_wait,
                        [self, gap, attempt, epoch, rx_before, t_create,
                         cb = std::move(cb)]() mutable {
                            if (self->server_rx_total_ == rx_before) {
                                ++self->result_.creation_retries;
                                obs::inc(self->m_retries_);
                                self->send_creation(gap, attempt + 1, epoch,
                                                    std::move(cb));
                                return;
                            }
                            const auto due = std::max(self->loop_.now(),
                                                      t_create + gap);
                            self->loop_.at(due, [self, gap, epoch,
                                                 cb = std::move(
                                                     cb)]() mutable {
                                self->send_probe(gap, epoch, std::move(cb));
                            });
                        });
            return;
        }
        // Step 2: idle for the candidate gap. For UDP-2/3 the server's
        // immediate echo (and the client's reply) happen meanwhile.
        loop_.after(gap, [self, gap, epoch, cb = std::move(cb)]() mutable {
            self->send_probe(gap, epoch, std::move(cb));
        });
    }

    /// Step 3: inbound probe over the management link. When no reply
    /// lands within the grace window, the trial is re-run from step 1
    /// (up to probe_retries times) rather than re-probed in place.
    void send_probe(sim::Duration gap, std::uint64_t epoch,
                    std::function<void(bool)> cb) {
        if (epoch != flow_epoch_ || server_sock_ == nullptr) {
            // Stale chain (see send_creation); the verdict is moot.
            cb(false);
            return;
        }
        const int before = client_rx_in_trial_;
        if (have_peer_)
            server_sock_->send_to(last_peer_, {'p', 'r', 'o', 'b', 'e'});
        auto self = shared_from_this();
        loop_.after(config_.grace, [self, gap, epoch, before,
                                    cb = std::move(cb)]() mutable {
            if (epoch != self->flow_epoch_) {
                cb(false);
                return;
            }
            const bool alive = self->client_rx_in_trial_ > before;
            if (!alive &&
                self->probe_attempt_ < self->config_.retry.probe_retries) {
                ++self->probe_attempt_;
                ++self->result_.probe_retries;
                obs::inc(self->m_retries_);
                // A probe lost on an impaired link has aged the binding
                // past the nominal gap; re-probing it now would read
                // "expired" whenever the true timeout falls inside the
                // grace window, biasing the search short. Re-run the
                // trial on a brand-new flow with the same gap instead,
                // so the retry tests the same age as the original
                // trial without turning the old flow multi-packet.
                self->server_echo_budget_ =
                    self->pattern_ == UdpPattern::SolitaryOutbound ? 0 : 1;
                self->client_rx_in_trial_ = 0;
                self->open_fresh_flow();
                self->send_creation(gap, 0, epoch, std::move(cb));
                return;
            }
            self->trial_running_ = false;
            self->prev_trial_alive_ = alive;
            if (!alive) {
                if (!self->have_dead_gap_ || gap < self->min_dead_gap_)
                    self->min_dead_gap_ = gap;
                self->have_dead_gap_ = true;
            }
            cb(alive);
        });
    }

    void on_search_done(SearchResult r) {
        result_.samples_sec.push_back(sim::to_sec(r.timeout));
        result_.search_retries += r.retries;
        result_.search_giveups += r.giveups;
        obs::observe(m_timeout_ns_,
                     static_cast<double>(r.timeout.count()));
        obs::add(m_trials_, static_cast<std::uint64_t>(r.trials));
        obs::add(m_retries_, static_cast<std::uint64_t>(r.retries));
        obs::add(m_giveups_, static_cast<std::uint64_t>(r.giveups));
        tb_.client().udp_close(*client_sock_);
        client_sock_ = nullptr;
        loop_.after(sim::Duration::zero(),
                    [self = shared_from_this()] { self->next_repetition(); });
    }

    void finish() {
        tb_.server().udp_close(*server_sock_);
        server_sock_ = nullptr;
        done_(std::move(result_));
    }

    Testbed& tb_;
    Testbed::DeviceSlot& slot_;
    UdpPattern pattern_;
    UdpProbeConfig config_;
    std::function<void(UdpTimeoutResult)> done_;
    sim::EventLoop& loop_;

    stack::UdpSocket* server_sock_ = nullptr;
    stack::UdpSocket* client_sock_ = nullptr;
    std::unique_ptr<BindingTimeoutSearch> search_;
    UdpTimeoutResult result_;

    net::Endpoint last_peer_;
    bool have_peer_ = false;
    std::uint64_t server_rx_total_ = 0;
    int client_rx_in_trial_ = 0;
    int server_echo_budget_ = 0;
    int probe_attempt_ = 0;
    std::uint64_t flow_epoch_ = 0; ///< invalidates abandoned trial chains
    int fresh_flows_ = 0;          ///< ports consumed by open_fresh_flow

    // Registry promotion of the per-probe robustness counters; nullptr
    // when the testbed has no observability session attached.
    obs::Counter* m_trials_ = nullptr;
    obs::Counter* m_retries_ = nullptr;
    obs::Counter* m_giveups_ = nullptr;
    obs::LogHistogram* m_timeout_ns_ = nullptr;
    bool trial_running_ = false;
    bool prev_trial_alive_ = false;
    sim::Duration min_dead_gap_{};
    bool have_dead_gap_ = false;
};

/// UDP-4 observer: runs one UDP-1 search on a fixed flow and watches the
/// external source ports the server sees.
class PortReuseMeasurement
    : public std::enable_shared_from_this<PortReuseMeasurement> {
public:
    PortReuseMeasurement(Testbed& tb, int slot, UdpProbeConfig config,
                         std::function<void(PortReuseResult)> done)
        : tb_(tb), slot_(tb.slot(slot)), config_(config),
          done_(std::move(done)), loop_(tb.loop()) {
        if (obs::Observability* o = tb_.observability()) {
            const std::string device = Testbed::device_label(slot_);
            obs::Labels labels{{"device", device}, {"probe", "udp4"}};
            m_trials_ = o->metrics().counter("probe.trials", labels);
            m_retries_ = o->metrics().counter("probe.retries", labels);
            m_giveups_ = o->metrics().counter("probe.giveups", labels);
            if (config_.search.tracer == nullptr) {
                config_.search.tracer = &o->tracer();
                config_.search.trace_device = device;
            }
        }
    }

    static constexpr std::uint16_t kClientPort = 41999;

    void start() {
        server_sock_ =
            &tb_.server().udp_open(net::Ipv4Addr::any(), config_.server_port);
        server_sock_->set_receive_handler(
            [self = shared_from_this()](net::Endpoint src,
                                        std::span<const std::uint8_t>,
                                        const net::Ipv4Packet&) {
                self->last_peer_ = src;
                self->have_peer_ = true;
                self->port_this_trial_ = src.port;
            });
        client_sock_ = &tb_.client().udp_open(slot_.client_addr, kClientPort);
        client_sock_->set_receive_handler(
            [self = shared_from_this()](net::Endpoint,
                                        std::span<const std::uint8_t>,
                                        const net::Ipv4Packet&) {
                ++self->client_rx_in_trial_;
            });

        search_ = std::make_unique<BindingTimeoutSearch>(
            loop_, config_.search,
            [self = shared_from_this()](sim::Duration gap,
                                        std::function<void(bool)> cb) {
                self->run_trial(gap, std::move(cb));
            },
            [self = shared_from_this()](SearchResult r) {
                obs::add(self->m_trials_,
                         static_cast<std::uint64_t>(r.trials));
                obs::add(self->m_retries_,
                         static_cast<std::uint64_t>(r.retries));
                obs::add(self->m_giveups_,
                         static_cast<std::uint64_t>(r.giveups));
                self->finish();
            });
        search_->start();
    }

private:
    sim::Duration cooldown() const {
        if (!prev_trial_alive_) return sim::Duration::zero();
        if (have_dead_gap_)
            return min_dead_gap_ * 2 + std::chrono::seconds(180);
        return config_.search.hi_limit;
    }

    void run_trial(sim::Duration gap, std::function<void(bool)> cb) {
        auto self = shared_from_this();
        loop_.after(cooldown(), [self, gap, cb = std::move(cb)]() mutable {
            self->client_rx_in_trial_ = 0;
            self->port_this_trial_ = 0;
            self->client_sock_->send_to(
                {self->slot_.server_addr, self->config_.server_port}, {'s'});
            self->loop_.after(gap, [self, gap, cb = std::move(cb)]() mutable {
                const int before = self->client_rx_in_trial_;
                if (self->have_peer_)
                    self->server_sock_->send_to(self->last_peer_, {'p'});
                self->loop_.after(
                    self->config_.grace,
                    [self, gap, before, cb = std::move(cb)]() mutable {
                        const bool alive =
                            self->client_rx_in_trial_ > before;
                        self->record_trial(gap, alive);
                        cb(alive);
                    });
            });
        });
    }

    void record_trial(sim::Duration gap, bool alive) {
        result_.observed_ports.push_back(port_this_trial_);
        if (prev_trial_was_dead_ && !result_.observed_ports.empty()) {
            // This trial began immediately after an observed expiry: the
            // paper's reuse observation point.
            post_expiry_ports_.push_back(port_this_trial_);
        }
        prev_trial_was_dead_ = !alive;
        prev_trial_alive_ = alive;
        if (!alive) {
            if (!have_dead_gap_ || gap < min_dead_gap_) min_dead_gap_ = gap;
            have_dead_gap_ = true;
        }
    }

    void finish() {
        if (!result_.observed_ports.empty()) {
            result_.preserves_source_port =
                result_.observed_ports.front() == kClientPort;
            // Reuse: bindings created right after an expiry kept the port.
            result_.reuses_expired_binding = !post_expiry_ports_.empty();
            for (auto p : post_expiry_ports_)
                if (p != result_.observed_ports.front())
                    result_.reuses_expired_binding = false;
        }
        tb_.client().udp_close(*client_sock_);
        tb_.server().udp_close(*server_sock_);
        done_(std::move(result_));
        // finish() runs inside the search's own stack, so the search
        // (whose callbacks own a shared_ptr to this observer) cannot be
        // destroyed here; break the ownership cycle one event later.
        loop_.after(sim::Duration::zero(),
                    [self = shared_from_this()] { self->search_.reset(); });
    }

    Testbed& tb_;
    Testbed::DeviceSlot& slot_;
    UdpProbeConfig config_;
    std::function<void(PortReuseResult)> done_;
    sim::EventLoop& loop_;
    stack::UdpSocket* server_sock_ = nullptr;
    stack::UdpSocket* client_sock_ = nullptr;
    std::unique_ptr<BindingTimeoutSearch> search_;
    PortReuseResult result_;
    std::vector<std::uint16_t> post_expiry_ports_;
    net::Endpoint last_peer_;
    bool have_peer_ = false;
    int client_rx_in_trial_ = 0;
    std::uint16_t port_this_trial_ = 0;
    bool prev_trial_alive_ = false;
    bool prev_trial_was_dead_ = false;
    sim::Duration min_dead_gap_{};
    bool have_dead_gap_ = false;
    obs::Counter* m_trials_ = nullptr;
    obs::Counter* m_retries_ = nullptr;
    obs::Counter* m_giveups_ = nullptr;
};

} // namespace

void measure_udp_timeout(Testbed& tb, int slot, UdpPattern pattern,
                         const UdpProbeConfig& config,
                         std::function<void(UdpTimeoutResult)> done) {
    auto m = std::make_shared<UdpMeasurement>(tb, slot, pattern, config,
                                              std::move(done));
    m->start();
}

void measure_port_reuse(Testbed& tb, int slot, const UdpProbeConfig& config,
                        std::function<void(PortReuseResult)> done) {
    auto m = std::make_shared<PortReuseMeasurement>(tb, slot, config,
                                                    std::move(done));
    m->start();
}

} // namespace gatekit::harness
