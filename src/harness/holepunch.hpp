// UDP hole punching between two device profiles (Ford et al., the
// paper's reference [10]): a rendezvous server learns both peers'
// reflexive endpoints, then both punch simultaneously. Success depends on
// the mapping behaviors this library measures.
#pragma once

#include "gateway/cgn.hpp"
#include "gateway/profile.hpp"
#include "net/addr.hpp"

namespace gatekit::harness {

struct HolePunchResult {
    bool registered = false; ///< both peers reached the rendezvous server
    bool success = false;    ///< both peers heard the other's punch
    net::Endpoint reflexive_a;
    net::Endpoint reflexive_b;
};

/// Run the complete scenario on a fresh two-device testbed (synchronous;
/// builds and drives its own event loop).
HolePunchResult run_hole_punch(const gateway::DeviceProfile& a,
                               const gateway::DeviceProfile& b);

/// NAT444: the same rendezvous/punch scenario with both home gateways
/// behind carrier-grade NAT. `same_cgn` puts both subscribers on one CGN
/// — the punch packets then arrive at their own shared external address
/// and succeed only via the CGN's hairpin — otherwise each peer gets its
/// own CGN and the punch must line up mappings through two NAT layers on
/// each side (Ford et al. report lower success rates for exactly this
/// cascaded case).
HolePunchResult run_hole_punch_nat444(const gateway::DeviceProfile& a,
                                      const gateway::DeviceProfile& b,
                                      const gateway::CgnConfig& cgn,
                                      bool same_cgn = false);

/// ICE-style connectivity ladder (the paper's section-5 STUN/TURN/ICE
/// plans, composed): try a direct hole punch; when the mapping classes
/// make punching impossible, fall back to a TURN relay, which works
/// through any NAT that passes outbound UDP.
enum class P2pPath {
    Punched, ///< direct peer-to-peer after hole punching
    Relayed, ///< via the TURN relay
    Failed,
};

const char* to_string(P2pPath p);

struct P2pResult {
    P2pPath path = P2pPath::Failed;
    bool bidirectional = false; ///< data flowed both ways on `path`
};

P2pResult establish_p2p(const gateway::DeviceProfile& a,
                        const gateway::DeviceProfile& b);

} // namespace gatekit::harness
