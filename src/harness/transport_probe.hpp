// SCTP and DCCP support test (paper section 3.2.3): attempt a single
// connection and exchange data. The WAN-side capture classifies what the
// NAT actually did with the unknown transport (dropped / forwarded
// untranslated / IP-only translation), matching the paper's analysis of
// why 18 devices pass SCTP while none pass DCCP.
#pragma once

#include <functional>

#include "harness/testbed.hpp"

namespace gatekit::harness {

enum class NatAction {
    Dropped,      ///< nothing emerged on the WAN side
    Untranslated, ///< forwarded with the private source address intact
    IpOnly,       ///< source address rewritten (transport bytes untouched)
};

const char* to_string(NatAction a);

struct TransportSupportResult {
    bool sctp_connects = false;
    bool sctp_data_ok = false;
    bool dccp_connects = false;
    NatAction sctp_action = NatAction::Dropped;
    NatAction dccp_action = NatAction::Dropped;
};

void measure_transport_support(
    Testbed& tb, int slot, std::function<void(TransportSupportResult)> done);

} // namespace gatekit::harness
