// UDP binding-timeout probes UDP-1..5 (paper section 3.2.1) plus the
// UDP-4 port-allocation observation. Each measurement repeats a modified
// binary search several times and reports the per-repetition results,
// exactly as the paper plots medians with quartile error bars.
#pragma once

#include <functional>
#include <vector>

#include "harness/binding_search.hpp"
#include "harness/testbed.hpp"
#include "util/stats.hpp"

namespace gatekit::harness {

/// Traffic pattern applied to the binding under test.
enum class UdpPattern {
    SolitaryOutbound, ///< UDP-1: one packet out, nothing back
    InboundRefresh,   ///< UDP-2: one packet out, server stream back
    Bidirectional,    ///< UDP-3: client answers every server packet
};

/// Per-trial robustness against lossy links, default-off. Creation
/// resends are confirmed against the server's receive counter (the
/// testbed's management-link view), so a lost binding-creation packet is
/// detected instead of probing a stale peer; resends re-anchor the gap
/// clock at the last send, bounding the measurement error to
/// creation_retries * creation_wait (keep that below the search
/// resolution). A probe that draws no reply re-runs the trial from the
/// binding-creation step with the same gap — by the time the loss is
/// noticed the binding has aged past the nominal gap, so re-probing it
/// in place would bias the measured timeout short near the boundary.
struct UdpRetryPolicy {
    int creation_retries = 0; ///< extra binding-creation sends per trial
    sim::Duration creation_wait{std::chrono::milliseconds(250)};
    int probe_retries = 0; ///< extra inbound probes per trial
    bool enabled() const {
        return creation_retries > 0 || probe_retries > 0;
    }
};

struct UdpProbeConfig {
    int repetitions = 9; ///< paper used 55-100; each is a full search
    std::uint16_t server_port = 34567;
    sim::Duration grace{std::chrono::seconds(3)}; ///< inbound-probe wait
    SearchParams search{.first_guess = std::chrono::seconds(16),
                        .hi_limit = std::chrono::hours(1),
                        .resolution = std::chrono::seconds(1),
                        .retry = {},
                        .tracer = nullptr,
                        .trace_device = {}};
    UdpRetryPolicy retry;
};

struct UdpTimeoutResult {
    std::vector<double> samples_sec; ///< one converged value per repetition
    // Robustness counters, aggregated across repetitions.
    int creation_retries = 0; ///< binding-creation packets re-sent
    int probe_retries = 0;    ///< inbound probes re-sent
    int search_retries = 0;   ///< whole trials re-run by the watchdog
    int search_giveups = 0;   ///< searches abandoned (gave_up results)
    stats::Summary summary() const { return stats::summarize(samples_sec); }
};

/// Port-allocation behavior derived from the UDP-1 procedure (UDP-4).
struct PortReuseResult {
    bool preserves_source_port = false;
    /// Meaningful only when preserves_source_port: did the binding created
    /// right after an observed expiry keep the same external port?
    bool reuses_expired_binding = false;
    std::vector<std::uint16_t> observed_ports; ///< per trial, diagnostics
};

/// Measure the binding timeout of one device under the given pattern.
/// Completion is signalled via callback; drive the event loop to finish.
void measure_udp_timeout(Testbed& tb, int slot, UdpPattern pattern,
                         const UdpProbeConfig& config,
                         std::function<void(UdpTimeoutResult)> done);

/// UDP-4: observe port preservation/reuse using the UDP-1 procedure.
void measure_port_reuse(Testbed& tb, int slot, const UdpProbeConfig& config,
                        std::function<void(PortReuseResult)> done);

} // namespace gatekit::harness
