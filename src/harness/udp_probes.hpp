// UDP binding-timeout probes UDP-1..5 (paper section 3.2.1) plus the
// UDP-4 port-allocation observation. Each measurement repeats a modified
// binary search several times and reports the per-repetition results,
// exactly as the paper plots medians with quartile error bars.
#pragma once

#include <functional>
#include <vector>

#include "harness/binding_search.hpp"
#include "harness/testbed.hpp"
#include "util/stats.hpp"

namespace gatekit::harness {

/// Traffic pattern applied to the binding under test.
enum class UdpPattern {
    SolitaryOutbound, ///< UDP-1: one packet out, nothing back
    InboundRefresh,   ///< UDP-2: one packet out, server stream back
    Bidirectional,    ///< UDP-3: client answers every server packet
};

struct UdpProbeConfig {
    int repetitions = 9; ///< paper used 55-100; each is a full search
    std::uint16_t server_port = 34567;
    sim::Duration grace{std::chrono::seconds(3)}; ///< inbound-probe wait
    SearchParams search{.first_guess = std::chrono::seconds(16),
                        .hi_limit = std::chrono::hours(1),
                        .resolution = std::chrono::seconds(1)};
};

struct UdpTimeoutResult {
    std::vector<double> samples_sec; ///< one converged value per repetition
    stats::Summary summary() const { return stats::summarize(samples_sec); }
};

/// Port-allocation behavior derived from the UDP-1 procedure (UDP-4).
struct PortReuseResult {
    bool preserves_source_port = false;
    /// Meaningful only when preserves_source_port: did the binding created
    /// right after an observed expiry keep the same external port?
    bool reuses_expired_binding = false;
    std::vector<std::uint16_t> observed_ports; ///< per trial, diagnostics
};

/// Measure the binding timeout of one device under the given pattern.
/// Completion is signalled via callback; drive the event loop to finish.
void measure_udp_timeout(Testbed& tb, int slot, UdpPattern pattern,
                         const UdpProbeConfig& config,
                         std::function<void(UdpTimeoutResult)> done);

/// UDP-4: observe port preservation/reuse using the UDP-1 procedure.
void measure_port_reuse(Testbed& tb, int slot, const UdpProbeConfig& config,
                        std::function<void(PortReuseResult)> done);

} // namespace gatekit::harness
