#include "harness/testbed.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace gatekit::harness {

namespace {
constexpr std::uint64_t kLinkRate = 100'000'000; // 100 Mb/s Ethernet
constexpr sim::Duration kLinkProp = std::chrono::microseconds(1);
} // namespace

Testbed::Testbed(sim::EventLoop& loop)
    : loop_(loop), lan_switch_(loop), wan_switch_(loop),
      client_(loop, "test-client", net::MacAddr::from_index(1)),
      server_(loop, "test-server", net::MacAddr::from_index(2)),
      client_trunk_(loop, kLinkRate, kLinkProp),
      server_trunk_(loop, kLinkRate, kLinkProp) {
    // Trunk links from hosts to their switches.
    client_.nic().connect(client_trunk_, sim::Link::Side::A);
    lan_switch_.connect(lan_switch_.add_trunk_port(), client_trunk_,
                        sim::Link::Side::B);
    server_.nic().connect(server_trunk_, sim::Link::Side::A);
    wan_switch_.connect(wan_switch_.add_trunk_port(), server_trunk_,
                        sim::Link::Side::B);
    dns_ = std::make_unique<stack::DnsServer>(server_, net::Ipv4Addr::any());
    dns_->add_txt_record(kBigName, kBigAnswerSize);

    // The test server is every gateway's default router, so it must also
    // route *between* the per-device WAN subnets — that is "the Internet"
    // as far as two homes talking to each other are concerned (the
    // hole-punching example depends on it).
    server_.set_forward_hook([this](stack::Iface&,
                                    const net::Ipv4Packet& pkt,
                                    std::span<const std::uint8_t>) {
        if (pkt.h.ttl <= 1) return;
        const stack::Route* route = server_.lookup_route(pkt.h.dst);
        if (route == nullptr || !route->iface->configured()) return;
        net::Ipv4Packet fwd = pkt;
        fwd.h.ttl = static_cast<std::uint8_t>(pkt.h.ttl - 1);
        server_.send_raw(*route->iface, fwd.serialize(),
                         route->via ? *route->via : pkt.h.dst);
    });
}

int Testbed::add_device(gateway::DeviceProfile profile) {
    return add_device(std::move(profile), next_number_);
}

std::unique_ptr<Testbed::DeviceSlot>
Testbed::make_slot(gateway::DeviceProfile profile, int number) {
    GK_EXPECTS(!started_);
    GK_EXPECTS(number >= 1);
    if (std::string err = profile.validate(); !err.empty())
        throw std::invalid_argument(
            "device profile '" + profile.tag + "': " + err);
    const int n = number;
    // The 12-bit VLAN space caps a single testbed at 1000 devices:
    // device n takes LAN VLAN 2000+((n-1)%1000+1) and WAN VLAN
    // 1000+((n-1)%1000+1), so ids never leave their thousand band (and
    // are untouched for n <= 1000, which covers every calibrated
    // artifact). Sharded campaigns build one-device testbeds, so the
    // cap bounds co-resident devices, not roster size.
    GK_EXPECTS(slots_.size() < 1000);
    auto slot = std::make_unique<DeviceSlot>();
    slot->index = n;
    const auto n8 = static_cast<std::uint8_t>(n);
    const auto vlan_slot = static_cast<std::uint16_t>((n - 1) % 1000 + 1);

    // Gateway n: LAN 192.168.n.1/24, WAN leased from 10.0.n.0/24.
    gateway::HomeGateway::Config cfg;
    cfg.profile = std::move(profile);
    cfg.lan_addr = net::Ipv4Addr(192, 168, n8, 1);
    cfg.lan_pool_base = net::Ipv4Addr(192, 168, n8, 100);
    cfg.mac_index = 1000 + static_cast<std::uint32_t>(2 * n);
    slot->gw = std::make_unique<gateway::HomeGateway>(loop_, std::move(cfg));

    // LAN side: access port on VLAN 2000+vlan_slot, client vlan-if on
    // the trunk.
    slot->lan_link = std::make_unique<sim::Link>(loop_, kLinkRate, kLinkProp);
    slot->gw->connect_lan(*slot->lan_link, sim::Link::Side::A);
    lan_switch_.connect(
        lan_switch_.add_access_port(
            static_cast<std::uint16_t>(2000 + vlan_slot)),
        *slot->lan_link, sim::Link::Side::B);
    slot->client_if =
        &client_.add_iface(static_cast<std::uint16_t>(2000 + vlan_slot));

    // WAN link (the caller wires its far end to a switch port).
    slot->wan_link = std::make_unique<sim::Link>(loop_, kLinkRate, kLinkProp);
    slot->gw->connect_wan(*slot->wan_link, sim::Link::Side::A);
    slot->wan_tap.attach(*slot->wan_link);
    return slot;
}

int Testbed::add_device(gateway::DeviceProfile profile, int number) {
    next_number_ = std::max(next_number_, number + 1);
    auto slot = make_slot(std::move(profile), number);
    const int n = number;
    const auto n8 = static_cast<std::uint8_t>(n);
    const auto vlan_slot = static_cast<std::uint16_t>((n - 1) % 1000 + 1);

    // WAN side: access port on VLAN 1000+vlan_slot, server vlan-if
    // 10.0.n.1/24.
    wan_switch_.connect(
        wan_switch_.add_access_port(
            static_cast<std::uint16_t>(1000 + vlan_slot)),
        *slot->wan_link, sim::Link::Side::B);
    slot->server_if =
        &server_.add_iface(static_cast<std::uint16_t>(1000 + vlan_slot));
    slot->server_addr = net::Ipv4Addr(10, 0, n8, 1);
    slot->server_if->configure(slot->server_addr, 24);
    server_.add_route(net::Ipv4Addr(10, 0, n8, 0), 24, *slot->server_if);

    // Test server leases 10.0.n.10.. to the gateway's WAN port, pointing
    // the gateway at itself for routing and DNS (the global DNS server
    // answers on every server address).
    stack::DhcpServerConfig wan_dhcp_cfg;
    wan_dhcp_cfg.pool_base = net::Ipv4Addr(10, 0, n8, 10);
    wan_dhcp_cfg.router = slot->server_addr;
    wan_dhcp_cfg.dns_server = slot->server_addr;
    slot->wan_dhcp = std::make_unique<stack::DhcpServer>(
        server_, *slot->server_if, wan_dhcp_cfg);

    slots_.push_back(std::move(slot));
    dns_->add_record(kTestName, slots_.back()->server_addr);
    if (obs_ != nullptr) bind_slot_observability(*slots_.back());
    return static_cast<int>(slots_.size()) - 1;
}

int Testbed::add_cgn_group(gateway::CgnConfig cgn) {
    GK_EXPECTS(!started_);
    // 100.64.c.0/24 access subnets key off the group's device number,
    // which must fit an octet.
    const int c = next_number_;
    GK_EXPECTS(c <= 250);
    next_number_ = c + 1;
    auto grp = std::make_unique<CgnGroup>();
    grp->index = c;
    const auto c8 = static_cast<std::uint8_t>(c);
    const auto vlan_slot = static_cast<std::uint16_t>((c - 1) % 1000 + 1);

    gateway::CgnGateway::Config cfg;
    cfg.cgn = cgn;
    cfg.access_addr = net::Ipv4Addr(100, 64, c8, 1);
    cfg.access_prefix_len = 24;
    cfg.access_pool_base = net::Ipv4Addr(100, 64, c8, 100);
    cfg.mac_index = 5000 + static_cast<std::uint32_t>(2 * c);
    grp->cgn = std::make_unique<gateway::CgnGateway>(loop_, cfg);

    // Access network: VLAN 3000+vlan_slot on the WAN switch; member
    // gateways' WAN links join the same segment.
    grp->access_link =
        std::make_unique<sim::Link>(loop_, kLinkRate, kLinkProp);
    grp->cgn->connect_access(*grp->access_link, sim::Link::Side::A);
    wan_switch_.connect(
        wan_switch_.add_access_port(
            static_cast<std::uint16_t>(3000 + vlan_slot)),
        *grp->access_link, sim::Link::Side::B);

    // Uplink: byte-for-byte a home gateway's WAN slot — VLAN
    // 1000+vlan_slot, server vlan-if 10.0.c.1/24, server-side DHCP.
    grp->wan_link = std::make_unique<sim::Link>(loop_, kLinkRate, kLinkProp);
    grp->cgn->connect_wan(*grp->wan_link, sim::Link::Side::A);
    wan_switch_.connect(
        wan_switch_.add_access_port(
            static_cast<std::uint16_t>(1000 + vlan_slot)),
        *grp->wan_link, sim::Link::Side::B);
    grp->server_if =
        &server_.add_iface(static_cast<std::uint16_t>(1000 + vlan_slot));
    grp->server_addr = net::Ipv4Addr(10, 0, c8, 1);
    grp->server_if->configure(grp->server_addr, 24);
    server_.add_route(net::Ipv4Addr(10, 0, c8, 0), 24, *grp->server_if);

    stack::DhcpServerConfig wan_dhcp_cfg;
    wan_dhcp_cfg.pool_base = net::Ipv4Addr(10, 0, c8, 10);
    wan_dhcp_cfg.router = grp->server_addr;
    wan_dhcp_cfg.dns_server = grp->server_addr;
    grp->wan_dhcp = std::make_unique<stack::DhcpServer>(
        server_, *grp->server_if, wan_dhcp_cfg);

    cgn_groups_.push_back(std::move(grp));
    dns_->add_record(kTestName, cgn_groups_.back()->server_addr);
    return static_cast<int>(cgn_groups_.size()) - 1;
}

int Testbed::add_device_behind_cgn(gateway::DeviceProfile profile,
                                   int group) {
    GK_EXPECTS(group >= 0 &&
               group < static_cast<int>(cgn_groups_.size()));
    const int n = next_number_;
    next_number_ = n + 1;
    auto slot = make_slot(std::move(profile), n);
    CgnGroup& g = *cgn_groups_[static_cast<std::size_t>(group)];
    slot->cgn_group = group;
    // The WAN link joins the group's access segment; the gateway leases
    // its WAN address (100.64.c.x) from the CGN instead of the server.
    const auto access_vlan = static_cast<std::uint16_t>(
        3000 + (g.index - 1) % 1000 + 1);
    wan_switch_.connect(wan_switch_.add_access_port(access_vlan),
                        *slot->wan_link, sim::Link::Side::B);
    // Probe traffic targets the far end of the NAT444 chain.
    slot->server_addr = g.server_addr;
    g.members.push_back(static_cast<int>(slots_.size()));
    slots_.push_back(std::move(slot));
    if (obs_ != nullptr) bind_slot_observability(*slots_.back());
    return static_cast<int>(slots_.size()) - 1;
}

std::string Testbed::device_label(const DeviceSlot& slot) {
    const std::string& tag = slot.gw->profile().tag;
    return (tag.empty() ? std::string("dev") : tag) + "#" +
           std::to_string(slot.index);
}

void Testbed::attach_observability(obs::Observability* obs) {
    obs_ = obs;
    obs::MetricsRegistry* reg = obs ? &obs->metrics() : nullptr;
    obs::Tracer* tracer = obs ? &obs->tracer() : nullptr;
    client_.bind_observability(reg, tracer);
    server_.bind_observability(reg, tracer);
    if (obs_ != nullptr)
        for (auto& slot : slots_) bind_slot_observability(*slot);
}

void Testbed::bind_slot_observability(DeviceSlot& slot) {
    const std::string device = device_label(slot);
    slot.gw->bind_observability(&obs_->metrics(), &obs_->tracer(), device);
    // The WAN link's trace events cross-reference the slot's capture: the
    // tap records at wire time before any impairment draw, so at the
    // moment an impairment event fires, the affected frame is the last
    // record. The tap outlives the link (both live in the slot).
    const pcap::CaptureTap* tap = &slot.wan_tap;
    slot.wan_link->bind_observability(
        &obs_->metrics(), &obs_->tracer(), device + ".wan", [tap] {
            return static_cast<std::int64_t>(tap->records().size()) - 1;
        });
    slot.lan_link->bind_observability(&obs_->metrics(), &obs_->tracer(),
                                      device + ".lan");
}

void Testbed::start(std::function<void()> on_ready) {
    GK_EXPECTS(!started_);
    started_ = true;
    on_ready_ = std::move(on_ready);
    // CGN groups come up first: a member gateway can only lease its WAN
    // address once the group's access-side DHCP service exists.
    for (auto& grp_ptr : cgn_groups_) {
        CgnGroup* grp = grp_ptr.get();
        grp->cgn->start([this, grp](net::Ipv4Addr external) {
            grp->external_addr = external;
            grp->ready = true;
            for (int i : grp->members)
                start_slot(*slots_[static_cast<std::size_t>(i)]);
            maybe_ready();
        });
    }
    for (auto& slot_ptr : slots_)
        if (slot_ptr->cgn_group < 0) start_slot(*slot_ptr);
}

void Testbed::start_slot(DeviceSlot& s) {
    DeviceSlot* slot = &s;
    slot->gw->start([this, slot](net::Ipv4Addr wan_addr) {
        slot->gw_wan_addr = wan_addr;
        // Gateway is up: configure the client's vlan-if through the
        // gateway's own DHCP server, then install the paper's
        // "interface-specific" routes (no default route).
        slot->client_dhcp =
            std::make_unique<stack::DhcpClient>(client_, *slot->client_if);
        slot->client_dhcp->start([this, slot](const stack::DhcpLease& l) {
            slot->client_addr = l.addr;
            slot->client_if->set_gateway(l.router);
            client_.add_route(l.addr, l.prefix_len, *slot->client_if);
            // Interface-specific route to the far-end test subnet: the
            // slot's own 10.0.n.0/24 for a direct uplink, or — behind a
            // CGN — the group's uplink subnet past the NAT444 chain.
            const int far = slot->cgn_group < 0
                                ? slot->index
                                : cgn_groups_[static_cast<std::size_t>(
                                                  slot->cgn_group)]
                                      ->index;
            client_.add_route(
                net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(far), 0),
                24, *slot->client_if, l.router);
            slot->ready = true;
            maybe_ready();
        });
    });
}

void Testbed::maybe_ready() {
    if (all_ready() && on_ready_) {
        auto cb = std::move(on_ready_);
        on_ready_ = nullptr;
        cb();
    }
}

bool Testbed::all_ready() const {
    for (const auto& grp : cgn_groups_)
        if (!grp->ready) return false;
    for (const auto& slot : slots_)
        if (!slot->ready) return false;
    return !slots_.empty();
}

void Testbed::start_and_wait() {
    bool ready = false;
    start([&ready] { ready = true; });
    loop_.run_until(loop_.now() + std::chrono::seconds(60));
    if (!ready)
        throw std::runtime_error("testbed bring-up failed (DHCP)");
}

} // namespace gatekit::harness
