// The paper's Figure 1 testbed: a test server and test client (Linux
// hosts with one physical NIC each, carrying per-device VLAN
// subinterfaces over trunk links), two VLAN switches, and N home gateways
// wired WAN-side to VLAN 1000+n / LAN-side to VLAN 2000+n. The test
// server runs a per-VLAN DHCP service and the global DNS server; each
// gateway leases its WAN address, then serves DHCP and proxies DNS toward
// the test client.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gateway/cgn.hpp"
#include "gateway/home_gateway.hpp"
#include "l2/vlan_switch.hpp"
#include "obs/obs.hpp"
#include "pcap/capture_tap.hpp"
#include "stack/dhcp_service.hpp"
#include "stack/dns_service.hpp"
#include "stack/host.hpp"

namespace gatekit::harness {

class Testbed {
public:
    struct DeviceSlot {
        int index = 0; ///< 1-based device number n
        std::unique_ptr<gateway::HomeGateway> gw;
        std::unique_ptr<sim::Link> lan_link; ///< gw LAN <-> LAN switch
        std::unique_ptr<sim::Link> wan_link; ///< gw WAN <-> WAN switch
        stack::Iface* client_if = nullptr;   ///< test client's vlan-if
        stack::Iface* server_if = nullptr;   ///< test server's vlan-if
        std::unique_ptr<stack::DhcpServer> wan_dhcp; ///< test-server side
        std::unique_ptr<stack::DhcpClient> client_dhcp;
        net::Ipv4Addr server_addr; ///< 10.0.n.1
        net::Ipv4Addr client_addr; ///< leased from the gateway
        net::Ipv4Addr gw_wan_addr; ///< leased from the test server
        pcap::CaptureTap wan_tap;  ///< capture on the gateway's WAN link
        /// CGN group (0-based) this gateway's WAN sits behind, or -1 for
        /// a direct (single-NAT) uplink to the test server.
        int cgn_group = -1;
        bool ready = false;
    };

    /// One carrier-grade NAT and its access network. The CGN's WAN side
    /// looks exactly like a home gateway's to the test server (VLAN
    /// 1000+c, subnet 10.0.c.0/24, DHCP + routing from the server); its
    /// access side is a private 100.64.c.0/24 network on VLAN 3000+c
    /// where member gateways lease their WAN addresses.
    struct CgnGroup {
        int index = 0; ///< 1-based number c (shares the device numbering)
        std::unique_ptr<gateway::CgnGateway> cgn;
        std::unique_ptr<sim::Link> access_link; ///< access if <-> WAN switch
        std::unique_ptr<sim::Link> wan_link;    ///< wan if <-> WAN switch
        stack::Iface* server_if = nullptr;      ///< test server's vlan-if
        std::unique_ptr<stack::DhcpServer> wan_dhcp; ///< test-server side
        net::Ipv4Addr server_addr;   ///< 10.0.c.1
        net::Ipv4Addr external_addr; ///< leased from the test server
        std::vector<int> members;    ///< 0-based slot indexes behind it
        bool ready = false;
    };

    explicit Testbed(sim::EventLoop& loop);

    Testbed(const Testbed&) = delete;
    Testbed& operator=(const Testbed&) = delete;

    /// Add a gateway with the given behavior profile; returns its slot
    /// index (0-based). Must be called before start(). Throws
    /// std::invalid_argument when the profile fails validate().
    int add_device(gateway::DeviceProfile profile);

    /// Add a gateway under an explicit 1-based device number: addressing,
    /// VLANs, MACs, and the "tag#n" label all derive from `number`
    /// exactly as if the device sat at slot number-1 of a larger roster.
    /// This is what lets a sharded campaign build a one-device testbed
    /// whose wire traffic is byte-identical to the device's slice of a
    /// full-roster bring-up.
    int add_device(gateway::DeviceProfile profile, int number);

    /// Add a carrier-grade NAT; returns its group index (0-based). The
    /// CGN takes the next device number c (its uplink occupies the same
    /// VLAN/subnet/DHCP resources a home gateway's would), and serves
    /// the 100.64.c.0/24 access network on VLAN 3000+c. `cgn` carries
    /// the engine knobs; addressing fields are filled in here.
    int add_cgn_group(gateway::CgnConfig cgn = {});

    /// Add a home gateway whose WAN side sits on `group`'s access
    /// network instead of a direct test-server VLAN: NAT444. The slot
    /// keeps its own device number (LAN addressing, client vlan-if) but
    /// leases its WAN address from the CGN, and slot.server_addr points
    /// at the group's test-server interface so probes traverse the
    /// whole chain. Returns the slot index (0-based).
    int add_device_behind_cgn(gateway::DeviceProfile profile, int group);

    /// Bring everything up (gateway WAN DHCP, then client-side DHCP per
    /// VLAN). CGN groups come up first; their member gateways start once
    /// the access network is serving leases.
    /// `on_ready` fires when every device slot is operational.
    void start(std::function<void()> on_ready);

    /// Convenience: start() and run the loop until ready (bounded wait).
    /// Throws on bring-up failure.
    void start_and_wait();

    bool all_ready() const;

    stack::Host& client() { return client_; }
    stack::Host& server() { return server_; }
    sim::Link& client_trunk() { return client_trunk_; }
    sim::Link& server_trunk() { return server_trunk_; }
    stack::DnsServer& dns() { return *dns_; }
    sim::EventLoop& loop() { return loop_; }

    std::size_t device_count() const { return slots_.size(); }
    DeviceSlot& slot(int i) { return *slots_.at(static_cast<std::size_t>(i)); }
    std::size_t cgn_count() const { return cgn_groups_.size(); }
    CgnGroup& cgn_group(int i) {
        return *cgn_groups_.at(static_cast<std::size_t>(i));
    }

    /// Attach an observability session (owned by the caller, must outlive
    /// the testbed): binds every device slot created so far and any added
    /// later — gateways, test hosts, and the per-slot links, whose trace
    /// events cross-reference the slot's WAN capture frame indices.
    void attach_observability(obs::Observability* obs);
    obs::Observability* observability() { return obs_; }

    /// Metrics/trace label for a slot: "<profile tag>#<n>".
    static std::string device_label(const DeviceSlot& slot);

    /// The DNS name the global server resolves (paper: hiit.fi zone).
    static constexpr const char* kTestName = "server.hiit.fi";
    /// A name with a DNSSEC-sized (~1100 byte) TXT answer.
    static constexpr const char* kBigName = "big.hiit.fi";
    static constexpr std::size_t kBigAnswerSize = 1100;

private:
    void maybe_ready();
    /// Validation + LAN side + gateway + WAN link; the caller attaches
    /// the WAN link to its segment (server VLAN or CGN access network).
    std::unique_ptr<DeviceSlot> make_slot(gateway::DeviceProfile profile,
                                          int number);
    void start_slot(DeviceSlot& slot);
    void bind_slot_observability(DeviceSlot& slot);

    sim::EventLoop& loop_;
    l2::VlanSwitch lan_switch_;
    l2::VlanSwitch wan_switch_;
    stack::Host client_;
    stack::Host server_;
    sim::Link client_trunk_;
    sim::Link server_trunk_;
    std::unique_ptr<stack::DnsServer> dns_;
    std::vector<std::unique_ptr<DeviceSlot>> slots_;
    std::vector<std::unique_ptr<CgnGroup>> cgn_groups_;
    /// Next auto-assigned device number; CGN uplinks and gateways draw
    /// from the same sequence (identical to slots_.size()+1 until the
    /// first CGN group, so existing single-NAT artifacts are unchanged).
    int next_number_ = 1;
    std::function<void()> on_ready_;
    bool started_ = false;
    obs::Observability* obs_ = nullptr;
};

} // namespace gatekit::harness
