// The paper's Figure 1 testbed: a test server and test client (Linux
// hosts with one physical NIC each, carrying per-device VLAN
// subinterfaces over trunk links), two VLAN switches, and N home gateways
// wired WAN-side to VLAN 1000+n / LAN-side to VLAN 2000+n. The test
// server runs a per-VLAN DHCP service and the global DNS server; each
// gateway leases its WAN address, then serves DHCP and proxies DNS toward
// the test client.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gateway/home_gateway.hpp"
#include "l2/vlan_switch.hpp"
#include "obs/obs.hpp"
#include "pcap/capture_tap.hpp"
#include "stack/dhcp_service.hpp"
#include "stack/dns_service.hpp"
#include "stack/host.hpp"

namespace gatekit::harness {

class Testbed {
public:
    struct DeviceSlot {
        int index = 0; ///< 1-based device number n
        std::unique_ptr<gateway::HomeGateway> gw;
        std::unique_ptr<sim::Link> lan_link; ///< gw LAN <-> LAN switch
        std::unique_ptr<sim::Link> wan_link; ///< gw WAN <-> WAN switch
        stack::Iface* client_if = nullptr;   ///< test client's vlan-if
        stack::Iface* server_if = nullptr;   ///< test server's vlan-if
        std::unique_ptr<stack::DhcpServer> wan_dhcp; ///< test-server side
        std::unique_ptr<stack::DhcpClient> client_dhcp;
        net::Ipv4Addr server_addr; ///< 10.0.n.1
        net::Ipv4Addr client_addr; ///< leased from the gateway
        net::Ipv4Addr gw_wan_addr; ///< leased from the test server
        pcap::CaptureTap wan_tap;  ///< capture on the gateway's WAN link
        bool ready = false;
    };

    explicit Testbed(sim::EventLoop& loop);

    Testbed(const Testbed&) = delete;
    Testbed& operator=(const Testbed&) = delete;

    /// Add a gateway with the given behavior profile; returns its slot
    /// index (0-based). Must be called before start(). Throws
    /// std::invalid_argument when the profile fails validate().
    int add_device(gateway::DeviceProfile profile);

    /// Add a gateway under an explicit 1-based device number: addressing,
    /// VLANs, MACs, and the "tag#n" label all derive from `number`
    /// exactly as if the device sat at slot number-1 of a larger roster.
    /// This is what lets a sharded campaign build a one-device testbed
    /// whose wire traffic is byte-identical to the device's slice of a
    /// full-roster bring-up.
    int add_device(gateway::DeviceProfile profile, int number);

    /// Bring everything up (gateway WAN DHCP, then client-side DHCP per
    /// VLAN). `on_ready` fires when every device slot is operational.
    void start(std::function<void()> on_ready);

    /// Convenience: start() and run the loop until ready (bounded wait).
    /// Throws on bring-up failure.
    void start_and_wait();

    bool all_ready() const;

    stack::Host& client() { return client_; }
    stack::Host& server() { return server_; }
    sim::Link& client_trunk() { return client_trunk_; }
    sim::Link& server_trunk() { return server_trunk_; }
    stack::DnsServer& dns() { return *dns_; }
    sim::EventLoop& loop() { return loop_; }

    std::size_t device_count() const { return slots_.size(); }
    DeviceSlot& slot(int i) { return *slots_.at(static_cast<std::size_t>(i)); }

    /// Attach an observability session (owned by the caller, must outlive
    /// the testbed): binds every device slot created so far and any added
    /// later — gateways, test hosts, and the per-slot links, whose trace
    /// events cross-reference the slot's WAN capture frame indices.
    void attach_observability(obs::Observability* obs);
    obs::Observability* observability() { return obs_; }

    /// Metrics/trace label for a slot: "<profile tag>#<n>".
    static std::string device_label(const DeviceSlot& slot);

    /// The DNS name the global server resolves (paper: hiit.fi zone).
    static constexpr const char* kTestName = "server.hiit.fi";
    /// A name with a DNSSEC-sized (~1100 byte) TXT answer.
    static constexpr const char* kBigName = "big.hiit.fi";
    static constexpr std::size_t kBigAnswerSize = 1100;

private:
    void maybe_ready();
    void bind_slot_observability(DeviceSlot& slot);

    sim::EventLoop& loop_;
    l2::VlanSwitch lan_switch_;
    l2::VlanSwitch wan_switch_;
    stack::Host client_;
    stack::Host server_;
    sim::Link client_trunk_;
    sim::Link server_trunk_;
    std::unique_ptr<stack::DnsServer> dns_;
    std::vector<std::unique_ptr<DeviceSlot>> slots_;
    std::function<void()> on_ready_;
    bool started_ = false;
    obs::Observability* obs_ = nullptr;
};

} // namespace gatekit::harness
