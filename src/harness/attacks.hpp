// Off-path attack battery (second generation). Unlike run_adversary's
// engine-direct on-path floods, every packet here is delivered through
// the real WAN-side path — netif -> rule chain -> NAT -> forward — from
// spoofed sources the gateway has no reason to trust, reproducing the
// ReDAN remote-DoS scenarios (Feng et al., arXiv:2410.21984):
//
//   1. icmp_teardown   spoofed Port-Unreachable errors quoting guessed
//                      internal tuples, swept across the external port
//                      space, to inject errors into (or tear down) a
//                      victim's UDP binding from off-path;
//   2. port_exhaustion a coerced LAN host races the victim's pool range
//                      and squats its source port, so PreserveSourcePort
//                      devices lose mappings and Sequential devices run
//                      out of bindings;
//   3. syn_confusion   unsolicited WAN SYN/ACK/RST sweeps poison the
//                      transitory state of a victim's in-progress
//                      handshake (zombie refresh, bogus promotion to
//                      established, off-path RST teardown);
//   4. quote_abuse     structurally malformed / truncated embedded
//                      quotes that lax devices still act on and relay.
//
// Each attack is paired with the DeviceProfile hardening knob that
// closes it (icmp_error_rate_limit, per_host_binding_budget,
// wan_syn_policy, validate_embedded_binding); bench/attack_matrix runs
// the battery in default and hardened postures over all 34 calibrated
// profiles and scores the sampled population.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/testbed.hpp"

namespace gatekit::harness {

struct AttackConfig {
    /// External ports the ICMP error sweep covers, centered on the
    /// victim's port (which sits at index sweep_width/2 — deliberately
    /// past the hardened per-second error budget).
    int sweep_width = 96;
    /// Pool flows the coerced host opens before squatting the victim's
    /// source port; chosen to exceed the hardened per-host budget so the
    /// squat itself is refused on hardened devices.
    int steal_prefix = 72;
    /// Extra outbound attempts past the binding cap during exhaustion.
    int exhaust_margin = 64;
    /// Half-width of the TCP sweeps around the victim's external port.
    int syn_halfwidth = 2;
};

struct AttackOutcome {
    /// Machine-readable verdict token (e.g. "torn-down", "safe").
    std::string verdict = "safe";
    bool vulnerable = false;
    /// Attack-specific detail counter (errors injected, bindings burned,
    /// hardening refusals observed — see each attack's implementation).
    std::uint64_t detail = 0;
};

struct AttackReport {
    std::string device;
    AttackOutcome icmp_teardown;
    AttackOutcome port_exhaustion;
    AttackOutcome syn_confusion;
    AttackOutcome quote_abuse;
    /// Harness invariant violations (victim flow never came up, oracle
    /// lost the binding, ...). Empty means every verdict is trustworthy.
    std::vector<std::string> failures;

    bool ok() const { return failures.empty(); }
    bool any_vulnerable() const {
        return icmp_teardown.vulnerable || port_exhaustion.vulnerable ||
               syn_confusion.vulnerable || quote_abuse.vulnerable;
    }
};

/// Run all four attacks against testbed slot `slot`. Synchronous: drives
/// the event loop internally. The testbed must be started and ready; the
/// battery opens its own victim flows and cleans up its observers, but
/// floods deliberately leave the slot's binding tables saturated (the
/// exhaustion attack runs last for that reason).
AttackReport run_attacks(Testbed& tb, int slot, const AttackConfig& cfg = {});

} // namespace gatekit::harness
