#include "harness/adversary.hpp"

#include <algorithm>
#include <set>

#include "gateway/home_gateway.hpp"
#include "gateway/nat_engine.hpp"
#include "net/icmp.hpp"
#include "net/ipv4.hpp"
#include "net/tcp_header.hpp"
#include "net/udp.hpp"

namespace gatekit::harness {

namespace {

// Protocol number no gateway in the study understands; always takes the
// unknown-protocol path regardless of SCTP/DCCP support.
constexpr std::uint8_t kUnknownProto = 99;

// Side tables (ICMP query ids, IP-only mappings) are hard-capped in the
// NAT engine; the audit asserts occupancy never exceeds this.
constexpr std::size_t kSideTableCap = 1024;

net::Ipv4Packet udp_packet(net::Ipv4Addr src, std::uint16_t sport,
                           net::Ipv4Addr dst, std::uint16_t dport) {
    net::Ipv4Packet pkt;
    pkt.h.protocol = net::proto::kUdp;
    pkt.h.src = src;
    pkt.h.dst = dst;
    net::UdpDatagram d;
    d.src_port = sport;
    d.dst_port = dport;
    d.payload = {0xad, 0x5e};
    pkt.payload = d.serialize(pkt.h.src, pkt.h.dst);
    return pkt;
}

net::Ipv4Packet tcp_syn(net::Ipv4Addr src, std::uint16_t sport,
                        net::Ipv4Addr dst, std::uint16_t dport) {
    net::Ipv4Packet pkt;
    pkt.h.protocol = net::proto::kTcp;
    pkt.h.src = src;
    pkt.h.dst = dst;
    net::TcpSegment seg;
    seg.src_port = sport;
    seg.dst_port = dport;
    seg.flags.syn = true;
    pkt.payload = seg.serialize(pkt.h.src, pkt.h.dst);
    return pkt;
}

net::Ipv4Packet icmp_echo(net::Ipv4Addr src, net::Ipv4Addr dst,
                          std::uint16_t id) {
    net::Ipv4Packet pkt;
    pkt.h.protocol = net::proto::kIcmp;
    pkt.h.src = src;
    pkt.h.dst = dst;
    pkt.payload = net::IcmpMessage::make_echo(false, id, 1).serialize();
    return pkt;
}

std::uint16_t external_udp_port(const net::Bytes& wire) {
    const auto pkt = net::Ipv4Packet::parse(wire);
    const auto d = net::UdpDatagram::parse(pkt.payload, pkt.h.src, pkt.h.dst);
    return d.src_port;
}

} // namespace

AdversaryResult run_adversary(Testbed& tb, int slot,
                              const AdversaryConfig& cfg) {
    auto& s = tb.slot(slot);
    auto& gw = *s.gw;
    auto& nat = gw.nat();
    auto& loop = tb.loop();

    AdversaryResult r;
    r.device = Testbed::device_label(s);
    r.udp_cap = nat.udp_table().capacity_limit();
    r.tcp_cap = nat.tcp_table().capacity_limit();

    const auto check = [&r](bool ok, std::string what) {
        if (!ok) r.failures.push_back(std::move(what));
    };

    // Attacker hosts live on the gateway's LAN subnet next to the real
    // client; flows are distinguished by port so sharing an address with
    // the victim is harmless.
    const std::uint32_t lan_net = s.client_addr.value() & 0xffffff00u;
    const auto attacker = [lan_net](int k) {
        return net::Ipv4Addr{lan_net | (2u + static_cast<std::uint32_t>(k) % 200u)};
    };
    // Pace the floods: a short virtual-time gap every burst keeps total
    // flood time in the tens of milliseconds, far below the shortest
    // calibrated UDP timeout (30 s), so the victim binding cannot expire
    // legitimately during the attack.
    int burst = 0;
    const auto pace = [&] {
        if (++burst % 64 == 0) loop.run_for(std::chrono::microseconds(500));
    };

    // --- Phase 1: victim flow, then a UDP binding-exhaustion flood. ---
    const std::uint16_t kVictimPort = 45000;
    const auto victim_out =
        nat.outbound(udp_packet(s.client_addr, kVictimPort, s.server_addr, 7000));
    check(victim_out.has_value(), "victim flow refused before flood");
    std::uint16_t victim_ext = 0;
    if (victim_out) victim_ext = external_udp_port(*victim_out);

    for (int k = 0; k < cfg.udp_flood; ++k) {
        const auto out = nat.outbound(udp_packet(
            attacker(k), static_cast<std::uint16_t>(1024 + k), s.server_addr, 53));
        out ? ++r.udp_accepted : ++r.udp_refused;
        r.udp_peak = std::max(r.udp_peak, nat.udp_table().size());
        pace();
    }
    check(r.udp_peak <= r.udp_cap, "UDP table exceeded capacity under flood");
    check(r.udp_refused > 0, "flood above capacity was never refused");
    check(r.udp_accepted + r.udp_refused ==
              static_cast<std::uint64_t>(cfg.udp_flood),
          "UDP flood accounting mismatch");

    // The victim's established binding must survive: inbound traffic to
    // its external port still translates while the table is saturated.
    if (victim_out) {
        net::Ipv4Packet reply =
            udp_packet(s.server_addr, 7000, nat.wan_addr(), victim_ext);
        bool handled = false;
        const auto in = nat.inbound(reply, handled);
        r.victim_survived_flood = handled && in.has_value();
        if (in) {
            const auto pkt = net::Ipv4Packet::parse(*in);
            const auto d =
                net::UdpDatagram::parse(pkt.payload, pkt.h.src, pkt.h.dst);
            r.victim_survived_flood = r.victim_survived_flood &&
                                      pkt.h.dst == s.client_addr &&
                                      d.dst_port == kVictimPort;
        }
    }
    check(r.victim_survived_flood, "established victim flow lost under flood");

    // --- Phase 2: reboot mid-measurement (flush + stall). ---
    gw.inject_fault(gateway::GatewayFault{true, cfg.reboot_stall});
    r.reboot_flushed = nat.udp_table().size() == 0 &&
                       nat.tcp_table().size() == 0 &&
                       nat.icmp_query_count() == 0 && nat.ip_only_count() == 0;
    check(r.reboot_flushed, "reboot did not flush translation state");
    if (cfg.reboot_stall > sim::Duration::zero())
        check(gw.stalled(), "reboot stall did not engage");
    // The victim's binding is gone — inbound to its old external port
    // must now fall through unhandled instead of reaching the LAN.
    if (victim_out) {
        net::Ipv4Packet reply =
            udp_packet(s.server_addr, 7000, nat.wan_addr(), victim_ext);
        bool handled = true;
        const auto in = nat.inbound(reply, handled);
        check(!in.has_value(), "stale binding survived reboot");
    }
    loop.run_for(cfg.reboot_stall + cfg.reboot_stall);
    const auto post_reboot = nat.outbound(
        udp_packet(s.client_addr, kVictimPort + 1, s.server_addr, 7000));
    r.recovered_after_reboot = post_reboot.has_value();
    check(r.recovered_after_reboot, "NAT did not recover after reboot");

    // --- Phase 3: port-collision storm. Distinct internal hosts all use
    // the same source port; accepted flows must map to distinct external
    // ports (no aliasing) whatever the allocation policy. ---
    std::set<std::uint16_t> ext_ports;
    for (int h = 0; h < cfg.collision_hosts; ++h) {
        const auto out =
            nat.outbound(udp_packet(attacker(h), 7777, s.server_addr, 9000));
        if (out) {
            ++r.collision_accepted;
            ext_ports.insert(external_udp_port(*out));
        }
        pace();
    }
    r.collision_unique = static_cast<int>(ext_ports.size());
    check(r.collision_accepted > 0, "collision storm: nothing accepted");
    check(r.collision_unique == r.collision_accepted,
          "collision storm: external ports aliased");
    check(nat.udp_table().size() <= r.udp_cap,
          "UDP table exceeded capacity in collision storm");

    // --- Phase 4: TCP SYN flood against the transitory-binding cap. ---
    for (int k = 0; k < cfg.tcp_flood; ++k) {
        const auto out = nat.outbound(tcp_syn(
            attacker(k), static_cast<std::uint16_t>(1024 + k), s.server_addr, 80));
        out ? ++r.tcp_accepted : ++r.tcp_refused;
        r.tcp_peak = std::max(r.tcp_peak, nat.tcp_table().size());
        pace();
    }
    check(r.tcp_peak <= r.tcp_cap, "TCP table exceeded capacity under flood");
    check(r.tcp_refused > 0, "SYN flood above capacity was never refused");

    // --- Phase 5: side-table floods. Distinct echo ids and distinct
    // unknown-protocol remotes; both tables are hard-capped at 1024 and
    // must refuse (not grow) beyond it. ---
    for (int k = 0; k < cfg.icmp_flood; ++k) {
        nat.outbound(icmp_echo(s.client_addr, s.server_addr,
                               static_cast<std::uint16_t>(k)));
        r.icmp_peak = std::max(r.icmp_peak, nat.icmp_query_count());
        pace();
    }
    check(r.icmp_peak <= kSideTableCap,
          "ICMP query table exceeded its hard cap");

    for (int k = 0; k < cfg.ip_only_flood; ++k) {
        net::Ipv4Packet pkt;
        pkt.h.protocol = kUnknownProto;
        pkt.h.src = s.client_addr;
        pkt.h.dst = net::Ipv4Addr{0x0b000001u + static_cast<std::uint32_t>(k)};
        pkt.payload = {0x00, 0x01, 0x02, 0x03};
        nat.outbound(pkt);
        r.ip_only_peak = std::max(r.ip_only_peak, nat.ip_only_count());
        pace();
    }
    check(r.ip_only_peak <= kSideTableCap,
          "IP-only table exceeded its hard cap");

    // Leave the slot clean for whatever runs next.
    nat.flush();
    loop.run_for(std::chrono::milliseconds(1));
    return r;
}

} // namespace gatekit::harness
