// ICMP translation test (paper section 3.2.3): for each of ten ICMP error
// kinds, related to both a UDP and a TCP flow, the test server "hijacks"
// the flow's packets as they emerge from the NAT, forges the error
// quoting them, sends it back at the NAT, and the client side inspects
// what (if anything) came through — including whether the embedded
// transport header and embedded IP checksum were translated correctly.
#pragma once

#include <array>
#include <functional>

#include "gateway/profile.hpp"
#include "harness/testbed.hpp"

namespace gatekit::harness {

struct IcmpVerdict {
    bool forwarded = false;    ///< an ICMP error reached the client
    bool rst_instead = false;  ///< a TCP RST arrived instead (ls2 behavior)
    bool embedded_transport_ok = false; ///< inner ports rewritten correctly
    bool embedded_ip_checksum_ok = false; ///< inner IP checksum consistent
};

struct IcmpProbeResult {
    std::array<IcmpVerdict, gateway::kIcmpKindCount> udp;
    std::array<IcmpVerdict, gateway::kIcmpKindCount> tcp;
    /// Host-Unreachable related to an ICMP echo flow (Table 2, first
    /// ICMP column).
    bool query_error_forwarded = false;
    /// Flow packets re-sent / re-awaited because the NAT'd flow was
    /// never captured at the server (lossy links). Zero on clean runs.
    int flow_retries = 0;

    const IcmpVerdict& verdict(bool is_tcp, gateway::IcmpKind k) const {
        return (is_tcp ? tcp : udp)[static_cast<std::size_t>(k)];
    }
};

/// Robustness knobs, default-off. Without retries a lost flow packet
/// silently produces a "nothing forwarded" verdict for that case.
struct IcmpProbeConfig {
    int flow_retries = 0; ///< extra attempts to get the flow captured
    sim::Duration retry_wait{std::chrono::seconds(1)}; ///< per re-attempt
};

void measure_icmp(Testbed& tb, int slot,
                  std::function<void(IcmpProbeResult)> done);
void measure_icmp(Testbed& tb, int slot, const IcmpProbeConfig& config,
                  std::function<void(IcmpProbeResult)> done);

} // namespace gatekit::harness
