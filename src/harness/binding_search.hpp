// The paper's modified binary search (section 3.2.1): each trial creates
// a fresh binding, idles a candidate gap, then checks liveness via an
// inbound probe. The search keeps the longest observed-alive gap and the
// shortest observed-expired gap and probes their midpoint, converging to
// one second. An initial exponential phase brackets the timeout.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"

namespace gatekit::harness {

/// Robustness policy for trials whose reply may never arrive (lossy
/// links, rebooting devices). Default-off: with trial_timeout zero the
/// search behaves exactly as the original — no watchdog event is ever
/// scheduled and a silent trial hangs the search, as on a real testbed
/// run without supervision.
struct TrialRetryPolicy {
    /// Watchdog slack beyond the trial's own idle phase; a trial is
    /// declared lost at gap*2 + trial_timeout after launch (the factor
    /// of two covers the harness's gap-proportional cooldown). Zero
    /// disables the watchdog entirely.
    sim::Duration trial_timeout{0};
    /// Total attempts per trial, including the first (>= 1).
    int max_attempts = 3;
    /// Delay before re-running a lost trial; doubles per retry.
    sim::Duration backoff{std::chrono::seconds(2)};

    bool enabled() const { return trial_timeout > sim::Duration::zero(); }
};

struct SearchParams {
    sim::Duration first_guess{std::chrono::seconds(16)};
    sim::Duration hi_limit{std::chrono::hours(1)};
    sim::Duration resolution{std::chrono::seconds(1)};
    TrialRetryPolicy retry;
    /// Optional tracing: trial launches/verdicts and watchdog decisions
    /// are emitted under `trace_device` (category "probe"). A watchdog
    /// retry or giveup also fires a trigger, dumping the flight recorder.
    obs::Tracer* tracer = nullptr;
    std::string trace_device;
    /// Cooperative cancellation (campaign supervisor hard deadline): when
    /// the pointee flips true the search stops at the next trial boundary
    /// and reports its best estimate with `cancelled` set. Null = never.
    std::shared_ptr<const bool> cancel;
};

struct SearchResult {
    /// Converged timeout estimate (shortest observed expiry), or hi_limit
    /// when the binding outlived the cutoff.
    sim::Duration timeout{};
    bool exceeded_limit = false;
    int trials = 0;
    /// Trial re-runs forced by the watchdog (lost replies).
    int retries = 0;
    /// Trials abandoned after max_attempts; nonzero implies gave_up.
    int giveups = 0;
    /// The search aborted on an unanswerable trial; `timeout` is the best
    /// estimate from the trials that did complete.
    bool gave_up = false;
    /// The search was cancelled via SearchParams::cancel (supervisor hard
    /// deadline); implies the estimate is partial. gave_up is also set.
    bool cancelled = false;
};

/// Async driver. `trial(gap, done)` must create a fresh binding, wait
/// `gap`, probe it, and call `done(alive)`; cleanup between trials is the
/// trial's responsibility. `finished` fires once converged.
class BindingTimeoutSearch {
public:
    using TrialFn =
        std::function<void(sim::Duration, std::function<void(bool)>)>;
    using DoneFn = std::function<void(SearchResult)>;

    BindingTimeoutSearch(sim::EventLoop& loop, SearchParams params,
                         TrialFn trial, DoneFn finished);

    void start();

private:
    void next_trial();
    void trace(const char* name, sim::Duration gap,
               std::int64_t extra_num = 0, const char* extra_key = nullptr);
    void launch_attempt(sim::Duration gap);
    void on_watchdog(sim::Duration gap, std::uint64_t gen);
    void on_trial(sim::Duration gap, bool alive);
    bool cancel_requested() const {
        return params_.cancel != nullptr && *params_.cancel;
    }
    /// Finish immediately with the best estimate collected so far.
    void finish_cancelled();
    void finish(sim::Duration timeout, bool exceeded, bool gave_up,
                bool cancelled = false);

    sim::EventLoop& loop_;
    SearchParams params_;
    TrialFn trial_;
    DoneFn finished_;
    sim::Duration longest_alive_{0};
    sim::Duration shortest_expired_{0};
    bool have_expired_ = false;
    sim::Duration next_guess_;
    int trials_ = 0;
    int retries_ = 0;
    int giveups_ = 0;
    // Attempt bookkeeping. The generation stamp pairs each outstanding
    // trial callback with its watchdog so a reply that limps in after the
    // watchdog declared the attempt lost is ignored instead of double-
    // advancing the search.
    std::uint64_t gen_ = 0;
    int attempt_ = 0;
    sim::EventId watchdog_{};
    // Liveness token: trial drivers may deliver a verdict long after the
    // owner destroyed this search (e.g. a probe chain that outlived the
    // watchdog and the whole repetition). Every deferred callback holds
    // a weak copy and bails once the token is gone.
    std::shared_ptr<char> liveness_ = std::make_shared<char>(0);
};

} // namespace gatekit::harness
