// The paper's modified binary search (section 3.2.1): each trial creates
// a fresh binding, idles a candidate gap, then checks liveness via an
// inbound probe. The search keeps the longest observed-alive gap and the
// shortest observed-expired gap and probes their midpoint, converging to
// one second. An initial exponential phase brackets the timeout.
#pragma once

#include <functional>

#include "sim/event_loop.hpp"

namespace gatekit::harness {

struct SearchParams {
    sim::Duration first_guess{std::chrono::seconds(16)};
    sim::Duration hi_limit{std::chrono::hours(1)};
    sim::Duration resolution{std::chrono::seconds(1)};
};

struct SearchResult {
    /// Converged timeout estimate (shortest observed expiry), or hi_limit
    /// when the binding outlived the cutoff.
    sim::Duration timeout{};
    bool exceeded_limit = false;
    int trials = 0;
};

/// Async driver. `trial(gap, done)` must create a fresh binding, wait
/// `gap`, probe it, and call `done(alive)`; cleanup between trials is the
/// trial's responsibility. `finished` fires once converged.
class BindingTimeoutSearch {
public:
    using TrialFn =
        std::function<void(sim::Duration, std::function<void(bool)>)>;
    using DoneFn = std::function<void(SearchResult)>;

    BindingTimeoutSearch(sim::EventLoop& loop, SearchParams params,
                         TrialFn trial, DoneFn finished);

    void start();

private:
    void next_trial();
    void on_trial(sim::Duration gap, bool alive);

    sim::EventLoop& loop_;
    SearchParams params_;
    TrialFn trial_;
    DoneFn finished_;
    sim::Duration longest_alive_{0};
    sim::Duration shortest_expired_{0};
    bool have_expired_ = false;
    sim::Duration next_guess_;
    int trials_ = 0;
};

} // namespace gatekit::harness
