// DNS proxy test (paper section 3.2.3): query the gateway's proxy (the
// address its DHCP advertised) over UDP and over TCP with the library's
// dig-equivalent, and determine which upstream transport the proxy used.
#pragma once

#include <functional>

#include "harness/testbed.hpp"

namespace gatekit::harness {

struct DnsProbeResult {
    bool udp_ok = false;          ///< proxy answered a UDP query
    bool tcp_connects = false;    ///< TCP/53 connection accepted
    bool tcp_answers = false;     ///< got an answer over the connection
    bool tcp_upstream_udp = false;///< TCP query proxied upstream via UDP
    // DNSSEC readiness (the paper's cited router studies [1,5,9]):
    bool big_udp_ok = false;   ///< a ~1.1 KB EDNS0 UDP answer came through
    bool truncated_seen = false; ///< got a TC response instead (EDNS lost)
    bool dnssec_ready = false; ///< big UDP answer, or TC + TCP retry works
    /// EDNS0 queries re-sent because no answer (not even TC) arrived.
    int big_udp_retries = 0;
};

/// Robustness knobs. udp_retries matches DnsClient's own default; raise
/// it on lossy links. big_retries re-sends the EDNS0 query, which has no
/// stack-level retransmission of its own (default-off).
struct DnsProbeConfig {
    int udp_retries = 2;
    int big_retries = 0;
    sim::Duration big_wait{std::chrono::seconds(2)};
};

void measure_dns(Testbed& tb, int slot,
                 std::function<void(DnsProbeResult)> done);
void measure_dns(Testbed& tb, int slot, const DnsProbeConfig& config,
                 std::function<void(DnsProbeResult)> done);

} // namespace gatekit::harness
