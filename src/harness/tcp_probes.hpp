// TCP measurements: TCP-1 binding timeouts (binary search with a 24 h
// cutoff), TCP-2 bulk throughput (upload / download / bidirectional),
// TCP-3 queuing delay via timestamps embedded every 2 KB of the TCP-2
// payload, and TCP-4 maximum concurrent bindings to one server port.
#pragma once

#include <functional>
#include <vector>

#include "harness/binding_search.hpp"
#include "harness/testbed.hpp"
#include "util/stats.hpp"

namespace gatekit::harness {

// --- TCP-1 ----------------------------------------------------------------

struct TcpTimeoutConfig {
    int repetitions = 3;
    std::uint16_t server_port = 20001;
    sim::Duration grace{std::chrono::seconds(30)};
    SearchParams search{.first_guess = std::chrono::minutes(2),
                        .hi_limit = std::chrono::hours(24),
                        .resolution = std::chrono::seconds(1),
                        .retry = {},
                        .tracer = nullptr,
                        .trace_device = {}};
    /// Extra whole-trial attempts when the connection cannot even be
    /// established (lossy links exhausting the stack's own SYN
    /// retransmissions, stalled gateways). Default-off: a failed connect
    /// reads as "expired", as before.
    int connect_retries = 0;
    sim::Duration connect_backoff{std::chrono::seconds(2)};
};

struct TcpTimeoutResult {
    std::vector<double> samples_sec;
    bool exceeded_limit = false; ///< binding outlived the 24 h cutoff
    // Robustness counters, aggregated across repetitions.
    int connect_retries = 0; ///< trials re-run after failed establishment
    int search_retries = 0;  ///< whole trials re-run by the watchdog
    int search_giveups = 0;  ///< searches abandoned (gave_up results)
    stats::Summary summary() const { return stats::summarize(samples_sec); }
};

void measure_tcp_timeout(Testbed& tb, int slot,
                         const TcpTimeoutConfig& config,
                         std::function<void(TcpTimeoutResult)> done);

// --- TCP-2 / TCP-3 ----------------------------------------------------------

struct ThroughputConfig {
    std::size_t bytes = 100'000'000; ///< the paper's 100 MB bulk transfer
    sim::Duration time_limit{std::chrono::seconds(300)};
    std::uint16_t port_base = 5001;
    /// Cooperative cancellation (supervisor hard deadline): in-flight
    /// transfer legs finish early with partial byte counts. Null = never.
    std::shared_ptr<const bool> cancel;
};

/// One direction of one transfer.
struct TransferResult {
    double mbps = 0.0;
    double delay_ms = 0.0; ///< median of normalized timestamp deltas
    std::uint64_t bytes = 0;
    double duration_sec = 0.0;
    bool completed = false;
};

struct ThroughputResult {
    TransferResult upload;        ///< client -> server alone
    TransferResult download;      ///< server -> client alone
    TransferResult upload_bidir;  ///< client -> server while downloading
    TransferResult download_bidir;///< server -> client while uploading
};

void measure_throughput(Testbed& tb, int slot, const ThroughputConfig& config,
                        std::function<void(ThroughputResult)> done);

// --- TCP-4 ----------------------------------------------------------------

struct MaxBindingsConfig {
    int limit = 2048; ///< stop probing above this many bindings
    std::uint16_t server_port = 9100;
    /// Cooperative cancellation (supervisor hard deadline): stop opening
    /// connections and report the partial count. Null = never.
    std::shared_ptr<const bool> cancel;
};

struct MaxBindingsResult {
    int max_bindings = 0;
    bool hit_probe_limit = false;
};

void measure_max_bindings(Testbed& tb, int slot,
                          const MaxBindingsConfig& config,
                          std::function<void(MaxBindingsResult)> done);

} // namespace gatekit::harness
