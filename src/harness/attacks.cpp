#include "harness/attacks.hpp"

#include <optional>

#include "net/udp.hpp"
#include "net/tcp_header.hpp"
#include "stack/udp_socket.hpp"

namespace gatekit::harness {

namespace {

using net::Ipv4Addr;

// Spoofed source addresses: TEST-NET-3 for the off-path WAN attacker and
// the blackholed remote the SYN-confusion victim talks to. Neither is
// routable inside the testbed, which is the point — every reply the
// gateway emits toward them dies at the test server's forward path.
const Ipv4Addr kOffPathAttacker{203, 0, 113, 66};
const Ipv4Addr kPhantomRemote{203, 0, 113, 77};

net::Bytes raw_udp(Ipv4Addr src, std::uint16_t sport, Ipv4Addr dst,
                   std::uint16_t dport) {
    net::Ipv4Packet p;
    p.h.protocol = net::proto::kUdp;
    p.h.src = src;
    p.h.dst = dst;
    net::UdpDatagram d;
    d.src_port = sport;
    d.dst_port = dport;
    d.payload = {0x5a};
    p.payload = d.serialize(src, dst);
    return p.serialize();
}

net::Bytes raw_tcp(Ipv4Addr src, std::uint16_t sport, Ipv4Addr dst,
                   std::uint16_t dport, bool syn, bool ack, bool rst) {
    net::Ipv4Packet p;
    p.h.protocol = net::proto::kTcp;
    p.h.src = src;
    p.h.dst = dst;
    net::TcpSegment seg;
    seg.src_port = sport;
    seg.dst_port = dport;
    seg.seq = 0x1000;
    seg.ack = ack ? 0x2000 : 0;
    seg.flags.syn = syn;
    seg.flags.ack = ack;
    seg.flags.rst = rst;
    p.payload = seg.serialize(src, dst);
    return p.serialize();
}

/// A structurally plausible RFC 792 quote of the datagram the victim's
/// NAT would have emitted, as an off-path attacker fabricates it: the
/// guessed external port is real information, the UDP length/checksum
/// are invented but sane, so only the rate-limit knob — never quote
/// validation — can stop a sweep of these.
net::Bytes synth_udp_quote(Ipv4Addr src, std::uint16_t sport, Ipv4Addr dst,
                           std::uint16_t dport) {
    net::Ipv4Packet q;
    q.h.protocol = net::proto::kUdp;
    q.h.src = src;
    q.h.dst = dst;
    q.h.ttl = 55;
    q.payload = {static_cast<std::uint8_t>(sport >> 8),
                 static_cast<std::uint8_t>(sport),
                 static_cast<std::uint8_t>(dport >> 8),
                 static_cast<std::uint8_t>(dport),
                 0x00, 0x0c,  // claimed UDP length 12
                 0xbe, 0xef}; // fabricated checksum
    return q.serialize();
}

/// Hand-rolled embedded quote whose header fields can lie (bogus IHL,
/// inconsistent total length, truncated transport bytes). Quote header
/// checksums are left invalid on purpose: no device verifies them.
net::Bytes hand_quote(std::uint8_t ver_ihl, std::uint16_t total,
                      Ipv4Addr src, Ipv4Addr dst, net::Bytes tail) {
    net::Bytes b(20, 0);
    b[0] = ver_ihl;
    b[2] = static_cast<std::uint8_t>(total >> 8);
    b[3] = static_cast<std::uint8_t>(total);
    b[5] = 1; // id
    b[8] = 55;
    b[9] = net::proto::kUdp;
    for (int i = 0; i < 4; ++i) {
        b[12 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(src.value() >> (24 - 8 * i));
        b[16 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(dst.value() >> (24 - 8 * i));
    }
    for (const std::uint8_t t : tail) b.push_back(t);
    return b;
}

void settle(Testbed& tb) {
    // Long enough to reset every per-second rate window and drain any
    // in-flight transients before the next attack arms its observers.
    tb.loop().run_for(std::chrono::seconds(2));
}

/// Arm the test server's IP observer to record the translated source
/// port of victim datagrams addressed to `dport`.
class ExtPortCapture {
public:
    ExtPortCapture(Testbed& tb, const Testbed::DeviceSlot& s,
                   std::uint16_t dport)
        : tb_(tb) {
        tb.server().set_ip_observer(
            [this, &s, dport](stack::Iface&, const net::Ipv4Packet& pkt,
                              std::span<const std::uint8_t>) {
                if (pkt.h.protocol != net::proto::kUdp ||
                    pkt.h.src != s.gw_wan_addr)
                    return;
                try {
                    const auto d = net::UdpDatagram::parse(
                        pkt.payload, pkt.h.src, pkt.h.dst);
                    if (d.dst_port == dport) port_ = d.src_port;
                } catch (const net::ParseError&) {
                }
            });
    }
    ~ExtPortCapture() { tb_.server().set_ip_observer({}); }
    std::optional<std::uint16_t> port() const { return port_; }

private:
    Testbed& tb_;
    std::optional<std::uint16_t> port_;
};

/// Count ICMP errors that make it all the way to the victim host.
class ErrorCounter {
public:
    explicit ErrorCounter(Testbed& tb) : tb_(tb) {
        tb.client().set_icmp_observer(
            [this](const net::Ipv4Packet&, const net::IcmpMessage& m) {
                if (m.is_error()) ++count_;
            });
    }
    ~ErrorCounter() { tb_.client().set_icmp_observer({}); }
    std::uint64_t count() const { return count_; }

private:
    Testbed& tb_;
    std::uint64_t count_ = 0;
};

// --- attack 1: off-path ICMP error-triggered teardown -------------------

void attack_icmp_teardown(Testbed& tb, Testbed::DeviceSlot& s,
                          const AttackConfig& cfg, AttackReport& rep) {
    auto& loop = tb.loop();
    auto& out = rep.icmp_teardown;
    auto& victim = tb.client().udp_open(s.client_addr, 40001);
    auto& sink = tb.server().udp_open(s.server_addr, 7001);
    std::uint64_t victim_rx = 0;
    victim.set_receive_handler([&victim_rx](net::Endpoint,
                                            std::span<const std::uint8_t>,
                                            const net::Ipv4Packet&) {
        ++victim_rx;
    });

    std::optional<std::uint16_t> ext;
    {
        ExtPortCapture cap(tb, s, 7001);
        victim.send_to({s.server_addr, 7001}, {0x01});
        loop.run_for(std::chrono::milliseconds(200));
        ext = cap.port();
    }
    if (!ext) {
        rep.failures.push_back("icmp_teardown: victim flow did not translate");
        tb.client().udp_close(victim);
        tb.server().udp_close(sink);
        return;
    }
    const auto probe = [&] {
        tb.server().send_raw(
            *s.server_if,
            raw_udp(s.server_addr, 7001, s.gw_wan_addr, *ext),
            s.gw_wan_addr);
        loop.run_for(std::chrono::milliseconds(100));
    };
    probe();
    if (victim_rx == 0)
        rep.failures.push_back(
            "icmp_teardown: inbound baseline never reached the victim");

    // The sweep: Port-Unreachable errors quoting the victim's guessed
    // tuple, ascending across the port space around the real external
    // port. The real port sits at index sweep_width/2, past a hardened
    // device's per-second budget.
    ErrorCounter injected(tb);
    const auto st0 = s.gw->nat().stats();
    const int half = cfg.sweep_width / 2;
    for (int i = -half; i < cfg.sweep_width - half; ++i) {
        const auto p = static_cast<std::uint16_t>(*ext + i);
        const auto err = net::IcmpMessage::make_error(
            net::IcmpType::DestUnreachable, net::icmp_code::kPortUnreachable,
            0, synth_udp_quote(s.gw_wan_addr, p, s.server_addr, 7001));
        tb.server().send_icmp(kOffPathAttacker, s.gw_wan_addr, err);
        if ((i + half) % 32 == 31) loop.run_for(std::chrono::milliseconds(1));
    }
    loop.run_for(std::chrono::milliseconds(200));

    const std::uint64_t rx_before = victim_rx;
    probe();
    const bool alive = victim_rx > rx_before;
    const auto st1 = s.gw->nat().stats();
    out.detail = injected.count();
    if (!alive) {
        out.verdict = "torn-down";
        out.vulnerable = true;
    } else if (injected.count() > 0) {
        out.verdict = "error-injected";
        out.vulnerable = true;
    } else if (st1.icmp_rate_limited > st0.icmp_rate_limited) {
        out.verdict = "rate-limited";
    } else {
        out.verdict = "not-translated";
    }
    tb.client().udp_close(victim);
    tb.server().udp_close(sink);
}

// --- attack 3: inbound-SYN state confusion ------------------------------

void attack_syn_confusion(Testbed& tb, Testbed::DeviceSlot& s,
                          const AttackConfig& cfg, AttackReport& rep) {
    auto& loop = tb.loop();
    auto& out = rep.syn_confusion;
    const std::uint16_t vport = 42000, rport = 9999;
    const auto gw_lan = s.gw->lan_addr();

    // Victim half-open handshake: raw SYNs toward a blackholed remote
    // leave a transitory binding (packets_out = 2, never a reply).
    for (int i = 0; i < 2; ++i) {
        tb.client().send_raw(
            *s.client_if,
            raw_tcp(s.client_addr, vport, kPhantomRemote, rport,
                    /*syn=*/true, /*ack=*/false, /*rst=*/false),
            gw_lan);
        loop.run_for(std::chrono::milliseconds(20));
    }

    // Oracle: locate the external port of the half-open binding.
    auto& table = s.gw->nat().tcp_table();
    const auto& prof = s.gw->profile();
    const auto matches = [&](std::uint16_t p) {
        gateway::Binding* b = table.find_by_external(p);
        return b != nullptr &&
               b->key.internal == net::Endpoint{s.client_addr, vport} &&
               b->key.remote == net::Endpoint{kPhantomRemote, rport};
    };
    std::optional<std::uint16_t> ext;
    if (matches(vport)) {
        ext = vport;
    } else {
        for (std::uint32_t p = prof.pool_begin; p <= prof.pool_end; ++p) {
            if (matches(static_cast<std::uint16_t>(p))) {
                ext = static_cast<std::uint16_t>(p);
                break;
            }
        }
    }
    if (!ext) {
        rep.failures.push_back("syn_confusion: no transitory binding");
        return;
    }
    const auto binding = [&] {
        return table.find_inbound(*ext, {kPhantomRemote, rport});
    };
    const auto expires0 = binding()->expires_at;
    const auto st0 = s.gw->nat().stats();

    // Three spoofed sweeps around the external port, one flag shape per
    // round: plain SYNs, bare ACKs, RSTs. On a Forward-policy device the
    // on-port segment crosses into the LAN, where the victim's stack —
    // which holds no socket for the half-open probe flow — answers with
    // a RST that destroys its own NAT binding: the attacker needs only
    // the SYN round to erase the victim's state. The later rounds matter
    // for devices that survive the earlier ones.
    const auto sweep = [&](bool syn, bool ack, bool rst) {
        for (int i = -cfg.syn_halfwidth; i <= cfg.syn_halfwidth; ++i) {
            const auto p = static_cast<std::uint16_t>(*ext + i);
            tb.server().send_raw(
                *s.server_if,
                raw_tcp(kPhantomRemote, rport, s.gw_wan_addr, p, syn, ack,
                        rst),
                s.gw_wan_addr);
        }
        loop.run_for(std::chrono::milliseconds(50));
    };
    bool refreshed = false;
    const char* torn_by = nullptr;
    sweep(true, false, false);
    if (gateway::Binding* b1 = binding(); b1 == nullptr) {
        torn_by = "syn-torn-down";
    } else {
        refreshed = b1->expires_at > expires0;
        sweep(false, true, false);
        if (gateway::Binding* b2 = binding(); b2 == nullptr) {
            torn_by = "ack-torn-down";
        } else if (b2->established) {
            torn_by = "ack-poisoned";
        } else {
            sweep(false, false, true);
            if (binding() == nullptr) torn_by = "rst-teardown";
        }
    }

    const auto st1 = s.gw->nat().stats();
    out.detail = (st1.wan_syn_dropped + st1.wan_syn_tarpitted +
                  st1.wan_stray_dropped) -
                 (st0.wan_syn_dropped + st0.wan_syn_tarpitted +
                  st0.wan_stray_dropped);
    if (torn_by != nullptr) {
        out.verdict = torn_by;
        out.vulnerable = true;
    } else if (refreshed) {
        out.verdict = "syn-refresh";
        out.vulnerable = true;
    } else {
        out.verdict = "safe";
    }
}

// --- attack 4: malformed / truncated embedded-quote abuse ---------------

void attack_quote_abuse(Testbed& tb, Testbed::DeviceSlot& s,
                        AttackReport& rep) {
    auto& loop = tb.loop();
    auto& out = rep.quote_abuse;
    auto& victim = tb.client().udp_open(s.client_addr, 43000);
    auto& sink = tb.server().udp_open(s.server_addr, 7002);

    std::optional<std::uint16_t> ext;
    {
        ExtPortCapture cap(tb, s, 7002);
        victim.send_to({s.server_addr, 7002}, {0x02});
        loop.run_for(std::chrono::milliseconds(200));
        ext = cap.port();
    }
    if (!ext) {
        rep.failures.push_back("quote_abuse: victim flow did not translate");
        tb.client().udp_close(victim);
        tb.server().udp_close(sink);
        return;
    }

    const auto e = *ext;
    const auto hi = static_cast<std::uint8_t>(e >> 8);
    const auto lo = static_cast<std::uint8_t>(e);
    // Four hostile quotes, all naming the victim's real tuple (the
    // attacker got lucky — this attack tests the parser, not the guess):
    // header-only with a lying total length; a 4-byte transport stub; a
    // bogus IHL larger than the quote; a full quote whose embedded UDP
    // length field is impossible.
    const net::Bytes quotes[] = {
        hand_quote(0x45, 28, s.gw_wan_addr, s.server_addr, {}),
        hand_quote(0x45, 24, s.gw_wan_addr, s.server_addr,
                   {hi, lo, 0x1b, 0x5a}),
        hand_quote(0x4f, 28, s.gw_wan_addr, s.server_addr,
                   {hi, lo, 0x1b, 0x5a, 0x00, 0x0c, 0xbe, 0xef}),
        hand_quote(0x45, 28, s.gw_wan_addr, s.server_addr,
                   {hi, lo, 0x1b, 0x5a, 0x00, 0x04, 0xbe, 0xef}),
    };
    ErrorCounter relayed(tb);
    const auto st0 = s.gw->nat().stats();
    for (const auto& q : quotes) {
        net::IcmpMessage m;
        m.type = net::IcmpType::DestUnreachable;
        m.code = net::icmp_code::kPortUnreachable;
        m.payload = q;
        tb.server().send_icmp(kOffPathAttacker, s.gw_wan_addr, m);
        loop.run_for(std::chrono::milliseconds(20));
    }
    loop.run_for(std::chrono::milliseconds(100));

    const auto st1 = s.gw->nat().stats();
    out.detail = relayed.count();
    if (relayed.count() > 0) {
        out.verdict = "relays-malformed";
        out.vulnerable = true;
    } else if (st1.icmp_quote_rejected > st0.icmp_quote_rejected) {
        out.verdict = "quote-validated";
    } else {
        out.verdict = "immune";
    }
    tb.client().udp_close(victim);
    tb.server().udp_close(sink);
}

// --- attack 2: targeted port exhaustion ---------------------------------

void attack_port_exhaustion(Testbed& tb, Testbed::DeviceSlot& s,
                            const AttackConfig& cfg, AttackReport& rep) {
    auto& loop = tb.loop();
    auto& out = rep.port_exhaustion;
    auto& nat = s.gw->nat();
    const auto& prof = s.gw->profile();
    const auto cap = nat.udp_table().capacity_limit();
    const auto gw_lan = s.gw->lan_addr();
    // The coerced LAN host (ReDAN's malicious-JS model maps here to a
    // compromised device beside the victim): a spoofed neighbor address
    // injected through the client's own LAN interface.
    const Ipv4Addr attacker{(s.client_addr.value() & 0xffffff00u) | 0xfau};

    // Swallow all attack and victim traffic server-side so nothing
    // generates on-path ICMP backwash.
    auto& sink_a = tb.server().udp_open(s.server_addr, 9000);
    auto& sink_1 = tb.server().udp_open(s.server_addr, 9001);
    auto& sink_2 = tb.server().udp_open(s.server_addr, 9002);

    std::size_t sent = 0;
    std::uint16_t sport = prof.pool_begin;
    const auto attack_flow = [&](std::uint16_t sp) {
        tb.client().send_raw(*s.client_if,
                             raw_udp(attacker, sp, s.server_addr, 9000),
                             gw_lan);
        if (++sent % 64 == 0) loop.run_for(std::chrono::milliseconds(1));
    };

    // Phase A: race the pool, then squat the victim's source port. The
    // squat comes after steal_prefix pool flows, so a hardened per-host
    // budget has already cut the attacker off by the time it lands.
    for (int i = 0; i < cfg.steal_prefix; ++i) attack_flow(sport++);
    loop.run_for(std::chrono::milliseconds(20));
    attack_flow(41001);
    loop.run_for(std::chrono::milliseconds(50));

    auto& v1 = tb.client().udp_open(s.client_addr, 41001);
    std::optional<std::uint16_t> ext1;
    {
        ExtPortCapture cap1(tb, s, 9001);
        v1.send_to({s.server_addr, 9001}, {0x01});
        loop.run_for(std::chrono::milliseconds(100));
        ext1 = cap1.port();
    }
    // A changed mapping only means theft on a port-preserving device;
    // Sequential devices never promise the source port back.
    const bool preserve =
        prof.port_allocation == gateway::PortAllocation::PreserveSourcePort;
    const bool stolen = preserve && ext1.has_value() && *ext1 != 41001;

    // Phase B: keep racing until the table (or the attacker's budget) is
    // exhausted, then open one more victim flow.
    const std::size_t target = cap + static_cast<std::size_t>(
                                         cfg.exhaust_margin);
    while (sent < target) attack_flow(sport++);
    loop.run_for(std::chrono::milliseconds(200));

    auto& v2 = tb.client().udp_open(s.client_addr, 41002);
    std::optional<std::uint16_t> ext2;
    {
        ExtPortCapture cap2(tb, s, 9002);
        v2.send_to({s.server_addr, 9002}, {0x02});
        loop.run_for(std::chrono::milliseconds(100));
        ext2 = cap2.port();
    }
    const bool exhausted = !ext2.has_value();

    out.detail = nat.udp_table().host_budget_refusals();
    if (stolen && exhausted) {
        out.verdict = "stolen+exhausted";
    } else if (exhausted) {
        out.verdict = "pool-exhausted";
    } else if (stolen) {
        out.verdict = "mapping-stolen";
    } else {
        out.verdict = "safe";
    }
    out.vulnerable = stolen || exhausted;

    tb.client().udp_close(v1);
    tb.client().udp_close(v2);
    tb.server().udp_close(sink_a);
    tb.server().udp_close(sink_1);
    tb.server().udp_close(sink_2);
}

} // namespace

AttackReport run_attacks(Testbed& tb, int slot, const AttackConfig& cfg) {
    AttackReport rep;
    auto& s = tb.slot(slot);
    rep.device = Testbed::device_label(s);
    if (!s.ready) {
        rep.failures.push_back("slot not ready");
        return rep;
    }
    // Floods run last: the exhaustion attack deliberately leaves the
    // UDP table saturated. The settle gaps reset per-second rate-limit
    // windows between attacks.
    attack_icmp_teardown(tb, s, cfg, rep);
    settle(tb);
    attack_syn_confusion(tb, s, cfg, rep);
    settle(tb);
    attack_quote_abuse(tb, s, rep);
    settle(tb);
    attack_port_exhaustion(tb, s, cfg, rep);
    return rep;
}

} // namespace gatekit::harness
