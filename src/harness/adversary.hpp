// On-path exhaustion audit: drives a device's NAT engine directly with
// synthetic floods (UDP and TCP SYN binding exhaustion, port-collision
// storms, ICMP query-id and unknown-protocol side-table floods) plus a
// reboot mid-measurement, and checks that the device degrades
// gracefully: caps enforced, no state table grows without bound, and the
// pre-established victim flow keeps translating per the device's profile
// policy. This battery is a capacity/graceful-degradation audit, not a
// threat model: it injects engine-direct from an omniscient on-path
// position. The off-path ReDAN remote-DoS scenarios (spoofed traffic
// through the real WAN-side packet path) live in harness/attacks.hpp and
// bench/attack_matrix.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/testbed.hpp"

namespace gatekit::harness {

struct AdversaryConfig {
    /// Distinct UDP flows in the exhaustion flood. The default exceeds the
    /// largest calibrated binding cap (2000) so every device hits its
    /// refusal path.
    int udp_flood = 2100;
    /// Distinct TCP SYNs in the transitory-binding flood.
    int tcp_flood = 2100;
    /// Internal hosts sharing one source port in the collision storm.
    int collision_hosts = 64;
    /// Distinct ICMP echo ids (side table hard-caps at 1024).
    int icmp_flood = 1500;
    /// Distinct unknown-protocol remotes (side table hard-caps at 1024).
    int ip_only_flood = 1500;
    /// Stall component of the mid-measurement reboot fault.
    sim::Duration reboot_stall{std::chrono::milliseconds(50)};
};

struct AdversaryResult {
    std::string device;
    std::size_t udp_cap = 0;
    std::size_t tcp_cap = 0;
    std::size_t udp_peak = 0;
    std::size_t tcp_peak = 0;
    std::size_t icmp_peak = 0;
    std::size_t ip_only_peak = 0;
    std::uint64_t udp_accepted = 0;
    std::uint64_t udp_refused = 0;
    std::uint64_t tcp_accepted = 0;
    std::uint64_t tcp_refused = 0;
    int collision_accepted = 0;
    int collision_unique = 0; ///< distinct external ports among accepted
    bool victim_survived_flood = false;
    bool reboot_flushed = false;
    bool recovered_after_reboot = false;
    /// Human-readable invariant violations; empty means the device
    /// degraded gracefully under every scenario.
    std::vector<std::string> failures;

    bool ok() const { return failures.empty(); }
};

/// Run the full battery against testbed slot `slot`. Synchronous: talks
/// to the gateway's NAT engine directly (bypassing the links, so flood
/// pacing is decoupled from link rates) and advances the testbed's
/// virtual clock between bursts. The testbed must be started and the
/// slot ready. Leaves the device's translation state flushed.
AdversaryResult run_adversary(Testbed& tb, int slot,
                              const AdversaryConfig& cfg = {});

} // namespace gatekit::harness
