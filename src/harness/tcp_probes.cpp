#include "harness/tcp_probes.hpp"

#include <algorithm>
#include <memory>

#include "stack/tcp_socket.hpp"
#include "util/assert.hpp"

namespace gatekit::harness {

namespace {

// --- TCP-1 -----------------------------------------------------------------

class TcpTimeoutMeasurement
    : public std::enable_shared_from_this<TcpTimeoutMeasurement> {
public:
    TcpTimeoutMeasurement(Testbed& tb, int slot, TcpTimeoutConfig config,
                          std::function<void(TcpTimeoutResult)> done)
        : tb_(tb), slot_(tb.slot(slot)), config_(config),
          done_(std::move(done)), loop_(tb.loop()) {
        if (obs::Observability* o = tb_.observability()) {
            const std::string device = Testbed::device_label(slot_);
            obs::Labels labels{{"device", device}, {"probe", "tcp1"}};
            m_trials_ = o->metrics().counter("probe.trials", labels);
            m_retries_ = o->metrics().counter("probe.retries", labels);
            m_giveups_ = o->metrics().counter("probe.giveups", labels);
            m_timeout_ns_ =
                o->metrics().log_histogram("probe.timeout_ns", labels);
            if (config_.search.tracer == nullptr) {
                config_.search.tracer = &o->tracer();
                config_.search.trace_device = device;
            }
        }
    }

    void start() {
        listener_ = &tb_.server().tcp_listen(config_.server_port);
        listener_->set_accept_handler(
            [self = shared_from_this()](stack::TcpSocket& conn) {
                self->server_conn_ = &conn;
                conn.on_error = [](const std::string&) {};
            });
        next_repetition();
    }

private:
    void next_repetition() {
        // Drop the previous repetition's search: its callbacks hold a
        // shared_ptr to this measurement (ownership cycle otherwise).
        // Always deferred here, never inside the search's own stack.
        search_.reset();
        const bool cancelled =
            config_.search.cancel != nullptr && *config_.search.cancel;
        if (cancelled ||
            static_cast<int>(result_.samples_sec.size()) >=
                config_.repetitions) {
            tb_.server().tcp_close_listener(*listener_);
            done_(std::move(result_));
            return;
        }
        search_ = std::make_unique<BindingTimeoutSearch>(
            loop_, config_.search,
            [self = shared_from_this()](sim::Duration gap,
                                        std::function<void(bool)> cb) {
                self->run_trial(gap, std::move(cb));
            },
            [self = shared_from_this()](SearchResult r) {
                if (r.exceeded_limit) self->result_.exceeded_limit = true;
                self->result_.samples_sec.push_back(
                    sim::to_sec(r.timeout));
                obs::observe(self->m_timeout_ns_,
                             static_cast<double>(r.timeout.count()));
                self->result_.search_retries += r.retries;
                self->result_.search_giveups += r.giveups;
                obs::add(self->m_trials_,
                         static_cast<std::uint64_t>(r.trials));
                obs::add(self->m_retries_,
                         static_cast<std::uint64_t>(r.retries));
                obs::add(self->m_giveups_,
                         static_cast<std::uint64_t>(r.giveups));
                self->loop_.after(sim::Duration::zero(), [self] {
                    self->next_repetition();
                });
            });
        search_->start();
    }

    void run_trial(sim::Duration gap, std::function<void(bool)> cb) {
        run_attempt(gap, 0, std::move(cb));
    }

    void run_attempt(sim::Duration gap, int attempt,
                     std::function<void(bool)> cb) {
        auto self = shared_from_this();
        server_conn_ = nullptr;
        // Fresh connection per trial: a fresh binding, as UDP trials use
        // fresh packets. The paper sped this up with parallel connections;
        // in virtual time sequential trials are free.
        auto& conn = tb_.client().tcp_connect(slot_.client_addr, 0,
                                              {slot_.server_addr,
                                               config_.server_port});
        client_conn_ = &conn;
        got_data_ = false;
        conn.on_data = [self](std::span<const std::uint8_t>) {
            self->got_data_ = true;
        };
        conn.on_error = [self, gap, attempt, cb](const std::string&) {
            self->client_conn_ = nullptr;
            if (attempt < self->config_.connect_retries) {
                // Connect swallowed by an impaired link or faulted
                // device: back off and run the whole trial again.
                ++self->result_.connect_retries;
                obs::inc(self->m_retries_);
                const auto delay = self->config_.connect_backoff
                                   * (1 << attempt);
                self->loop_.after(delay, [self, gap, attempt, cb]() mutable {
                    self->run_attempt(gap, attempt + 1, std::move(cb));
                });
                return;
            }
            // Could not even establish: treat as expired (should not
            // happen on a quiescent testbed).
            cb(false);
        };
        conn.on_established = [self, gap, attempt, cb]() mutable {
            self->loop_.after(gap, [self, gap, attempt,
                                    cb = std::move(cb)]() mutable {
                if (self->server_conn_ == nullptr &&
                    attempt < self->config_.connect_retries) {
                    // The client established but the server never
                    // accepted: the final handshake ACK died on an
                    // impaired link. Re-run the trial instead of
                    // reading a false "expired".
                    ++self->result_.connect_retries;
                    obs::inc(self->m_retries_);
                    if (self->client_conn_ != nullptr) {
                        self->client_conn_->on_error = nullptr;
                        self->client_conn_->abort();
                        self->client_conn_ = nullptr;
                    }
                    const auto delay = self->config_.connect_backoff
                                       * (1 << attempt);
                    self->loop_.after(delay, [self, gap, attempt,
                                              cb = std::move(cb)]() mutable {
                        self->run_attempt(gap, attempt + 1, std::move(cb));
                    });
                    return;
                }
                // Ask the server (management link) to push one byte.
                if (self->server_conn_ != nullptr)
                    self->server_conn_->send({'k'});
                self->loop_.after(self->config_.grace,
                                  [self, cb = std::move(cb)] {
                                      self->finish_trial(cb);
                                  });
            });
        };
    }

    void finish_trial(const std::function<void(bool)>& cb) {
        const bool alive = got_data_;
        // Tear down both sides; the client's RST also clears any NAT
        // binding left over from an alive trial.
        if (client_conn_ != nullptr) {
            client_conn_->on_error = nullptr;
            client_conn_->abort();
            client_conn_ = nullptr;
        }
        // On alive trials the client's RST also resets the server side.
        // On expired trials the RST cannot traverse; the server socket
        // keeps retransmitting its probe byte until its retransmission
        // limit fails it, which reaps it in the background — harmless,
        // since every trial uses a fresh client port.
        server_conn_ = nullptr;
        cb(alive);
    }

    Testbed& tb_;
    Testbed::DeviceSlot& slot_;
    TcpTimeoutConfig config_;
    std::function<void(TcpTimeoutResult)> done_;
    sim::EventLoop& loop_;
    stack::TcpListener* listener_ = nullptr;
    stack::TcpSocket* server_conn_ = nullptr;
    stack::TcpSocket* client_conn_ = nullptr;
    std::unique_ptr<BindingTimeoutSearch> search_;
    TcpTimeoutResult result_;
    bool got_data_ = false;
    obs::Counter* m_trials_ = nullptr;
    obs::Counter* m_retries_ = nullptr;
    obs::Counter* m_giveups_ = nullptr;
    obs::LogHistogram* m_timeout_ns_ = nullptr;
};

// --- TCP-2 / TCP-3 -----------------------------------------------------------

constexpr std::size_t kBlock = 2048; ///< timestamp spacing (paper: 2 KB)
constexpr std::uint64_t kStampMagic = 0x474b54535354414dULL; // "GKTSSTAM"

/// Application-paced bulk sender: keeps the socket's unsent backlog
/// shallow so the timestamp written at the head of each 2 KB block
/// reflects when the block actually entered the device, not test start.
class PacedSender {
public:
    PacedSender(sim::EventLoop& loop, stack::TcpSocket& conn,
                std::size_t total)
        : loop_(loop), conn_(conn), total_(total) {}

    void start() {
        conn_.on_progress = [this] { top_up(); };
        top_up();
    }

    bool finished() const { return written_ >= total_; }

private:
    void top_up() {
        // Keep only a shallow not-yet-sent backlog: each 2 KB block is
        // stamped just before it can reach the wire, so the measured
        // delta is the device's queuing/processing delay rather than
        // time spent waiting in our own send buffer.
        constexpr std::size_t kPendingLimit = 8 * 1024;
        while (written_ < total_ &&
               conn_.bytes_pending_send() < kPendingLimit) {
            const std::size_t n = std::min(kBlock, total_ - written_);
            net::Bytes block(n, 0x5a);
            if (n >= 16) {
                const auto now = static_cast<std::uint64_t>(
                    loop_.now().count());
                for (int i = 0; i < 8; ++i)
                    block[static_cast<std::size_t>(i)] =
                        static_cast<std::uint8_t>(kStampMagic >>
                                                  (56 - 8 * i));
                for (int i = 0; i < 8; ++i)
                    block[static_cast<std::size_t>(8 + i)] =
                        static_cast<std::uint8_t>(now >> (56 - 8 * i));
            }
            conn_.send(std::move(block));
            written_ += n;
        }
    }

    sim::EventLoop& loop_;
    stack::TcpSocket& conn_;
    std::size_t total_;
    std::size_t written_ = 0;
};

/// Receiver side: tracks goodput and extracts the embedded timestamps.
class MeteredReceiver {
public:
    explicit MeteredReceiver(sim::EventLoop& loop) : loop_(loop) {}

    void on_bytes(std::span<const std::uint8_t> d) {
        if (received_ == 0) first_byte_ = loop_.now();
        last_byte_ = loop_.now();
        for (std::uint8_t b : d) {
            const std::size_t in_block = received_ % kBlock;
            if (in_block < 16) {
                header_[in_block] = b;
                if (in_block == 15) consume_header();
            }
            ++received_;
        }
    }

    TransferResult result(std::size_t expected) const {
        TransferResult r;
        r.bytes = received_;
        r.completed = received_ >= expected;
        r.duration_sec = sim::to_sec(last_byte_ - first_byte_);
        if (r.duration_sec > 0)
            r.mbps = static_cast<double>(received_) * 8.0 /
                     (r.duration_sec * 1e6);
        if (!delays_ms_.empty()) {
            // Paper method: normalize so the minimum is zero, report the
            // median of the normalized deltas.
            const double floor =
                *std::min_element(delays_ms_.begin(), delays_ms_.end());
            std::vector<double> normalized;
            normalized.reserve(delays_ms_.size());
            for (double v : delays_ms_) normalized.push_back(v - floor);
            r.delay_ms = stats::median(normalized);
        }
        return r;
    }

private:
    void consume_header() {
        std::uint64_t magic = 0, stamp = 0;
        for (int i = 0; i < 8; ++i)
            magic = (magic << 8) | header_[static_cast<std::size_t>(i)];
        for (int i = 0; i < 8; ++i)
            stamp = (stamp << 8) | header_[static_cast<std::size_t>(8 + i)];
        if (magic != kStampMagic) return;
        const double delta_ms =
            static_cast<double>(loop_.now().count() -
                                static_cast<std::int64_t>(stamp)) /
            1e6;
        delays_ms_.push_back(delta_ms);
    }

    sim::EventLoop& loop_;
    std::uint64_t received_ = 0;
    std::array<std::uint8_t, 16> header_{};
    sim::TimePoint first_byte_{};
    sim::TimePoint last_byte_{};
    std::vector<double> delays_ms_;
};

class ThroughputMeasurement
    : public std::enable_shared_from_this<ThroughputMeasurement> {
public:
    ThroughputMeasurement(Testbed& tb, int slot, ThroughputConfig config,
                          std::function<void(ThroughputResult)> done)
        : tb_(tb), slot_(tb.slot(slot)), config_(config),
          done_(std::move(done)), loop_(tb.loop()) {}

    void start() { run_upload(); }

private:
    /// Phase 1: unidirectional upload on port_base.
    void run_upload() {
        auto self = shared_from_this();
        start_upload_leg(config_.port_base, [self](TransferResult r) {
            self->result_.upload = r;
            self->run_download();
        });
    }
    /// Phase 2: unidirectional download on port_base+1.
    void run_download() {
        auto self = shared_from_this();
        start_download_leg(
            static_cast<std::uint16_t>(config_.port_base + 1),
            [self](TransferResult r) {
                self->result_.download = r;
                self->run_bidirectional();
            });
    }
    /// Phase 3: both at once on port_base+2 / +3.
    void run_bidirectional() {
        auto self = shared_from_this();
        auto remaining = std::make_shared<int>(2);
        start_upload_leg(static_cast<std::uint16_t>(config_.port_base + 2),
                         [self, remaining](TransferResult r) {
                             self->result_.upload_bidir = r;
                             if (--*remaining == 0)
                                 self->done_(self->result_);
                         });
        start_download_leg(static_cast<std::uint16_t>(config_.port_base + 3),
                           [self, remaining](TransferResult r) {
                               self->result_.download_bidir = r;
                               if (--*remaining == 0)
                                   self->done_(self->result_);
                           });
    }

    /// client -> server transfer; result measured at the server.
    void start_upload_leg(std::uint16_t port,
                          std::function<void(TransferResult)> done) {
        auto rx = std::make_shared<MeteredReceiver>(loop_);
        auto finished = std::make_shared<bool>(false);
        auto& lst = tb_.server().tcp_listen(port);
        listeners_[port] = &lst;
        lst.set_accept_handler([rx](stack::TcpSocket& conn) {
            conn.on_data = [rx](std::span<const std::uint8_t> d) {
                rx->on_bytes(d);
            };
            conn.on_remote_close = [&conn] { conn.close(); };
            conn.on_error = [](const std::string&) {};
        });
        auto& conn = tb_.client().tcp_connect(slot_.client_addr, 0,
                                              {slot_.server_addr, port});
        auto sender = std::make_shared<PacedSender>(loop_, conn,
                                                    config_.bytes);
        conn.on_established = [sender] { sender->start(); };
        conn.on_error = [](const std::string&) {};

        finish_when_done(rx, finished, port, std::move(done));
    }

    /// server -> client transfer; result measured at the client.
    void start_download_leg(std::uint16_t port,
                            std::function<void(TransferResult)> done) {
        auto self = shared_from_this();
        auto rx = std::make_shared<MeteredReceiver>(loop_);
        auto finished = std::make_shared<bool>(false);
        auto& lst = tb_.server().tcp_listen(port);
        listeners_[port] = &lst;
        lst.set_accept_handler(
            [self, rx](stack::TcpSocket& conn) {
                auto sender = std::make_shared<PacedSender>(
                    self->loop_, conn, self->config_.bytes);
                conn.on_error = [](const std::string&) {};
                self->keepalive_.push_back(sender);
                sender->start();
            });
        auto& conn = tb_.client().tcp_connect(slot_.client_addr, 0,
                                              {slot_.server_addr, port});
        conn.on_data = [rx](std::span<const std::uint8_t> d) {
            rx->on_bytes(d);
        };
        conn.on_error = [](const std::string&) {};

        finish_when_done(rx, finished, port, std::move(done));
    }

    /// Poll for completion (all bytes received) or the time limit.
    void finish_when_done(std::shared_ptr<MeteredReceiver> rx,
                          std::shared_ptr<bool> finished, std::uint16_t port,
                          std::function<void(TransferResult)> done) {
        auto self = shared_from_this();
        const auto deadline = loop_.now() + config_.time_limit;
        auto poll = std::make_shared<std::function<void()>>();
        *poll = [self, rx, finished, port, done = std::move(done), deadline,
                 poll] {
            const auto r = rx->result(self->config_.bytes);
            const bool cancelled = self->config_.cancel != nullptr &&
                                   *self->config_.cancel;
            if (r.completed || cancelled || self->loop_.now() >= deadline) {
                if (*finished) return;
                *finished = true;
                auto it = self->listeners_.find(port);
                if (it != self->listeners_.end()) {
                    self->tb_.server().tcp_close_listener(*it->second);
                    self->listeners_.erase(it);
                }
                done(r);
                // The stored function captures its own shared_ptr; clear
                // it so the poll state (and this measurement) can be
                // freed. We run as a copy inside the event, so this only
                // destroys the stored closure, not the executing one.
                *poll = nullptr;
                return;
            }
            self->loop_.after(std::chrono::milliseconds(200), *poll);
        };
        loop_.after(std::chrono::milliseconds(200), *poll);
    }

    Testbed& tb_;
    Testbed::DeviceSlot& slot_;
    ThroughputConfig config_;
    std::function<void(ThroughputResult)> done_;
    sim::EventLoop& loop_;
    ThroughputResult result_;
    std::vector<std::shared_ptr<PacedSender>> keepalive_;
    std::map<std::uint16_t, stack::TcpListener*> listeners_;
};

// --- TCP-4 -----------------------------------------------------------------

class MaxBindingsMeasurement
    : public std::enable_shared_from_this<MaxBindingsMeasurement> {
public:
    MaxBindingsMeasurement(Testbed& tb, int slot, MaxBindingsConfig config,
                           std::function<void(MaxBindingsResult)> done)
        : tb_(tb), slot_(tb.slot(slot)), config_(config),
          done_(std::move(done)), loop_(tb.loop()) {}

    void start() {
        listener_ = &tb_.server().tcp_listen(config_.server_port);
        listener_->set_accept_handler([](stack::TcpSocket& conn) {
            conn.on_data = [&conn](std::span<const std::uint8_t> d) {
                conn.send(net::Bytes(d.begin(), d.end())); // echo
            };
            conn.on_error = [](const std::string&) {};
        });
        open_next();
    }

private:
    void open_next() {
        if (config_.cancel != nullptr && *config_.cancel) {
            finish(false); // supervisor hard deadline: report partial count
            return;
        }
        if (established_ >= config_.limit) {
            finish(true);
            return;
        }
        auto self = shared_from_this();
        auto& conn = tb_.client().tcp_connect(slot_.client_addr, 0,
                                              {slot_.server_addr,
                                               config_.server_port});
        conn.on_established = [self, &conn] {
            // Pass a message over the new binding to prove it works.
            conn.send({'m'});
        };
        conn.on_data = [self](std::span<const std::uint8_t>) {
            ++self->established_;
            self->loop_.after(sim::Duration::zero(),
                              [self] { self->open_next(); });
        };
        conn.on_error = [self](const std::string&) {
            // New connection failed: the table is full.
            self->finish(false);
        };
    }

    void finish(bool hit_limit) {
        tb_.server().tcp_close_listener(*listener_);
        done_(MaxBindingsResult{established_, hit_limit});
    }

    Testbed& tb_;
    Testbed::DeviceSlot& slot_;
    MaxBindingsConfig config_;
    std::function<void(MaxBindingsResult)> done_;
    sim::EventLoop& loop_;
    stack::TcpListener* listener_ = nullptr;
    int established_ = 0;
};

} // namespace

void measure_tcp_timeout(Testbed& tb, int slot,
                         const TcpTimeoutConfig& config,
                         std::function<void(TcpTimeoutResult)> done) {
    auto m = std::make_shared<TcpTimeoutMeasurement>(tb, slot, config,
                                                     std::move(done));
    m->start();
}

void measure_throughput(Testbed& tb, int slot, const ThroughputConfig& config,
                        std::function<void(ThroughputResult)> done) {
    auto m = std::make_shared<ThroughputMeasurement>(tb, slot, config,
                                                     std::move(done));
    m->start();
}

void measure_max_bindings(Testbed& tb, int slot,
                          const MaxBindingsConfig& config,
                          std::function<void(MaxBindingsResult)> done) {
    auto m = std::make_shared<MaxBindingsMeasurement>(tb, slot, config,
                                                      std::move(done));
    m->start();
}

} // namespace gatekit::harness
