// Keepalive planner: the paper's motivating application question — how
// often must a UDP application (VoIP, game, tunnel) send keepalives to
// hold its NAT binding open across the deployed device base, and can a
// TCP connection rely on the standard 2-hour keepalive?
//
//   ./keepalive_planner [device_count]   (default: 8 devices for speed)
#include <algorithm>
#include <iostream>

#include "devices/profiles.hpp"
#include "harness/testrund.hpp"
#include "report/table.hpp"

using namespace gatekit;

int main(int argc, char** argv) {
    const int count = argc > 1 ? std::atoi(argv[1]) : 8;

    sim::EventLoop loop;
    harness::Testbed tb(loop);
    int added = 0;
    for (const auto& p : devices::all_profiles()) {
        if (added++ >= count) break;
        tb.add_device(p);
    }
    tb.start_and_wait();
    std::cout << "Probing " << tb.device_count()
              << " home gateway models...\n\n";

    harness::CampaignConfig cfg;
    cfg.udp1 = cfg.udp3 = true;
    cfg.udp.repetitions = 3;
    cfg.tcp1 = true;
    cfg.tcp_timeout.repetitions = 1;

    harness::Testrund rund(tb);
    const auto results = rund.run_blocking(cfg);

    report::TextTable table(
        {"device", "UDP idle timeout [s]", "UDP active timeout [s]",
         "TCP idle timeout [min]"});
    double worst_udp_idle = 1e9, worst_udp_active = 1e9, worst_tcp = 1e9;
    for (const auto& r : results) {
        const double u1 = r.udp1.summary().median;
        const double u3 = r.udp3.summary().median;
        const double t1 = r.tcp1.summary().median / 60.0;
        worst_udp_idle = std::min(worst_udp_idle, u1);
        worst_udp_active = std::min(worst_udp_active, u3);
        worst_tcp = std::min(worst_tcp, t1);
        table.add_row({r.tag, report::fmt_double(u1, 0),
                       report::fmt_double(u3, 0),
                       r.tcp1.exceeded_limit ? "> 1440"
                                             : report::fmt_double(t1, 0)});
    }
    table.print(std::cout);

    // Plan with a 2x safety margin against the worst observed device,
    // exactly the reasoning the paper's section 4.4 walks through.
    std::cout << "\nRecommendations for this device population:\n"
              << "  UDP keepalive for mostly-idle flows: every "
              << report::fmt_double(worst_udp_idle / 2, 0) << " s (worst "
              << "binding timeout " << report::fmt_double(worst_udp_idle, 0)
              << " s)\n"
              << "  UDP keepalive for active flows: every "
              << report::fmt_double(worst_udp_active / 2, 0) << " s\n"
              << "  A 15 s keepalive (used by some apps) is "
              << (worst_udp_active > 30 ? "more aggressive than needed"
                                        : "justified")
              << " here — the paper reached the same conclusion.\n"
              << "  TCP: the standard 2 h keepalive is "
              << (worst_tcp < 120 ? "NOT safe" : "safe")
              << ": the shortest TCP binding timeout seen is "
              << report::fmt_double(worst_tcp, 1) << " min.\n";
    return 0;
}
