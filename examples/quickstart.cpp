// Quickstart: build a one-device testbed, bring it up via DHCP on both
// sides, and run a few quick measurements against the gateway.
//
//   ./quickstart [tag]        (default: owrt; see table1_devices for tags)
#include <iostream>

#include "devices/profiles.hpp"
#include "harness/testrund.hpp"

using namespace gatekit;

int main(int argc, char** argv) {
    const std::string tag = argc > 1 ? argv[1] : "owrt";
    auto profile = devices::find_profile(tag);
    if (!profile) {
        std::cerr << "unknown device tag '" << tag << "'\n";
        return 1;
    }

    // 1. Assemble the paper's Figure-1 testbed with one device slot.
    sim::EventLoop loop;
    harness::Testbed tb(loop);
    const int slot = tb.add_device(*profile);

    // 2. Bring it up: the gateway leases its WAN address from the test
    //    server, then the test client configures itself through the
    //    gateway's own DHCP server.
    tb.start_and_wait();
    std::cout << "Device " << tag << " (" << profile->vendor << " "
              << profile->model << ") is up:\n"
              << "  gateway LAN " << tb.slot(slot).gw->lan_addr().to_string()
              << ", WAN " << tb.slot(slot).gw_wan_addr.to_string() << "\n"
              << "  test client " << tb.slot(slot).client_addr.to_string()
              << ", test server " << tb.slot(slot).server_addr.to_string()
              << "\n\n";

    // 3. Run a quick measurement campaign: UDP-1 binding timeout, the
    //    DNS proxy test, and SCTP/DCCP support.
    harness::CampaignConfig cfg;
    cfg.udp1 = true;
    cfg.udp.repetitions = 3;
    cfg.dns = true;
    cfg.transports = true;

    harness::Testrund rund(tb);
    const auto results = rund.run_blocking(cfg);
    const auto& r = results.front();

    const auto s = r.udp1.summary();
    std::cout << "UDP binding timeout (single outbound packet): median "
              << s.median << " s  [" << s.q1 << ", " << s.q3 << "]\n";
    std::cout << "DNS proxy: UDP "
              << (r.dns.udp_ok ? "works" : "broken") << ", TCP "
              << (r.dns.tcp_answers
                      ? "works"
                      : r.dns.tcp_connects ? "accepts but never answers"
                                           : "refused")
              << "\n";
    std::cout << "SCTP: "
              << (r.transports.sctp_connects ? "connects" : "blocked")
              << " (NAT action: " << to_string(r.transports.sctp_action)
              << ")\n";
    std::cout << "DCCP: "
              << (r.transports.dccp_connects ? "connects" : "blocked")
              << " (NAT action: " << to_string(r.transports.dccp_action)
              << ")\n";
    return 0;
}
